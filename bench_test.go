package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/report"
)

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§7). Each benchmark runs its experiment b.N
// times; the regenerated artifact is printed exactly once so that
// `go test -bench=. -benchmem` doubles as the reproduction run. Custom
// metrics report the headline numbers (speedups, errors, ratios) so
// regressions in the *shape* of a result show up as metric changes.
//
// Cluster experiments run at a reduced scale (experiments.Options.Quick
// for the heaviest) to keep the full suite within minutes; run
// cmd/silodsim for the full-scale reproduction.

var printOnce sync.Map

// printArtifact emits s once per benchmark name.
func printArtifact(b *testing.B, s string) {
	if _, loaded := printOnce.LoadOrStore(b.Name(), true); !loaded {
		fmt.Fprintf(os.Stdout, "\n======== %s ========\n%s", b.Name(), s)
	}
}

func opts() experiments.Options { return experiments.Options{Seed: 42} }

func BenchmarkTable1DatasetSizes(b *testing.B) {
	var t *report.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table1()
	}
	printArtifact(b, t.String())
}

func BenchmarkTable2TrainingSpeeds(b *testing.B) {
	var t *report.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table2()
	}
	printArtifact(b, t.String())
}

func BenchmarkFigure1GPUTrend(b *testing.B) {
	var t *report.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Figure1()
	}
	printArtifact(b, t.String())
}

func BenchmarkFigure2IODemand(b *testing.B) {
	o := opts()
	o.Quick = true
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(o)
		if err != nil {
			b.Fatal(err)
		}
		peak = r.Peak
		if i == 0 {
			printArtifact(b, fmt.Sprintf("remote IO demand peak: %.0f Gbps (paper: up to 200 Gbps at 400 GPUs)\n", peak))
		}
	}
	b.ReportMetric(peak, "peak_Gbps")
}

func BenchmarkFigure3PeerScaling(b *testing.B) {
	var r *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure3()
	}
	printArtifact(b, r.Table().String())
	last := len(r.Servers) - 1
	b.ReportMetric(r.Actual[last]/r.Linear[last], "peer_vs_linear")
}

func BenchmarkFigure4MaxMinExample(b *testing.B) {
	var r *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure4(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	b.ReportMetric(r.SiloDMin/r.QuiverMin, "min_speed_gain")
}

func BenchmarkFigure6CacheEfficiency(b *testing.B) {
	var t *report.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Figure6()
	}
	printArtifact(b, t.String())
}

func BenchmarkTable6MicroBenchmark(b *testing.B) {
	var r *experiments.Table6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table6(experiments.Table6Options{Options: opts()})
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	// Fidelity of the fluid engine against the batch ground truth,
	// over the deterministic systems (Quiver's profiling noise draws
	// differently per engine, so its spread is run variance, not
	// engine error).
	var maxErr float64
	for _, row := range r.Rows {
		if row.System == policy.Quiver || row.BatchJCT <= 0 {
			continue
		}
		e := abs(row.FluidJCT.Minutes()-row.BatchJCT.Minutes()) / row.BatchJCT.Minutes()
		if e > maxErr {
			maxErr = e
		}
	}
	b.ReportMetric(maxErr*100, "fluid_err_pct")
}

func BenchmarkFigure9ThroughputTimeline(b *testing.B) {
	var r *experiments.Table6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table6(experiments.Table6Options{Options: opts()})
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Figure9(10))
}

func BenchmarkFigure10Cluster96(b *testing.B) {
	var r *experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure10(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String()+r.CDFTable().String())
	silod := r.Results[policy.SiloD].AvgJCT().Minutes()
	worst := 0.0
	for _, cs := range []policy.CacheSystem{policy.Alluxio, policy.CoorDL, policy.Quiver} {
		if v := r.Results[cs].AvgJCT().Minutes() / silod; v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "max_jct_speedup")
}

func BenchmarkFigure8EffectiveCache(b *testing.B) {
	var r *experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure10(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Figure8Text())
	b.ReportMetric(r.EffectiveRatio*100, "effective_pct")
}

func BenchmarkFigure11Timelines(b *testing.B) {
	var r *experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure10(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Figure11Text(8))
}

func BenchmarkFigure12LargeScale(b *testing.B) {
	o := opts()
	o.Quick = true // full scale via cmd/silodsim -exp fig12
	var r *experiments.Figure12Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure12(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.JCTTable().String()+r.MakespanTable().String())
	silod := r.Results[policy.GavelKind][policy.SiloD].AvgJCT().Minutes()
	b.ReportMetric(r.Results[policy.GavelKind][policy.Quiver].AvgJCT().Minutes()/silod, "gavel_quiver_speedup")
}

func BenchmarkFigure13Fairness(b *testing.B) {
	o := opts()
	o.Quick = true
	var r *experiments.Figure12Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure12(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.FairnessTable().String())
	best := 0.0
	for _, cs := range []policy.CacheSystem{policy.Alluxio, policy.CoorDL, policy.Quiver} {
		if v := r.AvgFairness[cs]; v > best {
			best = v
		}
	}
	if best > 0 {
		b.ReportMetric(r.AvgFairness[policy.SiloD]/best, "fairness_gain")
	}
}

func BenchmarkFigure14aBandwidth(b *testing.B) {
	o := opts()
	o.Quick = true
	var r *experiments.Figure14aResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure14a(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	// The gap should close as bandwidth grows.
	first := r.AlluxioJCT[0] / r.SiloDJCT[0]
	last := r.AlluxioJCT[len(r.AlluxioJCT)-1] / r.SiloDJCT[len(r.SiloDJCT)-1]
	b.ReportMetric(first, "gain_at_min_bw")
	b.ReportMetric(last, "gain_at_max_bw")
}

func BenchmarkFigure14bGPUSpeed(b *testing.B) {
	o := opts()
	o.Quick = true
	var r *experiments.Figure14bResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure14b(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	b.ReportMetric(r.Gain[len(r.Gain)-1], "gain_at_4x")
}

func BenchmarkFigure15DatasetSharing(b *testing.B) {
	o := opts()
	o.Quick = true
	var r *experiments.Figure15Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure15(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	jct := r.JCT[policy.GavelKind]
	if last := jct[len(jct)-1]; last > 0 {
		b.ReportMetric(jct[0]/last, "sharing_jct_gain")
	}
}

func BenchmarkFigure16Curriculum(b *testing.B) {
	o := opts()
	o.Quick = true
	var r *experiments.Figure16Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure16(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.PacingTable.String()+r.Table().String())
}

func BenchmarkAblationNoIOControl(b *testing.B) {
	o := opts()
	o.Quick = true
	var r *experiments.AblationNoIOResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationNoIO(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	if with := r.WithControl.AvgFairness(); with > 0 {
		b.ReportMetric(r.WithoutControl.AvgFairness()/with, "fairness_retained")
	}
}

func BenchmarkEstimatorAccuracy(b *testing.B) {
	var r *experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.EstimatorAccuracy(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	b.ReportMetric(r.MaxError*100, "max_err_pct")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkAblationDesignChoices quantifies each co-design mechanism
// (partial caching, warm-data hysteresis, warm-up investment, work
// conservation) by disabling it on the 96-GPU trace.
func BenchmarkAblationDesignChoices(b *testing.B) {
	var r *experiments.DesignAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationDesignChoices(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	base := r.Rows[0].AvgJCT.Minutes()
	worst := 0.0
	for _, row := range r.Rows[1:] {
		if v := (row.AvgJCT.Minutes() - base) / base; v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst*100, "worst_ablation_pct")
}

// BenchmarkAblationEngineCost compares the fluid fast-forward engine
// against the block-level ground truth: same workload, events and
// agreement.
func BenchmarkAblationEngineCost(b *testing.B) {
	var r *experiments.EngineCostResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationEngineCost(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, fmt.Sprintf(
		"fluid: %.0f min avg JCT over %d events\nbatch: %.0f min avg JCT over %d events\n",
		r.FluidJCT.Minutes(), r.FluidEvents, r.BatchJCT.Minutes(), r.BatchEvents))
	b.ReportMetric(float64(r.BatchEvents)/float64(r.FluidEvents), "event_ratio")
	b.ReportMetric(100*abs(r.FluidJCT.Minutes()-r.BatchJCT.Minutes())/r.BatchJCT.Minutes(), "agreement_err_pct")
}

// BenchmarkExtensionPrefetch evaluates the Hoard-style prefetching
// extension in its favorable (cache-rich) regime; the paper calls it
// orthogonal to SiloD, and indeed the benefit is marginal when remote
// IO is the bottleneck.
func BenchmarkExtensionPrefetch(b *testing.B) {
	var r *experiments.PrefetchResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationPrefetch(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	b.ReportMetric(r.Baseline.AvgJCT().Minutes()/r.Prefetch.AvgJCT().Minutes(), "prefetch_gain")
}

// BenchmarkGavelObjectives compares the Gavel objectives the framework
// supports beyond max-min fairness (§5.2's generality claim): expected
// shape — throughput wins JCT/makespan, fairness-oriented objectives
// win the fairness ratio.
func BenchmarkGavelObjectives(b *testing.B) {
	o := opts()
	o.Quick = true
	var r *experiments.ObjectivesResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.GavelObjectives(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	b.ReportMetric(r.Rows[0].AvgJCT.Minutes()/r.Rows[1].AvgJCT.Minutes(), "maxmin_vs_throughput_jct")
}

// BenchmarkFidelity96 reproduces the paper's 96-GPU simulator-fidelity
// claim (§7.2: JCT error <=5.7%, makespan <=8.5%) at a reduced scale.
func BenchmarkFidelity96(b *testing.B) {
	o := opts()
	o.Quick = true
	var r *experiments.FidelityResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure10Fidelity(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	worst := 0.0
	for _, row := range r.Rows {
		if e := row.JCTError(); e > worst {
			worst = e
		}
	}
	b.ReportMetric(worst*100, "jct_err_pct")
}

// BenchmarkMixedCluster evaluates §6's irregular-job partitioning: the
// framework shields regular jobs' estimator-driven allocation from
// curriculum jobs that violate the access-pattern assumptions.
func BenchmarkMixedCluster(b *testing.B) {
	var r *experiments.MixedClusterResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.MixedCluster(opts())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, r.Table().String())
	b.ReportMetric(r.RegularJCTNaive.Minutes()/r.RegularJCTPartitioned.Minutes(), "regular_jct_gain")
}
