package repro

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/unit"
	"repro/internal/workload"
)

// baselineEntry is one (scheduler, cache system) row of the
// machine-readable benchmark baseline.
type baselineEntry struct {
	Scheduler     string  `json:"scheduler"`
	System        string  `json:"system"`
	Jobs          int     `json:"jobs"`
	AvgJCTMin     float64 `json:"avg_jct_minutes"`
	MakespanMin   float64 `json:"makespan_minutes"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

// baselineFile is the BENCH_baseline.json document.
type baselineFile struct {
	Description string          `json:"description"`
	Seed        int64           `json:"seed"`
	GPUs        int             `json:"gpus"`
	Entries     []baselineEntry `json:"entries"`
}

// TestEmitBenchBaseline regenerates BENCH_baseline.json at the repo
// root: the headline numbers (avg JCT, makespan, cache hit ratio) for
// Gavel over every cache system on a fixed trace and seed, pulled from
// the metrics subsystem rather than ad-hoc accounting. The run is
// deterministic, so diffs of this file are real behavior changes.
func TestEmitBenchBaseline(t *testing.T) {
	const seed = 42
	jobs, err := workload.Generate(workload.DefaultTraceConfig(seed, 24, 2*unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cluster := core.Cluster{GPUs: 32, Cache: 4 * unit.TB, RemoteIO: unit.MBpsOf(400)}

	out := baselineFile{
		Description: "deterministic benchmark baseline: Gavel scheduler over each cache system, fluid engine",
		Seed:        seed,
		GPUs:        cluster.GPUs,
	}
	for _, cs := range []policy.CacheSystem{policy.SiloD, policy.Alluxio, policy.CoorDL, policy.Quiver} {
		pol, err := policy.Build(policy.GavelKind, cs, seed)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry("baseline")
		res, err := sim.Run(sim.Config{
			Cluster: cluster,
			Policy:  pol,
			System:  cs,
			Engine:  sim.Fluid,
			Seed:    seed,
			Metrics: reg,
		}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", cs, err)
		}
		snap := reg.Snapshot()
		hit := snap.CounterValue("silod_sim_cache_hit_bytes_total", nil)
		miss := snap.CounterValue("silod_sim_cache_miss_bytes_total", nil)
		ratio := 0.0
		if hit+miss > 0 {
			ratio = hit / (hit + miss)
		}
		if len(res.Jobs) != len(jobs) {
			t.Fatalf("%s: %d of %d jobs finished", cs, len(res.Jobs), len(jobs))
		}
		out.Entries = append(out.Entries, baselineEntry{
			Scheduler:     policy.GavelKind.String(),
			System:        cs.String(),
			Jobs:          len(res.Jobs),
			AvgJCTMin:     res.AvgJCT().Minutes(),
			MakespanMin:   res.Makespan.Minutes(),
			CacheHitRatio: ratio,
		})
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_baseline.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Sanity: SiloD should at least match every baseline on avg JCT,
	// and every run must have exercised the cache.
	silod := out.Entries[0]
	for _, e := range out.Entries {
		if e.CacheHitRatio <= 0 || e.CacheHitRatio >= 1 {
			t.Errorf("%s: cache hit ratio %v outside (0, 1)", e.System, e.CacheHitRatio)
		}
		if silod.AvgJCTMin > e.AvgJCTMin*1.001 {
			t.Errorf("SiloD avg JCT %.2f min worse than %s's %.2f min", silod.AvgJCTMin, e.System, e.AvgJCTMin)
		}
	}
}
