package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/eventq"
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// pr5Timing is one experiment's sequential-vs-parallel wall-clock
// comparison.
type pr5Timing struct {
	Experiment    string  `json:"experiment"`
	SequentialSec float64 `json:"sequential_seconds"`
	ParallelSec   float64 `json:"parallel_seconds"`
	Speedup       float64 `json:"speedup"`
}

// pr5Alloc records a measured allocation count for one simulator hot
// path, next to the same path exercised the way the code worked before
// the scratch-reuse optimization (fresh maps / fresh state per round).
type pr5Alloc struct {
	Path           string  `json:"path"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	UnpooledAllocs int64   `json:"allocs_per_op_unpooled,omitempty"`
	UnpooledBytes  int64   `json:"bytes_per_op_unpooled,omitempty"`
	Reduction      float64 `json:"alloc_reduction_factor,omitempty"`
}

// pr5File is the BENCH_pr5.json document.
type pr5File struct {
	Description string      `json:"description"`
	Seed        int64       `json:"seed"`
	Cores       int         `json:"cores"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	Workers     int         `json:"workers"`
	Timings     []pr5Timing `json:"timings"`
	PairSpeedup float64     `json:"pair_speedup"`
	Allocations []pr5Alloc  `json:"allocations"`
}

// pr5Jobs builds a deterministic 200-job view set for the steady-state
// allocation measurements (mirrors internal/policy's bench harness).
func pr5Jobs() []core.JobView {
	rng := simrng.New(7)
	jobs := make([]core.JobView, 200)
	for i := range jobs {
		size := unit.Bytes(rng.Uniform(100, 1500)) * unit.GB
		jobs[i] = core.JobView{
			ID:      string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)),
			NumGPUs: []int{1, 2, 4, 8}[rng.Intn(4)],
			Profile: estimator.JobProfile{
				IdealThroughput: unit.Bandwidth(rng.Uniform(2, 300)) * unit.MBps,
				DatasetSize:     size,
			},
			DatasetKey:     "ds-" + string(rune('a'+i)),
			DatasetSize:    size,
			RemainingBytes: 10 * size,
			Running:        true,
		}
	}
	return jobs
}

// TestEmitBenchPR5 regenerates BENCH_pr5.json at the repo root: the
// wall-clock effect of the deterministic worker pool on the two widest
// experiments (Figure 10's 96-GPU cluster and Figure 12's 400-GPU
// 3-scheduler x 4-system matrix), plus measured per-operation
// allocation counts for the hot paths the scratch-reuse work targeted.
//
// Timings are real wall-clock measurements on whatever machine runs
// the test; Cores records how many CPUs that was. The >=2.5x pair
// speedup is asserted only when the machine has at least 4 cores —
// on fewer, parallel arms multiplex onto the same cores and the
// honest number is recorded without the assertion.
func TestEmitBenchPR5(t *testing.T) {
	if os.Getenv("SILOD_BENCH") == "" {
		t.Skip("set SILOD_BENCH=1 (make bench) to re-measure and rewrite BENCH_pr5.json")
	}
	const seed = 42
	workers := runtime.NumCPU()
	// Cores and GoMaxProcs are sampled at measurement time, not assumed:
	// the committed artifact must say what machine produced it.
	out := pr5File{
		Description: "wall-clock and allocation effects of the parallel experiment runner and simulator hot-path optimization",
		Seed:        seed,
		Cores:       runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     workers,
	}

	arms := []struct {
		name string
		run  func(o experiments.Options) error
	}{
		{"Figure10", func(o experiments.Options) error {
			_, err := experiments.Figure10(o)
			return err
		}},
		{"Figure12", func(o experiments.Options) error {
			_, err := experiments.Figure12(o)
			return err
		}},
	}
	// Both arms run with FullResolve so the artifact keeps measuring
	// what it always measured — the worker pool's effect on per-round
	// re-solves. With the PR-10 incremental path on, the memo would
	// shrink both arms and the pair speedup would reflect how often the
	// memo hits, not the pool.
	var seqTotal, parTotal float64
	for _, a := range arms {
		t0 := time.Now()
		if err := a.run(experiments.Options{Seed: seed, Sequential: true, FullResolve: true}); err != nil {
			t.Fatalf("%s sequential: %v", a.name, err)
		}
		seq := time.Since(t0).Seconds()
		t0 = time.Now()
		if err := a.run(experiments.Options{Seed: seed, Workers: workers, FullResolve: true}); err != nil {
			t.Fatalf("%s parallel: %v", a.name, err)
		}
		par := time.Since(t0).Seconds()
		seqTotal += seq
		parTotal += par
		out.Timings = append(out.Timings, pr5Timing{
			Experiment:    a.name,
			SequentialSec: seq,
			ParallelSec:   par,
			Speedup:       seq / par,
		})
	}
	out.PairSpeedup = seqTotal / parTotal

	// Steady-state policy solve: the pre-optimization code built fresh
	// Assignment maps every round; a fresh policy instance per solve
	// reproduces that cost, a reused instance measures the recycled
	// scratch path.
	jobs := pr5Jobs()
	cl := core.Cluster{GPUs: 400, Cache: unit.TiB(100), RemoteIO: unit.GBpsOf(4)}
	unpooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := &policy.FIFO{Storage: policy.GreedyAllocator{}}
			_ = f.Assign(cl, unit.Time(i), jobs)
		}
	})
	pooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f := &policy.FIFO{Storage: policy.GreedyAllocator{}}
		for i := 0; i < b.N; i++ {
			_ = f.Assign(cl, unit.Time(i), jobs)
		}
	})
	out.Allocations = append(out.Allocations, pr5Alloc{
		Path:           "policy.FIFO.Assign steady-state (200 jobs)",
		AllocsPerOp:    pooled.AllocsPerOp(),
		BytesPerOp:     pooled.AllocedBytesPerOp(),
		UnpooledAllocs: unpooled.AllocsPerOp(),
		UnpooledBytes:  unpooled.AllocedBytesPerOp(),
		Reduction:      float64(unpooled.AllocsPerOp()) / float64(max(pooled.AllocsPerOp(), 1)),
	})
	if pooled.AllocsPerOp() >= unpooled.AllocsPerOp() {
		t.Errorf("recycled scratch path allocates as much as fresh maps: %d vs %d allocs/op",
			pooled.AllocsPerOp(), unpooled.AllocsPerOp())
	}

	// Event queue schedule+step cycle: the hand-rolled heap should
	// allocate only the Event node itself — no container/heap
	// interface boxing per operation.
	heap := testing.Benchmark(func(b *testing.B) {
		q := eventq.New()
		r := simrng.New(1)
		for i := 0; i < 1024; i++ {
			q.Schedule(r.Float64()*1000, func() {})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Schedule(q.Now()+r.Float64()*1000, func() {})
			q.Step()
		}
	})
	out.Allocations = append(out.Allocations, pr5Alloc{
		Path:        "eventq schedule+step cycle (1024 pending)",
		AllocsPerOp: heap.AllocsPerOp(),
		BytesPerOp:  heap.AllocedBytesPerOp(),
	})
	if heap.AllocsPerOp() > 1 {
		t.Errorf("eventq schedule+step allocates %d objects/op, want <=1 (the Event itself)", heap.AllocsPerOp())
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr5.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Logf("pair speedup %.2fx on %d cores (GOMAXPROCS %d); FIFO steady-state %d -> %d allocs/op; eventq %d allocs/op",
		out.PairSpeedup, runtime.NumCPU(), runtime.GOMAXPROCS(0), unpooled.AllocsPerOp(), pooled.AllocsPerOp(), heap.AllocsPerOp())
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		// Skip, don't trivially pass: parallel arms multiplex onto the
		// same cores here, so the >=2.5x claim is untestable — the honest
		// numbers are in the artifact and the skip is visible in the run.
		t.Skipf("pair-speedup assertion needs >=4 schedulable cores (NumCPU %d, GOMAXPROCS %d); artifact written without the gate",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	if out.PairSpeedup < 2.5 {
		t.Errorf("Figure10+Figure12 pair speedup %.2fx on %d cores, want >=2.5x",
			out.PairSpeedup, runtime.NumCPU())
	}
}
