// Package repro is a from-scratch Go reproduction of "SiloD: A
// Co-design of Caching and Scheduling for Deep Learning Clusters"
// (EuroSys 2023).
//
// The library lives under internal/: the scheduling framework (core),
// the closed-form performance estimator (estimator), the scheduling
// policies and baseline cache systems (policy), the cache and remote-IO
// substrates (cache, remoteio, datamgr), the event-driven cluster
// simulator (sim), the concurrent scaled-time testbed (testbed), the
// HTTP control plane (controlplane), and one reproduction per paper
// table/figure (experiments). See README.md for the tour and DESIGN.md
// for the system inventory.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation:
//
//	go test -bench=. -benchmem
package repro
