package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/hollow"
)

// pr10Figure12 is the incremental-scheduling wall-clock record: the
// widest experiment (Figure 12's 400-GPU 3-scheduler x 4-system matrix)
// run sequentially with the delta-aware re-solve path on (the default)
// and forced off, next to the sequential time BENCH_pr5.json committed
// before the incremental work existed.
type pr10Figure12 struct {
	IncrementalSec float64 `json:"incremental_seconds"`
	FullResolveSec float64 `json:"full_resolve_seconds"`
	Speedup        float64 `json:"speedup_vs_full_resolve"`
	PR5BaselineSec float64 `json:"pr5_baseline_seconds"`
	SpeedupVsPR5   float64 `json:"speedup_vs_pr5_baseline"`
	BaselineSource string  `json:"baseline_source"`
}

// pr5Figure12SequentialSec is the Figure 12 sequential wall-clock
// BENCH_pr5.json recorded before the incremental-scheduling work, on
// the same container class this suite runs in. It is pinned rather
// than read from the live artifact because the pre-incremental code
// path no longer exists to re-measure: full-resolve mode disables the
// solve memo and warm starts but not the engine-level event batching,
// so a regenerated BENCH_pr5.json reports a smaller number than the
// code PR 5 actually shipped.
const pr5Figure12SequentialSec = 43.574056217

// pr10File is the BENCH_pr10.json document.
type pr10File struct {
	Description string        `json:"description"`
	Seed        int64         `json:"seed"`
	Cores       int           `json:"cores"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Figure12    pr10Figure12  `json:"figure12_sequential"`
	Hollow      hollow.Result `json:"hollow_10k_nodes"`
}

// TestEmitBenchPR10 regenerates BENCH_pr10.json at the repo root: the
// wall-clock effect of the delta-aware solve-skip memo and warm-started
// bisection on Figure 12, plus one full-scale hollow-node run (10k
// nodes, 1M jobs) recording the control plane's round-latency
// percentiles and rounds/sec.
//
// Timings are real wall-clock measurements on whatever machine runs the
// test; Cores and GoMaxProcs are sampled at measurement time. The >=3x
// claim is against pr5Figure12SequentialSec, the pre-incremental
// Figure 12 sequential time measured at PR 5 on the same container
// class (see the constant's comment for why it is pinned).
func TestEmitBenchPR10(t *testing.T) {
	if os.Getenv("SILOD_BENCH") == "" {
		t.Skip("set SILOD_BENCH=1 (make bench) to re-measure and rewrite BENCH_pr10.json")
	}
	const seed = 42
	out := pr10File{
		Description: "wall-clock effect of incremental re-solve and warm-started bisection, plus a hollow-node control-plane load run",
		Seed:        seed,
		Cores:       runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	// The byte-identity tests in internal/sim, internal/experiments and
	// cmd/silodsim gate that these two arms produce identical artifacts;
	// here only the clock differs.
	t0 := time.Now()
	if _, err := experiments.Figure12(experiments.Options{Seed: seed, Sequential: true}); err != nil {
		t.Fatalf("Figure12 incremental: %v", err)
	}
	inc := time.Since(t0).Seconds()
	t0 = time.Now()
	if _, err := experiments.Figure12(experiments.Options{Seed: seed, Sequential: true, FullResolve: true}); err != nil {
		t.Fatalf("Figure12 full-resolve: %v", err)
	}
	full := time.Since(t0).Seconds()
	out.Figure12 = pr10Figure12{
		IncrementalSec: inc,
		FullResolveSec: full,
		Speedup:        full / inc,
		BaselineSource: "BENCH_pr5.json Figure12 sequential_seconds as committed at PR 5 (pre-incremental)",
	}

	out.Figure12.PR5BaselineSec = pr5Figure12SequentialSec
	out.Figure12.SpeedupVsPR5 = pr5Figure12SequentialSec / inc

	// Full-scale hollow run: the datacenter-shape load the ISSUE names —
	// 10k heartbeating nodes, a million-job trace, 200 rounds.
	res, err := hollow.Run(hollow.DefaultConfig(seed))
	if err != nil {
		t.Fatalf("hollow run: %v", err)
	}
	out.Hollow = *res

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr10.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Logf("Figure12 sequential: %.2fs incremental vs %.2fs full-resolve (%.2fx), %.2fx vs PR5 baseline %.2fs",
		inc, full, out.Figure12.Speedup, out.Figure12.SpeedupVsPR5, out.Figure12.PR5BaselineSec)
	t.Logf("hollow 10k nodes / %d jobs: p50 %v p99 %v, %.1f rounds/sec, digest %s",
		res.Jobs, res.RoundLatency.P50, res.RoundLatency.P99, res.RoundsPerSec, res.Digest)
	if out.Figure12.SpeedupVsPR5 < 3.0 {
		t.Errorf("Figure12 sequential %.2fs is only %.2fx faster than the PR5 baseline %.2fs, want >=3x",
			inc, out.Figure12.SpeedupVsPR5, out.Figure12.PR5BaselineSec)
	}
}
