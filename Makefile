GO ?= go

.PHONY: build test vet lint race verify bench baseline clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs silodlint, the project's own static-analysis suite
# (determinism, unit-safety, metric-naming invariants); exits non-zero
# on any finding not covered by lint.allow. See docs/static-analysis.md.
lint:
	$(GO) run ./cmd/silodlint -root .

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: compile everything, vet, lint, full
# suite under the race detector.
verify: build vet lint race

bench:
	$(GO) test -bench=. -benchmem ./...

# baseline regenerates BENCH_baseline.json from the metrics counters.
baseline:
	$(GO) test . -run TestEmitBenchBaseline

clean:
	$(GO) clean ./...
