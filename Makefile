GO ?= go

.PHONY: build test vet race verify bench baseline clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: compile everything, vet, full suite
# under the race detector.
verify: build vet race

bench:
	$(GO) test -bench=. -benchmem ./...

# baseline regenerates BENCH_baseline.json from the metrics counters.
baseline:
	$(GO) test . -run TestEmitBenchBaseline

clean:
	$(GO) clean ./...
