GO ?= go

.PHONY: build test vet lint race chaos tenants serve verify bench baseline perf clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs silodlint, the project's own static-analysis suite
# (determinism, unit-safety, metric-naming invariants, whole-program
# determinism closure and input taint); exits non-zero on any finding
# not covered by lint.allow. See docs/static-analysis.md.
lint:
	$(GO) run ./cmd/silodlint -root .

# lint-diff reports only the packages changed since BASE (plus their
# reverse dependencies); the whole module is still analyzed. CI uses it
# on pull requests; pushes to main run the full sweep.
lint-diff:
	$(GO) run ./cmd/silodlint -root . -diff $(or $(BASE),origin/main)

# lint-why demonstrates the -why trace on the known-bad fixture: the
# seeded detclose finding prints its root-to-witness call path. The
# grep is the assertion — the smoke fails unless a full path (root,
# hop, clock witness) comes back.
lint-why:
	$(GO) run ./cmd/silodlint -root cmd/silodlint/testdata/badmod -why | grep -A4 "detclose" | grep "time.Now"

race:
	$(GO) test -race ./...

# chaos runs the seeded fault-injection suite under the race detector:
# deterministic chaos replay on both simulator engines, concurrent
# fault application against the live testbed, and the -faults schema
# golden. See docs/fault-injection.md.
chaos:
	$(GO) test -race ./internal/faults/
	$(GO) test -race -run 'Fault|Chaos|Loss|Crash' ./internal/sim/ ./internal/testbed/ ./cmd/silodsim/

# tenants runs the seeded multi-tenant chaos suite under the race
# detector: registry/admission unit tests, quota-clamp policy tests,
# the control-plane 429 path, and the SLO-protection + same-seed
# byte-identity acceptance tests on both engines. See
# docs/multi-tenancy.md.
tenants:
	$(GO) test -race ./internal/tenant/
	$(GO) test -race -run 'Tenant' ./internal/policy/ ./internal/sim/ ./internal/controlplane/

# serve runs the online-serving acceptance suite under the race
# detector: the bounded admission queue and load-generator unit tests,
# the decoupled round loop + drain + circuit-breaker + retry tests,
# the heartbeat-revival race, the silodd graceful-SIGTERM regression,
# and the silodload self-host smoke. See docs/serving.md.
serve:
	$(GO) test -race ./internal/admission/ ./internal/loadgen/
	$(GO) test -race -run 'Serve|Overload|Drain|Breaker|Retry|Admission|Enqueue|HeartbeatRevival' ./internal/controlplane/
	$(GO) test -race ./cmd/silodd/ ./cmd/silodload/

# verify is the pre-merge gate: compile everything, vet, lint, full
# suite under the race detector, then the chaos, multi-tenant, and
# serving suites.
verify: build vet lint race chaos tenants serve

bench:
	$(GO) test -bench=. -benchmem ./...
	SILOD_BENCH=1 $(GO) test . -run TestEmitBenchPR5 -v

# baseline regenerates BENCH_baseline.json from the metrics counters.
baseline:
	$(GO) test . -run TestEmitBenchBaseline

# perf is the worker-pool gate: the runner stress test under the race
# detector, plus the parallel-vs-sequential byte-identity tests at both
# the experiment and CLI layers. See docs/performance.md.
perf:
	$(GO) test -race -run 'TestPoolStress|TestMap|TestForEach|TestArmSeed' ./internal/runner/
	$(GO) test -race -run TestParallelArtifactsByteIdentical ./internal/experiments/
	$(GO) test -race -run 'TestParallelFlagByteIdentical|TestDeterministic' ./cmd/silodsim/

clean:
	$(GO) clean ./...
