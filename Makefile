GO ?= go

.PHONY: build test vet lint race chaos tenants serve verify bench baseline perf clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs silodlint, the project's own static-analysis suite
# (determinism, unit-safety, metric-naming invariants, whole-program
# determinism closure and input taint); exits non-zero on any finding
# not covered by lint.allow. See docs/static-analysis.md.
lint:
	$(GO) run ./cmd/silodlint -root .

# lint-diff reports only the packages changed since BASE (plus their
# reverse dependencies); the whole module is still analyzed. CI uses it
# on pull requests; pushes to main run the full sweep.
lint-diff:
	$(GO) run ./cmd/silodlint -root . -diff $(or $(BASE),origin/main)

# lint-why demonstrates the -why trace on the known-bad fixture: the
# seeded detclose finding prints its root-to-witness call path. The
# grep is the assertion — the smoke fails unless a full path (root,
# hop, clock witness) comes back.
lint-why:
	$(GO) run ./cmd/silodlint -root cmd/silodlint/testdata/badmod -why | grep -A4 "detclose" | grep "time.Now"

race:
	$(GO) test -race ./...

# chaos runs the seeded fault-injection suite under the race detector:
# deterministic chaos replay on both simulator engines, concurrent
# fault application against the live testbed, and the -faults schema
# golden. See docs/fault-injection.md.
chaos:
	$(GO) test -race ./internal/faults/
	$(GO) test -race -run 'Fault|Chaos|Loss|Crash' ./internal/sim/ ./internal/testbed/ ./cmd/silodsim/

# tenants runs the seeded multi-tenant chaos suite under the race
# detector: registry/admission unit tests, quota-clamp policy tests,
# the control-plane 429 path, and the SLO-protection + same-seed
# byte-identity acceptance tests on both engines. See
# docs/multi-tenancy.md.
tenants:
	$(GO) test -race ./internal/tenant/
	$(GO) test -race -run 'Tenant' ./internal/policy/ ./internal/sim/ ./internal/controlplane/

# serve runs the online-serving acceptance suite under the race
# detector: the bounded admission queue and load-generator unit tests,
# the decoupled round loop + drain + circuit-breaker + retry tests,
# the heartbeat-revival race, the silodd graceful-SIGTERM regression,
# and the silodload self-host smoke. See docs/serving.md.
serve:
	$(GO) test -race ./internal/admission/ ./internal/loadgen/
	$(GO) test -race -run 'Serve|Overload|Drain|Breaker|Retry|Admission|Enqueue|HeartbeatRevival' ./internal/controlplane/
	$(GO) test -race ./cmd/silodd/ ./cmd/silodload/

# verify is the pre-merge gate: compile everything, vet, lint, full
# suite under the race detector, then the chaos, multi-tenant, and
# serving suites.
verify: build vet lint race chaos tenants serve

bench:
	$(GO) test -bench=. -benchmem ./...
	SILOD_BENCH=1 $(GO) test . -run 'TestEmitBenchPR5|TestEmitBenchPR10' -v -timeout 30m

# baseline regenerates BENCH_baseline.json from the metrics counters.
baseline:
	$(GO) test . -run TestEmitBenchBaseline

# perf is the worker-pool and incremental-scheduling gate: the runner
# stress test under the race detector, the parallel-vs-sequential and
# incremental-vs-full-resolve byte-identity tests at the policy, engine,
# experiment and CLI layers, and the hollow-node control-plane smoke.
# See docs/performance.md.
perf:
	$(GO) test -race -run 'TestPoolStress|TestMap|TestForEach|TestArmSeed' ./internal/runner/
	$(GO) test -race -run 'TestMaxMinSolverWarm|TestIgnoredFields' ./internal/policy/
	$(GO) test -race -run 'TestCheLRUWarm' ./internal/cache/
	$(GO) test -race -run 'TestIncremental' ./internal/sim/
	$(GO) test -race -run 'TestParallelArtifactsByteIdentical|TestIncrementalArtifactsByteIdentical' ./internal/experiments/
	$(GO) test -race -run 'TestParallelFlagByteIdentical|TestDeterministic|TestFullResolve' ./cmd/silodsim/
	$(GO) test -race ./internal/hollow/ ./cmd/silodhollow/

clean:
	$(GO) clean ./...
