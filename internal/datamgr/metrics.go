package datamgr

import (
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/remoteio"
)

// EnableMetrics attaches a registry to the manager: the cache pool, the
// remote IO ledger, and every job's token bucket (existing and future)
// report into it. Call once, before or after jobs attach; calling with
// nil detaches everything.
func (m *Manager) EnableMetrics(r *metrics.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registry = r
	if r == nil {
		m.pool.SetMetrics(cache.PoolMetrics{})
		m.ledger.SetMetrics(remoteio.LedgerMetrics{})
		m.bucketMet = remoteio.BucketMetrics{}
	} else {
		m.pool.SetMetrics(cache.NewPoolMetrics(r, "uniform"))
		m.ledger.SetMetrics(remoteio.NewLedgerMetrics(r))
		m.bucketMet = remoteio.NewBucketMetrics(r)
	}
	for _, js := range m.jobs {
		js.bucket.SetMetrics(m.bucketMet)
	}
}

// Registry returns the attached registry (nil if EnableMetrics was
// never called), so servers can expose it.
func (m *Manager) Registry() *metrics.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.registry
}
