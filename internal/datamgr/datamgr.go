// Package datamgr implements the SiloD Data Manager (§6): the storage-
// layer component that enforces the scheduler's allocations. It exposes
// the Table 3 allocation APIs (allocateCacheSize to datasets,
// allocateRemoteIO to jobs), maintains the shared block cache with
// uniform caching semantics, throttles remote fetches with per-job
// token buckets, and tracks per-job access bitsets for the fine-grained
// effective-cache accounting the paper describes.
//
// The manager is safe for concurrent use: in the testbed every training
// job drives it from its own goroutine, playing the role of the paper's
// per-server FUSE clients.
package datamgr

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/remoteio"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// jobState is the manager's per-job bookkeeping. The mutable counters
// belong to the Manager's lock: jobState values never escape it.
type jobState struct {
	id       string
	dataset  string
	bucket   *remoteio.TokenBucket
	accessed *cache.Bitset // blocks read in the current epoch (§6 bitset)
	// effectiveBlocks is the number of cached blocks at epoch start:
	// the cache that actually reduces this epoch's remote IO.
	effectiveBlocks int        // guarded by Manager.mu
	epoch           int        // guarded by Manager.mu
	remoteBytes     unit.Bytes // guarded by Manager.mu (lifetime remote traffic)
	hitBlocks       int64      // guarded by Manager.mu
	missBlocks      int64      // guarded by Manager.mu
}

// datasetInfo is the per-dataset geometry.
type datasetInfo struct {
	name      string
	size      unit.Bytes
	blockSize unit.Bytes
	numBlocks int
}

// Manager is the SiloD data manager.
type Manager struct {
	mu       sync.Mutex
	pool     *cache.QuotaPool       // immutable handle; pool state has its own lock
	ledger   *remoteio.Ledger       // immutable handle; ledger state has its own lock
	jobs     map[string]*jobState   // guarded by mu
	datasets map[string]datasetInfo // guarded by mu
	clock    func() time.Time

	registry  *metrics.Registry      // guarded by mu
	bucketMet remoteio.BucketMetrics // guarded by mu (shared by every job's token bucket)
}

// New returns a manager over a cache of the given capacity and a remote
// link of the given egress capacity. A nil clock uses time.Now; tests
// and the testbed inject scaled clocks.
func New(cacheCapacity unit.Bytes, egress unit.Bandwidth, seed int64, clock func() time.Time) *Manager {
	if clock == nil {
		clock = time.Now
	}
	return &Manager{
		pool:     cache.NewQuotaPool(cacheCapacity, simrng.New(seed)),
		ledger:   remoteio.NewLedger(egress),
		jobs:     make(map[string]*jobState),
		datasets: make(map[string]datasetInfo),
		clock:    clock,
	}
}

// RegisterDataset declares a dataset before jobs may attach to it.
func (m *Manager) RegisterDataset(name string, size, blockSize unit.Bytes) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if blockSize <= 0 || size <= 0 {
		return fmt.Errorf("datamgr: bad dataset %q geometry (%v / %v)", name, size, blockSize)
	}
	n := unit.CeilDiv(size, blockSize)
	if err := m.pool.Register(name, n, blockSize); err != nil {
		return err
	}
	m.datasets[name] = datasetInfo{name: name, size: size, blockSize: blockSize, numBlocks: n}
	return nil
}

// AttachJob binds a job to a dataset (mounting the FUSE folder, in the
// paper's deployment).
func (m *Manager) AttachJob(jobID, dataset string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	di, ok := m.datasets[dataset]
	if !ok {
		return fmt.Errorf("datamgr: job %s attaching unknown dataset %q", jobID, dataset)
	}
	if _, dup := m.jobs[jobID]; dup {
		return fmt.Errorf("datamgr: job %s already attached", jobID)
	}
	js := &jobState{
		id:       jobID,
		dataset:  dataset,
		bucket:   remoteio.NewTokenBucket(0, di.blockSize, m.clock),
		accessed: cache.NewBitset(di.numBlocks),
	}
	js.bucket.SetMetrics(m.bucketMet)
	m.jobs[jobID] = js
	return nil
}

// DetachJob removes a job, releasing its IO allocation. Cache contents
// remain until the dataset's allocation is withdrawn.
func (m *Manager) DetachJob(jobID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, jobID)
	m.ledger.Remove(jobID)
}

// AllocateCacheSize is the Table 3 API: sets a dataset's cache quota.
// Shrinking evicts uniformly at random, preserving the uniform access
// pattern (§6).
func (m *Manager) AllocateCacheSize(dataset string, size unit.Bytes) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.datasets[dataset]; !ok {
		return fmt.Errorf("datamgr: allocateCacheSize for unknown dataset %q", dataset)
	}
	return m.pool.SetQuota(dataset, size)
}

// AllocateRemoteIO is the Table 3 API: sets a job's remote fetch rate.
func (m *Manager) AllocateRemoteIO(jobID string, speed unit.Bandwidth) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[jobID]
	if !ok {
		return fmt.Errorf("datamgr: allocateRemoteIO for unknown job %q", jobID)
	}
	if err := m.ledger.Set(jobID, speed); err != nil {
		return err
	}
	js.bucket.SetRate(speed)
	return nil
}

// ResizeCache applies a cache-capacity fault (or recovery) to the live
// pool: evictFraction of every dataset's cached blocks are invalidated
// uniformly at random (the contents of the failed node) and the pool
// capacity becomes newCapacity. Jobs in flight simply start missing on
// the invalidated blocks — cache is a performance resource, never a
// correctness one (§6), so no job observes an error.
func (m *Manager) ResizeCache(newCapacity unit.Bytes, evictFraction float64) {
	// The pool has its own lock; taking m.mu too keeps the resize
	// atomic with respect to allocation calls.
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pool.EvictFraction(evictFraction)
	m.pool.Resize(newCapacity)
	// Re-derive the epoch-start snapshots from the shrunken contents:
	// the snapshot promised hits this epoch, but the blocks backing that
	// promise may just have died with the node. Leaving it stale would
	// tell the scheduler the job needs no remote IO while every read
	// misses.
	for _, js := range m.jobs {
		if live := m.pool.CachedBlocks(js.dataset); js.effectiveBlocks > live {
			js.effectiveBlocks = live
		}
	}
}

// ResizeEgress applies a remote-IO bandwidth fault (or recovery): the
// ledger capacity changes, oversubscribed allocations are scaled down
// proportionally, and every affected job's token bucket is re-throttled
// to its new rate mid-flight.
func (m *Manager) ResizeEgress(newCapacity unit.Bandwidth) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, bw := range m.ledger.Resize(newCapacity) {
		if js, ok := m.jobs[id]; ok {
			js.bucket.SetRate(bw)
		}
	}
}

// CacheCapacity reports the pool's current capacity.
func (m *Manager) CacheCapacity() unit.Bytes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pool.Capacity()
}

// EgressCapacity reports the ledger's current egress capacity.
func (m *Manager) EgressCapacity() unit.Bandwidth {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ledger.Capacity()
}

// ReadResult describes one block read.
type ReadResult struct {
	Hit bool
	// Wait is how long the caller must stall for the remote fetch to
	// honor the job's throttle (zero on a hit).
	Wait time.Duration
}

// Read performs one block access for a job: a cache hit returns
// immediately (the storage fabric serves peer reads at local speed,
// Figure 3); a miss consumes the job's remote IO budget and reports the
// throttle delay the caller must sleep. Misses are admitted to the
// cache under the dataset's quota (uniform caching).
func (m *Manager) Read(jobID string, block int) (ReadResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[jobID]
	if !ok {
		return ReadResult{}, fmt.Errorf("datamgr: read from unknown job %q", jobID)
	}
	di := m.datasets[js.dataset]
	if block < 0 || block >= di.numBlocks {
		return ReadResult{}, fmt.Errorf("datamgr: job %s read block %d of %q (%d blocks)",
			jobID, block, js.dataset, di.numBlocks)
	}
	js.accessed.Set(block)
	out, err := m.pool.Access(js.dataset, cache.BlockID(block))
	if err != nil {
		return ReadResult{}, err
	}
	if out.Hit {
		js.hitBlocks++
		return ReadResult{Hit: true}, nil
	}
	js.missBlocks++
	js.remoteBytes += di.blockSize
	wait := js.bucket.Reserve(di.blockSize)
	return ReadResult{Wait: wait}, nil
}

// EpochStart marks the beginning of a job's next epoch: the access
// bitset resets and the effective cache snapshot is taken (§6 —
// everything cached now will serve this epoch's reads).
func (m *Manager) EpochStart(jobID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[jobID]
	if !ok {
		return fmt.Errorf("datamgr: epoch start for unknown job %q", jobID)
	}
	js.accessed.Reset()
	js.effectiveBlocks = m.pool.CachedBlocks(js.dataset)
	js.epoch++
	return nil
}

// JobStats is the fine-grained state the paper's policies may inspect.
type JobStats struct {
	Dataset         string
	Epoch           int
	EffectiveCached unit.Bytes // cache snapshot at epoch start
	AccessedBlocks  int
	HitBlocks       int64
	MissBlocks      int64
	RemoteBytes     unit.Bytes
	RemoteIO        unit.Bandwidth
}

// Stats reports a job's counters.
func (m *Manager) Stats(jobID string) (JobStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[jobID]
	if !ok {
		return JobStats{}, fmt.Errorf("datamgr: stats for unknown job %q", jobID)
	}
	di := m.datasets[js.dataset]
	return JobStats{
		Dataset:         js.dataset,
		Epoch:           js.epoch,
		EffectiveCached: unit.Bytes(js.effectiveBlocks) * di.blockSize,
		AccessedBlocks:  js.accessed.Count(),
		HitBlocks:       js.hitBlocks,
		MissBlocks:      js.missBlocks,
		RemoteBytes:     js.remoteBytes,
		RemoteIO:        m.ledger.Get(jobID),
	}, nil
}

// CachedBytes reports a dataset's cached bytes.
func (m *Manager) CachedBytes(dataset string) unit.Bytes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pool.CachedBytes(dataset)
}

// Quota reports a dataset's current cache allocation.
func (m *Manager) Quota(dataset string) unit.Bytes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pool.Quota(dataset)
}

// TotalCached reports the pool-wide cached bytes.
func (m *Manager) TotalCached() unit.Bytes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pool.TotalCachedBytes()
}

// Snapshot serializes the manager's allocation state (not cache
// contents — those live on server disks and survive restarts, §6
// "Fault tolerance").
type Snapshot struct {
	Quotas   map[string]unit.Bytes     `json:"quotas"`
	RemoteIO map[string]unit.Bandwidth `json:"remote_io"`
	Datasets map[string]DatasetGeom    `json:"datasets"`
	Jobs     map[string]string         `json:"jobs"` // job -> dataset
}

// DatasetGeom is a dataset's serializable geometry.
type DatasetGeom struct {
	Size      unit.Bytes `json:"size"`
	BlockSize unit.Bytes `json:"block_size"`
}

// Snapshot captures the allocation state for crash recovery.
func (m *Manager) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Quotas:   make(map[string]unit.Bytes),
		RemoteIO: make(map[string]unit.Bandwidth),
		Datasets: make(map[string]DatasetGeom),
		Jobs:     make(map[string]string),
	}
	for name, di := range m.datasets {
		s.Datasets[name] = DatasetGeom{Size: di.size, BlockSize: di.blockSize}
		s.Quotas[name] = m.pool.Quota(name)
	}
	for id, js := range m.jobs {
		s.Jobs[id] = js.dataset
		s.RemoteIO[id] = m.ledger.Get(id)
	}
	return s
}

// Restore rebuilds a fresh manager's allocation state from a snapshot,
// the recovery path the paper describes (reconstructing from pod
// annotations after a Data Manager crash).
func (m *Manager) Restore(s Snapshot) error {
	for name, g := range s.Datasets {
		if err := m.RegisterDataset(name, g.Size, g.BlockSize); err != nil {
			return err
		}
	}
	for name, q := range s.Quotas {
		if err := m.AllocateCacheSize(name, q); err != nil {
			return err
		}
	}
	for id, ds := range s.Jobs {
		if err := m.AttachJob(id, ds); err != nil {
			return err
		}
		if bw, ok := s.RemoteIO[id]; ok {
			if err := m.AllocateRemoteIO(id, bw); err != nil {
				return err
			}
		}
	}
	return nil
}
