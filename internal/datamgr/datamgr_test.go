package datamgr

import (
	"sync"
	"testing"
	"time"

	"repro/internal/unit"
)

func newMgr(t *testing.T) *Manager {
	t.Helper()
	clk := time.Now
	m := New(unit.GiB(10), unit.MBpsOf(100), 1, clk)
	if err := m.RegisterDataset("ds", unit.GiB(4), 64*unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachJob("job", "ds"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadHitMissAccounting(t *testing.T) {
	m := newMgr(t)
	if err := m.AllocateCacheSize("ds", unit.GiB(4)); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocateRemoteIO("job", unit.MBpsOf(100)); err != nil {
		t.Fatal(err)
	}
	if err := m.EpochStart("job"); err != nil {
		t.Fatal(err)
	}
	r, err := m.Read("job", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit {
		t.Error("cold read hit")
	}
	r, _ = m.Read("job", 0)
	if !r.Hit {
		t.Error("second read missed despite quota")
	}
	st, err := m.Stats("job")
	if err != nil {
		t.Fatal(err)
	}
	if st.HitBlocks != 1 || st.MissBlocks != 1 {
		t.Errorf("hits/misses = %d/%d", st.HitBlocks, st.MissBlocks)
	}
	if st.RemoteBytes != 64*unit.MB {
		t.Errorf("remote bytes %v", st.RemoteBytes)
	}
	if st.AccessedBlocks != 1 {
		t.Errorf("accessed %d distinct blocks", st.AccessedBlocks)
	}
}

func TestQuotaEnforcedOnReads(t *testing.T) {
	m := newMgr(t)
	if err := m.AllocateCacheSize("ds", 2*64*unit.MB); err != nil {
		t.Fatal(err)
	}
	m.AllocateRemoteIO("job", unit.MBpsOf(100))
	m.EpochStart("job")
	for blk := 0; blk < 5; blk++ {
		m.Read("job", blk)
	}
	if got := m.CachedBytes("ds"); got != 2*64*unit.MB {
		t.Errorf("cached %v, want exactly the quota", got)
	}
	// Shrinking evicts.
	if err := m.AllocateCacheSize("ds", 64*unit.MB); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedBytes("ds"); got != 64*unit.MB {
		t.Errorf("after shrink cached %v", got)
	}
}

func TestEffectiveCacheSnapshot(t *testing.T) {
	m := newMgr(t)
	m.AllocateCacheSize("ds", unit.GiB(4))
	m.AllocateRemoteIO("job", unit.MBpsOf(100))
	m.EpochStart("job")
	for blk := 0; blk < 8; blk++ {
		m.Read("job", blk)
	}
	st, _ := m.Stats("job")
	// Blocks admitted during the epoch are NOT effective yet.
	if st.EffectiveCached != 0 {
		t.Errorf("mid-epoch effective %v, want 0 (delayed effectiveness)", st.EffectiveCached)
	}
	m.EpochStart("job")
	st, _ = m.Stats("job")
	if st.EffectiveCached != 8*64*unit.MB {
		t.Errorf("post-epoch effective %v, want 8 blocks", st.EffectiveCached)
	}
	if st.AccessedBlocks != 0 {
		t.Error("epoch start did not reset the access bitset")
	}
}

func TestThrottleWait(t *testing.T) {
	m := newMgr(t)
	m.AllocateCacheSize("ds", 0)
	if err := m.AllocateRemoteIO("job", unit.MBpsOf(64)); err != nil {
		t.Fatal(err)
	}
	m.EpochStart("job")
	// Burst covers one block; the second must wait ~1s at 64 MB/s.
	m.Read("job", 0)
	r, _ := m.Read("job", 1)
	if r.Wait < 500*time.Millisecond || r.Wait > 2*time.Second {
		t.Errorf("throttle wait %v, want ~1s", r.Wait)
	}
}

func TestLedgerRejectsOversubscription(t *testing.T) {
	m := newMgr(t)
	if err := m.RegisterDataset("ds2", unit.GiB(1), 64*unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachJob("job2", "ds2"); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocateRemoteIO("job", unit.MBpsOf(80)); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocateRemoteIO("job2", unit.MBpsOf(30)); err == nil {
		t.Error("egress oversubscription accepted")
	}
}

func TestErrors(t *testing.T) {
	m := newMgr(t)
	if err := m.AttachJob("job", "ds"); err == nil {
		t.Error("duplicate attach accepted")
	}
	if err := m.AttachJob("x", "missing"); err == nil {
		t.Error("attach to unknown dataset accepted")
	}
	if _, err := m.Read("ghost", 0); err == nil {
		t.Error("read from unknown job accepted")
	}
	if _, err := m.Read("job", 1e6); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := m.AllocateCacheSize("missing", 1); err == nil {
		t.Error("quota for unknown dataset accepted")
	}
	if err := m.AllocateRemoteIO("ghost", 1); err == nil {
		t.Error("IO for unknown job accepted")
	}
	if err := m.EpochStart("ghost"); err == nil {
		t.Error("epoch for unknown job accepted")
	}
	if _, err := m.Stats("ghost"); err == nil {
		t.Error("stats for unknown job accepted")
	}
	if err := m.RegisterDataset("bad", 0, 0); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestDetachReleasesIO(t *testing.T) {
	m := newMgr(t)
	m.AllocateRemoteIO("job", unit.MBpsOf(100))
	m.DetachJob("job")
	if err := m.RegisterDataset("d2", unit.GiB(1), 64*unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachJob("j2", "d2"); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocateRemoteIO("j2", unit.MBpsOf(100)); err != nil {
		t.Errorf("detach did not release the egress: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := newMgr(t)
	m.AllocateCacheSize("ds", unit.GiB(2))
	m.AllocateRemoteIO("job", unit.MBpsOf(40))
	snap := m.Snapshot()

	fresh := New(unit.GiB(10), unit.MBpsOf(100), 2, nil)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Quota("ds"); got != unit.GiB(2) {
		t.Errorf("restored quota %v", got)
	}
	st, err := fresh.Stats("job")
	if err != nil {
		t.Fatal(err)
	}
	if st.RemoteIO != unit.MBpsOf(40) {
		t.Errorf("restored IO %v", st.RemoteIO)
	}
	if st.Dataset != "ds" {
		t.Errorf("restored binding %q", st.Dataset)
	}
}

// TestConcurrentReads drives the manager from many goroutines — the
// testbed's access pattern — under the race detector.
func TestConcurrentReads(t *testing.T) {
	m := New(unit.GiB(64), unit.MBpsOf(1e6), 3, nil)
	const jobs = 8
	for i := 0; i < jobs; i++ {
		ds := string(rune('a' + i))
		if err := m.RegisterDataset(ds, unit.GiB(4), 64*unit.MB); err != nil {
			t.Fatal(err)
		}
		if err := m.AttachJob("job-"+ds, ds); err != nil {
			t.Fatal(err)
		}
		if err := m.AllocateCacheSize(ds, unit.GiB(4)); err != nil {
			t.Fatal(err)
		}
		if err := m.AllocateRemoteIO("job-"+ds, unit.MBpsOf(1e5)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		ds := string(rune('a' + i))
		wg.Add(1)
		go func(job string) {
			defer wg.Done()
			for epoch := 0; epoch < 3; epoch++ {
				if err := m.EpochStart(job); err != nil {
					t.Error(err)
					return
				}
				for blk := 0; blk < 64; blk++ {
					if _, err := m.Read(job, blk); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}("job-" + ds)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		st, err := m.Stats("job-" + string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		// Epoch 1 misses everything; epochs 2-3 hit everything.
		if st.MissBlocks != 64 || st.HitBlocks != 128 {
			t.Errorf("job %d: hits/misses = %d/%d, want 128/64", i, st.HitBlocks, st.MissBlocks)
		}
	}
}
