package datamgr

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/unit"
)

// TestEnableMetrics drives a small read sequence through the manager
// and checks the registry reflects the cache, ledger, and bucket
// activity — including buckets of jobs attached after EnableMetrics.
func TestEnableMetrics(t *testing.T) {
	now := time.Unix(0, 0)
	m := New(10*unit.MB, unit.MBpsOf(100), 1, func() time.Time { return now })
	reg := metrics.NewRegistry("datamgr")
	m.EnableMetrics(reg)
	if m.Registry() != reg {
		t.Fatal("Registry() did not return the attached registry")
	}

	if err := m.RegisterDataset("ds", 4*unit.MB, unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachJob("job-1", "ds"); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocateCacheSize("ds", 2*unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocateRemoteIO("job-1", unit.MBpsOf(50)); err != nil {
		t.Fatal(err)
	}

	read := func(blk int) {
		if _, err := m.Read("job-1", blk); err != nil {
			t.Fatal(err)
		}
	}
	read(0) // miss, admitted
	read(0) // hit
	read(1) // miss, admitted
	read(2) // miss, over quota

	snap := reg.Snapshot()
	pol := map[string]string{"policy": "uniform"}
	if got := snap.CounterValue("silod_cache_hits_total", pol); got != 1 {
		t.Errorf("hits = %v, want 1", got)
	}
	if got := snap.CounterValue("silod_cache_misses_total", pol); got != 3 {
		t.Errorf("misses = %v, want 3", got)
	}
	if got := snap.CounterValue("silod_remoteio_egress_bytes_total", nil); got != float64(3*unit.MB) {
		t.Errorf("egress = %v, want %v", got, float64(3*unit.MB))
	}
	if got := snap.CounterValue("silod_remoteio_utilization_ratio", nil); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}

	// A job attached after EnableMetrics shares the same bucket counters.
	if err := m.AttachJob("job-2", "ds"); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocateRemoteIO("job-2", unit.MBpsOf(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read("job-2", 3); err != nil { // miss
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.CounterValue("silod_remoteio_egress_bytes_total", nil); got != float64(4*unit.MB) {
		t.Errorf("egress after second job = %v, want %v", got, float64(4*unit.MB))
	}
}
