package controlplane

import (
	"net/http"

	"repro/internal/metrics"
)

// schedMetrics is the scheduler daemon's own instrumentation. The
// scheduler always carries a registry (the /metrics endpoint is part of
// its API surface), so these handles are never nil.
type schedMetrics struct {
	rounds         *metrics.Counter // silod_sched_rounds_total
	submitted      *metrics.Counter // silod_sched_jobs_submitted_total
	pushErrors     *metrics.Counter // silod_sched_push_errors_total
	heartbeats     *metrics.Counter // silod_sched_heartbeats_total
	nodeDeaths     *metrics.Counter // silod_sched_node_deaths_total
	nodeRecoveries *metrics.Counter // silod_sched_node_recoveries_total
	preemptions    *metrics.Counter // silod_sched_preemptions_total
	queueDepth     *metrics.Gauge   // silod_sched_queue_depth
	running        *metrics.Gauge   // silod_sched_running_jobs
	gpusAlloc      *metrics.Gauge   // silod_sched_gpus_allocated
	nodesLive      *metrics.Gauge   // silod_sched_nodes_live
	effGPUs        *metrics.Gauge   // silod_sched_effective_gpus
	effCache       *metrics.Gauge   // silod_sched_effective_cache_bytes
	// Serving-round watchdog (serve.go).
	roundSeconds      *metrics.Histogram // silod_sched_round_seconds
	lastRoundSeconds  *metrics.Gauge     // silod_sched_last_round_seconds
	roundOverruns     *metrics.Counter   // silod_sched_round_overruns_total
	asyncSubmitErrors *metrics.Counter   // silod_sched_async_submit_errors_total
	draining          *metrics.Gauge     // silod_sched_draining
}

func newSchedMetrics(r *metrics.Registry) schedMetrics {
	return schedMetrics{
		rounds:         r.Counter("silod_sched_rounds_total"),
		submitted:      r.Counter("silod_sched_jobs_submitted_total"),
		pushErrors:     r.Counter("silod_sched_push_errors_total"),
		heartbeats:     r.Counter("silod_sched_heartbeats_total"),
		nodeDeaths:     r.Counter("silod_sched_node_deaths_total"),
		nodeRecoveries: r.Counter("silod_sched_node_recoveries_total"),
		preemptions:    r.Counter("silod_sched_preemptions_total"),
		queueDepth:     r.Gauge("silod_sched_queue_depth"),
		running:        r.Gauge("silod_sched_running_jobs"),
		gpusAlloc:      r.Gauge("silod_sched_gpus_allocated"),
		nodesLive:      r.Gauge("silod_sched_nodes_live"),
		effGPUs:        r.Gauge("silod_sched_effective_gpus"),
		effCache:       r.Gauge("silod_sched_effective_cache_bytes"),
		// 1ms .. ~8s: a round that blows past the top bucket is a wedged
		// data plane, which the breaker should have fail-fasted.
		roundSeconds:      r.Histogram("silod_sched_round_seconds", metrics.ExpBuckets(0.001, 2, 14)),
		lastRoundSeconds:  r.Gauge("silod_sched_last_round_seconds"),
		roundOverruns:     r.Counter("silod_sched_round_overruns_total"),
		asyncSubmitErrors: r.Counter("silod_sched_async_submit_errors_total"),
		draining:          r.Gauge("silod_sched_draining"),
	}
}

// Registry returns the scheduler's metrics registry (never nil).
func (s *SchedulerServer) Registry() *metrics.Registry { return s.registry }

// handleMetrics serves the registry in Prometheus text format.
func (s *SchedulerServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	servePrometheus(w, s.registry)
}

// Registry returns the wrapped manager's registry (nil unless
// EnableMetrics was called on it).
func (s *DataManagerServer) Registry() *metrics.Registry { return s.mgr.Registry() }

func (s *DataManagerServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	servePrometheus(w, s.mgr.Registry())
}

// servePrometheus writes a registry as text exposition format 0.0.4. A
// nil registry serves an empty (valid) page rather than an error, so
// scrapers keep working when instrumentation is off.
func servePrometheus(w http.ResponseWriter, r *metrics.Registry) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r == nil {
		return
	}
	_ = r.WritePrometheus(w)
}
