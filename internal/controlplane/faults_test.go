package controlplane

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// fakeClockStack is newStack with a controllable scheduler clock, for
// driving node-liveness expiry deterministically.
func fakeClockStack(t *testing.T, pol core.Policy, clock func() time.Time) (*Client, *SchedulerServer, func()) {
	t.Helper()
	mgr := datamgr.New(unit.GiB(100), unit.MBpsOf(100), 1, nil)
	dmSrv := httptest.NewServer(NewDataManagerServer(mgr))
	sched, err := NewSchedulerServer(core.Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(100)},
		pol, NewClient(dmSrv.URL), clock)
	if err != nil {
		t.Fatal(err)
	}
	schedSrv := httptest.NewServer(sched)
	return NewClient(schedSrv.URL), sched, func() {
		schedSrv.Close()
		dmSrv.Close()
	}
}

func runningCount(t *testing.T, c *Client) int {
	t.Helper()
	jobs, err := c.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, j := range jobs {
		if j.Running {
			n++
		}
	}
	return n
}

// TestNodeLivenessPreemptsAndRecovers walks the control plane through a
// node outage: heartbeating nodes carry the cluster, a silent node is
// declared dead, the next round preempts the job its capacity ran, and
// the node's return restores the full cluster.
func TestNodeLivenessPreemptsAndRecovers(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	c, sched, stop := fakeClockStack(t, pol, clock)
	defer stop()

	beat := func(node string) {
		t.Helper()
		if err := c.Heartbeat(HeartbeatRequest{Node: node, GPUs: 4, Cache: unit.GiB(50)}); err != nil {
			t.Fatal(err)
		}
	}
	beat("n1")
	beat("n2")
	if err := c.SubmitJob(submitReq("a", 4, unit.GiB(40))); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitJob(submitReq("b", 4, unit.GiB(40))); err != nil {
		t.Fatal(err)
	}
	if err := c.TriggerSchedule(); err != nil {
		t.Fatal(err)
	}
	if got := runningCount(t, c); got != 2 {
		t.Fatalf("with both nodes live, %d jobs running, want 2", got)
	}

	// n2 goes silent past the liveness timeout; n1 keeps beating.
	advance(DefaultNodeLivenessTimeout + time.Second)
	beat("n1")
	if err := c.TriggerSchedule(); err != nil {
		t.Fatal(err)
	}
	if got := runningCount(t, c); got != 1 {
		t.Errorf("with n2 dead (4 of 8 GPUs), %d jobs running, want 1", got)
	}
	nodes, err := c.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Node != "n1" || !nodes[0].Live || nodes[1].Node != "n2" || nodes[1].Live {
		t.Errorf("node view after outage = %+v, want live n1, dead n2", nodes)
	}

	// Everything goes silent: the round preempts all jobs and skips the
	// policy rather than solving for a zero-GPU cluster.
	advance(DefaultNodeLivenessTimeout + time.Second)
	if err := c.TriggerSchedule(); err != nil {
		t.Fatal(err)
	}
	if got := runningCount(t, c); got != 0 {
		t.Errorf("with every node dead, %d jobs running, want 0", got)
	}

	// Both nodes return; the cluster and both jobs come back.
	beat("n1")
	beat("n2")
	if err := c.TriggerSchedule(); err != nil {
		t.Fatal(err)
	}
	if got := runningCount(t, c); got != 2 {
		t.Errorf("after recovery, %d jobs running, want 2", got)
	}

	snap := sched.Registry().Snapshot()
	for name, min := range map[string]float64{
		"silod_sched_node_deaths_total":     2, // n2, then n1+n2 (n2 already dead)
		"silod_sched_node_recoveries_total": 2,
		"silod_sched_preemptions_total":     2,
		"silod_sched_heartbeats_total":      5,
	} {
		if v := snap.CounterValue(name, nil); v < min {
			t.Errorf("%s = %v, want >= %v", name, v, min)
		}
	}
	if v, ok := snap.Get("silod_sched_nodes_live", nil); !ok || *v.Value != 2 {
		t.Errorf("nodes_live gauge = %+v, want 2", v)
	}
	if v, ok := snap.Get("silod_sched_effective_gpus", nil); !ok || *v.Value != 8 {
		t.Errorf("effective_gpus gauge = %+v, want 8", v)
	}
}

// TestSubmitRequestIDDedupe: retrying a submit with the same request ID
// must not create a second job, and reusing an ID for a different job
// is an error.
func TestSubmitRequestIDDedupe(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedC, _, _, stop := newStack(t, pol)
	defer stop()

	req := submitReq("a", 1, unit.GiB(40))
	req.RequestID = "req-1"
	if err := schedC.SubmitJob(req); err != nil {
		t.Fatal(err)
	}
	if err := schedC.SubmitJob(req); err != nil {
		t.Fatalf("replayed submit with same request ID = %v, want dedupe", err)
	}
	jobs, err := schedC.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("replayed submit created %d jobs, want 1", len(jobs))
	}
	other := submitReq("b", 1, unit.GiB(40))
	other.RequestID = "req-1"
	if err := schedC.SubmitJob(other); err == nil || !strings.Contains(err.Error(), "already created job") {
		t.Errorf("request-ID reuse for a different job = %v, want conflict error", err)
	}
}

// TestClientRetriesTransientFailures: 5xx responses are retried with
// the same request ID (so the dedupe holds), 4xx responses are not, and
// exhausting the budget reports it.
func TestClientRetriesTransientFailures(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Error(err)
		}
		var req SubmitJobRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Errorf("bad submit body %q: %v", body, err)
		}
		mu.Lock()
		ids = append(ids, req.RequestID)
		n := len(ids)
		mu.Unlock()
		if n < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintln(w, `{"job_id":"a"}`)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.SetRetry(3, time.Millisecond, simrng.New(1))
	if err := c.SubmitJob(submitReq("a", 1, unit.GiB(40))); err != nil {
		t.Fatalf("submit against flaky server = %v, want success on attempt 3", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(ids))
	}
	if ids[0] == "" || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("request ID not stable across retries: %q", ids)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"no such model"}`)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.SetRetry(3, time.Millisecond, simrng.New(1))
	err := c.SubmitJob(submitReq("a", 1, unit.GiB(40)))
	if err == nil || !strings.Contains(err.Error(), "no such model") {
		t.Fatalf("400 submit = %v, want the server's error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Errorf("client retried a 400 response: %d attempts, want 1", attempts)
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.SetRetry(2, time.Millisecond, simrng.New(1))
	err := c.TriggerSchedule()
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Errorf("persistent 503 = %v, want giving-up error", err)
	}
}
