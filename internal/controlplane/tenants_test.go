package controlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/policy"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// tenantStack builds the usual HTTP stack with a tenant registry
// configured on the scheduler: "capped" (sheddable, 2 GPUs) and "vip"
// (critical, unlimited).
func tenantStack(t *testing.T) (*Client, *SchedulerServer, string, func()) {
	t.Helper()
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry()
	for _, tn := range []tenant.Tenant{
		{ID: "capped", Class: tenant.Sheddable, Quota: tenant.Quota{GPUs: 2}},
		{ID: "vip", Class: tenant.Critical},
	} {
		if err := reg.Register(tn); err != nil {
			t.Fatal(err)
		}
	}
	schedC, _, sched, stop := newStack(t, pol)
	sched.ConfigureTenants(reg)
	return schedC, sched, schedC.base, stop
}

func tenantSubmit(id, ten string, gpus int) SubmitJobRequest {
	req := submitReq(id, gpus, unit.GiB(10))
	req.Tenant = ten
	return req
}

// rawSubmit posts a submit without the client's retry/error wrapping so
// the test can observe the raw HTTP status code.
func rawSubmit(t *testing.T, base string, req SubmitJobRequest) (*http.Response, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&er) // empty on success
	return resp, er
}

// TestSubmitOverQuotaRejected429: an over-quota submission is rejected
// with HTTP 429 and a descriptive error, the rejection shows up in the
// tenant metrics, and releasing quota (job completion) lets the same
// submission through.
func TestSubmitOverQuotaRejected429(t *testing.T) {
	schedC, _, base, stop := tenantStack(t)
	defer stop()

	if err := schedC.SubmitJob(tenantSubmit("j1", "capped", 2)); err != nil {
		t.Fatal(err)
	}
	resp, er := rawSubmit(t, base, tenantSubmit("j2", "capped", 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d, want 429 (%s)", resp.StatusCode, er.Error)
	}
	if er.Error == "" {
		t.Error("429 carried no error body")
	}

	samples, err := schedC.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var rejections, admissions float64
	for _, s := range samples {
		switch s.Name {
		case "silod_tenant_rejections_total":
			if s.Labels["tenant"] == "capped" && s.Labels["resource"] == "gpus" {
				rejections = s.Value
			}
		case "silod_tenant_admissions_total":
			if s.Labels["tenant"] == "capped" {
				admissions = s.Value
			}
		}
	}
	if rejections != 1 {
		t.Errorf("silod_tenant_rejections_total{capped,gpus} = %v, want 1", rejections)
	}
	if admissions != 1 {
		t.Errorf("silod_tenant_admissions_total{capped} = %v, want 1", admissions)
	}

	// Completing j1 releases its quota; the rejected submission now fits.
	if err := schedC.ReportProgress(ProgressRequest{JobID: "j1", Done: true}); err != nil {
		t.Fatal(err)
	}
	if err := schedC.SubmitJob(tenantSubmit("j2", "capped", 1)); err != nil {
		t.Fatalf("submit after quota release: %v", err)
	}
}

// TestSubmitUnknownTenant400: an unregistered tenant is a malformed
// request (400), not a quota rejection (429).
func TestSubmitUnknownTenant400(t *testing.T) {
	_, _, base, stop := tenantStack(t)
	defer stop()
	resp, _ := rawSubmit(t, base, tenantSubmit("j1", "ghost", 1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tenant: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestSubmitUntenantedWithoutRegistry: a scheduler without
// ConfigureTenants accepts tenantless submissions unchanged (the flat
// pool), and tenant-tagged ones too — admission is simply off.
func TestSubmitUntenantedWithoutRegistry(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedC, _, _, stop := newStack(t, pol)
	defer stop()
	if err := schedC.SubmitJob(submitReq("plain", 1, unit.GiB(10))); err != nil {
		t.Fatal(err)
	}
	if err := schedC.SubmitJob(tenantSubmit("tagged", "anyone", 1)); err != nil {
		t.Fatalf("tenant-tagged submit without registry: %v", err)
	}
}

// TestTenantsEndpoint: GET /v1/tenants reports quotas and live usage.
func TestTenantsEndpoint(t *testing.T) {
	schedC, _, _, stop := tenantStack(t)
	defer stop()
	if err := schedC.SubmitJob(tenantSubmit("j1", "capped", 2)); err != nil {
		t.Fatal(err)
	}
	if err := schedC.SubmitJob(tenantSubmit("j2", "vip", 4)); err != nil {
		t.Fatal(err)
	}
	ts, err := schedC.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d tenants, want 2: %+v", len(ts), ts)
	}
	// List is sorted by ID: capped, vip.
	if ts[0].ID != "capped" || ts[1].ID != "vip" {
		t.Fatalf("tenant order: %+v", ts)
	}
	if ts[0].Class != "sheddable" || ts[0].GPUQuota != 2 || ts[0].GPUsInUse != 2 || ts[0].ActiveJobs != 1 {
		t.Errorf("capped status: %+v", ts[0])
	}
	if ts[1].Class != "critical" || ts[1].GPUQuota != 0 || ts[1].GPUsInUse != 4 || ts[1].ActiveJobs != 1 {
		t.Errorf("vip status: %+v", ts[1])
	}
	if ts[0].CacheInUse != unit.GiB(10) {
		t.Errorf("capped cache in use = %v, want 10 GiB", ts[0].CacheInUse)
	}
}
