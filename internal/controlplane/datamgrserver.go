package controlplane

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/datamgr"
	"repro/internal/unit"
)

// DataManagerServer exposes a datamgr.Manager over HTTP: the Table 3
// allocation APIs for the scheduler, block reads for FUSE clients, and
// snapshot/restore for crash recovery.
type DataManagerServer struct {
	mgr *datamgr.Manager
	mux *http.ServeMux
}

// NewDataManagerServer wraps mgr.
func NewDataManagerServer(mgr *datamgr.Manager) *DataManagerServer {
	s := &DataManagerServer{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	s.mux.HandleFunc("POST /v1/jobs", s.handleAttachJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDetachJob)
	s.mux.HandleFunc("POST /v1/allocate/cache", s.handleAllocateCache)
	s.mux.HandleFunc("POST /v1/allocate/remoteio", s.handleAllocateRemoteIO)
	s.mux.HandleFunc("POST /v1/read", s.handleRead)
	s.mux.HandleFunc("POST /v1/epoch/{id}", s.handleEpochStart)
	s.mux.HandleFunc("GET /v1/stats/{id}", s.handleStats)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/restore", s.handleRestore)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *DataManagerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decode parses the request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("controlplane: bad request body: %w", err)
	}
	return nil
}

func (s *DataManagerServer) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var req RegisterDatasetRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	bs := req.BlockSize
	if bs <= 0 {
		bs = 64 * unit.MB
	}
	if err := s.mgr.RegisterDataset(req.Name, req.Size, bs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

func (s *DataManagerServer) handleAttachJob(w http.ResponseWriter, r *http.Request) {
	var req AttachJobRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mgr.AttachJob(req.JobID, req.Dataset); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"job_id": req.JobID})
}

func (s *DataManagerServer) handleDetachJob(w http.ResponseWriter, r *http.Request) {
	s.mgr.DetachJob(r.PathValue("id"))
	writeJSON(w, http.StatusOK, map[string]string{"job_id": r.PathValue("id")})
}

func (s *DataManagerServer) handleAllocateCache(w http.ResponseWriter, r *http.Request) {
	var req AllocateCacheRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mgr.AllocateCacheSize(req.Dataset, req.Size); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dataset": req.Dataset})
}

func (s *DataManagerServer) handleAllocateRemoteIO(w http.ResponseWriter, r *http.Request) {
	var req AllocateRemoteIORequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mgr.AllocateRemoteIO(req.JobID, req.Speed); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"job_id": req.JobID})
}

func (s *DataManagerServer) handleRead(w http.ResponseWriter, r *http.Request) {
	var req ReadRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.mgr.Read(req.JobID, req.Block)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ReadResponse{Hit: res.Hit, WaitMicros: res.Wait.Microseconds()})
}

func (s *DataManagerServer) handleEpochStart(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.EpochStart(r.PathValue("id")); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"job_id": r.PathValue("id")})
}

func (s *DataManagerServer) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Stats(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, JobStatsResponse{
		Dataset:         st.Dataset,
		Epoch:           st.Epoch,
		EffectiveCached: st.EffectiveCached,
		AccessedBlocks:  st.AccessedBlocks,
		HitBlocks:       st.HitBlocks,
		MissBlocks:      st.MissBlocks,
		RemoteBytes:     st.RemoteBytes,
		RemoteIO:        st.RemoteIO,
	})
}

func (s *DataManagerServer) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Snapshot())
}

func (s *DataManagerServer) handleRestore(w http.ResponseWriter, r *http.Request) {
	var snap datamgr.Snapshot
	if err := decode(r, &snap); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mgr.Restore(snap); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}
