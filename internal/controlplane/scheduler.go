package controlplane

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/metrics"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// DataPlane is the slice of the data manager the scheduler drives: the
// Table 3 allocation APIs plus dataset/job lifecycle. Both the local
// datamgr.Manager (via LocalDataPlane) and the HTTP Client satisfy it.
type DataPlane interface {
	RegisterDataset(name string, size, blockSize unit.Bytes) error
	AttachJob(jobID, dataset string) error
	DetachJob(jobID string) error
	AllocateCacheSize(dataset string, size unit.Bytes) error
	AllocateRemoteIO(jobID string, speed unit.Bandwidth) error
}

// schedJob is the scheduler's job record. Records never escape the
// SchedulerServer, so their mutable fields belong to its lock.
type schedJob struct {
	req       SubmitJobRequest // immutable after Submit
	slo       tenant.SLOClass  // immutable after Submit
	submitted time.Time        // immutable after Submit
	attained  unit.Bytes       // guarded by SchedulerServer.mu
	effective unit.Bytes       // guarded by SchedulerServer.mu
	cached    unit.Bytes       // guarded by SchedulerServer.mu
	attached  bool             // guarded by SchedulerServer.mu (data plane knows the job)
	running   bool             // guarded by SchedulerServer.mu
	done      bool             // guarded by SchedulerServer.mu
	gpus      int              // guarded by SchedulerServer.mu
	quota     unit.Bytes       // guarded by SchedulerServer.mu
	remoteIO  unit.Bandwidth   // guarded by SchedulerServer.mu
}

// nodeState tracks one heartbeating node's capacity contribution.
type nodeState struct {
	gpus     int        // guarded by SchedulerServer.mu
	cache    unit.Bytes // guarded by SchedulerServer.mu
	lastSeen time.Time  // guarded by SchedulerServer.mu
	live     bool       // guarded by SchedulerServer.mu
}

// DefaultNodeLivenessTimeout is how long a node may go without a
// heartbeat before the scheduler declares it dead.
const DefaultNodeLivenessTimeout = 15 * time.Second

// SchedulerServer is the SiloD Scheduler (§6, Figure 7): it extends a
// compute-only scheduler to joint compute-storage allocation, pushing
// decisions to the data plane and persisting them as annotations.
//
// Nodes may report in via Heartbeat; once any node has registered, the
// scheduler solves each round against the effective cluster — the live
// nodes' capacity, clamped to the configured cluster — so a node death
// shrinks what the policy may grant and jobs running on lost capacity
// are preempted back to the queue. Deployments that never heartbeat
// keep the configured cluster unchanged.
type SchedulerServer struct {
	mu       sync.Mutex
	cluster  core.Cluster
	policy   core.Policy
	dp       DataPlane
	jobs     map[string]*schedJob  // guarded by mu
	active   map[string]*schedJob  // guarded by mu (attached and not done: the round's working set)
	requests map[string]string     // guarded by mu (submit request ID -> job ID)
	nodes    map[string]*nodeState // guarded by mu
	nodeIDs  []string              // guarded by mu (node names, kept sorted incrementally)
	liveness time.Duration         // guarded by mu (node liveness timeout)
	// Effective-cluster cache: recomputed only when a node arrives,
	// dies, revives or changes capacity, so the steady-state heartbeat
	// storm of a large cluster costs O(1) per beat.
	effValid  bool             // guarded by mu
	eff       core.Cluster     // guarded by mu (valid iff effValid)
	liveNodes int              // guarded by mu (valid iff effValid)
	clock     func() time.Time // injected; never the package-level time.Now
	epoch     time.Time        // scheduler start, for Submit timestamps
	mux       *http.ServeMux
	registry  *metrics.Registry
	met       schedMetrics
	// round serializes Schedule rounds and owns their scratch:
	// interleaved push sequences from two concurrent rounds could
	// violate the decrease-before-raise order, and serialization gives
	// the scratch a single owner.
	round schedRound
	// tenants and admission are nil in the untenanted (flat pool)
	// deployment; ConfigureTenants sets both before serving starts.
	tenants   *tenant.Registry
	admission *tenant.Admission
	// queue is nil in synchronous-submit mode; ConfigureAdmission sets
	// it to switch POST /v1/jobs to bounded enqueue-or-shed (serve.go).
	queue    *admission.Queue // guarded by mu
	draining bool             // guarded by mu (SIGTERM drain: new submits get 503)
}

// schedRound serializes Schedule rounds and carries the scratch they
// reuse. Its mutex is deliberately separate from SchedulerServer.mu:
// rounds hold it across the data-plane push, which must not block
// heartbeats and progress reports.
type schedRound struct {
	mu sync.Mutex
	sc roundScratch // guarded by mu
}

// roundScratch holds the buffers a Schedule round reuses from round to
// round, mirroring core.Assignment.Reset: maps are cleared, not
// reallocated. One round runs at a time (schedRound.mu), so the scratch
// has a single owner.
type roundScratch struct {
	views      []core.JobView
	byID       map[string]*schedJob
	oldRemote  map[string]unit.Bandwidth
	quotas     map[string]unit.Bytes
	remote     map[string]unit.Bandwidth
	quotaKeys  []string
	remoteKeys []string
	val        core.ValidateScratch
	// booked is the per-dataset quota most recently pushed to the data
	// plane, persisted across rounds (never cleared). It classifies each
	// new quota as a decrease or a raise. Job records can't answer that:
	// a dataset shared by an old job and one submitted this round would
	// report either the old quota or zero depending on map iteration
	// order, flipping the push phase nondeterministically.
	booked map[string]unit.Bytes
}

// NewSchedulerServer builds a scheduler for the cluster driving dp with
// the given policy. The clock is injected: pass time.Now at the daemon
// edge (cmd/silodd), a virtual clock everywhere a simulator or test
// drives the scheduler — this package must stay bit-deterministic
// under simulation, so it never reads the wall clock itself.
func NewSchedulerServer(cluster core.Cluster, pol core.Policy, dp DataPlane, clock func() time.Time) (*SchedulerServer, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if pol == nil || dp == nil {
		return nil, fmt.Errorf("controlplane: scheduler needs a policy and a data plane")
	}
	if clock == nil {
		return nil, fmt.Errorf("controlplane: scheduler needs a clock (pass time.Now at the daemon edge)")
	}
	s := &SchedulerServer{
		cluster:  cluster,
		policy:   pol,
		dp:       dp,
		jobs:     make(map[string]*schedJob),
		active:   make(map[string]*schedJob),
		requests: make(map[string]string),
		nodes:    make(map[string]*nodeState),
		liveness: DefaultNodeLivenessTimeout,
		clock:    clock,
		epoch:    clock(),
		mux:      http.NewServeMux(),
		registry: metrics.NewRegistry("scheduler"),
		// The round scratch maps are born here so the hot round never
		// allocates them.
		round: schedRound{sc: roundScratch{
			byID:      make(map[string]*schedJob),
			oldRemote: make(map[string]unit.Bandwidth),
			quotas:    make(map[string]unit.Bytes),
			remote:    make(map[string]unit.Bandwidth),
			booked:    make(map[string]unit.Bytes),
		}},
	}
	s.met = newSchedMetrics(s.registry)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/progress", s.handleProgress)
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/nodes/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("GET /v1/nodes", s.handleNodes)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/annotations", s.handleAnnotations)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *SchedulerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ConfigureTenants enables multi-tenant admission control: submissions
// must name a registered tenant and are charged against its GPU/cache
// quotas, with over-quota submissions rejected by a typed
// *tenant.OverQuotaError (HTTP 429 at the handler). Call once, before
// the server starts serving; the per-tenant admission metrics are
// interned into the scheduler's registry here.
func (s *SchedulerServer) ConfigureTenants(reg *tenant.Registry) {
	adm := tenant.NewAdmission(reg, s.registry)
	s.mu.Lock()
	s.tenants = reg
	s.admission = adm
	s.mu.Unlock()
}

// Submit registers a job and wires its dataset into the data plane.
func (s *SchedulerServer) Submit(req SubmitJobRequest) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if req.NumGPUs > s.cluster.GPUs {
		return fmt.Errorf("controlplane: job %s requests %d GPUs (cluster has %d)",
			req.JobID, req.NumGPUs, s.cluster.GPUs)
	}
	s.mu.Lock()
	if req.RequestID != "" {
		if prev, seen := s.requests[req.RequestID]; seen {
			s.mu.Unlock()
			if prev == req.JobID {
				return nil // retried submit whose first attempt landed
			}
			return fmt.Errorf("controlplane: request %s already created job %s", req.RequestID, prev)
		}
	}
	if _, dup := s.jobs[req.JobID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("controlplane: job %s already submitted", req.JobID)
	}
	var slo tenant.SLOClass
	if s.admission != nil {
		// Admission nests inside s.mu (always in this order) so the
		// quota check and the job-table insert are atomic: two racing
		// submits cannot both pass the same last slice of quota.
		if err := s.admission.Admit(req.Tenant, req.JobID, req.NumGPUs, req.Dataset, req.DatasetSize); err != nil {
			s.mu.Unlock()
			return err
		}
		slo = s.tenants.ClassOf(req.Tenant)
	}
	s.jobs[req.JobID] = &schedJob{req: req, slo: slo, submitted: s.clock()}
	if req.RequestID != "" {
		s.requests[req.RequestID] = req.JobID
	}
	s.mu.Unlock()
	s.met.submitted.Inc()
	// The job is in the table but not yet attached: rounds and revival
	// re-pushes skip it until the data plane knows it, so a concurrent
	// scheduler cannot push allocations for a job mid-attach.
	if err := s.dp.RegisterDataset(req.Dataset, req.DatasetSize, 0); err != nil {
		s.rollbackSubmit(req)
		return err
	}
	if err := s.dp.AttachJob(req.JobID, req.Dataset); err != nil {
		s.rollbackSubmit(req)
		return err
	}
	s.mu.Lock()
	if j, ok := s.jobs[req.JobID]; ok {
		j.attached = true
		s.active[req.JobID] = j
	}
	s.mu.Unlock()
	return nil
}

// rollbackSubmit undoes a submit whose data-plane wiring failed: the
// job record, its idempotency token, and its quota charge all come
// back out, so the client's retry starts from a clean slate instead of
// hitting a duplicate-job error on a half-created zombie.
func (s *SchedulerServer) rollbackSubmit(req SubmitJobRequest) {
	if err := req.Validate(); err != nil {
		return // Submit validates before creating anything to roll back
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, req.JobID)
	delete(s.active, req.JobID)
	if req.RequestID != "" {
		delete(s.requests, req.RequestID)
	}
	if s.admission != nil {
		s.admission.Release(req.JobID)
	}
}

// Progress records a job's progress report. Reports are validated
// before they touch the job record: a negative attained-bytes counter
// would otherwise inflate RemainingBytes in every later round.
func (s *SchedulerServer) Progress(req ProgressRequest) error {
	if err := req.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[req.JobID]
	if !ok {
		return fmt.Errorf("controlplane: progress for unknown job %q", req.JobID)
	}
	j.attained = req.AttainedBytes
	j.effective = req.EffectiveCache
	j.cached = req.CachedBytes
	if req.Done && !j.done {
		j.done = true
		j.running = false
		delete(s.active, req.JobID)
		if s.admission != nil {
			// Refund the tenant's quota charge now that the job is done.
			s.admission.Release(req.JobID)
		}
	}
	return nil
}

// SetNodeLivenessTimeout changes how long a node may stay silent before
// being declared dead. Call before serving traffic (or between rounds).
func (s *SchedulerServer) SetNodeLivenessTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultNodeLivenessTimeout
	}
	s.mu.Lock()
	s.liveness = d
	s.mu.Unlock()
}

// Heartbeat registers or refreshes a node's capacity contribution. A
// node returning from the dead triggers an immediate re-push of the
// current allocations to the data plane, so a data manager that lost
// state with the node converges without waiting for the next round.
func (s *SchedulerServer) Heartbeat(req HeartbeatRequest) error {
	if err := req.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	n, known := s.nodes[req.Node]
	if !known {
		n = &nodeState{}
		s.nodes[req.Node] = n
		// Keep the node-id order incrementally: one O(n) insert per new
		// node instead of an O(n log n) sort per effective-cluster query.
		i := sort.SearchStrings(s.nodeIDs, req.Node)
		s.nodeIDs = append(s.nodeIDs, "")
		copy(s.nodeIDs[i+1:], s.nodeIDs[i:])
		s.nodeIDs[i] = req.Node
	}
	revived := known && !n.live
	changed := !known || revived || n.gpus != req.GPUs || n.cache != req.Cache
	n.gpus = req.GPUs
	n.cache = req.Cache
	n.lastSeen = s.clock()
	n.live = true
	var quotas map[string]unit.Bytes
	var remote map[string]unit.Bandwidth
	if revived {
		s.met.nodeRecoveries.Inc()
		quotas, remote = s.allocationsLocked()
	}
	if changed {
		// Only a membership or capacity change moves the effective
		// cluster; the steady-state heartbeat (same node, same capacity)
		// takes the O(1) fast path and skips the gauge refresh, whose
		// values cannot have moved.
		s.effValid = false
		s.updateNodeGaugesLocked()
	}
	s.mu.Unlock()
	s.met.heartbeats.Inc()
	for ds, q := range quotas {
		if err := s.dp.AllocateCacheSize(ds, q); err != nil {
			s.met.pushErrors.Inc()
			return err
		}
	}
	for id, bw := range remote {
		if err := s.dp.AllocateRemoteIO(id, bw); err != nil {
			s.met.pushErrors.Inc()
			return err
		}
	}
	return nil
}

// Nodes lists the known nodes, sorted by name.
func (s *SchedulerServer) Nodes() []NodeStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeStatus, 0, len(s.nodes))
	for _, name := range s.nodeIDs {
		n := s.nodes[name]
		out = append(out, NodeStatus{
			Node:            name,
			GPUs:            n.gpus,
			Cache:           n.cache,
			LastSeenSeconds: n.lastSeen.Sub(s.epoch).Seconds(),
			Live:            n.live,
		})
	}
	return out
}

// Tenants lists the registered tenants with their quotas and live
// admission usage, sorted by ID. Empty when tenants are not configured.
func (s *SchedulerServer) Tenants() []TenantStatus {
	s.mu.Lock()
	reg, adm := s.tenants, s.admission
	s.mu.Unlock()
	if reg == nil {
		return nil
	}
	list := reg.List()
	out := make([]TenantStatus, 0, len(list))
	for _, t := range list {
		jobs, gpus, cache := adm.Usage(t.ID)
		out = append(out, TenantStatus{
			ID:          t.ID,
			Class:       t.Class.String(),
			GPUQuota:    t.Quota.GPUs,
			CacheQuota:  t.Quota.Cache,
			EgressQuota: t.Quota.Egress,
			ActiveJobs:  jobs,
			GPUsInUse:   gpus,
			CacheInUse:  cache,
		})
	}
	return out
}

// refreshLivenessLocked expires nodes whose last heartbeat is older than
// the liveness timeout. The caller holds s.mu.
func (s *SchedulerServer) refreshLivenessLocked(now time.Time) {
	for _, n := range s.nodes {
		if n.live && now.Sub(n.lastSeen) > s.liveness {
			n.live = false
			s.effValid = false
			s.met.nodeDeaths.Inc()
		}
	}
}

// effectiveClusterLocked is the capacity the policy may grant: the
// configured cluster when no node has ever registered (static
// deployments), otherwise the live nodes' total clamped to the
// configured cluster. Remote IO is a storage-fabric property, not a
// node property, so it stays configured. The result is cached and
// recomputed only after a node arrival, death, revival or capacity
// change, so the heartbeat storm of a datacenter-scale cluster never
// re-sums it. The caller holds s.mu.
func (s *SchedulerServer) effectiveClusterLocked() core.Cluster {
	if s.effValid {
		return s.eff
	}
	eff := s.cluster
	live := 0
	if len(s.nodes) > 0 {
		// Sorted-id sum: the cache total is a float (unit.Bytes) and
		// must not vary with per-process map iteration order. nodeIDs is
		// maintained sorted by Heartbeat, so no sort happens here.
		gpus := 0
		var cache unit.Bytes
		for _, id := range s.nodeIDs {
			if n := s.nodes[id]; n.live {
				gpus += n.gpus
				cache += n.cache
				live++
			}
		}
		if gpus < eff.GPUs {
			eff.GPUs = gpus
		}
		if cache < eff.Cache {
			eff.Cache = cache
		}
	}
	s.eff = eff
	s.liveNodes = live
	s.effValid = true
	return eff
}

// allocationsLocked snapshots the live jobs' persisted allocations (the
// annotation state) for re-pushing. The caller holds s.mu.
func (s *SchedulerServer) allocationsLocked() (map[string]unit.Bytes, map[string]unit.Bandwidth) {
	quotas := make(map[string]unit.Bytes, len(s.active))
	remote := make(map[string]unit.Bandwidth, len(s.active))
	for id, j := range s.active {
		quotas[j.req.Dataset] = j.quota
		remote[id] = j.remoteIO
	}
	return quotas, remote
}

// updateNodeGaugesLocked refreshes the node-liveness gauges. The caller
// holds s.mu.
func (s *SchedulerServer) updateNodeGaugesLocked() {
	eff := s.effectiveClusterLocked()
	s.met.nodesLive.Set(float64(s.liveNodes))
	s.met.effGPUs.Set(float64(eff.GPUs))
	s.met.effCache.Set(float64(eff.Cache))
}

// Schedule runs one allocation round against the effective cluster and
// pushes the result to the data plane. Jobs running on capacity that
// died since the last round lose their GPUs and rejoin the queue.
func (s *SchedulerServer) Schedule() error {
	return s.ScheduleCtx(context.Background())
}

// ScheduleCtx is Schedule with context propagation through the
// critical section: the round checks ctx before taking the lock,
// before the policy solve, and between the push phases, so a round
// whose deadline passed releases the scheduler instead of finishing a
// doomed push sequence against a dead data plane.
func (s *SchedulerServer) ScheduleCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("controlplane: schedule round: %w", err)
	}
	s.round.mu.Lock()
	defer s.round.mu.Unlock()
	return s.scheduleRound(ctx, &s.round.sc)
}

// scheduleRound is the allocation round's hot body; the caller holds
// round.mu and passes its scratch. The round runs continuously against every active job in the
// cluster, so it reuses the round scratch instead of building fresh
// maps — at datacenter scale (thousands of nodes, a long tail of
// finished jobs) the per-round map churn dominated round latency. The
// active index keeps the view pass proportional to live jobs, not to
// everything ever submitted.
//
// silod:hotpath
func (s *SchedulerServer) scheduleRound(ctx context.Context, sc *roundScratch) error {
	s.mu.Lock()
	views := sc.views[:0]
	// Unattached jobs (mid-Submit) are absent from the active index: the
	// data plane cannot accept allocations for them yet.
	for id, j := range s.active {
		rem := j.req.TotalBytes - j.attained
		if rem < 0 {
			rem = 0
		}
		views = append(views, core.JobView{
			ID:      id,
			NumGPUs: j.req.NumGPUs,
			Profile: estimator.JobProfile{
				IdealThroughput: j.req.IdealThroughput,
				DatasetSize:     j.req.DatasetSize,
			},
			DatasetKey:      j.req.Dataset,
			DatasetSize:     j.req.DatasetSize,
			RemainingBytes:  rem,
			AttainedBytes:   j.attained,
			EffectiveCached: j.effective,
			CachedBytes:     j.cached,
			Tenant:          j.req.Tenant,
			SLO:             j.slo,
			Submit:          unit.Time(j.submitted.Sub(s.epoch).Seconds()),
			Running:         j.running,
			Irregular:       j.req.Irregular,
		})
	}
	sc.views = views
	sort.Slice(views, func(i, k int) bool { return views[i].ID < views[k].ID }) // silod:alloc sort.Slice's closure+header, amortized over the round
	wall := s.clock()
	s.refreshLivenessLocked(wall)
	eff := s.effectiveClusterLocked()
	s.updateNodeGaugesLocked()
	if eff.GPUs <= 0 {
		// Total compute loss: nothing can run. Preempt everything back to
		// the queue and skip the policy round (policies assume GPUs > 0);
		// allocations resume once a node heartbeats again.
		var queued int
		for _, j := range s.jobs {
			if j.done {
				continue
			}
			if j.running {
				j.running = false
				j.gpus = 0
				s.met.preemptions.Inc()
			}
			queued++
		}
		s.met.rounds.Inc()
		s.met.running.Set(0)
		s.met.gpusAlloc.Set(0)
		s.met.queueDepth.Set(float64(queued))
		s.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("controlplane: schedule round: %w", err)
	}
	now := unit.Time(wall.Sub(s.epoch).Seconds())
	a := s.policy.Assign(eff, now, views)
	if err := a.ValidateWith(eff, views, &sc.val); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("controlplane: policy %s: %w", s.policy.Name(), err) // silod:alloc error path
	}
	byID := sc.byID
	clear(byID)
	for i := range views {
		byID[views[i].ID] = s.active[views[i].ID]
	}
	var runningJobs, gpusAlloc, queued int
	// Every known job gets an explicit entry — a job the policy dropped
	// (preempted after a node loss) must release its data-plane
	// allocation, not silently keep it.
	clear(sc.oldRemote)
	clear(sc.quotas)
	clear(sc.remote)
	for id, j := range byID {
		was := j.running
		sc.oldRemote[id] = j.remoteIO
		j.gpus = a.GPUs[id]
		j.running = j.gpus > 0
		if was && !j.running {
			s.met.preemptions.Inc()
		}
		j.remoteIO = a.RemoteIO[id]
		j.quota = a.CacheQuota[j.req.Dataset]
		sc.remote[id] = j.remoteIO
		sc.quotas[j.req.Dataset] = j.quota
		if j.running {
			runningJobs++
			gpusAlloc += j.gpus
		} else {
			queued++
		}
	}
	s.met.rounds.Inc()
	s.met.running.Set(float64(runningJobs))
	s.met.gpusAlloc.Set(float64(gpusAlloc))
	s.met.queueDepth.Set(float64(queued))
	s.mu.Unlock()

	// Push to the data plane outside the lock, decreases before raises:
	// the ledger and cache pool enforce capacity on every call, so a
	// raise issued while a shrunken job's old allocation is still booked
	// would be rejected as oversubscription.
	sc.quotaKeys = sortedKeysInto(sc.quotaKeys, sc.quotas)
	sc.remoteKeys = sortedKeysInto(sc.remoteKeys, sc.remote)
	if err := s.pushAllocations(sc, false); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("controlplane: schedule round: %w", err)
	}
	return s.pushAllocations(sc, true)
}

// pushAllocations pushes the round's allocation deltas in one
// direction over the pre-sorted key lists: decreases (grow=false)
// before raises (grow=true). The caller holds round.mu and passes its
// scratch.
//
// silod:hotpath
func (s *SchedulerServer) pushAllocations(sc *roundScratch, grow bool) error {
	for _, ds := range sc.quotaKeys {
		if q := sc.quotas[ds]; (q > sc.booked[ds]) == grow {
			if err := s.dp.AllocateCacheSize(ds, q); err != nil {
				s.met.pushErrors.Inc()
				return err
			}
			// Recorded push-by-push, not per round: after a mid-sequence
			// error the next round reclassifies against what actually
			// landed at the data plane.
			sc.booked[ds] = q
		}
	}
	for _, id := range sc.remoteKeys {
		if bw := sc.remote[id]; (bw > sc.oldRemote[id]) == grow {
			if err := s.dp.AllocateRemoteIO(id, bw); err != nil {
				s.met.pushErrors.Inc()
				return err
			}
		}
	}
	return nil
}

// sortedKeysInto fills dst with m's keys in sorted order, for
// deterministic data-plane push sequences, reusing dst's capacity.
func sortedKeysInto[V any](dst []string, m map[string]V) []string {
	dst = dst[:0]
	for k := range m {
		dst = append(dst, k)
	}
	sort.Strings(dst)
	return dst
}

// Annotations returns the persisted allocation state for recovery.
func (s *SchedulerServer) Annotations() Annotations {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Annotations{
		CacheQuota: make(map[string]unit.Bytes),
		RemoteIO:   make(map[string]unit.Bandwidth),
		Jobs:       make(map[string]string),
		Datasets:   make(map[string]DatasetGeom),
	}
	for id, j := range s.jobs {
		if j.done {
			continue
		}
		out.Jobs[id] = j.req.Dataset
		out.RemoteIO[id] = j.remoteIO
		out.CacheQuota[j.req.Dataset] = j.quota
		out.Datasets[j.req.Dataset] = DatasetGeom{Size: j.req.DatasetSize, BlockSize: 64 * unit.MB}
	}
	return out
}

// Jobs lists the scheduler's job view, sorted by ID.
func (s *SchedulerServer) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		rem := j.req.TotalBytes - j.attained
		if rem < 0 {
			rem = 0
		}
		out = append(out, JobStatus{
			SubmitJobRequest: j.req,
			Running:          j.running,
			GPUs:             j.gpus,
			CacheQuota:       j.quota,
			RemoteIO:         j.remoteIO,
			AttainedBytes:    j.attained,
			RemainingBytes:   rem,
			Done:             j.done,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].JobID < out[k].JobID })
	return out
}

// RunLoop schedules every interval until stop closes — the daemon's
// background loop. It is Serve with defaults: full drains, no round
// deadline, a real ticker.
func (s *SchedulerServer) RunLoop(interval time.Duration, stop <-chan struct{}, onErr func(error)) {
	s.Serve(ServeConfig{Interval: interval}, stop, onErr)
}

func (s *SchedulerServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitJobRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.isDraining() {
		writeOverload(w, time.Second, fmt.Errorf(
			"controlplane: scheduler is draining for shutdown"))
		return
	}
	if s.enqueueSubmit(w, req) {
		return
	}
	if err := s.Submit(req); err != nil {
		// A quota rejection is a well-formed request the tenant may
		// retry once capacity frees up: 429, not 400. No Retry-After is
		// attached, and the HTTP client treats hint-less 429s as
		// terminal, so retried submits don't hammer an over-quota
		// tenant's budget.
		var oq *tenant.OverQuotaError
		if errors.As(err, &oq) {
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"job_id": req.JobID})
}

func (s *SchedulerServer) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req ProgressRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.Progress(req); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"job_id": req.JobID})
}

func (s *SchedulerServer) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	if err := s.Schedule(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "scheduled"})
}

func (s *SchedulerServer) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.Heartbeat(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"node": req.Node})
}

func (s *SchedulerServer) handleNodes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Nodes())
}

func (s *SchedulerServer) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Tenants())
}

func (s *SchedulerServer) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *SchedulerServer) handleAnnotations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Annotations())
}
