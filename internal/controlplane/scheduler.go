package controlplane

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/metrics"
	"repro/internal/unit"
)

// DataPlane is the slice of the data manager the scheduler drives: the
// Table 3 allocation APIs plus dataset/job lifecycle. Both the local
// datamgr.Manager (via LocalDataPlane) and the HTTP Client satisfy it.
type DataPlane interface {
	RegisterDataset(name string, size, blockSize unit.Bytes) error
	AttachJob(jobID, dataset string) error
	DetachJob(jobID string) error
	AllocateCacheSize(dataset string, size unit.Bytes) error
	AllocateRemoteIO(jobID string, speed unit.Bandwidth) error
}

// schedJob is the scheduler's job record. Records never escape the
// SchedulerServer, so their mutable fields belong to its lock.
type schedJob struct {
	req       SubmitJobRequest // immutable after Submit
	submitted time.Time        // immutable after Submit
	attained  unit.Bytes       // guarded by SchedulerServer.mu
	effective unit.Bytes       // guarded by SchedulerServer.mu
	cached    unit.Bytes       // guarded by SchedulerServer.mu
	running   bool             // guarded by SchedulerServer.mu
	done      bool             // guarded by SchedulerServer.mu
	gpus      int              // guarded by SchedulerServer.mu
	quota     unit.Bytes       // guarded by SchedulerServer.mu
	remoteIO  unit.Bandwidth   // guarded by SchedulerServer.mu
}

// SchedulerServer is the SiloD Scheduler (§6, Figure 7): it extends a
// compute-only scheduler to joint compute-storage allocation, pushing
// decisions to the data plane and persisting them as annotations.
type SchedulerServer struct {
	mu       sync.Mutex
	cluster  core.Cluster
	policy   core.Policy
	dp       DataPlane
	jobs     map[string]*schedJob // guarded by mu
	clock    func() time.Time     // injected; never the package-level time.Now
	epoch    time.Time            // scheduler start, for Submit timestamps
	mux      *http.ServeMux
	registry *metrics.Registry
	met      schedMetrics
}

// NewSchedulerServer builds a scheduler for the cluster driving dp with
// the given policy. The clock is injected: pass time.Now at the daemon
// edge (cmd/silodd), a virtual clock everywhere a simulator or test
// drives the scheduler — this package must stay bit-deterministic
// under simulation, so it never reads the wall clock itself.
func NewSchedulerServer(cluster core.Cluster, pol core.Policy, dp DataPlane, clock func() time.Time) (*SchedulerServer, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if pol == nil || dp == nil {
		return nil, fmt.Errorf("controlplane: scheduler needs a policy and a data plane")
	}
	if clock == nil {
		return nil, fmt.Errorf("controlplane: scheduler needs a clock (pass time.Now at the daemon edge)")
	}
	s := &SchedulerServer{
		cluster:  cluster,
		policy:   pol,
		dp:       dp,
		jobs:     make(map[string]*schedJob),
		clock:    clock,
		epoch:    clock(),
		mux:      http.NewServeMux(),
		registry: metrics.NewRegistry("scheduler"),
	}
	s.met = newSchedMetrics(s.registry)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/progress", s.handleProgress)
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/annotations", s.handleAnnotations)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *SchedulerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Submit registers a job and wires its dataset into the data plane.
func (s *SchedulerServer) Submit(req SubmitJobRequest) error {
	if req.JobID == "" || req.Dataset == "" {
		return fmt.Errorf("controlplane: submit needs job_id and dataset")
	}
	if req.NumGPUs <= 0 || req.NumGPUs > s.cluster.GPUs {
		return fmt.Errorf("controlplane: job %s requests %d GPUs (cluster has %d)",
			req.JobID, req.NumGPUs, s.cluster.GPUs)
	}
	if req.DatasetSize <= 0 || req.IdealThroughput <= 0 || req.TotalBytes <= 0 {
		return fmt.Errorf("controlplane: job %s has incomplete profile", req.JobID)
	}
	s.mu.Lock()
	if _, dup := s.jobs[req.JobID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("controlplane: job %s already submitted", req.JobID)
	}
	s.jobs[req.JobID] = &schedJob{req: req, submitted: s.clock()}
	s.mu.Unlock()
	s.met.submitted.Inc()
	if err := s.dp.RegisterDataset(req.Dataset, req.DatasetSize, 0); err != nil {
		return err
	}
	return s.dp.AttachJob(req.JobID, req.Dataset)
}

// Progress records a job's progress report.
func (s *SchedulerServer) Progress(req ProgressRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[req.JobID]
	if !ok {
		return fmt.Errorf("controlplane: progress for unknown job %q", req.JobID)
	}
	j.attained = req.AttainedBytes
	j.effective = req.EffectiveCache
	j.cached = req.CachedBytes
	if req.Done {
		j.done = true
		j.running = false
	}
	return nil
}

// Schedule runs one allocation round and pushes it to the data plane.
func (s *SchedulerServer) Schedule() error {
	s.mu.Lock()
	views := make([]core.JobView, 0, len(s.jobs))
	byID := make(map[string]*schedJob, len(s.jobs))
	for id, j := range s.jobs {
		if j.done {
			continue
		}
		rem := j.req.TotalBytes - j.attained
		if rem < 0 {
			rem = 0
		}
		views = append(views, core.JobView{
			ID:      id,
			NumGPUs: j.req.NumGPUs,
			Profile: estimator.JobProfile{
				IdealThroughput: j.req.IdealThroughput,
				DatasetSize:     j.req.DatasetSize,
			},
			DatasetKey:      j.req.Dataset,
			DatasetSize:     j.req.DatasetSize,
			RemainingBytes:  rem,
			AttainedBytes:   j.attained,
			EffectiveCached: j.effective,
			CachedBytes:     j.cached,
			Submit:          unit.Time(j.submitted.Sub(s.epoch).Seconds()),
			Running:         j.running,
			Irregular:       j.req.Irregular,
		})
	}
	sort.Slice(views, func(i, k int) bool { return views[i].ID < views[k].ID })
	now := unit.Time(s.clock().Sub(s.epoch).Seconds())
	a := s.policy.Assign(s.cluster, now, views)
	if err := a.Validate(s.cluster, views); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("controlplane: policy %s: %w", s.policy.Name(), err)
	}
	for _, v := range views {
		byID[v.ID] = s.jobs[v.ID]
	}
	var runningJobs, gpusAlloc, queued int
	for id, j := range byID {
		j.gpus = a.GPUs[id]
		j.running = j.gpus > 0
		j.remoteIO = a.RemoteIO[id]
		j.quota = a.CacheQuota[j.req.Dataset]
		if j.running {
			runningJobs++
			gpusAlloc += j.gpus
		} else {
			queued++
		}
	}
	s.met.rounds.Inc()
	s.met.running.Set(float64(runningJobs))
	s.met.gpusAlloc.Set(float64(gpusAlloc))
	s.met.queueDepth.Set(float64(queued))
	quotas := make(map[string]unit.Bytes, len(a.CacheQuota))
	for k, v := range a.CacheQuota {
		quotas[k] = v
	}
	remote := make(map[string]unit.Bandwidth, len(a.RemoteIO))
	for k, v := range a.RemoteIO {
		remote[k] = v
	}
	s.mu.Unlock()

	// Push to the data plane outside the lock.
	for ds, q := range quotas {
		if err := s.dp.AllocateCacheSize(ds, q); err != nil {
			s.met.pushErrors.Inc()
			return err
		}
	}
	for id, bw := range remote {
		if err := s.dp.AllocateRemoteIO(id, bw); err != nil {
			s.met.pushErrors.Inc()
			return err
		}
	}
	return nil
}

// Annotations returns the persisted allocation state for recovery.
func (s *SchedulerServer) Annotations() Annotations {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Annotations{
		CacheQuota: make(map[string]unit.Bytes),
		RemoteIO:   make(map[string]unit.Bandwidth),
		Jobs:       make(map[string]string),
		Datasets:   make(map[string]DatasetGeom),
	}
	for id, j := range s.jobs {
		if j.done {
			continue
		}
		out.Jobs[id] = j.req.Dataset
		out.RemoteIO[id] = j.remoteIO
		out.CacheQuota[j.req.Dataset] = j.quota
		out.Datasets[j.req.Dataset] = DatasetGeom{Size: j.req.DatasetSize, BlockSize: 64 * unit.MB}
	}
	return out
}

// Jobs lists the scheduler's job view, sorted by ID.
func (s *SchedulerServer) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		rem := j.req.TotalBytes - j.attained
		if rem < 0 {
			rem = 0
		}
		out = append(out, JobStatus{
			SubmitJobRequest: j.req,
			Running:          j.running,
			GPUs:             j.gpus,
			CacheQuota:       j.quota,
			RemoteIO:         j.remoteIO,
			AttainedBytes:    j.attained,
			RemainingBytes:   rem,
			Done:             j.done,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].JobID < out[k].JobID })
	return out
}

// RunLoop schedules every interval until stop closes — the daemon's
// background loop.
func (s *SchedulerServer) RunLoop(interval time.Duration, stop <-chan struct{}, onErr func(error)) {
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if err := s.Schedule(); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}

func (s *SchedulerServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitJobRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.Submit(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"job_id": req.JobID})
}

func (s *SchedulerServer) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req ProgressRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.Progress(req); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"job_id": req.JobID})
}

func (s *SchedulerServer) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	if err := s.Schedule(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "scheduled"})
}

func (s *SchedulerServer) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *SchedulerServer) handleAnnotations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Annotations())
}
