package controlplane

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/policy"
	"repro/internal/unit"
)

// newStack spins up a data manager service and a scheduler driving it
// over real HTTP.
func newStack(t *testing.T, pol core.Policy) (*Client, *Client, *SchedulerServer, func()) {
	t.Helper()
	mgr := datamgr.New(unit.GiB(100), unit.MBpsOf(100), 1, nil)
	dmSrv := httptest.NewServer(NewDataManagerServer(mgr))
	dmClient := NewClient(dmSrv.URL)
	sched, err := NewSchedulerServer(core.Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(100)}, pol, dmClient, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	schedSrv := httptest.NewServer(sched)
	return NewClient(schedSrv.URL), dmClient, sched, func() {
		schedSrv.Close()
		dmSrv.Close()
	}
}

func submitReq(id string, gpus int, dsSize unit.Bytes) SubmitJobRequest {
	return SubmitJobRequest{
		JobID:           id,
		Model:           "ResNet-50",
		Dataset:         "ds-" + id,
		DatasetSize:     dsSize,
		NumGPUs:         gpus,
		IdealThroughput: unit.MBpsOf(114),
		TotalBytes:      10 * dsSize,
	}
}

func TestEndToEndScheduleAndAllocate(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedC, dmC, _, stop := newStack(t, pol)
	defer stop()

	if err := schedC.SubmitJob(submitReq("a", 1, unit.GiB(40))); err != nil {
		t.Fatal(err)
	}
	if err := schedC.SubmitJob(submitReq("b", 1, unit.GiB(80))); err != nil {
		t.Fatal(err)
	}
	if err := schedC.TriggerSchedule(); err != nil {
		t.Fatal(err)
	}
	jobs, err := schedC.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if !j.Running || j.GPUs != 1 {
			t.Errorf("job %s not running with 1 GPU: %+v", j.JobID, j)
		}
	}
	// The greedy allocator must have cached the more efficient (smaller)
	// dataset fully.
	st, err := dmC.Stats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "ds-a" {
		t.Fatalf("job a attached to %q", st.Dataset)
	}
	// Reads flow through the data manager and count hits/misses.
	if err := dmC.EpochStart("a"); err != nil {
		t.Fatal(err)
	}
	r0, err := dmC.Read("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Hit {
		t.Error("first read of block 0 hit an empty cache")
	}
	r1, err := dmC.Read("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Hit {
		t.Error("second read of block 0 missed despite quota (40GiB dataset, full quota expected)")
	}
}

func TestCrashRecoveryFromAnnotations(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedC, dmC, sched, stop := newStack(t, pol)
	defer stop()
	if err := schedC.SubmitJob(submitReq("a", 2, unit.GiB(50))); err != nil {
		t.Fatal(err)
	}
	if err := schedC.TriggerSchedule(); err != nil {
		t.Fatal(err)
	}
	ann := sched.Annotations()
	if ann.Jobs["a"] != "ds-a" {
		t.Fatalf("annotations missing job a: %+v", ann)
	}
	if ann.CacheQuota["ds-a"] <= 0 {
		t.Fatalf("annotations missing cache quota: %+v", ann)
	}

	// Simulate a data manager crash: build a fresh one and restore from
	// the snapshot assembled out of annotations (§6 fault tolerance).
	snap, err := dmC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := datamgr.New(unit.GiB(100), unit.MBpsOf(100), 2, nil)
	freshSrv := httptest.NewServer(NewDataManagerServer(fresh))
	defer freshSrv.Close()
	freshC := NewClient(freshSrv.URL)
	if err := freshC.Restore(snap); err != nil {
		t.Fatal(err)
	}
	st, err := freshC.Stats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "ds-a" {
		t.Fatalf("restored manager lost job binding: %+v", st)
	}
	if got := fresh.Quota("ds-a"); got != snap.Quotas["ds-a"] {
		t.Fatalf("restored quota %v != snapshot %v", got, snap.Quotas["ds-a"])
	}
}

func TestSubmitValidation(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedC, _, _, stop := newStack(t, pol)
	defer stop()
	bad := []SubmitJobRequest{
		{},                                     // empty
		submitReq("x", 0, unit.GiB(1)),         // zero GPUs
		submitReq("y", 99, unit.GiB(1)),        // too many GPUs
		{JobID: "z", Dataset: "d", NumGPUs: 1}, // no profile
	}
	for i, req := range bad {
		if err := schedC.SubmitJob(req); err == nil {
			t.Errorf("bad submit %d accepted", i)
		}
	}
	// Duplicate submission rejected.
	if err := schedC.SubmitJob(submitReq("a", 1, unit.GiB(10))); err != nil {
		t.Fatal(err)
	}
	if err := schedC.SubmitJob(submitReq("a", 1, unit.GiB(10))); err == nil {
		t.Error("duplicate submit accepted")
	}
}

func TestProgressDrivesCompletion(t *testing.T) {
	pol, err := policy.Build(policy.SJFKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedC, _, _, stop := newStack(t, pol)
	defer stop()
	req := submitReq("a", 1, unit.GiB(10))
	if err := schedC.SubmitJob(req); err != nil {
		t.Fatal(err)
	}
	if err := schedC.TriggerSchedule(); err != nil {
		t.Fatal(err)
	}
	if err := schedC.ReportProgress(ProgressRequest{
		JobID: "a", AttainedBytes: req.TotalBytes, Done: true,
	}); err != nil {
		t.Fatal(err)
	}
	jobs, err := schedC.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Done || jobs[0].Running {
		t.Errorf("job not marked done: %+v", jobs[0])
	}
	// Progress for unknown jobs is rejected.
	if err := schedC.ReportProgress(ProgressRequest{JobID: "nope"}); err == nil {
		t.Error("progress for unknown job accepted")
	}
}

// TestProgressRejectsNegativeReports pins the decode-path hardening: a
// negative counter must never reach the job record, where it would
// inflate RemainingBytes (TotalBytes - attained) on every later
// scheduling round.
func TestProgressRejectsNegativeReports(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedC, dmC, _, stop := newStack(t, pol)
	defer stop()
	req := submitReq("a", 1, unit.GiB(10))
	if err := schedC.SubmitJob(req); err != nil {
		t.Fatal(err)
	}
	bad := []ProgressRequest{
		{JobID: "a", AttainedBytes: -unit.GiB(1)},
		{JobID: "a", EffectiveCache: -unit.GiB(1)},
		{JobID: "a", CachedBytes: -unit.GiB(1)},
		{AttainedBytes: unit.GiB(1)}, // no job_id
	}
	for i, pr := range bad {
		if err := schedC.ReportProgress(pr); err == nil {
			t.Errorf("bad progress report %d accepted", i)
		}
	}
	jobs, err := schedC.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].AttainedBytes != 0 || jobs[0].RemainingBytes != req.TotalBytes {
		t.Errorf("rejected report mutated the job record: attained %v, remaining %v (want 0, %v)",
			jobs[0].AttainedBytes, jobs[0].RemainingBytes, req.TotalBytes)
	}
	// The data manager's read path rejects negative blocks the same way
	// (submit already registered ds-a and attached job a).
	if _, err := dmC.Read("a", -1); err == nil {
		t.Error("negative block read accepted")
	}
}

func TestRunLoopSchedulesPeriodically(t *testing.T) {
	pol, err := policy.Build(policy.GavelKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	mgr := datamgr.New(unit.GiB(100), unit.MBpsOf(100), 1, nil)
	sched, err := NewSchedulerServer(core.Cluster{GPUs: 4, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(100)},
		pol, LocalDataPlane{Mgr: mgr}, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Submit(submitReq("a", 1, unit.GiB(20))); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go sched.RunLoop(5*time.Millisecond, stop, nil)
	deadline := time.After(2 * time.Second)
	for {
		jobs := sched.Jobs()
		if len(jobs) == 1 && jobs[0].Running {
			break
		}
		select {
		case <-deadline:
			close(stop)
			t.Fatal("RunLoop never scheduled the job")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	if got := mgr.Quota("ds-a"); got <= 0 {
		t.Errorf("loop did not push quotas to the data plane: %v", got)
	}
}

func TestScheduleSurfacesDataPlaneFailure(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Point the scheduler at a dead data manager.
	dead := NewClient("http://127.0.0.1:1") // nothing listens here
	sched, err := NewSchedulerServer(core.Cluster{GPUs: 4, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(100)},
		pol, dead, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Submit(submitReq("a", 1, unit.GiB(20))); err == nil {
		t.Fatal("submit should fail when the data plane is unreachable")
	}
}

func TestAPIJSONRoundTrip(t *testing.T) {
	// The wire types must round-trip through JSON without loss; a field
	// rename would silently break mixed-version deployments.
	snap := Annotations{
		CacheQuota: map[string]unit.Bytes{"ds": unit.GiB(10)},
		RemoteIO:   map[string]unit.Bandwidth{"j": unit.MBpsOf(50)},
		Jobs:       map[string]string{"j": "ds"},
		Datasets:   map[string]DatasetGeom{"ds": {Size: unit.GiB(10), BlockSize: 64 * unit.MB}},
	}
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Annotations
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.CacheQuota["ds"] != snap.CacheQuota["ds"] ||
		back.RemoteIO["j"] != snap.RemoteIO["j"] ||
		back.Datasets["ds"] != snap.Datasets["ds"] {
		t.Errorf("round trip lost data: %+v", back)
	}
	for _, key := range []string{"cache_quota", "remote_io", "jobs", "datasets"} {
		if !strings.Contains(string(buf), key) {
			t.Errorf("wire format missing %q: %s", key, buf)
		}
	}
}
