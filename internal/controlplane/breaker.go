package controlplane

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// BreakerState is the circuit breaker's position. The zero value is
// closed (traffic flows), so an unconfigured breaker is a transparent
// wrapper.
// silod:enum
type BreakerState int

// The breaker states.
const (
	// BreakerClosed: calls pass through; consecutive failures are
	// counted and trip the breaker at the threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls fail fast with *BreakerOpenError until the
	// (jittered) cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is allowed through; success
	// closes the breaker, failure re-opens it with a fresh cooldown.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerOpenError is the fail-fast rejection an open breaker returns
// without touching the data plane. Schedule rounds treat it like any
// push error — counted, surfaced, never blocking — which is the point:
// a slow or dead data manager costs one failed call per round, not one
// hung round per call.
type BreakerOpenError struct {
	State      BreakerState
	RetryAfter time.Duration // time until the next half-open probe (0 when probing)
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("controlplane: data-plane circuit breaker %s (next probe in %v)",
		e.State, e.RetryAfter)
}

// breakerMetrics are the breaker's instrumentation handles (nil-safe).
type breakerMetrics struct {
	state         *metrics.Gauge   // silod_breaker_state (0 closed, 1 open, 2 half-open)
	trips         *metrics.Counter // silod_breaker_trips_total
	probes        *metrics.Counter // silod_breaker_probes_total
	shortCircuits *metrics.Counter // silod_breaker_short_circuits_total
}

// Breaker wraps a DataPlane with a circuit breaker: after Threshold
// consecutive failures it opens and fails fast; after a seeded-jitter
// cooldown it half-opens and lets one probe through. The clock is
// injected (this package is virtual-time; see NewSchedulerServer).
type Breaker struct {
	dp        DataPlane
	threshold int
	cooldown  time.Duration
	clock     func() time.Time // injected; never the package-level time.Now

	mu       sync.Mutex
	state    BreakerState // guarded by mu
	failures int          // guarded by mu (consecutive)
	until    time.Time    // guarded by mu (open until; probe time)
	probing  bool         // guarded by mu (a half-open probe is in flight)
	rng      *simrng.RNG  // guarded by mu (cooldown jitter)

	met breakerMetrics
}

// NewBreaker wraps dp. threshold is the consecutive-failure count that
// trips the breaker (minimum 1); cooldown is the base open interval
// before a half-open probe, jittered ±25% from rng so multiple
// breakers do not probe in lockstep (nil rng uses a fixed seed).
func NewBreaker(dp DataPlane, threshold int, cooldown time.Duration, clock func() time.Time, rng *simrng.RNG) (*Breaker, error) {
	if dp == nil {
		return nil, fmt.Errorf("controlplane: breaker needs a data plane")
	}
	if clock == nil {
		return nil, fmt.Errorf("controlplane: breaker needs a clock (pass time.Now at the daemon edge)")
	}
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 3 * time.Second
	}
	if rng == nil {
		rng = simrng.New(1)
	}
	return &Breaker{dp: dp, threshold: threshold, cooldown: cooldown, clock: clock, rng: rng}, nil
}

// EnableMetrics interns the breaker's series into reg. Call once at
// wiring time (the scheduler's registry is the natural home).
func (b *Breaker) EnableMetrics(reg *metrics.Registry) {
	b.met = breakerMetrics{
		state:         reg.Gauge("silod_breaker_state"),
		trips:         reg.Counter("silod_breaker_trips_total"),
		probes:        reg.Counter("silod_breaker_probes_total"),
		shortCircuits: reg.Counter("silod_breaker_short_circuits_total"),
	}
}

// State reports the breaker's current position (refreshing open →
// half-open if the cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.clock().Before(b.until) {
		return BreakerHalfOpen
	}
	return b.state
}

// before gates one call. A nil return means the call may proceed.
func (b *Breaker) before() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if now.Before(b.until) {
			b.met.shortCircuits.Inc()
			return &BreakerOpenError{State: BreakerOpen, RetryAfter: b.until.Sub(now)}
		}
		// Cooldown elapsed: half-open, and this caller is the probe.
		b.state = BreakerHalfOpen
		b.probing = true
		b.met.probes.Inc()
		b.met.state.Set(float64(BreakerHalfOpen))
		return nil
	case BreakerHalfOpen:
		if b.probing {
			b.met.shortCircuits.Inc()
			return &BreakerOpenError{State: BreakerHalfOpen}
		}
		b.probing = true
		b.met.probes.Inc()
		return nil
	default:
		return nil
	}
}

// after records one call's outcome.
func (b *Breaker) after(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil {
		b.state = BreakerClosed
		b.failures = 0
		b.met.state.Set(float64(BreakerClosed))
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.tripLocked()
	}
}

// tripLocked opens the breaker with a jittered cooldown. Callers hold
// b.mu.
func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	d := float64(b.cooldown)
	d += d * 0.25 * (2*b.rng.Float64() - 1)
	b.until = b.clock().Add(time.Duration(d))
	b.met.trips.Inc()
	b.met.state.Set(float64(BreakerOpen))
}

// call wraps one data-plane operation with the breaker gate.
func (b *Breaker) call(op func() error) error {
	if err := b.before(); err != nil {
		return err
	}
	err := op()
	b.after(err)
	return err
}

// RegisterDataset implements DataPlane.
func (b *Breaker) RegisterDataset(name string, size, blockSize unit.Bytes) error {
	return b.call(func() error { return b.dp.RegisterDataset(name, size, blockSize) })
}

// AttachJob implements DataPlane.
func (b *Breaker) AttachJob(jobID, dataset string) error {
	return b.call(func() error { return b.dp.AttachJob(jobID, dataset) })
}

// DetachJob implements DataPlane.
func (b *Breaker) DetachJob(jobID string) error {
	return b.call(func() error { return b.dp.DetachJob(jobID) })
}

// AllocateCacheSize implements DataPlane (Table 3).
func (b *Breaker) AllocateCacheSize(dataset string, size unit.Bytes) error {
	return b.call(func() error { return b.dp.AllocateCacheSize(dataset, size) })
}

// AllocateRemoteIO implements DataPlane (Table 3).
func (b *Breaker) AllocateRemoteIO(jobID string, speed unit.Bandwidth) error {
	return b.call(func() error { return b.dp.AllocateRemoteIO(jobID, speed) })
}

var _ DataPlane = (*Breaker)(nil)
