package controlplane

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simrng"
)

// retryServer fails the first n requests with the given status (and
// optional Retry-After header) and then succeeds.
func retryServer(t *testing.T, failures int, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(failures) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			_, _ = w.Write([]byte(`{"error":"induced failure"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// Per-status retry matrix: which failures the client retries and which
// are terminal on the first response.
func TestClientRetryPerStatus(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		retryAfter string
		wantCalls  int64
		wantOK     bool
	}{
		{"500 retries", http.StatusInternalServerError, "", 3, true},
		{"503 retries", http.StatusServiceUnavailable, "", 3, true},
		{"503 with Retry-After retries", http.StatusServiceUnavailable, "0", 3, true},
		{"429 with Retry-After retries", http.StatusTooManyRequests, "0", 3, true},
		{"429 without hint is terminal", http.StatusTooManyRequests, "", 1, false},
		{"400 is terminal", http.StatusBadRequest, "", 1, false},
		{"404 is terminal", http.StatusNotFound, "", 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, calls := retryServer(t, 2, tc.status, tc.retryAfter)
			c := NewClient(srv.URL)
			c.SetRetry(3, 0, simrng.New(1)) // zero backoff: retries don't sleep
			err := c.EpochStart("j")
			if tc.wantOK && err != nil {
				t.Fatalf("want recovery after retries, got %v", err)
			}
			if !tc.wantOK && err == nil {
				t.Fatal("want terminal failure, got success")
			}
			if got := calls.Load(); got != tc.wantCalls {
				t.Errorf("server saw %d calls, want %d", got, tc.wantCalls)
			}
		})
	}
}

// TestClientRetryExhaustion: a server that never recovers consumes the
// whole attempt budget and reports it.
func TestClientRetryExhaustion(t *testing.T) {
	srv, calls := retryServer(t, 100, http.StatusServiceUnavailable, "0")
	c := NewClient(srv.URL)
	c.SetRetry(4, 0, simrng.New(1))
	err := c.EpochStart("j")
	if err == nil || !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("exhaustion error = %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d calls, want 4", got)
	}
}

// TestRetryDelayHonorsHint: the Retry-After hint replaces the
// exponential base, capped at maxRetryAfter, with bounded jitter — and
// the same seed yields the same delays.
func TestRetryDelayHonorsHint(t *testing.T) {
	mk := func(seed int64) *Client {
		c := NewClient("http://unused")
		c.SetRetry(5, 50*time.Millisecond, simrng.New(seed))
		return c
	}
	c := mk(1)
	// No hint: exponential from the configured backoff, jitter < 50%.
	for attempt, base := range map[int]time.Duration{
		1: 50 * time.Millisecond,
		2: 100 * time.Millisecond,
		3: 200 * time.Millisecond,
	} {
		d := c.retryDelay(attempt, 0)
		if d < base || d > base+base/2 {
			t.Errorf("attempt %d delay %v outside [%v, %v]", attempt, d, base, base+base/2)
		}
	}
	// The exponential base never exceeds maxBackoff.
	if d := c.retryDelay(60, 0); d > maxBackoff+maxBackoff/2 {
		t.Errorf("uncapped exponential delay %v", d)
	}
	// A hint replaces the base.
	if d := c.retryDelay(1, 2*time.Second); d < 2*time.Second || d > 3*time.Second {
		t.Errorf("hinted delay %v outside [2s, 3s]", d)
	}
	// A hostile hint is capped.
	if d := c.retryDelay(1, time.Hour); d > maxRetryAfter+maxRetryAfter/2 {
		t.Errorf("capped hint produced %v", d)
	}
	// Zero backoff and no hint: no sleeping at all.
	c.SetRetry(3, 0, nil)
	if d := c.retryDelay(1, 0); d != 0 {
		t.Errorf("zero-backoff delay = %v", d)
	}
	// Seeded determinism.
	a, b := mk(9), mk(9)
	for i := 1; i < 4; i++ {
		if da, db := a.retryDelay(i, time.Second), b.retryDelay(i, time.Second); da != db {
			t.Fatalf("attempt %d: same seed, different delays (%v vs %v)", i, da, db)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := map[string]struct {
		d  time.Duration
		ok bool
	}{
		"":                              {0, false},
		"0":                             {0, true}, // "retry now" is a hint, distinct from no header
		"-3":                            {0, false},
		"2":                             {2 * time.Second, true},
		"30":                            {30 * time.Second, true},
		"garbage":                       {0, false},
		"Wed, 21 Oct 2026 07:28:00 GMT": {0, false}, // HTTP-date form: not emitted, not parsed
	}
	for in, want := range cases {
		if d, ok := parseRetryAfter(in); d != want.d || ok != want.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", in, d, ok, want.d, want.ok)
		}
	}
}
