package controlplane

import (
	"net/http/httptest"
	"testing"

	"repro/internal/datamgr"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/unit"
)

// sampleValue finds one parsed sample by name (+ optional label match).
func sampleValue(samples []metrics.Sample, name string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// TestSchedulerMetricsEndpoint submits jobs, runs a round, then scrapes
// GET /metrics over real HTTP and parses the exposition text.
func TestSchedulerMetricsEndpoint(t *testing.T) {
	pol, err := policy.Build(policy.GavelKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedClient, _, _, shutdown := newStack(t, pol)
	defer shutdown()

	for _, id := range []string{"a", "b", "c"} {
		if err := schedClient.SubmitJob(submitReq(id, 4, unit.GiB(10))); err != nil {
			t.Fatal(err)
		}
	}
	if err := schedClient.TriggerSchedule(); err != nil {
		t.Fatal(err)
	}

	samples, err := schedClient.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sampleValue(samples, "silod_sched_jobs_submitted_total"); !ok || v != 3 {
		t.Errorf("jobs_submitted = %v (found %v), want 3", v, ok)
	}
	if v, ok := sampleValue(samples, "silod_sched_rounds_total"); !ok || v < 1 {
		t.Errorf("rounds = %v (found %v), want >= 1", v, ok)
	}
	if v, ok := sampleValue(samples, "silod_sched_gpus_allocated"); !ok || v <= 0 || v > 8 {
		t.Errorf("gpus_allocated = %v (found %v), want in (0, 8]", v, ok)
	}
	run, okR := sampleValue(samples, "silod_sched_running_jobs")
	que, okQ := sampleValue(samples, "silod_sched_queue_depth")
	if !okR || !okQ || run+que != 3 {
		t.Errorf("running %v + queued %v != 3 submitted", run, que)
	}
}

// TestDataManagerMetricsEndpoint enables metrics on a manager, drives
// reads through the HTTP API, and scrapes the cache counters back.
func TestDataManagerMetricsEndpoint(t *testing.T) {
	mgr := datamgr.New(unit.GiB(100), unit.MBpsOf(100), 1, nil)
	mgr.EnableMetrics(metrics.NewRegistry("datamgr"))
	srv := httptest.NewServer(NewDataManagerServer(mgr))
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.RegisterDataset("ds", unit.GiB(1), 64*unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachJob("j", "ds"); err != nil {
		t.Fatal(err)
	}
	if err := c.AllocateCacheSize("ds", unit.GiB(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AllocateRemoteIO("j", unit.MBpsOf(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("j", 0); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := c.Read("j", 0); err != nil { // hit
		t.Fatal(err)
	}

	samples, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if byName["silod_cache_hits_total"] != 1 || byName["silod_cache_misses_total"] != 1 {
		t.Errorf("hits/misses = %v/%v, want 1/1", byName["silod_cache_hits_total"], byName["silod_cache_misses_total"])
	}
	if byName["silod_remoteio_utilization_ratio"] != 0.5 {
		t.Errorf("utilization = %v, want 0.5", byName["silod_remoteio_utilization_ratio"])
	}
}

// TestMetricsEndpointWithoutRegistry: a manager without EnableMetrics
// serves an empty, parseable page (not an error).
func TestMetricsEndpointWithoutRegistry(t *testing.T) {
	mgr := datamgr.New(unit.GiB(1), unit.MBpsOf(10), 1, nil)
	srv := httptest.NewServer(NewDataManagerServer(mgr))
	defer srv.Close()
	samples, err := NewClient(srv.URL).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 {
		t.Errorf("got %d samples from uninstrumented manager", len(samples))
	}
}
