package controlplane

import (
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// flakyPlane is a DataPlane whose calls fail while down. Single
// goroutine only — breaker tests drive it sequentially.
type flakyPlane struct {
	down  bool
	calls int
}

func (f *flakyPlane) op() error {
	f.calls++
	if f.down {
		return errors.New("flaky: data plane down")
	}
	return nil
}

func (f *flakyPlane) RegisterDataset(string, unit.Bytes, unit.Bytes) error { return f.op() }
func (f *flakyPlane) AttachJob(string, string) error                       { return f.op() }
func (f *flakyPlane) DetachJob(string) error                               { return f.op() }
func (f *flakyPlane) AllocateCacheSize(string, unit.Bytes) error           { return f.op() }
func (f *flakyPlane) AllocateRemoteIO(string, unit.Bandwidth) error        { return f.op() }

// vclock is a hand-advanced clock for breaker tests.
type vclock struct{ t time.Time }

func (v *vclock) now() time.Time          { return v.t }
func (v *vclock) advance(d time.Duration) { v.t = v.t.Add(d) }
func newVClock() *vclock                  { return &vclock{t: time.Unix(0, 0)} }

func mustBreaker(t *testing.T, dp DataPlane, threshold int, cooldown time.Duration, clock func() time.Time, seed int64) *Breaker {
	t.Helper()
	b, err := NewBreaker(dp, threshold, cooldown, clock, simrng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBreakerValidation(t *testing.T) {
	vc := newVClock()
	if _, err := NewBreaker(nil, 3, time.Second, vc.now, nil); err == nil {
		t.Error("nil data plane accepted")
	}
	if _, err := NewBreaker(&flakyPlane{}, 3, time.Second, nil, nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	vc := newVClock()
	fp := &flakyPlane{down: true}
	b := mustBreaker(t, fp, 3, time.Second, vc.now, 1)

	// First threshold-1 failures pass through and keep the breaker closed.
	for i := 0; i < 2; i++ {
		if err := b.DetachJob("j"); err == nil {
			t.Fatal("down plane returned nil")
		}
		if b.State() != BreakerClosed {
			t.Fatalf("breaker opened after %d failures (threshold 3)", i+1)
		}
	}
	// Third consecutive failure trips it.
	if err := b.DetachJob("j"); err == nil {
		t.Fatal("down plane returned nil")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	// Open breaker fails fast: typed error, no call reaches the plane.
	calls := fp.calls
	err := b.AttachJob("j", "ds")
	var oe *BreakerOpenError
	if !errors.As(err, &oe) {
		t.Fatalf("open breaker error = %v, want *BreakerOpenError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("open breaker carries no RetryAfter hint: %+v", oe)
	}
	if fp.calls != calls {
		t.Errorf("open breaker let a call through (%d -> %d)", calls, fp.calls)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	vc := newVClock()
	fp := &flakyPlane{}
	b := mustBreaker(t, fp, 2, time.Second, vc.now, 1)
	// fail, success, fail: never two consecutive, never trips.
	fp.down = true
	_ = b.DetachJob("j")
	fp.down = false
	if err := b.DetachJob("j"); err != nil {
		t.Fatal(err)
	}
	fp.down = true
	_ = b.DetachJob("j")
	if b.State() != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", b.State())
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	vc := newVClock()
	fp := &flakyPlane{down: true}
	b := mustBreaker(t, fp, 1, time.Second, vc.now, 7)
	if err := b.DetachJob("j"); err == nil {
		t.Fatal("down plane returned nil")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Past the jitter envelope (±25%) the breaker half-opens.
	vc.advance(1250*time.Millisecond + time.Nanosecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	// The probe reaches the (still down) plane and re-opens the breaker.
	calls := fp.calls
	if err := b.DetachJob("j"); err == nil {
		t.Fatal("probe against down plane returned nil")
	}
	if fp.calls != calls+1 {
		t.Fatalf("probe did not reach the plane (%d -> %d)", calls, fp.calls)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// Next cooldown; the plane recovers; the probe closes the breaker.
	fp.down = false
	vc.advance(1250*time.Millisecond + time.Nanosecond)
	if err := b.DetachJob("j"); err != nil {
		t.Fatal(err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if err := b.AllocateCacheSize("ds", unit.GiB(1)); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	vc := newVClock()
	fp := &flakyPlane{down: true}
	b := mustBreaker(t, fp, 1, time.Second, vc.now, 1)
	_ = b.DetachJob("j")
	vc.advance(2 * time.Second)
	// First gate claims the probe slot; a second concurrent caller is
	// rejected without touching the plane.
	if err := b.before(); err != nil {
		t.Fatalf("probe gate rejected the first caller: %v", err)
	}
	err := b.before()
	var oe *BreakerOpenError
	if !errors.As(err, &oe) || oe.State != BreakerHalfOpen {
		t.Fatalf("second caller during probe got %v, want half-open *BreakerOpenError", err)
	}
	// The probe completing (successfully) closes the breaker.
	b.after(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
}

func TestBreakerCooldownJitterSeededAndBounded(t *testing.T) {
	until := func(seed int64) time.Duration {
		vc := newVClock()
		fp := &flakyPlane{down: true}
		b := mustBreaker(t, fp, 1, time.Second, vc.now, seed)
		_ = b.DetachJob("j")
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.until.Sub(vc.t)
	}
	if a, b := until(42), until(42); a != b {
		t.Errorf("same seed, different cooldowns: %v != %v", a, b)
	}
	for seed := int64(0); seed < 20; seed++ {
		d := until(seed)
		if d < 750*time.Millisecond || d > 1250*time.Millisecond {
			t.Errorf("seed %d cooldown %v outside ±25%% of 1s", seed, d)
		}
	}
}

func TestBreakerMetrics(t *testing.T) {
	vc := newVClock()
	fp := &flakyPlane{down: true}
	b := mustBreaker(t, fp, 1, time.Second, vc.now, 1)
	reg := metrics.NewRegistry("breaker")
	b.EnableMetrics(reg)
	_ = b.DetachJob("j") // trip
	_ = b.DetachJob("j") // short-circuit
	vc.advance(2 * time.Second)
	_ = b.DetachJob("j") // failed probe, trips again
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"silod_breaker_trips_total":          2,
		"silod_breaker_short_circuits_total": 1,
		"silod_breaker_probes_total":         1,
	} {
		if got := snap.CounterValue(name, nil); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if v, ok := snap.Get("silod_breaker_state", nil); !ok || *v.Value != float64(BreakerOpen) {
		t.Errorf("state gauge = %+v, want open", v)
	}
}
