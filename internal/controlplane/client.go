package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/datamgr"
	"repro/internal/metrics"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// Client retry defaults: transient failures (connection errors, 5xx)
// are retried with capped exponential backoff plus jitter. Every
// request the client issues is either naturally idempotent or guarded
// by a request ID (SubmitJob), so retries are always safe.
const (
	defaultAttempts       = 3
	defaultBackoff        = 50 * time.Millisecond
	maxBackoff            = 2 * time.Second
	defaultAttemptTimeout = 5 * time.Second
	// maxRetryAfter caps how long a server Retry-After hint can hold the
	// client off: a buggy or hostile hint must not park a round forever.
	maxRetryAfter = 30 * time.Second
)

// Client talks to a DataManagerServer or SchedulerServer over HTTP. It
// implements DataPlane, so a SchedulerServer can drive a remote data
// manager transparently.
type Client struct {
	base string
	http *http.Client

	attempts int           // per-request attempt budget
	backoff  time.Duration // initial backoff, doubled per retry

	mu  sync.Mutex
	rng *simrng.RNG // guarded by mu (jitter and request IDs)
}

// NewClient returns a client for the service at base (e.g.
// "http://127.0.0.1:7070"). The jitter RNG is seeded from the base URL
// so distinct clients decorrelate while any one client stays
// deterministic; SetRetry overrides the retry policy.
func NewClient(base string) *Client {
	h := fnv.New64a()
	_, _ = h.Write([]byte(base)) // fnv's Write never fails
	return &Client{
		base:     base,
		http:     &http.Client{Timeout: defaultAttemptTimeout},
		attempts: defaultAttempts,
		backoff:  defaultBackoff,
		rng:      simrng.New(int64(h.Sum64())),
	}
}

// SetRetry overrides the retry policy: attempts per request (minimum
// 1), initial backoff between attempts, and the RNG driving jitter and
// request IDs (nil keeps the current one). Tests inject a seeded RNG
// and a zero backoff here.
func (c *Client) SetRetry(attempts int, backoff time.Duration, rng *simrng.RNG) {
	if attempts < 1 {
		attempts = 1
	}
	c.attempts = attempts
	c.backoff = backoff
	if rng != nil {
		c.mu.Lock()
		c.rng = rng
		c.mu.Unlock()
	}
}

// SetAttemptTimeout bounds each individual attempt (not the whole
// retried request).
func (c *Client) SetAttemptTimeout(d time.Duration) {
	if d > 0 {
		c.http.Timeout = d
	}
}

// doJSON posts (or GETs, for nil body) and decodes the response into
// out when non-nil, retrying transient failures — transport errors,
// 5xx responses, and 429s that carry a Retry-After hint — with capped
// exponential backoff and jitter; a server Retry-After hint (503 under
// overload, 429 with a hint) replaces the exponential base. The
// request body is rebuilt per attempt. Other non-2xx responses decode
// the server's error and fail immediately.
func (c *Client) doJSON(method, path string, in, out any) error {
	var buf []byte
	if in != nil {
		var err error
		buf, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("controlplane: marshal %s: %w", path, err)
		}
	}
	var lastErr error
	var hint time.Duration
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if d := c.retryDelay(attempt, hint); d > 0 {
				<-time.After(d)
			}
		}
		retryable, retryAfter, err := c.attemptJSON(method, path, buf, out)
		if err == nil {
			return nil
		}
		lastErr, hint = err, retryAfter
		if !retryable {
			return err
		}
	}
	return fmt.Errorf("controlplane: %s %s: giving up after %d attempts: %w",
		method, path, c.attempts, lastErr)
}

// retryDelay computes the pause before retry `attempt` (1-based): the
// capped exponential base, or the server's Retry-After hint when one
// was sent (itself capped at maxRetryAfter so a bad hint cannot park
// the client), plus up to 50% seeded jitter either way so synchronized
// clients decorrelate their retry storm.
func (c *Client) retryDelay(attempt int, hint time.Duration) time.Duration {
	d := c.backoff
	if d > 0 && attempt > 1 {
		// Shifts past the cap would overflow for large attempt counts.
		if attempt > 8 {
			d = maxBackoff
		} else {
			d <<= attempt - 1
		}
	}
	if d > maxBackoff || d < 0 {
		d = maxBackoff
	}
	if hint > 0 {
		if hint > maxRetryAfter {
			hint = maxRetryAfter
		}
		d = hint
	}
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Float64() * float64(d) / 2)
	c.mu.Unlock()
	return d + jitter
}

// parseRetryAfter reads a Retry-After header in its delta-seconds form
// (the only form this control plane emits). ok distinguishes "retry
// immediately" (a valid "0") from "no hint at all" — the difference
// decides whether a 429 is retryable.
func parseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// attemptJSON issues one attempt; the bool reports whether the failure
// is worth retrying and the duration carries the server's Retry-After
// hint (0 when absent).
func (c *Client) attemptJSON(method, path string, body []byte, out any) (bool, time.Duration, error) {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return true, 0, err // transport failure (refused, reset, timeout)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		retryAfter, hinted := parseRetryAfter(resp.Header.Get("Retry-After"))
		// 5xx is always worth retrying (503 backpressure especially); a
		// 429 only when the server said when to come back — a quota
		// rejection without a hint stays terminal so retried submits
		// don't hammer an over-quota tenant's budget.
		retryable := resp.StatusCode >= 500 ||
			(resp.StatusCode == http.StatusTooManyRequests && hinted)
		var er ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return retryable, retryAfter, fmt.Errorf("controlplane: %s %s: %s", method, path, er.Error)
		}
		return retryable, retryAfter, fmt.Errorf("controlplane: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return false, 0, json.NewDecoder(resp.Body).Decode(out)
	}
	return false, 0, nil
}

// newRequestID mints a client-unique idempotency token for a submit.
func (c *Client) newRequestID(jobID string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("%s-%016x", jobID, c.rng.Int63())
}

// RegisterDataset implements DataPlane.
func (c *Client) RegisterDataset(name string, size, blockSize unit.Bytes) error {
	return c.doJSON("POST", "/v1/datasets", RegisterDatasetRequest{Name: name, Size: size, BlockSize: blockSize}, nil)
}

// AttachJob implements DataPlane.
func (c *Client) AttachJob(jobID, dataset string) error {
	return c.doJSON("POST", "/v1/jobs", AttachJobRequest{JobID: jobID, Dataset: dataset}, nil)
}

// DetachJob implements DataPlane.
func (c *Client) DetachJob(jobID string) error {
	return c.doJSON("DELETE", "/v1/jobs/"+jobID, nil, nil)
}

// AllocateCacheSize implements DataPlane (Table 3).
func (c *Client) AllocateCacheSize(dataset string, size unit.Bytes) error {
	return c.doJSON("POST", "/v1/allocate/cache", AllocateCacheRequest{Dataset: dataset, Size: size}, nil)
}

// AllocateRemoteIO implements DataPlane (Table 3).
func (c *Client) AllocateRemoteIO(jobID string, speed unit.Bandwidth) error {
	return c.doJSON("POST", "/v1/allocate/remoteio", AllocateRemoteIORequest{JobID: jobID, Speed: speed}, nil)
}

// Read performs one block access through the data manager.
func (c *Client) Read(jobID string, block int) (ReadResponse, error) {
	var out ReadResponse
	err := c.doJSON("POST", "/v1/read", ReadRequest{JobID: jobID, Block: block}, &out)
	return out, err
}

// EpochStart marks a job's epoch boundary.
func (c *Client) EpochStart(jobID string) error {
	return c.doJSON("POST", "/v1/epoch/"+jobID, nil, nil)
}

// Stats fetches a job's counters.
func (c *Client) Stats(jobID string) (JobStatsResponse, error) {
	var out JobStatsResponse
	err := c.doJSON("GET", "/v1/stats/"+jobID, nil, &out)
	return out, err
}

// Snapshot fetches the data manager's allocation snapshot.
func (c *Client) Snapshot() (datamgr.Snapshot, error) {
	var out datamgr.Snapshot
	err := c.doJSON("GET", "/v1/snapshot", nil, &out)
	return out, err
}

// Restore replays a snapshot into a (fresh) data manager.
func (c *Client) Restore(s datamgr.Snapshot) error {
	return c.doJSON("POST", "/v1/restore", s, nil)
}

// Metrics scrapes the server's /metrics endpoint and parses the
// Prometheus text into samples — the client-side half of the
// observability surface (works against both server kinds).
func (c *Client) Metrics() ([]metrics.Sample, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("controlplane: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return metrics.ParsePrometheus(resp.Body)
}

// SubmitJob submits a job to a scheduler server. Submit is the one
// non-idempotent call in the API, so the client stamps a request ID
// (unless the caller set one): a retry whose first attempt landed but
// whose response was lost dedupes server-side instead of failing as a
// duplicate job.
func (c *Client) SubmitJob(req SubmitJobRequest) error {
	if req.RequestID == "" {
		req.RequestID = c.newRequestID(req.JobID)
	}
	return c.doJSON("POST", "/v1/jobs", req, nil)
}

// Heartbeat reports a node's liveness and capacity to a scheduler
// server.
func (c *Client) Heartbeat(req HeartbeatRequest) error {
	return c.doJSON("POST", "/v1/nodes/heartbeat", req, nil)
}

// Nodes fetches the scheduler's node table.
func (c *Client) Nodes() ([]NodeStatus, error) {
	var out []NodeStatus
	err := c.doJSON("GET", "/v1/nodes", nil, &out)
	return out, err
}

// Tenants lists a scheduler server's registered tenants and their live
// quota usage.
func (c *Client) Tenants() ([]TenantStatus, error) {
	var out []TenantStatus
	err := c.doJSON("GET", "/v1/tenants", nil, &out)
	return out, err
}

// ReportProgress posts a progress update to a scheduler server.
func (c *Client) ReportProgress(req ProgressRequest) error {
	return c.doJSON("POST", "/v1/progress", req, nil)
}

// TriggerSchedule runs one scheduling round on a scheduler server.
func (c *Client) TriggerSchedule() error {
	return c.doJSON("POST", "/v1/schedule", nil, nil)
}

// ListJobs fetches the scheduler's job table.
func (c *Client) ListJobs() ([]JobStatus, error) {
	var out []JobStatus
	err := c.doJSON("GET", "/v1/jobs", nil, &out)
	return out, err
}

// Annotations fetches the scheduler's persisted allocations.
func (c *Client) Annotations() (Annotations, error) {
	var out Annotations
	err := c.doJSON("GET", "/v1/annotations", nil, &out)
	return out, err
}

var _ DataPlane = (*Client)(nil)

// LocalDataPlane adapts a datamgr.Manager to the DataPlane interface
// for single-process deployments (and tests).
type LocalDataPlane struct {
	Mgr *datamgr.Manager
}

// RegisterDataset implements DataPlane. A zero blockSize uses the 64 MB
// default, matching the HTTP server's behaviour.
func (l LocalDataPlane) RegisterDataset(name string, size, blockSize unit.Bytes) error {
	if blockSize <= 0 {
		blockSize = 64 * unit.MB
	}
	return l.Mgr.RegisterDataset(name, size, blockSize)
}

// AttachJob implements DataPlane.
func (l LocalDataPlane) AttachJob(jobID, dataset string) error {
	return l.Mgr.AttachJob(jobID, dataset)
}

// DetachJob implements DataPlane.
func (l LocalDataPlane) DetachJob(jobID string) error {
	l.Mgr.DetachJob(jobID)
	return nil
}

// AllocateCacheSize implements DataPlane.
func (l LocalDataPlane) AllocateCacheSize(dataset string, size unit.Bytes) error {
	return l.Mgr.AllocateCacheSize(dataset, size)
}

// AllocateRemoteIO implements DataPlane.
func (l LocalDataPlane) AllocateRemoteIO(jobID string, speed unit.Bandwidth) error {
	return l.Mgr.AllocateRemoteIO(jobID, speed)
}

var _ DataPlane = LocalDataPlane{}
