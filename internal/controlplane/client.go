package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/datamgr"
	"repro/internal/metrics"
	"repro/internal/unit"
)

// Client talks to a DataManagerServer or SchedulerServer over HTTP. It
// implements DataPlane, so a SchedulerServer can drive a remote data
// manager transparently.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the service at base (e.g.
// "http://127.0.0.1:7070").
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: 30 * time.Second}}
}

// doJSON posts (or GETs, for nil body) and decodes the response into
// out when non-nil. Non-2xx responses decode the server's error.
func (c *Client) doJSON(method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("controlplane: marshal %s: %w", path, err)
		}
		body = bytes.NewReader(buf)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var er ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return fmt.Errorf("controlplane: %s %s: %s", method, path, er.Error)
		}
		return fmt.Errorf("controlplane: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// RegisterDataset implements DataPlane.
func (c *Client) RegisterDataset(name string, size, blockSize unit.Bytes) error {
	return c.doJSON("POST", "/v1/datasets", RegisterDatasetRequest{Name: name, Size: size, BlockSize: blockSize}, nil)
}

// AttachJob implements DataPlane.
func (c *Client) AttachJob(jobID, dataset string) error {
	return c.doJSON("POST", "/v1/jobs", AttachJobRequest{JobID: jobID, Dataset: dataset}, nil)
}

// DetachJob implements DataPlane.
func (c *Client) DetachJob(jobID string) error {
	return c.doJSON("DELETE", "/v1/jobs/"+jobID, nil, nil)
}

// AllocateCacheSize implements DataPlane (Table 3).
func (c *Client) AllocateCacheSize(dataset string, size unit.Bytes) error {
	return c.doJSON("POST", "/v1/allocate/cache", AllocateCacheRequest{Dataset: dataset, Size: size}, nil)
}

// AllocateRemoteIO implements DataPlane (Table 3).
func (c *Client) AllocateRemoteIO(jobID string, speed unit.Bandwidth) error {
	return c.doJSON("POST", "/v1/allocate/remoteio", AllocateRemoteIORequest{JobID: jobID, Speed: speed}, nil)
}

// Read performs one block access through the data manager.
func (c *Client) Read(jobID string, block int) (ReadResponse, error) {
	var out ReadResponse
	err := c.doJSON("POST", "/v1/read", ReadRequest{JobID: jobID, Block: block}, &out)
	return out, err
}

// EpochStart marks a job's epoch boundary.
func (c *Client) EpochStart(jobID string) error {
	return c.doJSON("POST", "/v1/epoch/"+jobID, nil, nil)
}

// Stats fetches a job's counters.
func (c *Client) Stats(jobID string) (JobStatsResponse, error) {
	var out JobStatsResponse
	err := c.doJSON("GET", "/v1/stats/"+jobID, nil, &out)
	return out, err
}

// Snapshot fetches the data manager's allocation snapshot.
func (c *Client) Snapshot() (datamgr.Snapshot, error) {
	var out datamgr.Snapshot
	err := c.doJSON("GET", "/v1/snapshot", nil, &out)
	return out, err
}

// Restore replays a snapshot into a (fresh) data manager.
func (c *Client) Restore(s datamgr.Snapshot) error {
	return c.doJSON("POST", "/v1/restore", s, nil)
}

// Metrics scrapes the server's /metrics endpoint and parses the
// Prometheus text into samples — the client-side half of the
// observability surface (works against both server kinds).
func (c *Client) Metrics() ([]metrics.Sample, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("controlplane: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return metrics.ParsePrometheus(resp.Body)
}

// SubmitJob submits a job to a scheduler server.
func (c *Client) SubmitJob(req SubmitJobRequest) error {
	return c.doJSON("POST", "/v1/jobs", req, nil)
}

// ReportProgress posts a progress update to a scheduler server.
func (c *Client) ReportProgress(req ProgressRequest) error {
	return c.doJSON("POST", "/v1/progress", req, nil)
}

// TriggerSchedule runs one scheduling round on a scheduler server.
func (c *Client) TriggerSchedule() error {
	return c.doJSON("POST", "/v1/schedule", nil, nil)
}

// ListJobs fetches the scheduler's job table.
func (c *Client) ListJobs() ([]JobStatus, error) {
	var out []JobStatus
	err := c.doJSON("GET", "/v1/jobs", nil, &out)
	return out, err
}

// Annotations fetches the scheduler's persisted allocations.
func (c *Client) Annotations() (Annotations, error) {
	var out Annotations
	err := c.doJSON("GET", "/v1/annotations", nil, &out)
	return out, err
}

var _ DataPlane = (*Client)(nil)

// LocalDataPlane adapts a datamgr.Manager to the DataPlane interface
// for single-process deployments (and tests).
type LocalDataPlane struct {
	Mgr *datamgr.Manager
}

// RegisterDataset implements DataPlane. A zero blockSize uses the 64 MB
// default, matching the HTTP server's behaviour.
func (l LocalDataPlane) RegisterDataset(name string, size, blockSize unit.Bytes) error {
	if blockSize <= 0 {
		blockSize = 64 * unit.MB
	}
	return l.Mgr.RegisterDataset(name, size, blockSize)
}

// AttachJob implements DataPlane.
func (l LocalDataPlane) AttachJob(jobID, dataset string) error {
	return l.Mgr.AttachJob(jobID, dataset)
}

// DetachJob implements DataPlane.
func (l LocalDataPlane) DetachJob(jobID string) error {
	l.Mgr.DetachJob(jobID)
	return nil
}

// AllocateCacheSize implements DataPlane.
func (l LocalDataPlane) AllocateCacheSize(dataset string, size unit.Bytes) error {
	return l.Mgr.AllocateCacheSize(dataset, size)
}

// AllocateRemoteIO implements DataPlane.
func (l LocalDataPlane) AllocateRemoteIO(jobID string, speed unit.Bandwidth) error {
	return l.Mgr.AllocateRemoteIO(jobID, speed)
}

var _ DataPlane = LocalDataPlane{}
