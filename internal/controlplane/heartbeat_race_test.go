package controlplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/policy"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// lockClock is a virtual clock safe for concurrent readers and one or
// more advancers — the race tests need injected time AND -race.
type lockClock struct {
	mu sync.Mutex
	t  time.Time // guarded by mu
}

func (c *lockClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *lockClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestHeartbeatRevivalRacesScheduleRound runs node death/revival
// heartbeats, schedule rounds, and a quota-bound submit/complete storm
// concurrently, then checks the two ledgers the race could corrupt:
// the tenant admission ledger must balance to zero (every admit
// released exactly once — no lost quota), and the final round must not
// double-allocate GPUs past the cluster.
func TestHeartbeatRevivalRacesScheduleRound(t *testing.T) {
	const (
		clusterGPUs = 8
		quotaGPUs   = 4
		jobsTotal   = 120
	)
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Capacities far above anything the storm allocates: this test is
	// about the admission ledger and lock discipline, not about the
	// data-plane ledger rejecting oversubscription.
	mgr := datamgr.New(unit.TiB(10), unit.GBpsOf(100), 1, nil)
	clk := &lockClock{t: time.Unix(0, 0)}
	s, err := NewSchedulerServer(
		core.Cluster{GPUs: clusterGPUs, Cache: unit.TiB(10), RemoteIO: unit.GBpsOf(100)},
		pol, LocalDataPlane{Mgr: mgr}, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry()
	if err := reg.Register(tenant.Tenant{
		ID: "acme", Class: tenant.Standard,
		Quota: tenant.Quota{GPUs: quotaGPUs},
	}); err != nil {
		t.Fatal(err)
	}
	s.ConfigureTenants(reg)
	s.SetNodeLivenessTimeout(time.Second)
	if err := s.Heartbeat(HeartbeatRequest{Node: "n1", GPUs: clusterGPUs, Cache: unit.TiB(10)}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	admitted := make(chan string, jobsTotal)
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	var storm sync.WaitGroup // submitter + completer: finish on their own
	var loops sync.WaitGroup // heartbeater + scheduler: run until stop

	// Submitter: pushes jobsTotal jobs through a 4-GPU quota, spinning
	// on over-quota rejections until the completer frees a slot.
	storm.Add(1)
	go func() {
		defer storm.Done()
		defer close(admitted)
		var oq *tenant.OverQuotaError
		for i := 0; i < jobsTotal; i++ {
			id := fmt.Sprintf("race-%03d", i)
			for {
				err := s.Submit(SubmitJobRequest{
					JobID: id, Model: "ResNet-50", Dataset: "imagenet1k",
					DatasetSize: unit.GiB(10), NumGPUs: 1,
					IdealThroughput: unit.MBpsOf(100), TotalBytes: unit.GiB(10),
					Tenant: "acme",
				})
				if err == nil {
					admitted <- id
					break
				}
				if !errors.As(err, &oq) {
					report(fmt.Errorf("submit %s: %w", id, err))
					return
				}
			}
		}
	}()

	// Completer: marks every admitted job done, which releases its
	// quota charge back to the tenant.
	storm.Add(1)
	go func() {
		defer storm.Done()
		for id := range admitted {
			if err := s.Progress(ProgressRequest{
				JobID: id, AttainedBytes: unit.GiB(10), Done: true,
			}); err != nil {
				report(fmt.Errorf("complete %s: %w", id, err))
				return
			}
		}
	}()

	// Heartbeater: advances past the liveness timeout and reports in
	// again, so rounds keep declaring n1 dead and heartbeats keep
	// reviving it (re-pushing allocations mid-storm).
	loops.Add(1)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.advance(2 * time.Second)
			if err := s.Heartbeat(HeartbeatRequest{Node: "n1", GPUs: clusterGPUs, Cache: unit.TiB(10)}); err != nil {
				report(fmt.Errorf("heartbeat: %w", err))
				return
			}
		}
	}()

	// Scheduler: rounds race everything above.
	loops.Add(1)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.RunRound(context.Background(), ServeConfig{}); err != nil {
				report(fmt.Errorf("round: %w", err))
				return
			}
		}
	}()

	// Wait for the submit/complete storm to finish (a wedge here means
	// quota was lost — released charges never came back), then stop the
	// background loops.
	stormDone := make(chan struct{})
	go func() { defer close(stormDone); storm.Wait() }()
	select {
	case <-stormDone:
	case <-time.After(30 * time.Second):
		t.Fatal("storm wedged: a quota release was lost in the race")
	case err := <-errs:
		t.Fatal(err)
	}
	close(stop)
	loops.Wait()

	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Guaranteed revival cycle after the storm, so the re-push path ran
	// at least once even under an unlucky interleaving.
	clk.advance(2 * time.Second)
	if err := s.Schedule(); err != nil { // declares n1 dead
		t.Fatal(err)
	}
	if err := s.Heartbeat(HeartbeatRequest{Node: "n1", GPUs: clusterGPUs, Cache: unit.TiB(10)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(); err != nil {
		t.Fatal(err)
	}
	snap := s.Registry().Snapshot()
	if rec := snap.CounterValue("silod_sched_node_recoveries_total", nil); rec < 1 {
		t.Errorf("node never revived during the storm (recoveries %v)", rec)
	}

	// No lost quota: every admit was released exactly once, so the
	// tenant ledger reads zero.
	tenants := s.Tenants()
	if len(tenants) != 1 {
		t.Fatalf("tenant table: %+v", tenants)
	}
	acme := tenants[0]
	if acme.ActiveJobs != 0 || acme.GPUsInUse != 0 || acme.CacheInUse != 0 {
		t.Errorf("quota leaked through the race: jobs %d gpus %d cache %v",
			acme.ActiveJobs, acme.GPUsInUse, acme.CacheInUse)
	}

	// No double allocation: every job completed, so nothing runs and
	// nothing holds GPUs.
	var running, gpus int
	for _, j := range s.Jobs() {
		if !j.Done {
			t.Errorf("job %s never completed", j.JobID)
		}
		if j.Running {
			running++
			gpus += j.GPUs
		}
	}
	if running != 0 || gpus != 0 {
		t.Errorf("%d jobs still running on %d GPUs after completion", running, gpus)
	}
}
