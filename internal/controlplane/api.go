// Package controlplane provides SiloD's deployment layer — the
// substitute for the paper's Kubernetes integration (§6): a scheduler
// daemon that accepts job submissions over HTTP, runs a SiloD policy on
// a schedule, and pushes the resulting allocations to a data-manager
// service exposing the Table 3 APIs. Allocations are persisted in the
// scheduler's annotation store (the pod-annotation analogue), from
// which a restarted data manager reconstructs its state ("Fault
// tolerance", §6).
//
// Everything is stdlib net/http + encoding/json; both services are
// exercised end-to-end with httptest in the package tests and run
// standalone via cmd/silodd and cmd/silodctl.
package controlplane

import (
	"repro/internal/unit"
)

// RegisterDatasetRequest declares a dataset to the data manager.
type RegisterDatasetRequest struct {
	Name      string     `json:"name"`
	Size      unit.Bytes `json:"size"`
	BlockSize unit.Bytes `json:"block_size"`
}

// AttachJobRequest binds a job to a dataset.
type AttachJobRequest struct {
	JobID   string `json:"job_id"`
	Dataset string `json:"dataset"`
}

// AllocateCacheRequest is Table 3's allocateCacheSize(dataset_uri,
// cache_size).
type AllocateCacheRequest struct {
	Dataset string     `json:"dataset"`
	Size    unit.Bytes `json:"size"`
}

// AllocateRemoteIORequest is Table 3's allocateRemoteIO(job_id,
// io_speed).
type AllocateRemoteIORequest struct {
	JobID string         `json:"job_id"`
	Speed unit.Bandwidth `json:"speed"`
}

// ReadRequest is one block access from a FUSE client.
type ReadRequest struct {
	JobID string `json:"job_id"`
	Block int    `json:"block"`
}

// ReadResponse reports the access outcome and throttle delay.
type ReadResponse struct {
	Hit        bool  `json:"hit"`
	WaitMicros int64 `json:"wait_micros"`
}

// JobStatsResponse mirrors datamgr.JobStats over the wire.
type JobStatsResponse struct {
	Dataset         string         `json:"dataset"`
	Epoch           int            `json:"epoch"`
	EffectiveCached unit.Bytes     `json:"effective_cached"`
	AccessedBlocks  int            `json:"accessed_blocks"`
	HitBlocks       int64          `json:"hit_blocks"`
	MissBlocks      int64          `json:"miss_blocks"`
	RemoteBytes     unit.Bytes     `json:"remote_bytes"`
	RemoteIO        unit.Bandwidth `json:"remote_io"`
}

// SubmitJobRequest registers a training job with the scheduler.
// RequestID, when set, makes the submit idempotent: the scheduler
// remembers which job each request ID created, so a client retrying a
// submit whose response was lost gets success instead of a duplicate
// error. The HTTP client fills it automatically.
type SubmitJobRequest struct {
	JobID           string         `json:"job_id"`
	Model           string         `json:"model"`
	Dataset         string         `json:"dataset"`
	DatasetSize     unit.Bytes     `json:"dataset_size"`
	NumGPUs         int            `json:"num_gpus"`
	IdealThroughput unit.Bandwidth `json:"ideal_throughput"`
	TotalBytes      unit.Bytes     `json:"total_bytes"`
	Irregular       bool           `json:"irregular,omitempty"`
	// Tenant names the submitting tenant. When the scheduler runs with
	// a tenant registry (ConfigureTenants), the tenant must be
	// registered and the submission is admission-controlled against its
	// quotas; over-quota submissions are rejected with HTTP 429.
	Tenant    string `json:"tenant,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// HeartbeatRequest reports a node's liveness and the capacity it
// contributes to the cluster. A node that stops heartbeating past the
// liveness timeout is declared dead and its capacity leaves the
// scheduler's effective cluster until it heartbeats again.
type HeartbeatRequest struct {
	Node  string     `json:"node"`
	GPUs  int        `json:"gpus"`
	Cache unit.Bytes `json:"cache,omitempty"`
}

// NodeStatus is the scheduler's view of one node, returned by
// GET /v1/nodes.
type NodeStatus struct {
	Node            string     `json:"node"`
	GPUs            int        `json:"gpus"`
	Cache           unit.Bytes `json:"cache"`
	LastSeenSeconds float64    `json:"last_seen_seconds"` // since scheduler start
	Live            bool       `json:"live"`
}

// TenantStatus is the scheduler's view of one tenant, returned by
// GET /v1/tenants: the registered quotas (zero means unlimited) next to
// the admission controller's live usage.
type TenantStatus struct {
	ID          string         `json:"id"`
	Class       string         `json:"class"`
	GPUQuota    int            `json:"gpu_quota,omitempty"`
	CacheQuota  unit.Bytes     `json:"cache_quota,omitempty"`
	EgressQuota unit.Bandwidth `json:"egress_quota,omitempty"`
	ActiveJobs  int            `json:"active_jobs"`
	GPUsInUse   int            `json:"gpus_in_use"`
	CacheInUse  unit.Bytes     `json:"cache_in_use"`
}

// ProgressRequest reports a job's training progress (the scheduler
// monitors progress "via data access requests", §6).
type ProgressRequest struct {
	JobID          string     `json:"job_id"`
	AttainedBytes  unit.Bytes `json:"attained_bytes"`
	EffectiveCache unit.Bytes `json:"effective_cache"`
	CachedBytes    unit.Bytes `json:"cached_bytes"`
	Done           bool       `json:"done,omitempty"`
}

// JobStatus is the scheduler's view of a job, returned by GET /jobs.
type JobStatus struct {
	SubmitJobRequest
	Running        bool           `json:"running"`
	GPUs           int            `json:"gpus"`
	CacheQuota     unit.Bytes     `json:"cache_quota"`
	RemoteIO       unit.Bandwidth `json:"remote_io"`
	AttainedBytes  unit.Bytes     `json:"attained_bytes"`
	RemainingBytes unit.Bytes     `json:"remaining_bytes"`
	Done           bool           `json:"done"`
}

// Annotations is the persisted allocation state — the analogue of the
// pod annotations Kubernetes keeps for SiloD ("the allocation of remote
// IO and cache is stored in pod annotation", §6). A recovering data
// manager replays it.
type Annotations struct {
	CacheQuota map[string]unit.Bytes     `json:"cache_quota"`
	RemoteIO   map[string]unit.Bandwidth `json:"remote_io"`
	Jobs       map[string]string         `json:"jobs"` // job -> dataset
	Datasets   map[string]DatasetGeom    `json:"datasets"`
}

// DatasetGeom mirrors datamgr.DatasetGeom.
type DatasetGeom struct {
	Size      unit.Bytes `json:"size"`
	BlockSize unit.Bytes `json:"block_size"`
}

// ErrorResponse carries an error over the wire.
type ErrorResponse struct {
	Error string `json:"error"`
}
