// Package controlplane provides SiloD's deployment layer — the
// substitute for the paper's Kubernetes integration (§6): a scheduler
// daemon that accepts job submissions over HTTP, runs a SiloD policy on
// a schedule, and pushes the resulting allocations to a data-manager
// service exposing the Table 3 APIs. Allocations are persisted in the
// scheduler's annotation store (the pod-annotation analogue), from
// which a restarted data manager reconstructs its state ("Fault
// tolerance", §6).
//
// Everything is stdlib net/http + encoding/json; both services are
// exercised end-to-end with httptest in the package tests and run
// standalone via cmd/silodd and cmd/silodctl.
package controlplane

import (
	"fmt"

	"repro/internal/unit"
)

// RegisterDatasetRequest declares a dataset to the data manager.
// silod:untrusted
type RegisterDatasetRequest struct {
	Name      string     `json:"name"`
	Size      unit.Bytes `json:"size"`
	BlockSize unit.Bytes `json:"block_size"`
}

// AttachJobRequest binds a job to a dataset.
// silod:untrusted
type AttachJobRequest struct {
	JobID   string `json:"job_id"`
	Dataset string `json:"dataset"`
}

// AllocateCacheRequest is Table 3's allocateCacheSize(dataset_uri,
// cache_size).
// silod:untrusted
type AllocateCacheRequest struct {
	Dataset string     `json:"dataset"`
	Size    unit.Bytes `json:"size"`
}

// AllocateRemoteIORequest is Table 3's allocateRemoteIO(job_id,
// io_speed).
// silod:untrusted
type AllocateRemoteIORequest struct {
	JobID string         `json:"job_id"`
	Speed unit.Bandwidth `json:"speed"`
}

// ReadRequest is one block access from a FUSE client.
// silod:untrusted
type ReadRequest struct {
	JobID string `json:"job_id"`
	Block int    `json:"block"`
}

// ReadResponse reports the access outcome and throttle delay.
type ReadResponse struct {
	Hit        bool  `json:"hit"`
	WaitMicros int64 `json:"wait_micros"`
}

// JobStatsResponse mirrors datamgr.JobStats over the wire.
type JobStatsResponse struct {
	Dataset         string         `json:"dataset"`
	Epoch           int            `json:"epoch"`
	EffectiveCached unit.Bytes     `json:"effective_cached"`
	AccessedBlocks  int            `json:"accessed_blocks"`
	HitBlocks       int64          `json:"hit_blocks"`
	MissBlocks      int64          `json:"miss_blocks"`
	RemoteBytes     unit.Bytes     `json:"remote_bytes"`
	RemoteIO        unit.Bandwidth `json:"remote_io"`
}

// SubmitJobRequest registers a training job with the scheduler.
// RequestID, when set, makes the submit idempotent: the scheduler
// remembers which job each request ID created, so a client retrying a
// submit whose response was lost gets success instead of a duplicate
// error. The HTTP client fills it automatically.
// silod:untrusted
type SubmitJobRequest struct {
	JobID           string         `json:"job_id"`
	Model           string         `json:"model"`
	Dataset         string         `json:"dataset"`
	DatasetSize     unit.Bytes     `json:"dataset_size"`
	NumGPUs         int            `json:"num_gpus"`
	IdealThroughput unit.Bandwidth `json:"ideal_throughput"`
	TotalBytes      unit.Bytes     `json:"total_bytes"`
	Irregular       bool           `json:"irregular,omitempty"`
	// Tenant names the submitting tenant. When the scheduler runs with
	// a tenant registry (ConfigureTenants), the tenant must be
	// registered and the submission is admission-controlled against its
	// quotas; over-quota submissions are rejected with HTTP 429.
	Tenant    string `json:"tenant,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// HeartbeatRequest reports a node's liveness and the capacity it
// contributes to the cluster. A node that stops heartbeating past the
// liveness timeout is declared dead and its capacity leaves the
// scheduler's effective cluster until it heartbeats again.
// silod:untrusted
type HeartbeatRequest struct {
	Node  string     `json:"node"`
	GPUs  int        `json:"gpus"`
	Cache unit.Bytes `json:"cache,omitempty"`
}

// NodeStatus is the scheduler's view of one node, returned by
// GET /v1/nodes.
type NodeStatus struct {
	Node            string     `json:"node"`
	GPUs            int        `json:"gpus"`
	Cache           unit.Bytes `json:"cache"`
	LastSeenSeconds float64    `json:"last_seen_seconds"` // since scheduler start
	Live            bool       `json:"live"`
}

// TenantStatus is the scheduler's view of one tenant, returned by
// GET /v1/tenants: the registered quotas (zero means unlimited) next to
// the admission controller's live usage.
type TenantStatus struct {
	ID          string         `json:"id"`
	Class       string         `json:"class"`
	GPUQuota    int            `json:"gpu_quota,omitempty"`
	CacheQuota  unit.Bytes     `json:"cache_quota,omitempty"`
	EgressQuota unit.Bandwidth `json:"egress_quota,omitempty"`
	ActiveJobs  int            `json:"active_jobs"`
	GPUsInUse   int            `json:"gpus_in_use"`
	CacheInUse  unit.Bytes     `json:"cache_in_use"`
}

// ProgressRequest reports a job's training progress (the scheduler
// monitors progress "via data access requests", §6).
// silod:untrusted
type ProgressRequest struct {
	JobID          string     `json:"job_id"`
	AttainedBytes  unit.Bytes `json:"attained_bytes"`
	EffectiveCache unit.Bytes `json:"effective_cache"`
	CachedBytes    unit.Bytes `json:"cached_bytes"`
	Done           bool       `json:"done,omitempty"`
}

// JobStatus is the scheduler's view of a job, returned by GET /jobs.
type JobStatus struct {
	SubmitJobRequest
	Running        bool           `json:"running"`
	GPUs           int            `json:"gpus"`
	CacheQuota     unit.Bytes     `json:"cache_quota"`
	RemoteIO       unit.Bandwidth `json:"remote_io"`
	AttainedBytes  unit.Bytes     `json:"attained_bytes"`
	RemainingBytes unit.Bytes     `json:"remaining_bytes"`
	Done           bool           `json:"done"`
}

// Annotations is the persisted allocation state — the analogue of the
// pod annotations Kubernetes keeps for SiloD ("the allocation of remote
// IO and cache is stored in pod annotation", §6). A recovering data
// manager replays it.
type Annotations struct {
	CacheQuota map[string]unit.Bytes     `json:"cache_quota"`
	RemoteIO   map[string]unit.Bandwidth `json:"remote_io"`
	Jobs       map[string]string         `json:"jobs"` // job -> dataset
	Datasets   map[string]DatasetGeom    `json:"datasets"`
}

// DatasetGeom mirrors datamgr.DatasetGeom.
type DatasetGeom struct {
	Size      unit.Bytes `json:"size"`
	BlockSize unit.Bytes `json:"block_size"`
}

// ErrorResponse carries an error over the wire.
type ErrorResponse struct {
	Error string `json:"error"`
}

// The Validate methods below are the admission boundary for every
// wire-decoded request: each handler calls Validate before any field
// reaches capacity accounting, allocation sizing or the data plane.
// They check what is knowable from the request alone; context-dependent
// checks (cluster size, registered tenants) stay with the server.

// Validate rejects malformed dataset registrations.
// silod:validator
func (r *RegisterDatasetRequest) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("controlplane: register needs a dataset name")
	}
	if r.Size <= 0 {
		return fmt.Errorf("controlplane: dataset %s has non-positive size %v", r.Name, r.Size)
	}
	if r.BlockSize < 0 {
		return fmt.Errorf("controlplane: dataset %s has negative block size %v", r.Name, r.BlockSize)
	}
	return nil
}

// Validate rejects malformed job attachments.
// silod:validator
func (r *AttachJobRequest) Validate() error {
	if r.JobID == "" || r.Dataset == "" {
		return fmt.Errorf("controlplane: attach needs job_id and dataset")
	}
	return nil
}

// Validate rejects malformed cache allocations.
// silod:validator
func (r *AllocateCacheRequest) Validate() error {
	if r.Dataset == "" {
		return fmt.Errorf("controlplane: cache allocation needs a dataset")
	}
	if r.Size < 0 {
		return fmt.Errorf("controlplane: dataset %s allocated negative cache %v", r.Dataset, r.Size)
	}
	return nil
}

// Validate rejects malformed remote-IO allocations.
// silod:validator
func (r *AllocateRemoteIORequest) Validate() error {
	if r.JobID == "" {
		return fmt.Errorf("controlplane: remote-IO allocation needs a job_id")
	}
	if r.Speed < 0 {
		return fmt.Errorf("controlplane: job %s allocated negative remote IO %v", r.JobID, r.Speed)
	}
	return nil
}

// Validate rejects malformed block reads.
// silod:validator
func (r *ReadRequest) Validate() error {
	if r.JobID == "" {
		return fmt.Errorf("controlplane: read needs a job_id")
	}
	if r.Block < 0 {
		return fmt.Errorf("controlplane: job %s reads negative block %d", r.JobID, r.Block)
	}
	return nil
}

// Validate rejects submissions that are malformed independent of the
// cluster; the scheduler additionally bounds NumGPUs by cluster size.
// silod:validator
func (r *SubmitJobRequest) Validate() error {
	if r.JobID == "" || r.Dataset == "" {
		return fmt.Errorf("controlplane: submit needs job_id and dataset")
	}
	if r.NumGPUs <= 0 {
		return fmt.Errorf("controlplane: job %s requests %d GPUs", r.JobID, r.NumGPUs)
	}
	if r.DatasetSize <= 0 || r.IdealThroughput <= 0 || r.TotalBytes <= 0 {
		return fmt.Errorf("controlplane: job %s has incomplete profile", r.JobID)
	}
	return nil
}

// Validate rejects malformed heartbeats.
// silod:validator
func (r *HeartbeatRequest) Validate() error {
	if r.Node == "" {
		return fmt.Errorf("controlplane: heartbeat needs a node name")
	}
	if r.GPUs < 0 || r.Cache < 0 {
		return fmt.Errorf("controlplane: node %s heartbeats negative capacity", r.Node)
	}
	return nil
}

// Validate rejects malformed progress reports: a negative counter would
// inflate RemainingBytes (TotalBytes - attained) and skew every later
// scheduling round, so it must not reach the job record.
// silod:validator
func (r *ProgressRequest) Validate() error {
	if r.JobID == "" {
		return fmt.Errorf("controlplane: progress needs a job_id")
	}
	if r.AttainedBytes < 0 || r.EffectiveCache < 0 || r.CachedBytes < 0 {
		return fmt.Errorf("controlplane: job %s reports negative progress (attained %v, effective %v, cached %v)",
			r.JobID, r.AttainedBytes, r.EffectiveCache, r.CachedBytes)
	}
	return nil
}
