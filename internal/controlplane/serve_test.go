package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// newServeStack builds a virtual-clock scheduler in queued-submission
// mode over a local data plane, with three tenants spanning the SLO
// tiers.
func newServeStack(t *testing.T, cfg admission.Config) (*SchedulerServer, *vclock) {
	t.Helper()
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	mgr := datamgr.New(unit.GiB(100), unit.MBpsOf(100), 1, nil)
	vc := newVClock()
	s, err := NewSchedulerServer(core.Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(100)},
		pol, LocalDataPlane{Mgr: mgr}, vc.now)
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry()
	for _, tn := range []tenant.Tenant{
		{ID: "crit", Class: tenant.Critical},
		{ID: "std", Class: tenant.Standard},
		{ID: "shed", Class: tenant.Sheddable},
	} {
		if err := reg.Register(tn); err != nil {
			t.Fatal(err)
		}
	}
	s.ConfigureTenants(reg)
	q, err := admission.New(cfg, s.Registry(), simrng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s.ConfigureAdmission(q)
	return s, vc
}

func postSubmit(t *testing.T, srv *httptest.Server, req SubmitJobRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestQueuedSubmitLifecycle(t *testing.T) {
	s, _ := newServeStack(t, admission.Config{Capacity: 16})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp := postSubmit(t, srv, tenantSubmit("a", "std", 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit status = %d, want 202", resp.StatusCode)
	}
	// Not yet a job: the queue holds it until a round drains.
	if got := len(s.Jobs()); got != 0 {
		t.Fatalf("job admitted before any round ran (%d jobs)", got)
	}
	if err := s.RunRound(context.Background(), ServeConfig{Batch: 8}); err != nil {
		t.Fatal(err)
	}
	jobs := s.Jobs()
	if len(jobs) != 1 || jobs[0].JobID != "a" || !jobs[0].Running {
		t.Fatalf("after round: jobs = %+v, want one running job a", jobs)
	}
}

func TestQueuedSubmitShedsWith503AndRetryAfter(t *testing.T) {
	s, _ := newServeStack(t, admission.Config{Capacity: 8, HighWater: 2, StandardWater: 4})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Two queued standard submissions reach the high-water mark; the
	// next sheddable submission is shed with an explicit 503.
	for i, id := range []string{"a", "b"} {
		if resp := postSubmit(t, srv, tenantSubmit(id, "std", 1)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
	}
	resp := postSubmit(t, srv, tenantSubmit("c", "shed", 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sheddable submit at high-water status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("shed response Retry-After = %q, want a positive hint", ra)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("shed response body not a typed error: %v / %+v", err, e)
	}
	// Critical submissions still queue at this depth.
	if resp := postSubmit(t, srv, tenantSubmit("d", "crit", 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("critical submit at high-water status = %d, want 202", resp.StatusCode)
	}
}

func TestDrainingSubmitsGet503(t *testing.T) {
	s, _ := newServeStack(t, admission.Config{Capacity: 8})
	srv := httptest.NewServer(s)
	defer srv.Close()

	s.SetDraining(true)
	resp := postSubmit(t, srv, tenantSubmit("a", "crit", 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 carries no Retry-After")
	}
	s.SetDraining(false)
	if resp := postSubmit(t, srv, tenantSubmit("a", "crit", 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit status = %d, want 202", resp.StatusCode)
	}
}

// TestServeLoopInjectedTicks drives Serve with an injected tick source
// — each tick runs exactly one round; stop ends the loop.
func TestServeLoopInjectedTicks(t *testing.T) {
	s, _ := newServeStack(t, admission.Config{Capacity: 8})
	ticks := make(chan time.Time)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ServeConfig{Ticks: ticks, Batch: 4}, stop, nil)
	}()
	if err := s.admissionQueue().Offer(tenant.Standard, tenantSubmit("a", "std", 1)); err != nil {
		t.Fatal(err)
	}
	ticks <- time.Unix(1, 0)
	ticks <- time.Unix(2, 0) // second tick proves the first round finished
	close(stop)
	<-done
	if jobs := s.Jobs(); len(jobs) != 1 || jobs[0].JobID != "a" {
		t.Fatalf("serve loop did not drain the queue: %+v", jobs)
	}
	snap := s.Registry().Snapshot()
	if got := snap.CounterValue("silod_sched_rounds_total", nil); got < 2 {
		t.Errorf("rounds after two ticks = %v, want >= 2", got)
	}
}

// TestRoundWatchdog: rounds slower than the deadline (on the injected
// clock) increment the overrun counter; fast rounds do not.
func TestRoundWatchdog(t *testing.T) {
	s, vc := newServeStack(t, admission.Config{Capacity: 8})
	// A policy round on the virtual clock takes zero virtual time, so
	// first verify no overrun fires.
	if err := s.RunRound(context.Background(), ServeConfig{RoundDeadline: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	snap := s.Registry().Snapshot()
	if got := snap.CounterValue("silod_sched_round_overruns_total", nil); got != 0 {
		t.Fatalf("fast round counted as overrun (%v)", got)
	}
	// Wedge the clock forward mid-round via a policy that advances it.
	slow := &clockAdvancingPolicy{inner: s.policy, vc: vc, step: 10 * time.Millisecond}
	s.mu.Lock()
	s.policy = slow
	s.mu.Unlock()
	if err := s.Submit(tenantSubmit("a", "std", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.RunRound(context.Background(), ServeConfig{RoundDeadline: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	snap = s.Registry().Snapshot()
	if got := snap.CounterValue("silod_sched_round_overruns_total", nil); got != 1 {
		t.Errorf("slow round overruns = %v, want 1", got)
	}
	if v, ok := snap.Get("silod_sched_last_round_seconds", nil); !ok || *v.Value < 0.009 {
		t.Errorf("last-round gauge = %+v, want >= 10ms", v)
	}
}

// clockAdvancingPolicy advances a virtual clock inside Assign, so the
// round appears slow to the watchdog without any real sleeping.
type clockAdvancingPolicy struct {
	inner core.Policy
	vc    *vclock
	step  time.Duration
}

func (p *clockAdvancingPolicy) Name() string { return p.inner.Name() }
func (p *clockAdvancingPolicy) Assign(c core.Cluster, now unit.Time, views []core.JobView) core.Assignment {
	p.vc.advance(p.step)
	return p.inner.Assign(c, now, views)
}

// TestScheduleCtxCancelled: a cancelled context aborts the round before
// the solve and reports a wrapped context error.
func TestScheduleCtxCancelled(t *testing.T) {
	s, _ := newServeStack(t, admission.Config{Capacity: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.ScheduleCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled round error = %v, want context.Canceled", err)
	}
}
