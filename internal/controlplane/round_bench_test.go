package controlplane

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/unit"
)

// sinkDataPlane accepts every push without doing work, so benchmarks
// and scale tests measure the scheduler round itself, not a data
// manager behind it.
type sinkDataPlane struct{ pushes int }

func (d *sinkDataPlane) RegisterDataset(string, unit.Bytes, unit.Bytes) error { return nil }
func (d *sinkDataPlane) AttachJob(string, string) error                       { return nil }
func (d *sinkDataPlane) DetachJob(string) error                               { return nil }
func (d *sinkDataPlane) AllocateCacheSize(string, unit.Bytes) error {
	d.pushes++
	return nil
}
func (d *sinkDataPlane) AllocateRemoteIO(string, unit.Bandwidth) error {
	d.pushes++
	return nil
}

// benchScheduler builds a scheduler with jobs active jobs and nodes
// heartbeating nodes against a sink data plane.
func benchScheduler(tb testing.TB, jobs, nodes int) *SchedulerServer {
	tb.Helper()
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		tb.Fatal(err)
	}
	cl := core.Cluster{GPUs: 4 * max(nodes, 1), Cache: unit.TiB(100), RemoteIO: unit.Gbps(100)}
	now := time.Unix(0, 0)
	s, err := NewSchedulerServer(cl, pol, &sinkDataPlane{}, func() time.Time { return now })
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := s.Heartbeat(HeartbeatRequest{
			Node: fmt.Sprintf("n%05d", i), GPUs: 4, Cache: unit.GiB(64),
		}); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < jobs; i++ {
		req := SubmitJobRequest{
			JobID:           fmt.Sprintf("j%05d", i),
			Model:           "ResNet-50",
			Dataset:         fmt.Sprintf("ds%03d", i%50),
			DatasetSize:     unit.GiB(50),
			NumGPUs:         1 + i%4,
			IdealThroughput: unit.MBpsOf(114),
			TotalBytes:      unit.GiB(500),
		}
		if err := s.Submit(req); err != nil {
			tb.Fatal(err)
		}
	}
	return s
}

// BenchmarkScheduleRound measures the steady-state allocation round —
// the silod:hotpath loop — including the policy solve and the
// data-plane push. The round scratch makes allocs/op flat in the round
// count; hotalloc lint-gates the residual (policy internals and the
// waived sort).
func BenchmarkScheduleRound(b *testing.B) {
	for _, size := range []struct{ jobs, nodes int }{{64, 8}, {512, 64}} {
		b.Run(fmt.Sprintf("jobs%d_nodes%d", size.jobs, size.nodes), func(b *testing.B) {
			s := benchScheduler(b, size.jobs, size.nodes)
			if err := s.Schedule(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Schedule(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeartbeatSteadyState measures the heartbeat fast path: a
// known live node re-reporting unchanged capacity must not rebuild the
// effective cluster (an O(nodes) sum) or touch the gauges.
func BenchmarkHeartbeatSteadyState(b *testing.B) {
	s := benchScheduler(b, 0, 4096)
	req := HeartbeatRequest{Node: "n02048", GPUs: 4, Cache: unit.GiB(64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Heartbeat(req); err != nil {
			b.Fatal(err)
		}
	}
}
