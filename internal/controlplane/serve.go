package controlplane

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/admission"
	"repro/internal/tenant"
)

// This file is the online serving mode (ROADMAP item 4): the bounded
// admission queue in front of Submit, and the single scheduler
// goroutine that drains it in batches per round — so the HTTP path
// stays O(enqueue) under any burst, and overload turns into explicit,
// SLO-ranked shedding instead of a wedged scheduler.

// ServeConfig tunes the round loop.
type ServeConfig struct {
	// Interval is the round period for the real-time ticker (ignored
	// when Ticks is set; 0 defaults to one second).
	Interval time.Duration
	// Batch bounds how many queued submissions one round drains
	// (0 = drain everything).
	Batch int
	// RoundDeadline is the watchdog threshold: rounds that take longer
	// (measured on the injected clock) increment
	// silod_sched_round_overruns_total. 0 disables the watchdog.
	RoundDeadline time.Duration
	// Ticks injects the tick source, for tests and simulations driving
	// rounds on a virtual clock. nil uses a real ticker at Interval.
	Ticks <-chan time.Time
}

// ConfigureAdmission puts the scheduler into queued-submission mode:
// POST /v1/jobs validates, classifies by tenant SLO, and enqueues in
// O(1), answering 202 (queued) or a typed 503 with a Retry-After hint
// when the shed policy rejects. The queue is drained by RunRound —
// call Serve (or RunRound directly) to make progress. Call once,
// before the server starts serving.
func (s *SchedulerServer) ConfigureAdmission(q *admission.Queue) {
	s.mu.Lock()
	s.queue = q
	s.mu.Unlock()
}

// SetDraining flips the drain flag: while draining, new submissions
// get a clean 503 (Retry-After 1s) so clients fail over, while
// in-flight requests and queued work complete. The daemon sets it on
// SIGTERM before shutting the listeners down.
func (s *SchedulerServer) SetDraining(v bool) {
	s.mu.Lock()
	s.draining = v
	s.mu.Unlock()
	if v {
		s.met.draining.Set(1)
	} else {
		s.met.draining.Set(0)
	}
}

// isDraining reports the drain flag.
func (s *SchedulerServer) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// admissionQueue returns the configured queue (nil in synchronous
// mode).
func (s *SchedulerServer) admissionQueue() *admission.Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue
}

// classOf resolves a tenant ID to its SLO class (Standard for the
// untenanted flat pool).
func (s *SchedulerServer) classOf(tenantID string) tenant.SLOClass {
	s.mu.Lock()
	reg := s.tenants
	s.mu.Unlock()
	if reg == nil {
		return tenant.Standard
	}
	return reg.ClassOf(tenantID)
}

// drainAdmission pops up to batch queued submissions and admits them
// through the synchronous Submit path. Per-submission failures (quota
// rejections that raced capacity away, duplicate IDs from retries
// whose first attempt landed) are counted, not fatal: the round must
// go on.
func (s *SchedulerServer) drainAdmission(batch int) (admitted int) {
	q := s.admissionQueue()
	if q == nil {
		return 0
	}
	for _, payload := range q.Drain(batch) {
		req, ok := payload.(SubmitJobRequest)
		if !ok {
			s.met.asyncSubmitErrors.Inc()
			continue
		}
		if err := s.Submit(req); err != nil {
			s.met.asyncSubmitErrors.Inc()
			continue
		}
		admitted++
	}
	return admitted
}

// RunRound executes one serving round: drain an admission batch, run
// the scheduling round with ctx propagated through the critical
// section, and feed the round watchdog. This is the only place rounds
// happen in serve mode, so every duration the watchdog sees covers the
// full drain-solve-push cycle.
func (s *SchedulerServer) RunRound(ctx context.Context, cfg ServeConfig) error {
	start := s.clock()
	s.drainAdmission(cfg.Batch)
	err := s.ScheduleCtx(ctx)
	dur := s.clock().Sub(start)
	s.met.roundSeconds.Observe(dur.Seconds())
	s.met.lastRoundSeconds.Set(dur.Seconds())
	if cfg.RoundDeadline > 0 && dur > cfg.RoundDeadline {
		s.met.roundOverruns.Inc()
	}
	return err
}

// Serve runs rounds until stop closes — the daemon's single scheduler
// goroutine. Submissions, heartbeats and progress reports never run
// rounds themselves; they enqueue or mutate state in O(1) and this
// loop picks the work up on the next tick.
func (s *SchedulerServer) Serve(cfg ServeConfig, stop <-chan struct{}, onErr func(error)) {
	ticks := cfg.Ticks
	if ticks == nil {
		c, cancel := realTicks(cfg.Interval)
		defer cancel()
		ticks = c
	}
	for {
		select {
		case <-stop:
			return
		case <-ticks:
			if err := s.RunRound(context.Background(), cfg); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}

// realTicks wraps a real-time ticker for the daemon edge. Simulations
// and tests inject ServeConfig.Ticks instead, so virtual-time runs
// never touch this boundary.
//
// silod:inject wallclock
func realTicks(d time.Duration) (<-chan time.Time, func()) {
	if d <= 0 {
		d = time.Second
	}
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// retryAfterHeader formats a Retry-After hint as whole seconds
// (minimum 1: zero means "now" and defeats the backoff).
func retryAfterHeader(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeOverload writes a 503 with the Retry-After header — the typed
// backpressure response the retrying client understands.
func writeOverload(w http.ResponseWriter, retryAfter time.Duration, err error) {
	w.Header().Set("Retry-After", retryAfterHeader(retryAfter))
	writeError(w, http.StatusServiceUnavailable, err)
}

// enqueueSubmit is the queued-mode submit path: validate what is
// knowable statelessly, classify, and offer to the queue. It reports
// whether it handled the request (false = caller falls through to the
// synchronous path).
func (s *SchedulerServer) enqueueSubmit(w http.ResponseWriter, req SubmitJobRequest) bool {
	q := s.admissionQueue()
	if q == nil {
		return false
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return true
	}
	if req.NumGPUs > s.cluster.GPUs {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"controlplane: job %s requests %d GPUs (cluster has %d)",
			req.JobID, req.NumGPUs, s.cluster.GPUs))
		return true
	}
	if err := q.Offer(s.classOf(req.Tenant), req); err != nil {
		var oe *admission.OverloadError
		if errors.As(err, &oe) {
			writeOverload(w, oe.RetryAfter, err)
			return true
		}
		writeError(w, http.StatusInternalServerError, err)
		return true
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"job_id": req.JobID, "status": "queued"})
	return true
}
