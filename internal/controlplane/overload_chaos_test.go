package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// chaosSummary is the canonical JSON the overload chaos run emits;
// byte-identity of two same-seed runs is asserted over this.
type chaosSummary struct {
	Tiers          map[string]loadgen.TierStats `json:"tiers"`
	Rounds         int                          `json:"rounds"`
	MaxDepth       int                          `json:"max_depth"`
	FinalDepth     int                          `json:"final_depth"`
	FinalState     string                       `json:"final_state"`
	AdmittedJobs   int                          `json:"admitted_jobs"`
	DegradedRounds int                          `json:"degraded_rounds"`
	AsyncErrors    float64                      `json:"async_errors"`
}

// runOverloadChaos replays a seeded 10x-overload burst against a
// virtual-clock scheduler in queued-submission mode while a PR-4 fault
// schedule degrades the cluster underneath it, then keeps running
// rounds until the backlog fully drains. Single-goroutine and fully
// seeded: two runs with the same seed must be byte-identical.
func runOverloadChaos(t *testing.T, seed int64) chaosSummary {
	t.Helper()
	base := core.Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(200)}
	// Capacity shocks mid-burst: half the GPUs and half the cache go
	// away, then come back.
	schedule := &faults.Schedule{Events: []faults.Event{
		{At: 2, Kind: faults.KindGPULoss, GPUs: 4},
		{At: 3, Kind: faults.KindCacheLoss, Cache: unit.GiB(50)},
		{At: 6, Kind: faults.KindGPURestore, GPUs: 4},
		{At: 7, Kind: faults.KindCacheRestore, Cache: unit.GiB(50)},
	}}
	inj, err := faults.NewInjector(base, schedule, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	mgr := datamgr.New(base.Cache, base.RemoteIO, 1, nil)
	vc := newVClock()
	s, err := NewSchedulerServer(base, pol, LocalDataPlane{Mgr: mgr}, vc.now)
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry()
	for _, tn := range loadgen.Tenants() {
		if err := reg.Register(tn); err != nil {
			t.Fatal(err)
		}
	}
	s.ConfigureTenants(reg)
	q, err := admission.New(admission.Config{Capacity: 64, HighWater: 12, StandardWater: 24},
		s.Registry(), simrng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	s.ConfigureAdmission(q)

	// Rounds drain 8 submissions/second; the burst arrives at ~40/s
	// (MeanIAT 25ms) across 300 jobs — a sustained 5x overload with
	// CV-2 bursts peaking well past 10x the drain rate.
	const batch = 8
	plan, err := loadgen.Plan(loadgen.Spec{
		Seed: seed, Jobs: 300,
		MeanIAT: 25 * time.Millisecond, CV: 2,
		Datasets: 10, MinDataset: unit.GiB(1), MaxDataset: unit.GiB(20),
		MaxGPUs:    2,
		CritWeight: 1, StdWeight: 2, ShedWeight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	var report loadgen.Report
	sum := chaosSummary{Tiers: map[string]loadgen.TierStats{}}
	next := 0
	drainedAt := -1
	for tick := 0; ; tick++ {
		now := time.Duration(tick) * time.Second
		vc.t = time.Unix(0, 0).Add(now)
		vnow := unit.Time(now.Seconds())
		for {
			if _, ok := inj.Next(vnow); !ok {
				break
			}
		}
		eff := inj.Effective()
		if err := s.Heartbeat(HeartbeatRequest{Node: "n1", GPUs: eff.GPUs, Cache: eff.Cache}); err != nil {
			t.Fatal(err)
		}
		// Offer every arrival due by now through the real HTTP handler.
		for next < len(plan) && plan[next].At <= now {
			a := plan[next]
			next++
			body, err := json.Marshal(SubmitJobRequest{
				JobID: a.JobID, Model: "ResNet-50",
				Dataset: a.Dataset, DatasetSize: a.DatasetSize,
				NumGPUs: a.NumGPUs, IdealThroughput: a.IdealThroughput,
				TotalBytes: a.TotalBytes, Tenant: a.Tenant,
			})
			if err != nil {
				t.Fatal(err)
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body)))
			switch rec.Code {
			case 202:
				report.Record(a.SLO, loadgen.StatusAccepted)
			case 503:
				if rec.Header().Get("Retry-After") == "" {
					t.Fatalf("shed response for %s has no Retry-After", a.JobID)
				}
				report.Record(a.SLO, loadgen.StatusShed)
			case 400, 429:
				report.Record(a.SLO, loadgen.StatusRejected)
			default:
				report.Record(a.SLO, loadgen.StatusError)
			}
		}
		if d := q.Depth(); d > sum.MaxDepth {
			sum.MaxDepth = d
		}
		if inj.Degraded() {
			sum.DegradedRounds++
		}
		if err := s.RunRound(context.Background(), ServeConfig{Batch: batch, RoundDeadline: time.Minute}); err != nil {
			t.Fatalf("round at tick %d: %v", tick, err)
		}
		sum.Rounds++
		if next >= len(plan) && q.Depth() == 0 {
			if drainedAt < 0 {
				drainedAt = tick
			}
			// A few steady-state rounds past recovery, then stop.
			if tick >= drainedAt+3 {
				break
			}
		}
		if tick > 600 {
			t.Fatalf("no recovery after %d rounds (depth %d, %d/%d offered)",
				tick, q.Depth(), next, len(plan))
		}
	}
	for _, c := range tenant.Classes() {
		sum.Tiers[c.String()] = report.Tier(c)
	}
	sum.FinalDepth = q.Depth()
	sum.FinalState = q.State().String()
	sum.AdmittedJobs = len(s.Jobs())
	snap := s.Registry().Snapshot()
	sum.AsyncErrors = snap.CounterValue("silod_sched_async_submit_errors_total", nil)

	if !report.ShedMonotone() {
		t.Errorf("shed fractions not monotone in SLO rank: crit %v std %v shed %v",
			report.Tier(tenant.Critical).ShedFraction(),
			report.Tier(tenant.Standard).ShedFraction(),
			report.Tier(tenant.Sheddable).ShedFraction())
	}
	if got := report.Tier(tenant.Critical).Shed; got != 0 {
		t.Errorf("critical tier shed %d submissions during overload", got)
	}
	if shed := report.Tier(tenant.Sheddable); shed.Shed == 0 {
		t.Errorf("10x burst shed nothing from the sheddable tier: %+v", shed)
	}
	if sum.FinalDepth != 0 || sum.FinalState != "open" {
		t.Errorf("no recovery to steady state: depth %d state %s", sum.FinalDepth, sum.FinalState)
	}
	if sum.AsyncErrors != 0 {
		t.Errorf("round drains dropped %v submissions", sum.AsyncErrors)
	}
	if want := report.Total().Accepted; sum.AdmittedJobs != want {
		t.Errorf("admitted jobs %d != accepted submissions %d", sum.AdmittedJobs, want)
	}
	if sum.DegradedRounds == 0 {
		t.Error("fault schedule never degraded the cluster")
	}
	return sum
}

// TestOverloadChaos is the serving-mode acceptance test: a 10x burst
// plus a fault schedule must shed by SLO rank (critical never), keep
// rounds under their deadline, and recover to an empty open queue —
// and the whole run must be byte-identical for a fixed seed.
func TestOverloadChaos(t *testing.T) {
	a := runOverloadChaos(t, 42)
	b := runOverloadChaos(t, 42)
	ja, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("same-seed chaos runs diverged:\n%s\n---\n%s", ja, jb)
	}
	// A different seed reshuffles the storm but the invariants held
	// inside runOverloadChaos for it too.
	runOverloadChaos(t, 7)
}
