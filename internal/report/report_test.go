package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 3.14159)
	out := tb.String()
	for _, want := range []string{"== demo ==", "Name", "Value", "alpha", "3.14"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
	// Columns align: every data line has the value column at the same
	// offset as the header's.
	headerIdx := strings.Index(lines[1], "Value")
	if idx := strings.Index(lines[3], "1"); idx != headerIdx {
		t.Errorf("column misaligned: %d vs %d\n%s", idx, headerIdx, out)
	}
	if tb.NumRows() != 2 {
		t.Error("NumRows")
	}
}

func TestTableRowShaping(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-a")          // short row pads
	tb.AddRow("a", "b", "extra") // long row truncates
	out := tb.String()
	if strings.Contains(out, "extra") {
		t.Error("extra cell not dropped")
	}
	if !strings.Contains(out, "only-a") {
		t.Error("short row lost")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	s := &stats.Series{Name: "tput"}
	s.Append(1, 100)
	s.Append(2, 200)
	var b strings.Builder
	if err := WriteSeriesCSV(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "series,time,value\n") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "tput,1.0000,100.000000") {
		t.Errorf("row missing:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("%d lines", got)
	}
}

func TestRenderSeries(t *testing.T) {
	s := &stats.Series{Name: "x"}
	for i := 0; i < 100; i++ {
		s.Append(float64(i), float64(i))
	}
	var b strings.Builder
	RenderSeries(&b, s, 5)
	out := b.String()
	if !strings.Contains(out, "series x") || strings.Count(out, "t=") != 5 {
		t.Errorf("render:\n%s", out)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != "2.00x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(1, 0); got != "inf" {
		t.Errorf("Speedup by zero = %q", got)
	}
}
