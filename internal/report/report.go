// Package report renders experiment results as aligned ASCII tables and
// CSV series, the formats the benchmark harness prints when
// regenerating the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered
// with %v, floats with 2 decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteSeriesCSV writes one or more series sharing no time base as CSV:
// name,time,value per row.
func WriteSeriesCSV(w io.Writer, series ...*stats.Series) error {
	if _, err := fmt.Fprintln(w, "series,time,value"); err != nil {
		return err
	}
	for _, s := range series {
		for i := 0; i < s.Len(); i++ {
			t, v := s.At(i)
			if _, err := fmt.Fprintf(w, "%s,%.4f,%.6f\n", s.Name, t, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderSeries prints a compact textual sketch of a series: up to n
// evenly spaced (time, value) samples on one line each.
func RenderSeries(w io.Writer, s *stats.Series, n int) {
	ds := s.Downsample(n)
	fmt.Fprintf(w, "-- series %s (%d points, showing %d) --\n", s.Name, s.Len(), ds.Len())
	for i := 0; i < ds.Len(); i++ {
		t, v := ds.At(i)
		fmt.Fprintf(w, "  t=%10.1f  v=%12.3f\n", t, v)
	}
}

// Speedup formats a baseline/improved ratio the way the paper quotes it
// ("2.16x").
func Speedup(baseline, improved float64) string {
	if improved <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", baseline/improved)
}
