package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// FromSnapshot renders a metrics snapshot as a table: one row per
// counter/gauge series, and _count/_sum rows per histogram series. Rows
// come out in snapshot order (metric name, then label fingerprint), so
// the same run always renders the same table — the bridge between the
// metrics subsystem and the report surface the CLIs print.
func FromSnapshot(s metrics.Snapshot) *Table {
	title := "metrics"
	if s.Registry != "" {
		title = "metrics: " + s.Registry
	}
	t := NewTable(title, "Metric", "Labels", "Value")
	for _, m := range s.Metrics {
		lbl := labelString(m.Labels)
		if m.Type == "histogram" {
			t.AddRow(m.Name+"_count", lbl, fmt.Sprintf("%d", m.Count))
			t.AddRow(m.Name+"_sum", lbl, formatValue(m.Sum))
			continue
		}
		var v float64
		if m.Value != nil {
			v = *m.Value
		}
		t.AddRow(m.Name, lbl, formatValue(v))
	}
	return t
}

// labelString renders labels as "k1=v1,k2=v2" with sorted keys.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return strings.Join(parts, ",")
}

// formatValue prints metric values without float noise: integers stay
// integral, everything else uses shortest-round-trip notation.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
