package report

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestFromSnapshot builds a small registry and checks the rendered
// bridge table: one row per scalar series, _count/_sum per histogram,
// sorted labels, integral values printed without decimals.
func TestFromSnapshot(t *testing.T) {
	r := metrics.NewRegistry("bridge")
	r.Counter("silod_cache_hits_total", metrics.L("policy", "uniform")).Add(7)
	r.Gauge("silod_sim_remoteio_utilization_ratio").Set(0.75)
	h := r.Histogram("silod_sim_jct_minutes", metrics.ExpBuckets(1, 2, 4))
	h.Observe(3)
	h.Observe(5)

	tbl := FromSnapshot(r.Snapshot())
	if tbl.NumRows() != 4 { // counter + gauge + histogram count/sum
		t.Fatalf("rows = %d, want 4", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{
		"metrics: bridge",
		"silod_cache_hits_total",
		"policy=uniform",
		"silod_sim_jct_minutes_count",
		"silod_sim_jct_minutes_sum",
		"0.75",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Counter value renders integral, no float noise.
	if !strings.Contains(out, " 7") || strings.Contains(out, "7.00") {
		t.Errorf("counter should render as integer:\n%s", out)
	}
}

// TestFromSnapshotEmpty: a zero snapshot renders a headers-only table.
func TestFromSnapshotEmpty(t *testing.T) {
	tbl := FromSnapshot(metrics.Snapshot{})
	if tbl.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", tbl.NumRows())
	}
	if !strings.Contains(tbl.String(), "metrics") {
		t.Errorf("title missing:\n%s", tbl.String())
	}
}
