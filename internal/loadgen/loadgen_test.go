package loadgen

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/tenant"
	"repro/internal/unit"
)

func validSpec() Spec {
	return Spec{
		Seed:       7,
		Jobs:       500,
		MeanIAT:    100 * time.Millisecond,
		CV:         2,
		Datasets:   20,
		MinDataset: unit.GiB(1),
		MaxDataset: unit.GiB(50),
		MaxGPUs:    4,
		CritWeight: 1,
		StdWeight:  2,
		ShedWeight: 2,
	}
}

func TestSpecValidation(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.Jobs = 0 },
		func(s *Spec) { s.Jobs = 2_000_000 },
		func(s *Spec) { s.MeanIAT = 0 },
		func(s *Spec) { s.CV = 0 },
		func(s *Spec) { s.CV = 100 },
		func(s *Spec) { s.Datasets = 0 },
		func(s *Spec) { s.MinDataset = 0 },
		func(s *Spec) { s.MaxDataset = s.MinDataset / 2 },
		func(s *Spec) { s.MaxGPUs = 0 },
		func(s *Spec) { s.MaxGPUs = 100_000 },
		func(s *Spec) { s.CritWeight, s.StdWeight, s.ShedWeight = 0, 0, 0 },
		func(s *Spec) { s.ShedWeight = -1 },
	}
	for i, mut := range mutations {
		s := validSpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, s)
		}
		if _, err := Plan(s); err == nil {
			t.Errorf("mutation %d planned: %+v", i, s)
		}
	}
}

func TestPlanDeterministicAndWellFormed(t *testing.T) {
	spec := validSpec()
	a, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same spec produced different plans")
	}
	if len(a) != spec.Jobs {
		t.Fatalf("plan has %d arrivals, want %d", len(a), spec.Jobs)
	}
	sizeOf := map[string]unit.Bytes{}
	var prev time.Duration
	seenTier := map[tenant.SLOClass]bool{}
	for i, ar := range a {
		if ar.At < prev {
			t.Fatalf("arrival %d goes back in time: %v < %v", i, ar.At, prev)
		}
		prev = ar.At
		if ar.NumGPUs < 1 || ar.NumGPUs > spec.MaxGPUs {
			t.Fatalf("arrival %d gang size %d outside [1, %d]", i, ar.NumGPUs, spec.MaxGPUs)
		}
		if ar.DatasetSize < spec.MinDataset || ar.DatasetSize > spec.MaxDataset {
			t.Fatalf("arrival %d dataset size %v outside bounds", i, ar.DatasetSize)
		}
		if ar.TotalBytes < ar.DatasetSize {
			t.Fatalf("arrival %d trains for less than one epoch", i)
		}
		if want, ok := sizeOf[ar.Dataset]; ok && want != ar.DatasetSize {
			t.Fatalf("dataset %s has two sizes: %v and %v", ar.Dataset, want, ar.DatasetSize)
		}
		sizeOf[ar.Dataset] = ar.DatasetSize
		if ar.Tenant != TenantID(ar.SLO) {
			t.Fatalf("arrival %d tenant %q does not match tier %v", i, ar.Tenant, ar.SLO)
		}
		seenTier[ar.SLO] = true
	}
	for _, c := range tenant.Classes() {
		if !seenTier[c] {
			t.Errorf("500-arrival plan never used tier %v", c)
		}
	}
}

func TestPlanTierMixTracksWeights(t *testing.T) {
	spec := validSpec()
	spec.Jobs = 4000
	spec.CritWeight, spec.StdWeight, spec.ShedWeight = 1, 1, 2
	plan, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[tenant.SLOClass]int{}
	for _, a := range plan {
		counts[a.SLO]++
	}
	// Expected fractions 0.25 / 0.25 / 0.5 within 5 points.
	checks := map[tenant.SLOClass]float64{
		tenant.Critical: 0.25, tenant.Standard: 0.25, tenant.Sheddable: 0.5,
	}
	for c, want := range checks {
		got := float64(counts[c]) / float64(spec.Jobs)
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("tier %v fraction = %v, want ~%v", c, got, want)
		}
	}
}

func TestPlanBurstinessTracksCV(t *testing.T) {
	gaps := func(cv float64) (mean, sd float64) {
		spec := validSpec()
		spec.Jobs = 5000
		spec.CV = cv
		plan, err := Plan(spec)
		if err != nil {
			t.Fatal(err)
		}
		var prev time.Duration
		var xs []float64
		for _, a := range plan {
			xs = append(xs, float64(a.At-prev))
			prev = a.At
		}
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		for _, x := range xs {
			sd += (x - mean) * (x - mean)
		}
		sd /= float64(len(xs))
		return mean, math.Sqrt(sd)
	}
	for _, cv := range []float64{0.5, 1, 2} {
		mean, sd := gaps(cv)
		got := sd / mean
		if got < cv*0.85 || got > cv*1.15 {
			t.Errorf("cv %v: empirical CV %v outside 15%%", cv, got)
		}
	}
}

func TestReportAggregationAndMonotone(t *testing.T) {
	var r Report
	for i := 0; i < 10; i++ {
		r.Record(tenant.Critical, StatusAccepted)
	}
	for i := 0; i < 10; i++ {
		st := StatusAccepted
		if i < 3 {
			st = StatusShed
		}
		r.Record(tenant.Standard, st)
	}
	for i := 0; i < 10; i++ {
		st := StatusAccepted
		if i < 7 {
			st = StatusShed
		}
		r.Record(tenant.Sheddable, st)
	}
	r.Record(tenant.Standard, StatusRejected)
	r.Record(tenant.Standard, StatusError)
	if f := r.Tier(tenant.Sheddable).ShedFraction(); f != 0.7 {
		t.Errorf("sheddable shed fraction = %v, want 0.7", f)
	}
	if !r.ShedMonotone() {
		t.Error("monotone shed profile reported as non-monotone")
	}
	tot := r.Total()
	if tot.Offered != 32 || tot.Shed != 10 || tot.Rejected != 1 || tot.Errors != 1 {
		t.Errorf("totals = %+v", tot)
	}
	// Flip: critical shedding more than sheddable must fail the check.
	var bad Report
	bad.Record(tenant.Critical, StatusShed)
	bad.Record(tenant.Sheddable, StatusAccepted)
	if bad.ShedMonotone() {
		t.Error("inverted shed profile reported as monotone")
	}
	for _, s := range []Status{StatusAccepted, StatusShed, StatusRejected, StatusError, Status(42)} {
		if s.String() == "" {
			t.Errorf("Status(%d) has empty String", int(s))
		}
	}
}

func TestQuantile(t *testing.T) {
	if q := Quantile(nil, 0.99); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	xs := []float64{5, 1, 4, 2, 3}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	// The input must not be reordered.
	if xs[0] != 5 || xs[4] != 3 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}
