// Package loadgen generates seeded, bursty submission workloads for
// the control plane's online serving mode and aggregates the outcome
// statistics the overload suite asserts on (shed fractions per SLO
// tier, latency quantiles). Arrival plans are pure functions of the
// Spec — same seed, same plan, byte for byte — so both the chaos
// acceptance test and cmd/silodload replay identical storms.
//
// The package deliberately does not import internal/controlplane:
// arrivals carry plain job parameters and the caller maps them onto
// its submit path, which lets the controlplane package itself drive a
// generator in its tests without an import cycle.
package loadgen

import (
	"fmt"
	"math"
	"time"

	"repro/internal/simrng"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// Spec parameterizes one workload. Specs arrive from CLI flags and
// JSON files, so the fields are untrusted until Validate has run.
// silod:untrusted
type Spec struct {
	// Seed roots every stream the generator draws from.
	Seed int64 `json:"seed"`
	// Jobs is the number of arrivals to plan.
	Jobs int `json:"jobs"`
	// MeanIAT is the mean interarrival time.
	MeanIAT time.Duration `json:"mean_iat"`
	// CV is the interarrival coefficient of variation: 1 is Poisson,
	// >1 is burstier (gamma-distributed gaps).
	CV float64 `json:"cv"`
	// Datasets is the number of distinct datasets arrivals share,
	// picked Zipf(1.1) so a few datasets are hot, as in the paper's
	// production traces.
	Datasets int `json:"datasets"`
	// MinDataset and MaxDataset bound the (log-normal) dataset sizes.
	MinDataset unit.Bytes `json:"min_dataset"`
	MaxDataset unit.Bytes `json:"max_dataset"`
	// MaxGPUs bounds each job's gang size (uniform in [1, MaxGPUs]).
	MaxGPUs int `json:"max_gpus"`
	// CritWeight, StdWeight and ShedWeight set the SLO-tier mix.
	CritWeight float64 `json:"crit_weight"`
	StdWeight  float64 `json:"std_weight"`
	ShedWeight float64 `json:"shed_weight"`
}

// Validate bounds every field before it can reach a loop bound or an
// allocation size. It is the Spec's sanitizer in the inputflow sense.
// silod:validator
func (s Spec) Validate() error {
	if s.Jobs <= 0 || s.Jobs > 1_000_000 {
		return fmt.Errorf("loadgen: jobs must be in [1, 1e6] (got %d)", s.Jobs)
	}
	if s.MeanIAT <= 0 {
		return fmt.Errorf("loadgen: mean interarrival must be positive (got %v)", s.MeanIAT)
	}
	if s.CV <= 0 || s.CV > 16 {
		return fmt.Errorf("loadgen: cv must be in (0, 16] (got %v)", s.CV)
	}
	if s.Datasets <= 0 || s.Datasets > 10_000 {
		return fmt.Errorf("loadgen: datasets must be in [1, 1e4] (got %d)", s.Datasets)
	}
	if s.MinDataset <= 0 || s.MaxDataset < s.MinDataset {
		return fmt.Errorf("loadgen: dataset sizes must satisfy 0 < min (%v) <= max (%v)",
			s.MinDataset, s.MaxDataset)
	}
	if s.MaxGPUs <= 0 || s.MaxGPUs > 4096 {
		return fmt.Errorf("loadgen: max gpus must be in [1, 4096] (got %d)", s.MaxGPUs)
	}
	if s.CritWeight < 0 || s.StdWeight < 0 || s.ShedWeight < 0 ||
		s.CritWeight+s.StdWeight+s.ShedWeight <= 0 {
		return fmt.Errorf("loadgen: tier weights must be non-negative and sum positive (got %v/%v/%v)",
			s.CritWeight, s.StdWeight, s.ShedWeight)
	}
	return nil
}

// Arrival is one planned submission: when it arrives and what it asks
// for. The caller maps it onto its submit request type.
type Arrival struct {
	At              time.Duration // offset from the plan's start
	JobID           string
	Dataset         string
	DatasetSize     unit.Bytes
	NumGPUs         int
	TotalBytes      unit.Bytes
	IdealThroughput unit.Bandwidth
	Tenant          string
	SLO             tenant.SLOClass
}

// TenantID is the conventional tenant name for a tier — the same IDs
// Tenants() registers, so plans and registries always agree.
func TenantID(c tenant.SLOClass) string {
	switch c {
	case tenant.Critical:
		return "tenant-critical"
	case tenant.Sheddable:
		return "tenant-sheddable"
	case tenant.Standard:
		return "tenant-standard"
	default:
		return "tenant-standard"
	}
}

// Tenants returns one unlimited-quota tenant per SLO class, for
// registering with the scheduler before replaying a plan.
func Tenants() []tenant.Tenant {
	out := make([]tenant.Tenant, 0, len(tenant.Classes()))
	for _, c := range tenant.Classes() {
		out = append(out, tenant.Tenant{ID: TenantID(c), Class: c})
	}
	return out
}

// Plan expands a Spec into its deterministic arrival sequence. Each
// stochastic dimension draws from its own split stream, so changing
// e.g. the tier mix does not perturb the arrival times.
func Plan(spec Spec) ([]Arrival, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := simrng.New(spec.Seed)
	iat := root.Split("iat")
	tiers := root.Split("tiers")
	sizes := root.Split("sizes")
	gpus := root.Split("gpus")
	shape := root.Split("shape")
	zipf := simrng.NewZipf(root.Split("datasets"), spec.Datasets, 1.1)

	// Dataset sizes are fixed per dataset, not per arrival: two jobs
	// sharing ds-003 must agree on its size.
	dsSize := make([]unit.Bytes, spec.Datasets)
	mid := float64(spec.MinDataset+spec.MaxDataset) / 2
	for i := range dsSize {
		dsSize[i] = unit.Bytes(sizes.BoundedLogNormal(
			math.Log(mid), 0.5, float64(spec.MinDataset), float64(spec.MaxDataset)))
	}

	weights := []float64{0, 0, 0}
	weights[tenant.Critical.Rank()] = spec.CritWeight
	weights[tenant.Standard.Rank()] = spec.StdWeight
	weights[tenant.Sheddable.Rank()] = spec.ShedWeight
	byRank := []tenant.SLOClass{0, 0, 0}
	for _, c := range tenant.Classes() {
		byRank[c.Rank()] = c
	}

	out := make([]Arrival, 0, spec.Jobs)
	var at time.Duration
	for i := 0; i < spec.Jobs; i++ {
		at += time.Duration(iat.GammaInterarrival(float64(spec.MeanIAT), spec.CV))
		ds := zipf.Next()
		slo := byRank[tiers.WeightedChoice(weights)]
		size := dsSize[ds]
		epochs := 2 + shape.Intn(4)
		out = append(out, Arrival{
			At:              at,
			JobID:           fmt.Sprintf("job-%06d", i),
			Dataset:         fmt.Sprintf("ds-%04d", ds),
			DatasetSize:     size,
			NumGPUs:         1 + gpus.Intn(spec.MaxGPUs),
			TotalBytes:      size * unit.Bytes(epochs),
			IdealThroughput: unit.MBpsOf(shape.Uniform(50, 200)),
			Tenant:          TenantID(slo),
			SLO:             slo,
		})
	}
	return out, nil
}
