package loadgen

import (
	"fmt"
	"sort"

	"repro/internal/tenant"
)

// Status classifies one submission attempt's outcome.
// silod:enum
type Status int

// The submission outcomes.
const (
	// StatusAccepted: the scheduler queued or created the job.
	StatusAccepted Status = iota
	// StatusShed: the scheduler shed it with explicit backpressure
	// (HTTP 503 + Retry-After).
	StatusShed
	// StatusRejected: a terminal rejection (validation, quota).
	StatusRejected
	// StatusError: transport-level failure — no verdict from the
	// scheduler at all.
	StatusError
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusAccepted:
		return "accepted"
	case StatusShed:
		return "shed"
	case StatusRejected:
		return "rejected"
	case StatusError:
		return "error"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// TierStats aggregates outcomes for one SLO tier.
type TierStats struct {
	Offered  int `json:"offered"`
	Accepted int `json:"accepted"`
	Shed     int `json:"shed"`
	Rejected int `json:"rejected"`
	Errors   int `json:"errors"`
}

// ShedFraction is shed over offered (0 for an idle tier).
func (t TierStats) ShedFraction() float64 {
	if t.Offered == 0 {
		return 0
	}
	return float64(t.Shed) / float64(t.Offered)
}

// Report aggregates a replayed plan's outcomes, per tier and overall.
type Report struct {
	tiers [3]TierStats // indexed by SLOClass.Rank()
}

// Record tallies one outcome.
func (r *Report) Record(slo tenant.SLOClass, st Status) {
	t := &r.tiers[slo.Rank()]
	t.Offered++
	switch st {
	case StatusAccepted:
		t.Accepted++
	case StatusShed:
		t.Shed++
	case StatusRejected:
		t.Rejected++
	case StatusError:
		t.Errors++
	default:
		t.Errors++
	}
}

// Tier returns one tier's aggregate.
func (r *Report) Tier(slo tenant.SLOClass) TierStats {
	return r.tiers[slo.Rank()]
}

// Total sums all tiers.
func (r *Report) Total() TierStats {
	var sum TierStats
	for _, t := range r.tiers {
		sum.Offered += t.Offered
		sum.Accepted += t.Accepted
		sum.Shed += t.Shed
		sum.Rejected += t.Rejected
		sum.Errors += t.Errors
	}
	return sum
}

// ShedMonotone reports the serving mode's core SLO invariant: shed
// fractions never decrease as SLO rank loosens (sheddable >= standard
// >= critical).
func (r *Report) ShedMonotone() bool {
	return r.Tier(tenant.Sheddable).ShedFraction() >= r.Tier(tenant.Standard).ShedFraction() &&
		r.Tier(tenant.Standard).ShedFraction() >= r.Tier(tenant.Critical).ShedFraction()
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by
// nearest-rank on a sorted copy; 0 for an empty slice. Deterministic:
// ties and interpolation cannot vary between runs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}
