package unit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByteConstructors(t *testing.T) {
	cases := []struct {
		got  Bytes
		want float64
	}{
		{GiB(1), 1 << 30},
		{TiB(2), 2 << 40},
		{MiB(0.5), 1 << 19},
		{143 * GB, 143 * (1 << 30)},
	}
	for i, c := range cases {
		if float64(c.got) != c.want {
			t.Errorf("case %d: got %v want %v", i, float64(c.got), c.want)
		}
	}
}

func TestByteString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{TiB(1.36), "1.36TB"},
		{GiB(143), "143.00GB"},
		{64 * MB, "64.00MB"},
		{512, "512B"},
		{KB, "1.00KB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"143GB", GiB(143)},
		{"1.36TB", TiB(1.36)},
		{"64MB", 64 * MB},
		{"512", 512},
		{" 2KB ", 2 * KB},
		{"3KiB", 3 * KB},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("ParseBytes(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
	for _, bad := range []string{"", "abc", "-3GB", "GB", "12XB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	// Property: parsing the formatted value recovers it within the
	// 2-decimal precision of String.
	f := func(raw uint32) bool {
		b := Bytes(raw) * MB / 7 // spread over MB..TB ranges
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		if b == 0 {
			return parsed == 0
		}
		return math.Abs(float64(parsed-b))/float64(b) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidth(t *testing.T) {
	if got := Gbps(1.6); math.Abs(float64(got)-200*float64(MB)) > 1 {
		t.Errorf("Gbps(1.6) = %v, want 200 MB/s", got)
	}
	if got := MBpsOf(114).MBpsValue(); got != 114 {
		t.Errorf("MBpsValue = %v", got)
	}
	if s := GBpsOf(4).String(); s != "4.00GB/s" {
		t.Errorf("String = %q", s)
	}
}

func TestChanged(t *testing.T) {
	if Bytes(64 * MB).Changed(64 * MB) {
		t.Error("Bytes.Changed on equal copies = true, want false")
	}
	if !Bytes(64 * MB).Changed(128 * MB) {
		t.Error("Bytes.Changed on different values = false, want true")
	}
	if Bytes(0).Changed(0) {
		t.Error("Bytes.Changed on zero = true, want false")
	}
	if MBpsOf(200).Changed(MBpsOf(200)) {
		t.Error("Bandwidth.Changed on equal copies = true, want false")
	}
	if !MBpsOf(200).Changed(0) {
		t.Error("Bandwidth.Changed on different values = false, want true")
	}
	// A stored copy compares equal to itself: copy-then-compare is the
	// sanctioned pattern these helpers exist for.
	if err := quick.Check(func(v float64) bool {
		b := Bytes(v)
		stored := b
		return !b.Changed(stored)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50 * Second)
	if t1 != 150 {
		t.Errorf("Add: %v", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Errorf("Sub: %v", d)
	}
	if m := (90 * Minute).Minutes(); m != 90 {
		t.Errorf("Minutes: %v", m)
	}
	if m := Time(120).Minutes(); m != 2 {
		t.Errorf("Time.Minutes: %v", m)
	}
}

func TestDurationString(t *testing.T) {
	if s := (90 * Minute).String(); s != "90.0min" {
		t.Errorf("got %q", s)
	}
	if s := (30 * Second).String(); s != "30.0s" {
		t.Errorf("got %q", s)
	}
}

func TestDivBandwidth(t *testing.T) {
	if d := DivBandwidth(200*MB, MBpsOf(100)); d != 2 {
		t.Errorf("DivBandwidth = %v, want 2s", d)
	}
	if d := DivBandwidth(1, 0); !math.IsInf(float64(d), 1) {
		t.Errorf("zero bandwidth should be +Inf, got %v", d)
	}
	if d := DivBandwidth(0, 0); d != 0 {
		t.Errorf("zero bytes at zero bandwidth should be 0, got %v", d)
	}
}

func TestMulDuration(t *testing.T) {
	if b := MulDuration(MBpsOf(50), 4); b != 200*MB {
		t.Errorf("MulDuration = %v", b)
	}
}

func TestClamps(t *testing.T) {
	if v := ClampBytes(5, 1, 3); v != 3 {
		t.Errorf("ClampBytes high: %v", v)
	}
	if v := ClampBytes(-1, 0, 3); v != 0 {
		t.Errorf("ClampBytes low: %v", v)
	}
	if v := ClampBandwidth(2, 1, 3); v != 2 {
		t.Errorf("ClampBandwidth mid: %v", v)
	}
}
