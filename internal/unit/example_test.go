package unit_test

import (
	"fmt"

	"repro/internal/unit"
)

func ExampleParseBytes() {
	for _, s := range []string{"143GB", "1.36TB", "64MB"} {
		b, _ := unit.ParseBytes(s)
		fmt.Println(b)
	}
	// Output:
	// 143.00GB
	// 1.36TB
	// 64.00MB
}

func ExampleGbps() {
	// The paper's 1.6 Gbps micro-benchmark egress limit is 200 MB/s.
	fmt.Println(unit.Gbps(1.6))
	// Output:
	// 200.00MB/s
}

func ExampleDivBandwidth() {
	// Reading 1.36 TB at 114 MB/s takes ~208 minutes: one ImageNet-22k
	// epoch for ResNet-50 on a V100.
	d := unit.DivBandwidth(unit.TiB(1.36), unit.MBpsOf(114))
	fmt.Printf("%.0f minutes\n", d.Minutes())
	// Output:
	// 208 minutes
}
