// Package unit defines the physical quantities used throughout SiloD:
// byte sizes, bandwidths, and simulated time. All simulator math is done
// in float64 seconds and float64 bytes; these types exist to keep call
// sites self-describing and to centralize parsing and formatting.
package unit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bytes is a data size in bytes. Negative values are invalid everywhere
// they would be observable; constructors and parsers reject them.
type Bytes float64

// Common byte-size units (binary, matching the paper's GB/TB usage).
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// GiB returns n gibibytes.
func GiB(n float64) Bytes { return Bytes(n) * GB }

// TiB returns n tebibytes.
func TiB(n float64) Bytes { return Bytes(n) * TB }

// MiB returns n mebibytes.
func MiB(n float64) Bytes { return Bytes(n) * MB }

// String formats the size with the largest unit that keeps the value >= 1.
func (b Bytes) String() string {
	abs := math.Abs(float64(b))
	switch {
	case abs >= float64(TB):
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case abs >= float64(GB):
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case abs >= float64(MB):
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case abs >= float64(KB):
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%.0fB", float64(b))
	}
}

// Changed reports whether b differs from prev. Both sides must flow
// from the same assignment (a stored copy of the previous round's
// allocation against the proposed one): then the comparison is exact
// state-change detection, not numerical equality, and the floatcmp
// hazard (accumulated rounding) does not apply. This is the sanctioned
// spelling of that pattern — silodlint's floatcmp analyzer rejects a
// bare != on unit types.
func (b Bytes) Changed(prev Bytes) bool { return b != prev }

// ParseBytes parses strings like "143GB", "1.36TB", "512", "64MB".
// A bare number is interpreted as bytes.
func ParseBytes(s string) (Bytes, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("unit: empty byte size")
	}
	units := []struct {
		suffix string
		mul    Bytes
	}{
		{"TB", TB}, {"TiB", TB}, {"GB", GB}, {"GiB", GB},
		{"MB", MB}, {"MiB", MB}, {"KB", KB}, {"KiB", KB}, {"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			num := strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("unit: parse %q: %v", s, err)
			}
			if v < 0 {
				return 0, fmt.Errorf("unit: negative byte size %q", s)
			}
			return Bytes(v) * u.mul, nil
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unit: parse %q: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("unit: negative byte size %q", s)
	}
	return Bytes(v), nil
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Common bandwidth units.
const (
	KBps Bandwidth = Bandwidth(KB)
	MBps Bandwidth = Bandwidth(MB)
	GBps Bandwidth = Bandwidth(GB)
)

// Gbps converts gigabits per second to a Bandwidth, matching the paper's
// convention that 1.6 Gbps == 200 MB/s (i.e. 1 Gbps == 125 MB/s).
func Gbps(n float64) Bandwidth { return Bandwidth(n * 125 * float64(MB)) }

// MBpsOf returns n megabytes per second.
func MBpsOf(n float64) Bandwidth { return Bandwidth(n) * MBps }

// GBpsOf returns n gigabytes per second.
func GBpsOf(n float64) Bandwidth { return Bandwidth(n) * GBps }

// String formats the bandwidth in the most natural unit.
func (bw Bandwidth) String() string {
	abs := math.Abs(float64(bw))
	switch {
	case abs >= float64(GBps):
		return fmt.Sprintf("%.2fGB/s", float64(bw)/float64(GBps))
	case abs >= float64(MBps):
		return fmt.Sprintf("%.2fMB/s", float64(bw)/float64(MBps))
	case abs >= float64(KBps):
		return fmt.Sprintf("%.2fKB/s", float64(bw)/float64(KBps))
	default:
		return fmt.Sprintf("%.0fB/s", float64(bw))
	}
}

// MBpsValue reports the bandwidth in MB/s, the unit used by the paper's
// figures and by perf estimators.
func (bw Bandwidth) MBpsValue() float64 { return float64(bw) / float64(MBps) }

// Changed reports whether bw differs from prev — exact state-change
// detection for stored-copy comparisons; see Bytes.Changed.
func (bw Bandwidth) Changed(prev Bandwidth) bool { return bw != prev }

// PerSecond reinterprets a byte quantity as the rate that moves that
// many bytes each second — the one sanctioned Bytes -> Bandwidth
// conversion (silodlint's unitsafety analyzer rejects the bare cast).
func PerSecond(b Bytes) Bandwidth { return Bandwidth(b) }

// ParseBandwidth parses strings like "1GB/s", "400MB/s", or "200MB"
// (a bare byte size is taken per second).
func ParseBandwidth(s string) (Bandwidth, error) {
	b, err := ParseBytes(strings.TrimSuffix(strings.TrimSpace(s), "/s"))
	if err != nil {
		return 0, err
	}
	return PerSecond(b), nil
}

// Time is a point in simulated time, in seconds since simulation start.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration float64

// Common durations.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 24 * 3600
)

// Minutes reports the duration in minutes (the paper's JCT unit).
func (d Duration) Minutes() float64 { return float64(d) / float64(Minute) }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// String formats a duration compactly, e.g. "3366.0min" or "45.0s".
func (d Duration) String() string {
	if math.Abs(float64(d)) >= float64(Minute) {
		return fmt.Sprintf("%.1fmin", d.Minutes())
	}
	return fmt.Sprintf("%.1fs", float64(d))
}

// Add advances a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Minutes reports the time in minutes since simulation start.
func (t Time) Minutes() float64 { return float64(t) / float64(Minute) }

// Elapsed reports t as the duration since simulation start — the one
// sanctioned Time -> Duration conversion (silodlint's unitsafety
// analyzer rejects the bare cast).
func (t Time) Elapsed() Duration { return Duration(t) }

// DivBandwidth reports how long transferring b bytes takes at rate bw.
// It returns +Inf for a non-positive bandwidth and a positive size.
func DivBandwidth(b Bytes, bw Bandwidth) Duration {
	if bw <= 0 {
		if b <= 0 {
			return 0
		}
		return Duration(math.Inf(1))
	}
	return Duration(float64(b) / float64(bw))
}

// MulDuration reports how many bytes flow at rate bw for duration d.
func MulDuration(bw Bandwidth, d Duration) Bytes {
	return Bytes(float64(bw) * float64(d))
}

// CeilDiv reports how many whole blocks of the given size cover b.
// Non-positive block sizes yield 0.
func CeilDiv(b, block Bytes) int {
	if block <= 0 {
		return 0
	}
	return int((b + block - 1) / block)
}

// AlignUp rounds b up to the next multiple of align (b unchanged if
// align is non-positive).
func AlignUp(b, align Bytes) Bytes {
	if align <= 0 {
		return b
	}
	return Bytes(CeilDiv(b, align)) * align
}

// ClampBytes bounds v to [lo, hi].
func ClampBytes(v, lo, hi Bytes) Bytes {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampBandwidth bounds v to [lo, hi].
func ClampBandwidth(v, lo, hi Bandwidth) Bandwidth {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
