package estimator_test

import (
	"fmt"

	"repro/internal/estimator"
	"repro/internal/unit"
)

// ExampleJobProfile_Perf evaluates the paper's Eq. 4 for ResNet-50 on
// ImageNet-1k under a few storage allocations.
func ExampleJobProfile_Perf() {
	p := estimator.JobProfile{
		IdealThroughput: unit.MBpsOf(114), // f* on one V100
		DatasetSize:     unit.GiB(143),    // ImageNet-1k
	}
	for _, frac := range []float64{0, 0.5, 1} {
		r := estimator.Resources{
			Cache:    unit.Bytes(frac * float64(p.DatasetSize)),
			RemoteIO: unit.MBpsOf(40),
		}
		fmt.Printf("cache %3.0f%%: %s\n", frac*100, p.Perf(r))
	}
	// Output:
	// cache   0%: 40.00MB/s
	// cache  50%: 80.00MB/s
	// cache 100%: 114.00MB/s
}

// ExampleJobProfile_CacheEfficiencyMBpsPerGB shows the Eq. 5 quantity
// behind Figure 6.
func ExampleJobProfile_CacheEfficiencyMBpsPerGB() {
	rn50 := estimator.JobProfile{IdealThroughput: unit.MBpsOf(114), DatasetSize: unit.GiB(143)}
	bert := estimator.JobProfile{IdealThroughput: unit.MBpsOf(2), DatasetSize: unit.TiB(20.9)}
	fmt.Printf("ResNet-50/ImageNet-1k: %.2f MB/s per GB\n", rn50.CacheEfficiencyMBpsPerGB())
	fmt.Printf("BERT/WebSearch:        %.1e MB/s per GB\n", bert.CacheEfficiencyMBpsPerGB())
	// Output:
	// ResNet-50/ImageNet-1k: 0.80 MB/s per GB
	// BERT/WebSearch:        9.3e-05 MB/s per GB
}

// ExampleJobProfile_RequiredRemoteIO inverts Eq. 4: the bandwidth a
// scheduler must grant to keep a half-cached job compute-bound.
func ExampleJobProfile_RequiredRemoteIO() {
	p := estimator.JobProfile{IdealThroughput: unit.MBpsOf(114), DatasetSize: unit.GiB(143)}
	b, _ := p.RequiredRemoteIO(p.IdealThroughput, unit.GiB(71.5))
	fmt.Println(b)
	// Output:
	// 57.00MB/s
}
