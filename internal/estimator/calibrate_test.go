package estimator

import (
	"math"
	"testing"

	"repro/internal/unit"
)

func TestFitProfileComputeBound(t *testing.T) {
	d := unit.GiB(143)
	truth := JobProfile{IdealThroughput: unit.MBpsOf(114), DatasetSize: d}
	// Samples with generous allocations: observed rate = f* with noise.
	mk := func(rateMBps float64, r Resources) Sample {
		return Sample{
			Window:    60,
			Bytes:     unit.Bytes(rateMBps * 60 * float64(unit.MB)),
			Resources: r,
		}
	}
	samples := []Sample{
		mk(113, Resources{Cache: d, RemoteIO: 0}),
		mk(115, Resources{Cache: d, RemoteIO: unit.MBpsOf(10)}),
		mk(114, Resources{Cache: 0, RemoteIO: unit.MBpsOf(300)}),
	}
	got, confident, err := FitProfile(d, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !confident {
		t.Error("compute-bound samples should give a confident fit")
	}
	if e := math.Abs(got.IdealThroughput.MBpsValue()-truth.IdealThroughput.MBpsValue()) / 114; e > 0.02 {
		t.Errorf("fitted f* %v, want ~114", got.IdealThroughput)
	}
}

func TestFitProfileIOBoundSamplesExcluded(t *testing.T) {
	d := unit.GiB(143)
	// Two throttled samples (pinned at their IO ceiling) and one
	// compute-bound one; the fit must ignore the throttled pair.
	samples := []Sample{
		{Window: 60, Bytes: unit.Bytes(30 * 60 * float64(unit.MB)),
			Resources: Resources{Cache: 0, RemoteIO: unit.MBpsOf(30)}},
		{Window: 60, Bytes: unit.Bytes(50 * 60 * float64(unit.MB)),
			Resources: Resources{Cache: 0, RemoteIO: unit.MBpsOf(50)}},
		{Window: 60, Bytes: unit.Bytes(114 * 60 * float64(unit.MB)),
			Resources: Resources{Cache: d, RemoteIO: 0}},
	}
	got, confident, err := FitProfile(d, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !confident {
		t.Error("one compute-bound sample should suffice")
	}
	if math.Abs(got.IdealThroughput.MBpsValue()-114) > 1 {
		t.Errorf("fitted f* %v polluted by IO-bound samples", got.IdealThroughput)
	}
}

func TestFitProfileAllIOBound(t *testing.T) {
	d := unit.GiB(143)
	samples := []Sample{
		{Window: 60, Bytes: unit.Bytes(30 * 60 * float64(unit.MB)),
			Resources: Resources{Cache: 0, RemoteIO: unit.MBpsOf(30)}},
		{Window: 60, Bytes: unit.Bytes(50 * 60 * float64(unit.MB)),
			Resources: Resources{Cache: 0, RemoteIO: unit.MBpsOf(50)}},
	}
	got, confident, err := FitProfile(d, samples)
	if err != nil {
		t.Fatal(err)
	}
	if confident {
		t.Error("all-IO-bound samples reported as confident")
	}
	// Lower bound: the best observed rate.
	if math.Abs(got.IdealThroughput.MBpsValue()-50) > 1 {
		t.Errorf("lower bound %v, want 50", got.IdealThroughput)
	}
}

func TestFitProfileErrors(t *testing.T) {
	if _, _, err := FitProfile(0, []Sample{{Window: 1, Bytes: 1}}); err == nil {
		t.Error("zero dataset accepted")
	}
	if _, _, err := FitProfile(unit.GiB(1), nil); err == nil {
		t.Error("no samples accepted")
	}
	if _, _, err := FitProfile(unit.GiB(1), []Sample{{Window: 0, Bytes: 1}}); err == nil {
		t.Error("zero-window sample accepted")
	}
	if _, _, err := FitProfile(unit.GiB(1), []Sample{{Window: 1, Bytes: 0}}); err == nil {
		t.Error("all-zero throughput accepted")
	}
}
