// Package estimator implements SiloD's enhanced performance estimator
// (§4): the closed-form analytical model relating a training job's
// end-to-end throughput to its cache allocation c, remote IO allocation
// b, dataset size d, and ideal (compute-bound) throughput f*.
//
// The central identities, numbered as in the paper:
//
//	SiloDPerf = min(f*, f)                        (Eq. 1)
//	b         = f · (1 - c/d)                     (Eq. 2, remote IO demand)
//	f         = b / (1 - c/d)                     (Eq. 3, IOPerf)
//	SiloDPerf = min(f*, b / (1 - c/d))            (Eq. 4)
//	CacheEff  = -∂b/∂c = f*/d                     (Eq. 5)
package estimator

import (
	"fmt"
	"math"

	"repro/internal/unit"
)

// Resources is a cache + remote-IO allocation for one job. Compute is
// folded into IdealThroughput (f*) per Algorithm 1: existing schedulers
// already estimate the compute side, SiloD adds the storage side.
type Resources struct {
	Cache    unit.Bytes     // c: cache capacity allocated to the job's dataset
	RemoteIO unit.Bandwidth // b: remote IO bandwidth allocated to the job
}

// JobProfile is the per-job information the closed-form model needs.
type JobProfile struct {
	IdealThroughput unit.Bandwidth // f*: data consumption rate when compute-bound
	DatasetSize     unit.Bytes     // d
}

// Validate reports whether the profile is usable.
func (p JobProfile) Validate() error {
	if p.IdealThroughput <= 0 {
		return fmt.Errorf("estimator: non-positive ideal throughput %v", p.IdealThroughput)
	}
	if p.DatasetSize <= 0 {
		return fmt.Errorf("estimator: non-positive dataset size %v", p.DatasetSize)
	}
	return nil
}

// hitRatio returns c/d clamped to [0,1]: with uniform caching the
// expected per-epoch hit ratio equals the cached fraction (§2.2).
//
// silod:pure
func (p JobProfile) hitRatio(c unit.Bytes) float64 {
	if p.DatasetSize <= 0 {
		return 0
	}
	h := float64(c) / float64(p.DatasetSize)
	return math.Min(math.Max(h, 0), 1)
}

// IOPerf is Eq. 3: the data-loading throughput sustainable with cache c
// and remote IO b. With the entire dataset cached the loader is never
// remote-IO limited, so the result is +Inf (the min in Eq. 1 then picks
// f*).
//
// silod:pure
func (p JobProfile) IOPerf(r Resources) unit.Bandwidth {
	miss := 1 - p.hitRatio(r.Cache)
	if miss <= 0 {
		return unit.Bandwidth(math.Inf(1))
	}
	if r.RemoteIO <= 0 {
		return 0
	}
	return unit.Bandwidth(float64(r.RemoteIO) / miss)
}

// Perf is Eq. 4: the end-to-end training throughput min(f*, IOPerf).
//
// silod:pure
func (p JobProfile) Perf(r Resources) unit.Bandwidth {
	io := p.IOPerf(r)
	if io > p.IdealThroughput {
		return p.IdealThroughput
	}
	return io
}

// IOBound reports whether data loading is the bottleneck under r.
func (p JobProfile) IOBound(r Resources) bool {
	return p.IOPerf(r) < p.IdealThroughput
}

// RemoteDemand is Eq. 2: the remote IO consumed when loading at
// throughput f with cache c.
func (p JobProfile) RemoteDemand(f unit.Bandwidth, c unit.Bytes) unit.Bandwidth {
	return unit.Bandwidth(float64(f) * (1 - p.hitRatio(c)))
}

// IdealRemoteDemand is the remote IO needed to run at f* with cache c:
// the bandwidth a scheduler must grant to keep the job compute-bound.
func (p JobProfile) IdealRemoteDemand(c unit.Bytes) unit.Bandwidth {
	return p.RemoteDemand(p.IdealThroughput, c)
}

// CacheEfficiency is Eq. 5: remote IO (bytes/s) saved per byte of cache
// when the job runs at its ideal throughput. Multiply by GB/(MB/s) unit
// factors externally if needed; this returns (bytes/s)/byte = 1/s.
func (p JobProfile) CacheEfficiency() float64 {
	return float64(p.IdealThroughput) / float64(p.DatasetSize)
}

// CacheEfficiencyMBpsPerGB reports Eq. 5 in the paper's display unit.
func (p JobProfile) CacheEfficiencyMBpsPerGB() float64 {
	return p.IdealThroughput.MBpsValue() / (float64(p.DatasetSize) / float64(unit.GB))
}

// RequiredRemoteIO inverts Eq. 4: the minimum remote IO allocation that
// achieves end-to-end throughput target given cache c. Targets above f*
// are unachievable and return an error; a fully cached dataset needs no
// remote IO.
func (p JobProfile) RequiredRemoteIO(target unit.Bandwidth, c unit.Bytes) (unit.Bandwidth, error) {
	const slack = 1e-9
	if float64(target) > float64(p.IdealThroughput)*(1+slack) {
		return 0, fmt.Errorf("estimator: target %v exceeds ideal throughput %v", target, p.IdealThroughput)
	}
	if target < 0 {
		return 0, fmt.Errorf("estimator: negative target %v", target)
	}
	miss := 1 - p.hitRatio(c)
	return unit.Bandwidth(float64(target) * miss), nil
}

// RequiredCache inverts Eq. 4 the other way: the minimum cache that
// achieves the target throughput given remote IO b. If b alone already
// sustains the target, zero cache suffices. If even a fully cached
// dataset cannot reach the target (target > f*), an error is returned.
func (p JobProfile) RequiredCache(target unit.Bandwidth, b unit.Bandwidth) (unit.Bytes, error) {
	const slack = 1e-9
	if float64(target) > float64(p.IdealThroughput)*(1+slack) {
		return 0, fmt.Errorf("estimator: target %v exceeds ideal throughput %v", target, p.IdealThroughput)
	}
	if target <= 0 {
		return 0, nil
	}
	if b >= target {
		return 0, nil
	}
	// Need miss ratio <= b/target, i.e. c/d >= 1 - b/target.
	frac := 1 - float64(b)/float64(target)
	return unit.Bytes(frac * float64(p.DatasetSize)), nil
}

// Enhanced wraps an existing scheduler's compute-side estimator with the
// storage-aware model, implementing line 5 of Algorithm 1:
//
//	SiloDPerf = lambda j, R: min(perf(j,R), IOPerf(j,R))
//
// perf is the original estimator (converted to MB/s-equivalent data
// throughput); the returned closure is what SiloD hands to scheduling
// policies.
func Enhanced(perf func(Resources) unit.Bandwidth, p JobProfile) func(Resources) unit.Bandwidth {
	return func(r Resources) unit.Bandwidth {
		base := perf(r)
		io := p.IOPerf(r)
		if io < base {
			return io
		}
		return base
	}
}
