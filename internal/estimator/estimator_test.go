package estimator

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/unit"
)

func profile() JobProfile {
	return JobProfile{IdealThroughput: unit.MBpsOf(114), DatasetSize: unit.GiB(143)}
}

func TestValidate(t *testing.T) {
	if err := profile().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (JobProfile{IdealThroughput: 0, DatasetSize: 1}).Validate(); err == nil {
		t.Error("zero f* accepted")
	}
	if err := (JobProfile{IdealThroughput: 1, DatasetSize: 0}).Validate(); err == nil {
		t.Error("zero dataset accepted")
	}
}

// TestEq3IOPerf pins Eq. 3 at known points.
func TestEq3IOPerf(t *testing.T) {
	p := profile()
	d := p.DatasetSize
	cases := []struct {
		cache unit.Bytes
		bw    unit.Bandwidth
		want  float64 // MB/s
	}{
		{0, unit.MBpsOf(50), 50},
		{d / 2, unit.MBpsOf(50), 100},
		{3 * d / 4, unit.MBpsOf(25), 100},
	}
	for i, c := range cases {
		got := p.IOPerf(Resources{Cache: c.cache, RemoteIO: c.bw}).MBpsValue()
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("case %d: IOPerf = %v, want %v", i, got, c.want)
		}
	}
	// Fully cached: infinite loading rate, so Perf = f*.
	if got := p.IOPerf(Resources{Cache: d, RemoteIO: 0}); !math.IsInf(float64(got), 1) {
		t.Errorf("fully cached IOPerf = %v, want +Inf", got)
	}
	if got := p.IOPerf(Resources{Cache: 0, RemoteIO: 0}); got != 0 {
		t.Errorf("no resources IOPerf = %v, want 0", got)
	}
}

// TestEq4Perf pins the min with f*.
func TestEq4Perf(t *testing.T) {
	p := profile()
	if got := p.Perf(Resources{Cache: p.DatasetSize, RemoteIO: 0}); got != p.IdealThroughput {
		t.Errorf("fully cached Perf = %v, want f*", got)
	}
	r := Resources{Cache: 0, RemoteIO: unit.MBpsOf(50)}
	if got := p.Perf(r); got.MBpsValue() != 50 {
		t.Errorf("IO-bound Perf = %v", got)
	}
	if !p.IOBound(r) {
		t.Error("should be IO bound")
	}
	if p.IOBound(Resources{Cache: p.DatasetSize, RemoteIO: 0}) {
		t.Error("fully cached job reported IO bound")
	}
}

// TestEq2RemoteDemand pins Eq. 2.
func TestEq2RemoteDemand(t *testing.T) {
	p := profile()
	if got := p.RemoteDemand(unit.MBpsOf(100), p.DatasetSize/4).MBpsValue(); math.Abs(got-75) > 1e-9 {
		t.Errorf("demand = %v, want 75", got)
	}
	if got := p.IdealRemoteDemand(0); got != p.IdealThroughput {
		t.Errorf("cold ideal demand = %v, want f*", got)
	}
	if got := p.IdealRemoteDemand(p.DatasetSize); got != 0 {
		t.Errorf("cached ideal demand = %v, want 0", got)
	}
}

// TestEq5CacheEfficiency pins the paper's headline value: ResNet-50 on
// ImageNet-1k saves ~0.8 MB/s per GB.
func TestEq5CacheEfficiency(t *testing.T) {
	got := profile().CacheEfficiencyMBpsPerGB()
	if math.Abs(got-114.0/143.0) > 1e-9 {
		t.Errorf("efficiency %v, want %v", got, 114.0/143.0)
	}
	// Eq. 5 is the negative derivative of Eq. 2 in c: check numerically.
	p := profile()
	h := float64(unit.GB)
	b0 := float64(p.RemoteDemand(p.IdealThroughput, 0))
	b1 := float64(p.RemoteDemand(p.IdealThroughput, unit.Bytes(h)))
	if math.Abs((b0-b1)/h-p.CacheEfficiency()) > 1e-12 {
		t.Error("Eq. 5 is not the derivative of Eq. 2")
	}
}

func TestRequiredRemoteIOInversion(t *testing.T) {
	p := profile()
	// Property: Perf(cache, RequiredRemoteIO(target, cache)) == target
	// for achievable targets.
	f := func(rawT, rawC uint16) bool {
		target := unit.Bandwidth(float64(rawT%114+1)) * unit.MBps
		cache := unit.Bytes(float64(rawC%100) / 100 * float64(p.DatasetSize))
		b, err := p.RequiredRemoteIO(target, cache)
		if err != nil {
			return false
		}
		got := p.Perf(Resources{Cache: cache, RemoteIO: b})
		return math.Abs(float64(got-target))/float64(target) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := p.RequiredRemoteIO(2*p.IdealThroughput, 0); err == nil {
		t.Error("over-f* target accepted")
	}
	if _, err := p.RequiredRemoteIO(-1, 0); err == nil {
		t.Error("negative target accepted")
	}
}

func TestRequiredCacheInversion(t *testing.T) {
	p := profile()
	f := func(rawT, rawB uint16) bool {
		target := unit.Bandwidth(float64(rawT%114+1)) * unit.MBps
		bw := unit.Bandwidth(float64(rawB%150+1)) * unit.MBps
		c, err := p.RequiredCache(target, bw)
		if err != nil {
			return false
		}
		got := p.Perf(Resources{Cache: c, RemoteIO: bw})
		return float64(got) >= float64(target)*(1-1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Bandwidth alone sufficient: zero cache needed.
	c, err := p.RequiredCache(unit.MBpsOf(40), unit.MBpsOf(50))
	if err != nil || c != 0 {
		t.Errorf("RequiredCache = %v, %v", c, err)
	}
	if _, err := p.RequiredCache(2*p.IdealThroughput, unit.MBpsOf(1)); err == nil {
		t.Error("unachievable target accepted")
	}
}

func TestEnhancedWrapper(t *testing.T) {
	p := profile()
	// The original estimator always claims f* (compute-only view).
	orig := func(Resources) unit.Bandwidth { return p.IdealThroughput }
	enhanced := Enhanced(orig, p)
	// With plenty of IO: the original estimate stands.
	if got := enhanced(Resources{Cache: p.DatasetSize, RemoteIO: 0}); got != p.IdealThroughput {
		t.Errorf("enhanced = %v", got)
	}
	// IO bottleneck: the enhanced estimator corrects the original.
	if got := enhanced(Resources{Cache: 0, RemoteIO: unit.MBpsOf(10)}); got.MBpsValue() != 10 {
		t.Errorf("enhanced under bottleneck = %v, want 10", got)
	}
}

// TestHitRatioClamps exercises the c/d clamp.
func TestHitRatioClamps(t *testing.T) {
	p := profile()
	over := p.Perf(Resources{Cache: 10 * p.DatasetSize, RemoteIO: 0})
	if over != p.IdealThroughput {
		t.Errorf("over-allocated cache Perf = %v", over)
	}
	neg := p.Perf(Resources{Cache: -1, RemoteIO: unit.MBpsOf(10)})
	if neg.MBpsValue() != 10 {
		t.Errorf("negative cache Perf = %v", neg)
	}
}
