package estimator

import (
	"testing"

	"repro/internal/unit"
)

func BenchmarkPerf(b *testing.B) {
	p := JobProfile{IdealThroughput: unit.MBpsOf(114), DatasetSize: unit.GiB(143)}
	r := Resources{Cache: unit.GiB(70), RemoteIO: unit.MBpsOf(40)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Perf(r)
	}
}

func BenchmarkRequiredRemoteIO(b *testing.B) {
	p := JobProfile{IdealThroughput: unit.MBpsOf(114), DatasetSize: unit.GiB(143)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RequiredRemoteIO(unit.MBpsOf(80), unit.GiB(50)); err != nil {
			b.Fatal(err)
		}
	}
}
