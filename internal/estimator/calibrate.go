package estimator

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/unit"
)

// Sample is one profiling observation of a training job: how much data
// it consumed over a window, under a known storage allocation. The
// paper's schedulers rely on exactly this kind of offline profile
// ("the ideal throughput of a job f* ... can be profiled offline",
// §5.3).
type Sample struct {
	Window    unit.Duration // observation length
	Bytes     unit.Bytes    // data consumed in the window
	Resources Resources     // allocation in effect (effective cache!)
}

// Throughput is the sample's observed rate.
func (s Sample) Throughput() unit.Bandwidth {
	if s.Window <= 0 {
		return 0
	}
	return unit.Bandwidth(float64(s.Bytes) / float64(s.Window))
}

// FitProfile estimates a job's profile from profiling samples taken at
// a known dataset size. Samples whose allocation makes them IO-bound
// reveal only the allocation (Eq. 4 floors at b/(1-c/d)); compute-bound
// samples reveal f*. The fit takes the robust (median) rate of the
// samples that exceed their own IO ceiling-implied rate — i.e. the
// samples where the pipeline was compute-limited — and falls back to
// the maximum observed rate when every sample was IO-bound (a lower
// bound on f*, flagged via the returned bool).
func FitProfile(datasetSize unit.Bytes, samples []Sample) (JobProfile, bool, error) {
	if datasetSize <= 0 {
		return JobProfile{}, false, fmt.Errorf("estimator: non-positive dataset size %v", datasetSize)
	}
	if len(samples) == 0 {
		return JobProfile{}, false, fmt.Errorf("estimator: no profiling samples")
	}
	probe := JobProfile{IdealThroughput: unit.Bandwidth(math.Inf(1)), DatasetSize: datasetSize}
	var computeBound []float64
	maxRate := 0.0
	for i, s := range samples {
		if s.Window <= 0 || s.Bytes < 0 {
			return JobProfile{}, false, fmt.Errorf("estimator: bad sample %d (%v over %v)", i, s.Bytes, s.Window)
		}
		rate := float64(s.Throughput())
		if rate > maxRate {
			maxRate = rate
		}
		// The IO ceiling for this sample's allocation; a rate at (or
		// within tolerance of) the ceiling tells us nothing about f*.
		ceiling := float64(probe.IOPerf(s.Resources))
		if math.IsInf(ceiling, 1) || rate < ceiling*0.95 {
			computeBound = append(computeBound, rate)
		}
	}
	if maxRate <= 0 {
		return JobProfile{}, false, fmt.Errorf("estimator: all samples show zero throughput")
	}
	if len(computeBound) == 0 {
		// Every sample hit its IO ceiling: report the best observed
		// rate as a lower bound on f*.
		return JobProfile{IdealThroughput: unit.Bandwidth(maxRate), DatasetSize: datasetSize}, false, nil
	}
	sort.Float64s(computeBound)
	med := computeBound[len(computeBound)/2]
	if len(computeBound)%2 == 0 {
		med = (computeBound[len(computeBound)/2-1] + computeBound[len(computeBound)/2]) / 2
	}
	return JobProfile{IdealThroughput: unit.Bandwidth(med), DatasetSize: datasetSize}, true, nil
}
