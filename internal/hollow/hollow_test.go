package hollow

import (
	"testing"
	"time"

	"repro/internal/policy"
)

// smallConfig is a quickly-runnable shape with a deterministic latency
// clock (a counter, not the wall), so the whole Result is reproducible.
func smallConfig(seed int64) Config {
	tick := time.Unix(0, 0)
	return Config{
		Nodes:        64,
		GPUsPerNode:  4,
		CachePerNode: 64 << 30,
		Jobs:         3000,
		Datasets:     32,
		Rounds:       30,
		JobRounds:    6,
		Scheduler:    policy.FIFOKind,
		System:       policy.SiloD,
		Seed:         seed,
		Now: func() time.Time {
			tick = tick.Add(time.Millisecond)
			return tick
		},
	}
}

// TestSameSeedByteIdentical is the harness's own identity gate: two
// runs with the same seed must agree on every deterministic field —
// most importantly the push-sequence digest, which covers each
// allocation decision the scheduler emitted, in order.
func TestSameSeedByteIdentical(t *testing.T) {
	a, err := Run(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same-seed hollow runs differ:\n  a: %+v\n  b: %+v", *a, *b)
	}
	c, err := Run(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("different seeds produced the same push digest; digest is not covering the decision sequence")
	}
}

// TestRunShape sanity-checks the bookkeeping: all jobs submit, all jobs
// whose JobRounds fit in the run complete, and the latency stats are
// ordered.
func TestRunShape(t *testing.T) {
	cfg := smallConfig(11)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != cfg.Jobs {
		t.Errorf("submitted %d jobs, want %d", res.Jobs, cfg.Jobs)
	}
	if res.Completed == 0 || res.Completed > res.Jobs {
		t.Errorf("completed %d of %d jobs", res.Completed, res.Jobs)
	}
	p := res.RoundLatency
	if p.P50 > p.P90 || p.P90 > p.P99 || p.P99 > p.Max {
		t.Errorf("percentiles out of order: %+v", p)
	}
	if res.RoundsPerSec <= 0 {
		t.Errorf("rounds/sec %v, want > 0", res.RoundsPerSec)
	}
}

// TestConfigValidate rejects impossible shapes.
func TestConfigValidate(t *testing.T) {
	bad := smallConfig(1)
	bad.Rounds = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero-round config accepted")
	}
	bad = smallConfig(1)
	bad.Nodes = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero-node config accepted")
	}
}
