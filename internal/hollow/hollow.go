// Package hollow is a kubemark-style control-plane load harness: it
// drives a real SchedulerServer with thousands of synthetic ("hollow")
// heartbeating nodes and a synthetic job trace, with no data plane
// behind it — allocation pushes land in a digesting sink. The simulator
// answers "what would the cluster do"; hollow answers "how fast can the
// control plane itself decide", the round-latency and rounds/sec
// numbers BENCH_pr10.json records.
//
// Everything the scheduler sees is deterministic: the scheduler runs on
// a virtual clock, the trace comes from a seeded generator, and the
// push-sequence digest is byte-identical across same-seed runs (the
// identity test in this package gates that). Only the measured round
// latencies depend on the host.
package hollow

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// Config sizes a hollow-node run.
type Config struct {
	Nodes        int        // heartbeating hollow nodes
	GPUsPerNode  int        // GPUs each node reports
	CachePerNode unit.Bytes // cache each node reports
	Jobs         int        // total synthetic jobs over the run
	Datasets     int        // distinct datasets the jobs draw from
	Rounds       int        // scheduling rounds to drive
	JobRounds    int        // rounds between a job's first report and done
	Scheduler    policy.SchedulerKind
	System       policy.CacheSystem
	Seed         int64
	// Now is the latency clock — the only wall-clock in the harness,
	// used purely for measurement. nil means time.Now; tests inject a
	// counter so results are fully deterministic.
	Now func() time.Time
}

// DefaultConfig is the 10k-node, 1M-job shape the PR 10 benchmark
// records, scaled by the caller via the fields.
func DefaultConfig(seed int64) Config {
	return Config{
		Nodes:        10_000,
		GPUsPerNode:  4,
		CachePerNode: unit.GiB(512),
		Jobs:         1_000_000,
		Datasets:     512,
		Rounds:       200,
		JobRounds:    12,
		Scheduler:    policy.FIFOKind,
		System:       policy.SiloD,
		Seed:         seed,
	}
}

// Validate rejects shapes the harness cannot drive.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.GPUsPerNode <= 0 || c.CachePerNode <= 0 {
		return fmt.Errorf("hollow: need positive node shape (nodes=%d gpus=%d cache=%v)",
			c.Nodes, c.GPUsPerNode, c.CachePerNode)
	}
	if c.Jobs <= 0 || c.Datasets <= 0 || c.Rounds <= 0 || c.JobRounds <= 0 {
		return fmt.Errorf("hollow: need positive trace shape (jobs=%d datasets=%d rounds=%d jobRounds=%d)",
			c.Jobs, c.Datasets, c.Rounds, c.JobRounds)
	}
	return nil
}

// Percentiles summarizes a latency distribution.
type Percentiles struct {
	P50 time.Duration `json:"p50"`
	P90 time.Duration `json:"p90"`
	P99 time.Duration `json:"p99"`
	Max time.Duration `json:"max"`
}

// Result is one hollow run's outcome.
type Result struct {
	Nodes        int         `json:"nodes"`
	Jobs         int         `json:"jobs"`
	Rounds       int         `json:"rounds"`
	Completed    int         `json:"completed_jobs"`
	Digest       string      `json:"push_digest"` // FNV-1a over the data-plane push sequence
	RoundLatency Percentiles `json:"round_latency"`
	RoundsPerSec float64     `json:"rounds_per_sec"`
	TotalSeconds float64     `json:"total_seconds"` // sum of measured round latencies
}

// digestPlane is the hollow data plane: every push folds into an
// FNV-1a digest and disappears. The digest is the identity the
// same-seed test compares — it covers the full decision sequence the
// scheduler emitted, in order.
type digestPlane struct {
	h     uint64
	calls int
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newDigestPlane() *digestPlane { return &digestPlane{h: fnvOffset} }

func (d *digestPlane) mix(op byte, name string, bits uint64) {
	h := d.h
	h = (h ^ uint64(op)) * fnvPrime
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	for shift := 0; shift < 64; shift += 8 {
		h = (h ^ (bits >> shift & 0xff)) * fnvPrime
	}
	d.h = h
	d.calls++
}

func (d *digestPlane) RegisterDataset(name string, size, blockSize unit.Bytes) error {
	d.mix('R', name, math.Float64bits(float64(size)))
	return nil
}

func (d *digestPlane) AttachJob(jobID, dataset string) error {
	d.mix('A', jobID+"/"+dataset, 0)
	return nil
}

func (d *digestPlane) DetachJob(jobID string) error {
	d.mix('D', jobID, 0)
	return nil
}

func (d *digestPlane) AllocateCacheSize(dataset string, size unit.Bytes) error {
	d.mix('C', dataset, math.Float64bits(float64(size)))
	return nil
}

func (d *digestPlane) AllocateRemoteIO(jobID string, speed unit.Bandwidth) error {
	d.mix('I', jobID, math.Float64bits(float64(speed)))
	return nil
}

// hollowJob is one synthetic job's client-side state: the harness plays
// the role of every job's training loop, reporting progress each round.
type hollowJob struct {
	id      string
	dataset string
	total   unit.Bytes
	reports int
}

// Run drives one hollow-node load run and reports the measured round
// latencies. The scheduler is real; the nodes, jobs and data plane are
// hollow.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	pol, err := policy.Build(cfg.Scheduler, cfg.System, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cluster := core.Cluster{
		GPUs:     cfg.Nodes * cfg.GPUsPerNode,
		Cache:    unit.Bytes(cfg.Nodes) * cfg.CachePerNode,
		RemoteIO: unit.Gbps(float64(cfg.Nodes)), // 1 Gb/s of fabric per node
	}
	dp := newDigestPlane()
	// The scheduler's clock is virtual: it ticks only when the harness
	// advances it, one roundDt per round, so scheduler-side timestamps
	// (Submit times, liveness) are bit-deterministic.
	const roundDt = 10 * time.Second
	virtual := time.Unix(0, 0)
	sched, err := controlplane.NewSchedulerServer(cluster, pol, dp, func() time.Time { return virtual })
	if err != nil {
		return nil, err
	}
	// Hollow nodes re-heartbeat every round; the liveness window just
	// needs to span one virtual round.
	sched.SetNodeLivenessTimeout(3 * roundDt)
	nodeNames := make([]string, cfg.Nodes)
	for i := range nodeNames {
		nodeNames[i] = fmt.Sprintf("hollow-%06d", i)
	}
	beat := func(name string) error {
		return sched.Heartbeat(controlplane.HeartbeatRequest{
			Node: name, GPUs: cfg.GPUsPerNode, Cache: cfg.CachePerNode,
		})
	}
	for _, name := range nodeNames {
		if err := beat(name); err != nil {
			return nil, err
		}
	}

	rng := simrng.New(cfg.Seed)
	perRound := (cfg.Jobs + cfg.Rounds - 1) / cfg.Rounds
	var active []hollowJob
	submitted, completed := 0, 0
	latencies := make([]time.Duration, 0, cfg.Rounds)

	for round := 0; round < cfg.Rounds; round++ {
		virtual = virtual.Add(roundDt)
		// Arrivals: the next slice of the trace submits.
		for n := 0; n < perRound && submitted < cfg.Jobs; n++ {
			j := hollowJob{
				id:      fmt.Sprintf("job-%07d", submitted),
				dataset: fmt.Sprintf("ds-%04d", rng.Intn(cfg.Datasets)),
				total:   unit.GiB(float64(8 + rng.Intn(120))),
			}
			req := controlplane.SubmitJobRequest{
				JobID:           j.id,
				Model:           "ResNet-50",
				Dataset:         j.dataset,
				DatasetSize:     unit.GiB(64),
				NumGPUs:         1 + rng.Intn(cfg.GPUsPerNode),
				IdealThroughput: unit.MBpsOf(float64(50 + rng.Intn(300))),
				TotalBytes:      j.total,
			}
			if err := sched.Submit(req); err != nil {
				return nil, fmt.Errorf("hollow: submit %s: %w", j.id, err)
			}
			submitted++
			active = append(active, j)
		}
		// Progress reports: every active job ticks forward; a job done
		// after JobRounds reports leaves the working set.
		keep := active[:0]
		for _, j := range active {
			j.reports++
			done := j.reports >= cfg.JobRounds
			attained := j.total * unit.Bytes(j.reports) / unit.Bytes(cfg.JobRounds)
			if err := sched.Progress(controlplane.ProgressRequest{
				JobID:         j.id,
				AttainedBytes: attained,
				Done:          done,
			}); err != nil {
				return nil, fmt.Errorf("hollow: progress %s: %w", j.id, err)
			}
			if done {
				completed++
			} else {
				keep = append(keep, j)
			}
		}
		active = keep
		// Heartbeats: every hollow node re-reports its (unchanged)
		// capacity — the control plane's steady-state ingest load.
		for _, name := range nodeNames {
			if err := beat(name); err != nil {
				return nil, err
			}
		}
		// The measured quantity: one allocation round, solve + push.
		t0 := now()
		if err := sched.Schedule(); err != nil {
			return nil, fmt.Errorf("hollow: round %d: %w", round, err)
		}
		latencies = append(latencies, now().Sub(t0))
	}

	res := &Result{
		Nodes:     cfg.Nodes,
		Jobs:      submitted,
		Rounds:    cfg.Rounds,
		Completed: completed,
		Digest:    fmt.Sprintf("%016x", finishDigest(dp)),
	}
	var total time.Duration
	for _, l := range latencies {
		total += l
	}
	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	res.RoundLatency = Percentiles{
		P50: pct(latencies, 0.50),
		P90: pct(latencies, 0.90),
		P99: pct(latencies, 0.99),
		Max: latencies[len(latencies)-1],
	}
	res.TotalSeconds = total.Seconds()
	if total > 0 {
		res.RoundsPerSec = float64(cfg.Rounds) / total.Seconds()
	}
	return res, nil
}

// finishDigest folds the call count into the hash so an empty sequence
// and a sequence that cancels to the same state stay distinguishable.
func finishDigest(d *digestPlane) uint64 {
	h := d.h
	for shift := 0; shift < 64; shift += 8 {
		h = (h ^ (uint64(d.calls) >> shift & 0xff)) * fnvPrime
	}
	return h
}

// pct reads the q-quantile from ascending-sorted latencies by the
// nearest-rank method.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
