// Package stats provides the summary statistics the evaluation harness
// reports: means, percentiles, CDFs, time-weighted averages and fairness
// indices.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Kahan is a compensated (Kahan-Babuška) floating-point accumulator:
// the running compensation term recovers the low-order bits each Add
// would otherwise discard, so long sums of small increments stay exact
// to within one ulp of the true total regardless of how the increments
// are ordered or batched. The zero value is an empty sum.
type Kahan struct {
	sum float64
	c   float64 // running compensation for lost low-order bits
}

// Add accumulates v.
func (k *Kahan) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *Kahan) Sum() float64 { return k.sum + k.c }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs; +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// JainIndex returns Jain's fairness index of xs: (Σx)² / (n·Σx²).
// 1 means perfectly fair; 1/n means maximally unfair. Returns 1 for an
// empty slice or all-zero input (nothing to be unfair about).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// RelativeError returns |got-want| / |want|. If want is 0 it returns
// |got| so the caller can still threshold it.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// CDFPoint is a single point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value, in (0, 1]
}

// CDF returns the empirical CDF of xs as sorted points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pts := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		pts[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return pts
}

// SampleCDF evaluates the empirical CDF at a fixed set of fractions
// (e.g. deciles), returning one value per requested fraction.
func SampleCDF(xs []float64, fractions []float64) []float64 {
	out := make([]float64, len(fractions))
	for i, f := range fractions {
		out[i] = Percentile(xs, f*100)
	}
	return out
}

// TimeWeighted accumulates a step function of time and reports its
// time-weighted average: the value v(t) is held constant between
// consecutive Observe calls.
type TimeWeighted struct {
	started   bool
	lastT     float64
	lastV     float64
	weightSum float64
	areaSum   float64
}

// Observe records that the observed value became v at time t. Times must
// be non-decreasing; Observe panics on time travel, which would silently
// corrupt every downstream metric.
func (tw *TimeWeighted) Observe(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.lastT, tw.lastV = t, v
		return
	}
	if t < tw.lastT {
		panic(fmt.Sprintf("stats: time going backwards: %v < %v", t, tw.lastT))
	}
	dt := t - tw.lastT
	tw.areaSum += tw.lastV * dt
	tw.weightSum += dt
	tw.lastT, tw.lastV = t, v
}

// Finish closes the step function at time t and returns the time-weighted
// average. A series with zero total duration returns the last value.
func (tw *TimeWeighted) Finish(t float64) float64 {
	if !tw.started {
		return 0
	}
	tw.Observe(t, tw.lastV)
	if tw.weightSum == 0 {
		return tw.lastV
	}
	return tw.areaSum / tw.weightSum
}

// Series is an append-only (time, value) sequence used for the paper's
// timeline figures (Figure 2, 9, 11, 13).
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// Append adds a point. Times should be non-decreasing.
func (s *Series) Append(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the i-th point.
func (s *Series) At(i int) (t, v float64) { return s.Times[i], s.Values[i] }

// MeanValue returns the time-weighted mean of the series (holding each
// value until the next sample).
func (s *Series) MeanValue() float64 {
	if len(s.Times) == 0 {
		return 0
	}
	var tw TimeWeighted
	for i := range s.Times {
		tw.Observe(s.Times[i], s.Values[i])
	}
	return tw.Finish(s.Times[len(s.Times)-1])
}

// MaxValue returns the maximum sampled value.
func (s *Series) MaxValue() float64 { return Max(s.Values) }

// Downsample returns at most n points spread evenly over the series,
// always including the first and last point. Useful for printing long
// timelines.
func (s *Series) Downsample(n int) *Series {
	out := &Series{Name: s.Name}
	if s.Len() == 0 || n <= 0 {
		return out
	}
	if s.Len() <= n {
		out.Times = append(out.Times, s.Times...)
		out.Values = append(out.Values, s.Values...)
		return out
	}
	if n == 1 {
		out.Append(s.Times[0], s.Values[0])
		return out
	}
	for i := 0; i < n; i++ {
		idx := i * (s.Len() - 1) / (n - 1)
		out.Append(s.Times[idx], s.Values[idx])
	}
	return out
}
