package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if !almost(Mean(xs), 2.8) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almost(Sum(xs), 14) {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max not infinities")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	if Median(xs) != 30 {
		t.Error("median")
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		pp := float64(p % 101)
		v := Percentile(raw, pp)
		return v >= Min(raw)-1e-9 && v <= Max(raw)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	if !almost(Stddev([]float64{2, 2, 2}), 0) {
		t.Error("constant stddev")
	}
	if got := Stddev([]float64{1, 3}); !almost(got, 1) {
		t.Errorf("stddev = %v", got)
	}
}

func TestJainIndex(t *testing.T) {
	if !almost(JainIndex([]float64{5, 5, 5}), 1) {
		t.Error("equal shares should be perfectly fair")
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if !almost(got, 0.25) {
		t.Errorf("one-of-four = %v, want 0.25", got)
	}
	if JainIndex(nil) != 1 || JainIndex([]float64{0, 0}) != 1 {
		t.Error("degenerate Jain")
	}
}

func TestRelativeError(t *testing.T) {
	if !almost(RelativeError(110, 100), 0.1) {
		t.Error("rel err")
	}
	if !almost(RelativeError(3, 0), 3) {
		t.Error("rel err with zero want")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatal("len")
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Error("not sorted")
	}
	if !almost(pts[2].Fraction, 1) || !almost(pts[0].Fraction, 1.0/3) {
		t.Errorf("fractions: %+v", pts)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF")
	}
	got := SampleCDF([]float64{10, 20, 30, 40}, []float64{0.5})
	if len(got) != 1 || got[0] != 25 {
		t.Errorf("SampleCDF: %v", got)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 10)
	tw.Observe(10, 20) // 10 held for [0,10)
	// 20 held for [10,30)
	if got := tw.Finish(30); !almost(got, (10*10+20*20)/30.0) {
		t.Errorf("time-weighted mean = %v", got)
	}
	var empty TimeWeighted
	if empty.Finish(5) != 0 {
		t.Error("empty finish")
	}
	var single TimeWeighted
	single.Observe(3, 7)
	if got := single.Finish(3); got != 7 {
		t.Errorf("zero-duration series = %v, want last value", got)
	}
}

func TestTimeWeightedPanicsOnTimeTravel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("time travel did not panic")
		}
	}()
	var tw TimeWeighted
	tw.Observe(10, 1)
	tw.Observe(5, 2)
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatal("len")
	}
	if tm, v := s.At(3); tm != 3 || v != 9 {
		t.Error("At")
	}
	if s.MaxValue() != 81 {
		t.Error("MaxValue")
	}
	ds := s.Downsample(4)
	if ds.Len() != 4 {
		t.Fatalf("downsample len %d", ds.Len())
	}
	if tm, _ := ds.At(0); tm != 0 {
		t.Error("downsample should keep first point")
	}
	if tm, _ := ds.At(3); tm != 9 {
		t.Error("downsample should keep last point")
	}
	// Downsampling a short series returns it whole.
	if got := s.Downsample(100); got.Len() != 10 {
		t.Error("downsample of short series")
	}
}

func TestSeriesMeanValue(t *testing.T) {
	s := &Series{}
	s.Append(0, 10)
	s.Append(10, 30)
	s.Append(20, 30)
	// 10 held [0,10), 30 held [10,20).
	if got := s.MeanValue(); !almost(got, 20) {
		t.Errorf("MeanValue = %v", got)
	}
	if (&Series{}).MeanValue() != 0 {
		t.Error("empty MeanValue")
	}
}

func TestDownsampleMonotoneProperty(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		s := &Series{}
		for i := 0; i < int(n); i++ {
			s.Append(float64(i), float64(i))
		}
		ds := s.Downsample(int(k%32) + 1)
		times := append([]float64(nil), ds.Times...)
		return sort.Float64sAreSorted(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
