// Package core defines the SiloD scheduling framework (§3, Algorithm 1):
// the resource model in which cache capacity and remote IO bandwidth are
// first-class resources next to GPUs, the policy interface through which
// existing schedulers plug in, and the regular/irregular partitioning of
// §6 that protects the analytical estimator from jobs that violate its
// assumptions.
//
// The framework is deliberately mechanism-free: enforcement of the
// returned Assignment is the data manager's job (package datamgr), and
// the passage of time is the simulator's or testbed's job.
package core

import (
	"fmt"
	"sort"

	"repro/internal/estimator"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// Cluster is totalResource in Algorithm 1: everything the scheduler may
// hand out. SiloD's contribution is the presence of Cache and RemoteIO
// here.
type Cluster struct {
	GPUs     int
	Cache    unit.Bytes
	RemoteIO unit.Bandwidth
}

// Validate reports whether the cluster description is usable.
//
// silod:pure
func (c Cluster) Validate() error {
	if c.GPUs <= 0 {
		return fmt.Errorf("core: cluster with %d GPUs", c.GPUs)
	}
	if c.Cache < 0 || c.RemoteIO < 0 {
		return fmt.Errorf("core: negative storage resources (%v cache, %v IO)", c.Cache, c.RemoteIO)
	}
	return nil
}

// JobView is the scheduler's read-only view of one job. RemainingBytes
// is the job's remaining training work expressed in data volume, which
// divided by a throughput (bytes/s) yields remaining duration — the
// quantity SJF-style policies order by.
type JobView struct {
	ID             string
	NumGPUs        int // gang size; all-or-nothing
	Profile        estimator.JobProfile
	DatasetKey     string // cache accounting key; shared across jobs using the same dataset
	DatasetSize    unit.Bytes
	RemainingBytes unit.Bytes
	// AttainedBytes is the data volume the job has trained through so
	// far; deficit-based fairness policies use it to approximate
	// max-min fair service over time.
	AttainedBytes unit.Bytes
	// EffectiveCached is the currently effective cached bytes for the
	// job (§6 "fine-grained management"): newly admitted blocks do not
	// help until the next epoch, so allocators must size remote IO
	// grants to the instantaneous demand f*·(1 - effective/d), not the
	// planned-quota demand, or cold jobs starve during warm-up.
	EffectiveCached unit.Bytes
	// CachedBytes is the dataset's live cached bytes, including blocks
	// admitted this epoch that are not yet effective. Allocators use it
	// for placement stability (warm-data hysteresis): a dataset filling
	// up mid-epoch must not be evicted before it ever pays off.
	CachedBytes unit.Bytes
	// Tenant and SLO identify the job's owner and service tier. The
	// canonical queue order (SortJobs) ranks by SLO first, so on
	// capacity loss the re-solve sheds sheddable jobs before standard
	// before critical — reverse-SLO preemption falls out of admission
	// order. The zero SLO (standard) reproduces the flat pool exactly.
	Tenant  string
	SLO     tenant.SLOClass
	Submit  unit.Time
	Running bool
	// Irregular marks jobs whose access pattern breaks the uniform
	// exactly-once assumption (e.g. curriculum learning, §7.4); the
	// framework schedules them in a fallback partition (§6).
	Irregular bool
}

// Assignment is the joint allocation a policy produces: which jobs run
// (gang-granted GPUs), how much cache each dataset receives, and how
// much remote IO each running job receives. Cache is allocated to
// datasets, not jobs, so sharing jobs are charged once (§6).
type Assignment struct {
	GPUs       map[string]int
	CacheQuota map[string]unit.Bytes
	RemoteIO   map[string]unit.Bandwidth
}

// NewAssignment returns an empty assignment.
//
// silod:pure
func NewAssignment() Assignment {
	return Assignment{
		GPUs:       make(map[string]int),
		CacheQuota: make(map[string]unit.Bytes),
		RemoteIO:   make(map[string]unit.Bandwidth),
	}
}

// Reset clears the assignment's maps for reuse, allocating them on
// first use. Policies call it to recycle one Assignment's maps across
// scheduling rounds instead of reallocating; the returned value shares
// the receiver's maps, so a recycled Assignment is valid only until the
// policy's next Assign call.
//
// silod:pure
// silod:hotpath
func (a *Assignment) Reset() Assignment {
	if a.GPUs == nil {
		*a = NewAssignment()
		return *a
	}
	clear(a.GPUs)
	clear(a.CacheQuota)
	clear(a.RemoteIO)
	return *a
}

// Merge folds other into a (keys in other win). Used to combine the
// regular and irregular partitions.
//
// silod:pure
func (a Assignment) Merge(other Assignment) Assignment {
	for k, v := range other.GPUs {
		a.GPUs[k] = v
	}
	for k, v := range other.CacheQuota {
		a.CacheQuota[k] = v
	}
	for k, v := range other.RemoteIO {
		a.RemoteIO[k] = v
	}
	return a
}

// Validate checks the assignment against the cluster and job list:
// no oversubscription, no grants to unknown jobs, gang-or-nothing GPU
// grants. Policies are validated in tests and the simulator validates
// at every rescheduling point, so allocation bugs fail loudly.
//
// silod:pure
func (a Assignment) Validate(c Cluster, jobs []JobView) error {
	var scratch ValidateScratch
	return a.ValidateWith(c, jobs, &scratch)
}

// ValidateScratch holds the map and key buffers Validate needs, so a
// caller validating every scheduling round (the sim engines, the
// control plane's round loop) can recycle them instead of allocating
// fresh ones per solve. The zero value is ready to use; contents are
// overwritten on every ValidateWith call.
type ValidateScratch struct {
	byID map[string]JobView
	keys []string
	ids  []string
}

// ValidateWith is Validate with caller-owned scratch buffers. The
// verdict — including error strings and the sorted-key float
// accumulation order — is byte-identical to Validate's; only the
// allocation behaviour differs.
//
// silod:pure
func (a Assignment) ValidateWith(c Cluster, jobs []JobView, s *ValidateScratch) error {
	if s.byID == nil {
		s.byID = make(map[string]JobView, len(jobs))
	} else {
		clear(s.byID)
	}
	byID := s.byID
	for _, j := range jobs {
		byID[j.ID] = j
	}
	gpus := 0
	for id, g := range a.GPUs {
		j, ok := byID[id]
		if !ok {
			return fmt.Errorf("core: GPU grant to unknown job %q", id)
		}
		if g != 0 && g != j.NumGPUs {
			return fmt.Errorf("core: job %s granted %d GPUs, gang needs %d", id, g, j.NumGPUs)
		}
		gpus += g
	}
	if gpus > c.GPUs {
		return fmt.Errorf("core: %d GPUs granted, cluster has %d", gpus, c.GPUs)
	}
	// Sum in sorted key order: float addition is not associative, and
	// Validate's totals must not vary with per-process map order.
	var cacheSum unit.Bytes
	cacheKeys := s.keys[:0]
	for key := range a.CacheQuota {
		cacheKeys = append(cacheKeys, key)
	}
	sort.Strings(cacheKeys)
	for _, key := range cacheKeys {
		q := a.CacheQuota[key]
		if q < 0 {
			return fmt.Errorf("core: negative cache quota %v for %q", q, key)
		}
		cacheSum += q
	}
	if float64(cacheSum) > float64(c.Cache)*(1+1e-9)+1 {
		return fmt.Errorf("core: %v cache granted, cluster has %v", cacheSum, c.Cache)
	}
	s.keys = cacheKeys
	var ioSum unit.Bandwidth
	ioIDs := s.ids[:0]
	for id := range a.RemoteIO {
		ioIDs = append(ioIDs, id)
	}
	sort.Strings(ioIDs)
	s.ids = ioIDs
	for _, id := range ioIDs {
		bw := a.RemoteIO[id]
		if bw < 0 {
			return fmt.Errorf("core: negative remote IO %v for %q", bw, id)
		}
		if _, ok := byID[id]; !ok {
			return fmt.Errorf("core: remote IO grant to unknown job %q", id)
		}
		ioSum += bw
	}
	if float64(ioSum) > float64(c.RemoteIO)*(1+1e-9)+1 {
		return fmt.Errorf("core: %v remote IO granted, cluster has %v", ioSum, c.RemoteIO)
	}
	return nil
}

// Policy is a cluster scheduling policy. Implementations receive the
// full job list (pending and running) and produce a fresh Assignment;
// SiloD-enhanced policies consult estimator.JobProfile (SiloDPerf,
// Eq. 4) while vanilla policies look only at IdealThroughput.
type Policy interface {
	Name() string
	Assign(c Cluster, now unit.Time, jobs []JobView) Assignment
}

// PureAssigner is the optional Policy extension that lets engines skip
// redundant solves. PureAssign reports that Assign is a pure function
// of (cluster, jobs): the same inputs always produce an equivalent
// Assignment, independent of the wall-clock `now` argument, call
// history, and any internal randomness. Engines that see unchanged
// inputs may then reuse the previous solve's result. Policies whose
// ordering depends on `now` (e.g. deficit-based fairness) or that draw
// random numbers (e.g. Quiver's profiling noise) must report false —
// or simply not implement the interface, which engines treat the same.
type PureAssigner interface {
	PureAssign() bool
}

// ViewFields is a bitmask over JobView fields, used by DeltaAssigner to
// declare which fields a policy's Assign provably never reads.
type ViewFields uint32

// The maskable JobView fields. Identity fields (ID, DatasetKey) are
// deliberately not maskable: a changed identity always invalidates a
// memoized solve.
const (
	FieldNumGPUs ViewFields = 1 << iota
	FieldProfile
	FieldDatasetSize
	FieldRemainingBytes
	FieldAttainedBytes
	FieldEffectiveCached
	FieldCachedBytes
	FieldTenant
	FieldSLO
	FieldSubmit
	FieldRunning
	FieldIrregular
)

// DeltaAssigner is the optional PureAssigner extension behind the
// delta-aware solve skip. IgnoredViewFields returns the JobView fields
// Assign's output provably does not depend on; when the only
// differences between two job lists fall inside that set (and the
// policy is pure), a fresh solve would reproduce the memoized
// assignment byte for byte, so engines reuse it. Declaring a field the
// policy actually reads silently corrupts simulations — declarations
// are cross-checked by the relevance fuzz tests in internal/policy and
// each one must carry a silod:pure-requires marker naming the Assign
// it describes, so the lint machinery fails the build if the purity
// annotation the claim rests on is ever dropped.
type DeltaAssigner interface {
	PureAssigner
	IgnoredViewFields() ViewFields
}

// FullResolver is implemented by policies that carry incremental state
// across rounds (memoized sub-solves, warm-started bisection brackets).
// SetFullResolve(true) drops that state and forces every round to
// re-solve from scratch: the byte-identity reference the gates compare
// against. Engines forward Config.FullResolve here at run start.
type FullResolver interface {
	SetFullResolve(full bool)
}

// ViewsEquivalent reports whether two job lists are equal outside the
// ignored fields: same length, same per-index identity (ID and
// DatasetKey always compare), and every non-ignored field equal. With
// ignore == 0 it is exactly element-wise equality.
//
// silod:pure
func ViewsEquivalent(a, b []JobView, ignore ViewFields) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if ignore == 0 {
			if a[i] != b[i] {
				return false
			}
			continue
		}
		x, y := a[i], b[i]
		if x.ID != y.ID || x.DatasetKey != y.DatasetKey {
			return false
		}
		if ignore&FieldNumGPUs == 0 && x.NumGPUs != y.NumGPUs {
			return false
		}
		if ignore&FieldProfile == 0 && x.Profile != y.Profile {
			return false
		}
		if ignore&FieldDatasetSize == 0 && x.DatasetSize != y.DatasetSize {
			return false
		}
		if ignore&FieldRemainingBytes == 0 && x.RemainingBytes != y.RemainingBytes {
			return false
		}
		if ignore&FieldAttainedBytes == 0 && x.AttainedBytes != y.AttainedBytes {
			return false
		}
		if ignore&FieldEffectiveCached == 0 && x.EffectiveCached != y.EffectiveCached {
			return false
		}
		if ignore&FieldCachedBytes == 0 && x.CachedBytes != y.CachedBytes {
			return false
		}
		if ignore&FieldTenant == 0 && x.Tenant != y.Tenant {
			return false
		}
		if ignore&FieldSLO == 0 && x.SLO != y.SLO {
			return false
		}
		if ignore&FieldSubmit == 0 && x.Submit != y.Submit {
			return false
		}
		if ignore&FieldRunning == 0 && x.Running != y.Running {
			return false
		}
		if ignore&FieldIrregular == 0 && x.Irregular != y.Irregular {
			return false
		}
	}
	return true
}

// PolicyIgnoredFields returns the ignore mask the engines may use for
// p: the declared mask when p is a pure DeltaAssigner, zero (exact
// match) otherwise.
func PolicyIgnoredFields(p Policy) ViewFields {
	da, ok := p.(DeltaAssigner)
	if !ok || !da.PureAssign() {
		return 0
	}
	return da.IgnoredViewFields()
}

// Framework is SiloD's top-level scheduler (Algorithm 1). It partitions
// jobs into regular and irregular sets (§6 "Handling irregular data
// access"), splits storage resources proportionally between the
// partitions, runs the configured policy on the regular partition with
// the enhanced estimator, and runs the fallback policy on the irregular
// partition.
type Framework struct {
	// Policy schedules regular jobs (SiloD-enhanced).
	Policy Policy
	// Fallback schedules irregular jobs with their original estimator;
	// nil means irregular jobs share the irregular partition's storage
	// equally while keeping their GPU demand (a plain fair fallback).
	Fallback Policy
}

// Schedule implements Algorithm 1 over both partitions. The clock
// parameter is forwarded to the partition policies untouched; whether
// the whole framework is pure is their call (frameworkPolicy's
// PureAssign asks policyPure for both).
//
// silod:pure assume=Policy
func (f *Framework) Schedule(c Cluster, now unit.Time, jobs []JobView) (Assignment, error) {
	if err := c.Validate(); err != nil {
		return Assignment{}, err
	}
	if f.Policy == nil {
		return Assignment{}, fmt.Errorf("core: framework with nil policy")
	}
	var regular, irregular []JobView
	for _, j := range jobs {
		if j.Irregular {
			irregular = append(irregular, j)
		} else {
			regular = append(regular, j)
		}
	}
	if len(irregular) == 0 {
		a := f.Policy.Assign(c, now, regular)
		if err := a.Validate(c, regular); err != nil {
			return Assignment{}, fmt.Errorf("policy %s: %w", f.Policy.Name(), err)
		}
		return a, nil
	}

	// Partition storage proportionally to GPU demand so neither class
	// starves; GPUs remain a single pool arbitrated by grant order
	// (regular first, then irregular from the remainder).
	regDemand, irrDemand := gpuDemand(regular), gpuDemand(irregular)
	total := regDemand + irrDemand
	frac := 0.5
	if total > 0 {
		frac = float64(regDemand) / float64(total)
	}
	regCluster := Cluster{
		GPUs:     c.GPUs,
		Cache:    unit.Bytes(float64(c.Cache) * frac),
		RemoteIO: unit.Bandwidth(float64(c.RemoteIO) * frac),
	}
	regAssign := f.Policy.Assign(regCluster, now, regular)
	if err := regAssign.Validate(regCluster, regular); err != nil {
		return Assignment{}, fmt.Errorf("policy %s (regular partition): %w", f.Policy.Name(), err)
	}

	usedGPUs := 0
	for _, g := range regAssign.GPUs {
		usedGPUs += g
	}
	irrCluster := Cluster{
		GPUs:     c.GPUs - usedGPUs,
		Cache:    c.Cache - unit.Bytes(float64(c.Cache)*frac),
		RemoteIO: c.RemoteIO - unit.Bandwidth(float64(c.RemoteIO)*frac),
	}
	var irrAssign Assignment
	if f.Fallback != nil && irrCluster.GPUs > 0 {
		irrAssign = f.Fallback.Assign(irrCluster, now, irregular)
		if err := irrAssign.Validate(irrCluster, irregular); err != nil {
			return Assignment{}, fmt.Errorf("fallback %s (irregular partition): %w", f.Fallback.Name(), err)
		}
	} else {
		irrAssign = equalShareFallback(irrCluster, irregular)
	}
	return regAssign.Merge(irrAssign), nil
}

// gpuDemand sums gang sizes.
//
// silod:pure
func gpuDemand(jobs []JobView) int {
	var s int
	for _, j := range jobs {
		s += j.NumGPUs
	}
	return s
}

// equalShareFallback grants GPUs in submit order and splits the
// partition's storage equally among admitted jobs, charging shared
// datasets once.
//
// silod:pure
func equalShareFallback(c Cluster, jobs []JobView) Assignment {
	a := NewAssignment()
	sorted := append([]JobView(nil), jobs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Submit != sorted[j].Submit {
			return sorted[i].Submit < sorted[j].Submit
		}
		return sorted[i].ID < sorted[j].ID
	})
	free := c.GPUs
	var admitted []JobView
	for _, j := range sorted {
		if j.NumGPUs <= free {
			a.GPUs[j.ID] = j.NumGPUs
			free -= j.NumGPUs
			admitted = append(admitted, j)
		}
	}
	if len(admitted) == 0 {
		return a
	}
	ioShare := unit.Bandwidth(float64(c.RemoteIO) / float64(len(admitted)))
	cacheShare := unit.Bytes(float64(c.Cache) / float64(len(admitted)))
	for _, j := range admitted {
		a.RemoteIO[j.ID] = ioShare
		// Shared datasets accumulate the shares of their users, capped
		// at the dataset size; the cap returns slack implicitly.
		q := a.CacheQuota[j.DatasetKey] + cacheShare
		if q > j.DatasetSize {
			q = j.DatasetSize
		}
		a.CacheQuota[j.DatasetKey] = q
	}
	return a
}

// SortJobs orders jobs by SLO rank (critical before standard before
// sheddable), then submit time, then ID — the canonical queue order
// shared by every policy implementation. Ranking first means admission
// under scarcity protects higher tiers, and on GPU loss the re-solve
// drops sheddable jobs first. Single-class job sets (the untenanted
// default) reduce to the original submit-then-ID order.
//
// silod:pure
func SortJobs(jobs []JobView) []JobView {
	return SortJobsInto(nil, jobs)
}

// SortJobsInto is SortJobs with a caller-owned destination buffer
// (reused via dst[:0]); the returned slice aliases dst's backing array
// when capacity allows. Order is byte-identical to SortJobs.
//
// silod:pure
func SortJobsInto(dst []JobView, jobs []JobView) []JobView {
	out := append(dst[:0], jobs...)
	sort.Slice(out, func(i, j int) bool {
		if ri, rj := out[i].SLO.Rank(), out[j].SLO.Rank(); ri != rj {
			return ri < rj
		}
		if out[i].Submit != out[j].Submit {
			return out[i].Submit < out[j].Submit
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// frameworkPolicy adapts Framework to the Policy interface for engines
// that drive policies directly. Scheduling errors indicate framework
// misconfiguration or a broken inner policy and surface as panics, the
// same contract the simulator applies to invalid assignments.
type frameworkPolicy struct {
	f *Framework
}

// Name implements Policy.
func (p frameworkPolicy) Name() string {
	name := "framework"
	if p.f.Policy != nil {
		name += "+" + p.f.Policy.Name()
	}
	return name
}

// Assign implements Policy.
//
// silod:pure assume=Policy
func (p frameworkPolicy) Assign(c Cluster, now unit.Time, jobs []JobView) Assignment {
	a, err := p.f.Schedule(c, now, jobs)
	if err != nil {
		panic(fmt.Sprintf("core: framework scheduling failed: %v", err))
	}
	return a
}

// PureAssign implements PureAssigner: the framework is pure when every
// policy it may delegate to is pure (the built-in equal-share fallback
// used when Fallback is nil is a pure function already).
//
// silod:pure-requires: (*Framework).Schedule, equalShareFallback
func (p frameworkPolicy) PureAssign() bool {
	if !policyPure(p.f.Policy) {
		return false
	}
	return p.f.Fallback == nil || policyPure(p.f.Fallback)
}

// equalShareIgnored is the ignore mask of equalShareFallback: it reads
// only ID, DatasetKey, NumGPUs, DatasetSize and Submit.
const equalShareIgnored = FieldProfile | FieldRemainingBytes | FieldAttainedBytes |
	FieldEffectiveCached | FieldCachedBytes | FieldTenant | FieldSLO | FieldRunning

// IgnoredViewFields implements DeltaAssigner: a field is ignorable for
// the framework only if every policy it may delegate to ignores it,
// and never Irregular (the partitioning key) or NumGPUs (the
// proportional storage split reads gang sizes).
//
// silod:pure-requires: (*Framework).Schedule, equalShareFallback
func (p frameworkPolicy) IgnoredViewFields() ViewFields {
	mask := policyIgnored(p.f.Policy)
	if p.f.Fallback != nil {
		mask &= policyIgnored(p.f.Fallback)
	} else {
		mask &= equalShareIgnored
	}
	return mask &^ (FieldIrregular | FieldNumGPUs)
}

// SetFullResolve implements FullResolver by forwarding to both inner
// policies.
func (p frameworkPolicy) SetFullResolve(full bool) {
	if fr, ok := p.f.Policy.(FullResolver); ok {
		fr.SetFullResolve(full)
	}
	if fr, ok := p.f.Fallback.(FullResolver); ok {
		fr.SetFullResolve(full)
	}
}

// policyPure reports whether p declares itself a pure assigner.
func policyPure(p Policy) bool {
	pa, ok := p.(PureAssigner)
	return ok && pa.PureAssign()
}

// policyIgnored returns p's declared ignore mask, or zero when p is
// not a pure DeltaAssigner.
func policyIgnored(p Policy) ViewFields {
	da, ok := p.(DeltaAssigner)
	if !ok || !da.PureAssign() {
		return 0
	}
	return da.IgnoredViewFields()
}

// AsPolicy returns the framework as a Policy.
func (f *Framework) AsPolicy() Policy { return frameworkPolicy{f: f} }
