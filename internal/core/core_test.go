package core

import (
	"strings"
	"testing"

	"repro/internal/estimator"
	"repro/internal/unit"
)

func view(id string, gpus int, dsKey string, dsSize unit.Bytes, fstar unit.Bandwidth) JobView {
	return JobView{
		ID:         id,
		NumGPUs:    gpus,
		Profile:    estimator.JobProfile{IdealThroughput: fstar, DatasetSize: dsSize},
		DatasetKey: dsKey, DatasetSize: dsSize,
		RemainingBytes: 10 * dsSize,
	}
}

func testCluster() Cluster {
	return Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(100)}
}

func TestClusterValidate(t *testing.T) {
	if err := testCluster().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Cluster{GPUs: 0}).Validate(); err == nil {
		t.Error("zero GPUs accepted")
	}
	if err := (Cluster{GPUs: 1, Cache: -1}).Validate(); err == nil {
		t.Error("negative cache accepted")
	}
}

func TestAssignmentValidate(t *testing.T) {
	c := testCluster()
	jobs := []JobView{
		view("a", 2, "ds-a", unit.GiB(10), unit.MBpsOf(100)),
		view("b", 4, "ds-b", unit.GiB(20), unit.MBpsOf(50)),
	}
	good := NewAssignment()
	good.GPUs["a"] = 2
	good.GPUs["b"] = 4
	good.CacheQuota["ds-a"] = unit.GiB(10)
	good.RemoteIO["a"] = unit.MBpsOf(60)
	good.RemoteIO["b"] = unit.MBpsOf(40)
	if err := good.Validate(c, jobs); err != nil {
		t.Fatalf("good assignment rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(Assignment)
		want   string
	}{
		{"unknown job", func(a Assignment) { a.GPUs["x"] = 1 }, "unknown job"},
		{"partial gang", func(a Assignment) { a.GPUs["b"] = 2 }, "gang"},
		{"gpu oversub", func(a Assignment) { a.GPUs["a"] = 2; a.GPUs["b"] = 4; a.GPUs["c"] = 0; _ = a }, ""},
		{"cache oversub", func(a Assignment) { a.CacheQuota["ds-a"] = unit.GiB(200) }, "cache"},
		{"negative cache", func(a Assignment) { a.CacheQuota["ds-a"] = -1 }, "negative"},
		{"io oversub", func(a Assignment) { a.RemoteIO["a"] = unit.MBpsOf(200) }, "remote IO"},
		{"negative io", func(a Assignment) { a.RemoteIO["a"] = -1 }, "negative"},
		{"io unknown job", func(a Assignment) { a.RemoteIO["zz"] = 1 }, "unknown"},
	}
	for _, tc := range cases {
		a := NewAssignment()
		a.GPUs["a"] = 2
		tc.mutate(a)
		err := a.Validate(c, jobs)
		if tc.want == "" {
			continue // mutation intentionally benign
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestAssignmentMerge(t *testing.T) {
	a := NewAssignment()
	a.GPUs["x"] = 1
	a.CacheQuota["d1"] = 10
	b := NewAssignment()
	b.GPUs["y"] = 2
	b.CacheQuota["d1"] = 20
	b.RemoteIO["y"] = 5
	m := a.Merge(b)
	if m.GPUs["x"] != 1 || m.GPUs["y"] != 2 {
		t.Error("GPU merge")
	}
	if m.CacheQuota["d1"] != 20 {
		t.Error("merge should prefer other's value")
	}
	if m.RemoteIO["y"] != 5 {
		t.Error("IO merge")
	}
}

// equalPolicy splits everything equally for testing the framework.
type equalPolicy struct{ name string }

func (p equalPolicy) Name() string { return p.name }

func (p equalPolicy) Assign(c Cluster, now unit.Time, jobs []JobView) Assignment {
	a := NewAssignment()
	free := c.GPUs
	for _, j := range SortJobs(jobs) {
		if j.NumGPUs <= free {
			a.GPUs[j.ID] = j.NumGPUs
			free -= j.NumGPUs
		}
	}
	n := len(a.GPUs)
	if n == 0 {
		return a
	}
	for _, j := range jobs {
		if a.GPUs[j.ID] == 0 {
			continue
		}
		a.RemoteIO[j.ID] = unit.Bandwidth(float64(c.RemoteIO) / float64(n))
		q := a.CacheQuota[j.DatasetKey] + unit.Bytes(float64(c.Cache)/float64(n))
		if q > j.DatasetSize {
			q = j.DatasetSize
		}
		a.CacheQuota[j.DatasetKey] = q
	}
	return a
}

func TestFrameworkRegularOnly(t *testing.T) {
	f := &Framework{Policy: equalPolicy{"eq"}}
	jobs := []JobView{
		view("a", 2, "ds-a", unit.GiB(10), unit.MBpsOf(100)),
		view("b", 2, "ds-b", unit.GiB(20), unit.MBpsOf(50)),
	}
	a, err := f.Schedule(testCluster(), 0, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.GPUs["a"] != 2 || a.GPUs["b"] != 2 {
		t.Errorf("GPUs: %+v", a.GPUs)
	}
}

// TestFrameworkPartitionsIrregularJobs checks §6's irregular handling:
// irregular jobs get a storage partition and never see the main policy.
func TestFrameworkPartitionsIrregularJobs(t *testing.T) {
	f := &Framework{Policy: equalPolicy{"eq"}}
	jobs := []JobView{
		view("reg", 4, "ds-r", unit.GiB(10), unit.MBpsOf(100)),
		view("irr", 2, "ds-i", unit.GiB(10), unit.MBpsOf(100)),
	}
	jobs[1].Irregular = true
	c := testCluster()
	a, err := f.Schedule(c, 0, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.GPUs["reg"] != 4 || a.GPUs["irr"] != 2 {
		t.Fatalf("GPUs: %+v", a.GPUs)
	}
	// Storage is split 4:2 between the partitions; the regular job's
	// quota must come from the regular share only.
	regCache := float64(a.CacheQuota["ds-r"])
	if regCache > float64(c.Cache)*4.0/6.0+1 {
		t.Errorf("regular partition overdrew cache: %v", a.CacheQuota["ds-r"])
	}
	if a.RemoteIO["irr"] <= 0 {
		t.Error("irregular job got no remote IO from the fallback")
	}
	if err := a.Validate(c, jobs); err != nil {
		t.Fatal(err)
	}
}

func TestFrameworkErrors(t *testing.T) {
	f := &Framework{}
	if _, err := f.Schedule(testCluster(), 0, nil); err == nil {
		t.Error("nil policy accepted")
	}
	f = &Framework{Policy: equalPolicy{"eq"}}
	if _, err := f.Schedule(Cluster{}, 0, nil); err == nil {
		t.Error("invalid cluster accepted")
	}
}

func TestSortJobs(t *testing.T) {
	jobs := []JobView{
		{ID: "b", Submit: 5},
		{ID: "a", Submit: 5},
		{ID: "c", Submit: 1},
	}
	sorted := SortJobs(jobs)
	if sorted[0].ID != "c" || sorted[1].ID != "a" || sorted[2].ID != "b" {
		t.Errorf("order: %v %v %v", sorted[0].ID, sorted[1].ID, sorted[2].ID)
	}
	// Input untouched.
	if jobs[0].ID != "b" {
		t.Error("SortJobs mutated input")
	}
}
