package metrics

import (
	"strings"
	"testing"
)

func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry("node")
	r.Counter("silod_cache_hits_total", L("policy", "uniform")).Add(7)
	r.Gauge("silod_remoteio_utilization_ratio").Set(0.75)
	h := r.Histogram("silod_sim_jct_minutes", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE silod_cache_hits_total counter",
		`silod_cache_hits_total{policy="uniform"} 7`,
		"# TYPE silod_remoteio_utilization_ratio gauge",
		"silod_remoteio_utilization_ratio 0.75",
		"# TYPE silod_sim_jct_minutes histogram",
		`silod_sim_jct_minutes_bucket{le="10"} 1`,
		`silod_sim_jct_minutes_bucket{le="100"} 2`,
		`silod_sim_jct_minutes_bucket{le="+Inf"} 3`,
		"silod_sim_jct_minutes_sum 555",
		"silod_sim_jct_minutes_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}

	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]Sample)
	for _, s := range samples {
		key := s.Name
		for _, k := range []string{"policy", "le"} {
			if v, ok := s.Labels[k]; ok {
				key += "|" + k + "=" + v
			}
		}
		byKey[key] = s
	}
	if s, ok := byKey["silod_cache_hits_total|policy=uniform"]; !ok || s.Value != 7 {
		t.Errorf("parsed counter = %+v", s)
	}
	if s, ok := byKey["silod_sim_jct_minutes_bucket|le=+Inf"]; !ok || s.Value != 3 {
		t.Errorf("parsed +Inf bucket = %+v", s)
	}
	if s, ok := byKey["silod_sim_jct_minutes_count"]; !ok || s.Value != 3 {
		t.Errorf("parsed count = %+v", s)
	}
}

func TestParsePrometheusEscapes(t *testing.T) {
	text := "m{k=\"a\\\"b\\\\c\\nd\"} 1\n"
	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("got %d samples", len(samples))
	}
	if got := samples[0].Labels["k"]; got != "a\"b\\c\nd" {
		t.Errorf("label value = %q", got)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"noval",
		"m{unclosed 1",
		"m{k=unquoted} 1",
		"m{k=\"v\"} notanumber",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}

func TestEscapedLabelValueRoundTrip(t *testing.T) {
	r := NewRegistry("t")
	r.Counter("m", L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse of own output: %v\n%s", err, b.String())
	}
	if got := samples[0].Labels["k"]; got != "a\"b\\c\nd" {
		t.Errorf("round-tripped label = %q", got)
	}
}
