// Package metrics is the cluster-wide observability subsystem: a
// dependency-free metrics registry with atomic counters, gauges and
// fixed-bucket histograms, plus a virtual-clock-aware timeline recorder
// for structured per-job events.
//
// Design goals, in order:
//
//   - Lock-free increments. The hot paths this package instruments —
//     per-block cache accesses, remote-IO reservations, simulator
//     integration steps — run millions of times per second. Counter.Add,
//     Gauge.Set and Histogram.Observe are single atomic operations with
//     no map lookups: callers intern a handle once (Registry.Counter et
//     al.) and hit only the atomic afterwards.
//
//   - Nil-safety. A nil *Counter / *Gauge / *Histogram / *Timeline is a
//     valid no-op receiver, so instrumentation sites need no "is
//     monitoring enabled" branches: components hold zero-value handle
//     structs until someone wires a Registry in.
//
//   - Determinism. Snapshots and Prometheus text render in a stable
//     order (name, then label fingerprint) so golden tests and diffs
//     work.
//
// See docs/observability.md for naming conventions and label rules.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically non-decreasing integer metric. The zero
// value is ready to use; a nil Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative n is ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric. The zero value is ready to
// use; a nil Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (atomic via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reports the current value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus "le" (less than
// or equal) semantics: bucket i counts observations <= bounds[i], with
// one extra overflow bucket for +Inf. Observe is lock-free. A nil
// Histogram no-ops.
type Histogram struct {
	bounds []float64 // sorted, strictly increasing upper bounds
	counts []atomic.Int64
	sum    Gauge // atomic float adder
	count  atomic.Int64
}

// newHistogram builds a histogram over the given bucket upper bounds.
// Bounds are copied, sorted and deduplicated.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, counts: make([]atomic.Int64, len(dedup)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is the "le" bucket; all larger bounds include it
	// cumulatively at snapshot time.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// cumulative returns the cumulative per-bucket counts, one entry per
// bound plus the +Inf bucket.
func (h *Histogram) cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor — the standard shape for latency and
// JCT histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds starting at start with the given step.
func LinearBuckets(start, step float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = start + float64(i)*step
	}
	return out
}
