package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestNilHandlesNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tl *Timeline
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tl.RecordAt(0, EventSubmit, "j", 0, "")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || tl.Len() != 0 {
		t.Error("nil handles must read as zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry must return nil handles")
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-7) // counters only go up
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1.0)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 2, 7, 100} {
		h.Observe(v)
	}
	cum := h.cumulative()
	// le=1: {0.5, 1}; le=5: +{2}; le=10: +{7}; +Inf: +{100}.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("bucket %d = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+2+7+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	l := LinearBuckets(0, 10, 3)
	wantL := []float64{0, 10, 20}
	for i := range wantL {
		if l[i] != wantL[i] {
			t.Fatalf("LinearBuckets = %v, want %v", l, wantL)
		}
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || LinearBuckets(0, 1, 0) != nil {
		t.Error("degenerate bucket specs must return nil")
	}
}

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry("test")
	a := r.Counter("hits", L("policy", "lru"))
	b := r.Counter("hits", L("policy", "lru"))
	if a != b {
		t.Error("same name+labels must intern to the same handle")
	}
	c := r.Counter("hits", L("policy", "quota"))
	if a == c {
		t.Error("different labels must be distinct series")
	}
	a.Add(3)
	c.Add(1)
	snap := r.Snapshot()
	if got := snap.CounterValue("hits", map[string]string{"policy": "lru"}); got != 3 {
		t.Errorf("lru hits = %v, want 3", got)
	}
	if got := snap.CounterValue("hits", map[string]string{"policy": "quota"}); got != 1 {
		t.Errorf("quota hits = %v, want 1", got)
	}
}

func TestRegistryLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry("test")
	a := r.Gauge("g", L("a", "1"), L("b", "2"))
	b := r.Gauge("g", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order must not create distinct series")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry("test")
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry("test")
	r.Histogram("h", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("re-registering a histogram with different bounds must panic")
		}
	}()
	r.Histogram("h", []float64{1, 3})
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry("test")
	r.Counter("zzz")
	r.Counter("aaa", L("x", "2"))
	r.Counter("aaa", L("x", "1"))
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1.Metrics) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(s1.Metrics))
	}
	if s1.Metrics[0].Name != "aaa" || s1.Metrics[2].Name != "zzz" {
		t.Errorf("metrics not name-sorted: %+v", s1.Metrics)
	}
	for i := range s1.Metrics {
		if s1.Metrics[i].Name != s2.Metrics[i].Name ||
			s1.Metrics[i].Labels["x"] != s2.Metrics[i].Labels["x"] {
			t.Error("snapshot order not deterministic")
		}
	}
}

// TestConcurrentRegistryAndHandles exercises the registry and every
// primitive from many goroutines; run with -race (the Makefile's verify
// target does).
func TestConcurrentRegistryAndHandles(t *testing.T) {
	r := NewRegistry("race")
	tl := NewTimeline(0)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleave interning with updates: half the workers share
			// label "a", the rest "b", so interning races are exercised.
			label := "a"
			if w%2 == 1 {
				label = "b"
			}
			c := r.Counter("ops_total", L("w", label))
			g := r.Gauge("level", L("w", label))
			h := r.Histogram("lat", []float64{1, 10, 100}, L("w", label))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 128))
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent readers
				}
				tl.RecordAt(float64(i), EventSchedule, "job", 1, "")
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total float64
	for _, lbl := range []string{"a", "b"} {
		total += snap.CounterValue("ops_total", map[string]string{"w": lbl})
	}
	if want := float64(workers * perWorker); total != want {
		t.Errorf("total ops = %v, want %v", total, want)
	}
	if tl.Len() != workers*perWorker {
		t.Errorf("timeline len = %d, want %d", tl.Len(), workers*perWorker)
	}
}

func TestTimelineBoundAndKinds(t *testing.T) {
	tl := NewTimeline(3)
	tl.RecordAt(0, EventSubmit, "j1", 0, "")
	tl.RecordAt(1, EventSchedule, "j1", 4, "")
	tl.RecordAt(2, EventComplete, "j1", 120, "")
	tl.RecordAt(3, EventSubmit, "j2", 0, "") // over the limit: dropped
	if tl.Len() != 3 {
		t.Errorf("len = %d, want 3", tl.Len())
	}
	if tl.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tl.Dropped())
	}
	subs := tl.ByKind(EventSubmit)
	if len(subs) != 1 || subs[0].Job != "j1" {
		t.Errorf("ByKind(submit) = %+v", subs)
	}
	ev := tl.Events()
	if len(ev) != 3 || ev[1].Value != 4 {
		t.Errorf("events = %+v", ev)
	}
}
