package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one key=value dimension of a metric series. Labels must be
// low-cardinality (policy names, engine names, dataset classes — never
// job IDs or block numbers); see docs/observability.md.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// silod:enum
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// series is one (name, labels) instance of a metric family.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	typ    metricType
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry is a named collection of metrics. Registration
// (Counter/Gauge/Histogram) interns a handle: the first call for a
// (name, labels) pair creates the series, subsequent calls return the
// same handle, and all increments on the handle are lock-free. A nil
// Registry returns nil handles, which no-op, so components can be
// instrumented unconditionally and pay nothing until a registry is
// wired in.
type Registry struct {
	name     string
	mu       sync.RWMutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{name: name, families: make(map[string]*family)}
}

// Name reports the registry's name ("" for nil).
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// labelKey fingerprints a sorted label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(0xff)
		}
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register interns (creating if needed) the series for name+labels.
// Registering an existing name with a different type or histogram
// geometry panics: that is a programming error that would silently
// corrupt exported data, the same contract cache.Pool.Register enforces
// with errors on its (fallible, user-driven) path.
func (r *Registry) register(name string, typ metricType, bounds []float64, labels []Label) *series {
	ls := sortedLabels(labels)
	key := labelKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, bounds: append([]float64(nil), bounds...), series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	if typ == typeHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("metrics: histogram %q re-registered with different buckets", name))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = newHistogram(bounds)
		}
		f.series[key] = s
	}
	return s
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter interns and returns the counter for name+labels. Nil registry
// returns nil (a no-op handle).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, typeCounter, nil, labels).c
}

// Gauge interns and returns the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, typeGauge, nil, labels).g
}

// Histogram interns and returns the histogram for name+labels. All
// series of one name share the same bucket bounds; re-registering with
// different bounds panics.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, typeHistogram, bounds, labels).h
}

// Snapshot is a point-in-time, JSON-serializable export of a registry.
type Snapshot struct {
	Registry string           `json:"registry,omitempty"`
	Metrics  []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one exported series.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries the counter or gauge value; nil for histograms.
	Value *float64 `json:"value,omitempty"`
	// Histogram fields. Buckets are cumulative with "le" upper bounds
	// rendered as strings ("+Inf" for the overflow bucket) because JSON
	// has no infinity literal.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// FormatBound renders a bucket upper bound the way snapshots and the
// Prometheus text format expect.
func FormatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Snapshot exports every series in deterministic order (metric name,
// then label fingerprint). Safe to call concurrently with updates:
// values are read atomically, though not as one consistent cut.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{Registry: r.name}
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			m := MetricSnapshot{Name: f.name, Type: f.typ.String()}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			switch f.typ {
			case typeCounter:
				v := float64(s.c.Value())
				m.Value = &v
			case typeGauge:
				v := s.g.Value()
				m.Value = &v
			case typeHistogram:
				m.Count = s.h.Count()
				m.Sum = s.h.Sum()
				cum := s.h.cumulative()
				m.Buckets = make([]Bucket, len(cum))
				for i, c := range cum {
					le := "+Inf"
					if i < len(s.h.bounds) {
						le = FormatBound(s.h.bounds[i])
					}
					m.Buckets[i] = Bucket{LE: le, Count: c}
				}
			}
			snap.Metrics = append(snap.Metrics, m)
		}
	}
	return snap
}

// Get returns the snapshot of one series by name and labels, or false
// if it is not registered — the lookup tests and the report bridge use.
func (s Snapshot) Get(name string, labels map[string]string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name != name {
			continue
		}
		if len(m.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if m.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// CounterValue returns the value of a counter/gauge series, or 0 if
// absent — convenience for assertions and bridges.
func (s Snapshot) CounterValue(name string, labels map[string]string) float64 {
	m, ok := s.Get(name, labels)
	if !ok || m.Value == nil {
		return 0
	}
	return *m.Value
}
