package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one "# TYPE" header per family, series sorted
// deterministically, histograms expanded into cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, m := range snap.Metrics {
		if m.Name != lastName {
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Type)
			lastName = m.Name
		}
		switch m.Type {
		case "histogram":
			for _, b := range m.Buckets {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", m.Name, formatLabels(m.Labels, "le", b.LE), b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.Name, formatLabels(m.Labels, "", ""), formatValue(m.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.Name, formatLabels(m.Labels, "", ""), m.Count)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", m.Name, formatLabels(m.Labels, "", ""), formatValue(*m.Value))
		}
	}
	return bw.Flush()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLabels renders {k="v",...}; extraKey/extraVal append one more
// pair (the histogram "le" label). Returns "" for an empty set.
func formatLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	add := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	for _, k := range keys {
		add(k, labels[k])
	}
	if extraKey != "" {
		add(extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Sample is one parsed Prometheus text sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsePrometheus parses the text exposition format back into samples —
// the consumer side the control-plane scrape tests (and silodctl) use.
// Comment and blank lines are skipped; histogram expansions come back
// as their _bucket/_sum/_count series.
func ParsePrometheus(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unclosed label set in %q", line)
		}
		labels, err := parseLabelSet(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	valStr := strings.TrimSpace(rest)
	// A trailing timestamp (which we never emit) would be a second field.
	if i := strings.IndexAny(valStr, " \t"); i >= 0 {
		valStr = valStr[:i]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabelSet(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		labels[key] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}
