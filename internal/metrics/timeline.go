package metrics

import "sync"

// EventKind classifies a timeline event.
// silod:enum
type EventKind string

// The structured per-job event kinds the schedulers and engines emit.
const (
	EventSubmit     EventKind = "submit"      // job entered the system
	EventSchedule   EventKind = "schedule"    // job granted GPUs (Value = count)
	EventPreempt    EventKind = "preempt"     // job lost its GPUs
	EventCacheAlloc EventKind = "cache_alloc" // dataset quota set (Job = key, Value = bytes)
	EventIOAlloc    EventKind = "io_alloc"    // remote IO rate set (Value = bytes/sec)
	EventEpoch      EventKind = "epoch"       // job crossed an epoch boundary
	EventComplete   EventKind = "complete"    // job finished (Value = JCT seconds)
	EventFault      EventKind = "fault"       // capacity lost or job crashed (Detail = kind)
	EventRecover    EventKind = "recover"     // lost capacity restored (Detail = kind)
)

// Event is one timeline entry. T is *virtual* time in seconds — the
// simulator's clock, the testbed's scaled clock, or wall seconds since
// a daemon's start — so timelines from all three sources line up.
type Event struct {
	T      float64   `json:"t"`
	Kind   EventKind `json:"kind"`
	Job    string    `json:"job,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Timeline is an append-only, bounded, thread-safe event recorder. A
// nil Timeline no-ops, so producers record unconditionally. When the
// bound is reached new events are dropped (and counted) rather than
// evicting history: the head of a schedule is worth more than its tail
// for post-mortem debugging, and dropping beats unbounded growth.
type Timeline struct {
	mu      sync.Mutex
	events  []Event // guarded by mu
	limit   int     // immutable after construction
	dropped int64   // guarded by mu
}

// DefaultTimelineLimit bounds a Timeline constructed with limit <= 0.
const DefaultTimelineLimit = 1 << 20

// NewTimeline returns an empty timeline holding at most limit events
// (DefaultTimelineLimit if limit <= 0).
func NewTimeline(limit int) *Timeline {
	if limit <= 0 {
		limit = DefaultTimelineLimit
	}
	return &Timeline{limit: limit}
}

// RecordAt appends an event stamped with the caller's virtual time.
func (tl *Timeline) RecordAt(t float64, kind EventKind, job string, value float64, detail string) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if len(tl.events) >= tl.limit {
		tl.dropped++
		return
	}
	tl.events = append(tl.events, Event{T: t, Kind: kind, Job: job, Value: value, Detail: detail})
}

// Events returns a copy of the recorded events in append order.
func (tl *Timeline) Events() []Event {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]Event(nil), tl.events...)
}

// Len reports the number of recorded events.
func (tl *Timeline) Len() int {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.events)
}

// Dropped reports how many events were discarded at the limit.
func (tl *Timeline) Dropped() int64 {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.dropped
}

// ByKind returns the recorded events of one kind, in order.
func (tl *Timeline) ByKind(kind EventKind) []Event {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var out []Event
	for _, e := range tl.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
