package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentRegisterSnapshot hammers the registry from concurrent
// writers while readers snapshot, the access pattern the daemon sees:
// handlers intern and bump series while /metrics scrapes. Run under
// -race (make verify); the final state is deterministic regardless of
// interleaving.
func TestConcurrentRegisterSnapshot(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
	)
	r := NewRegistry("race")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := fmt.Sprintf("w%d", w)
			for i := 0; i < rounds; i++ {
				// Shared series: every worker interns the same handle.
				r.Counter("race_shared_total").Inc()
				// Per-worker series: interning races only on the map.
				r.Counter("race_worker_total", L("worker", own)).Inc()
				r.Gauge("race_last", L("worker", own)).Set(float64(i))
				if i%10 == 0 {
					// Concurrent scrape; value is torn-free but not a cut.
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.CounterValue("race_shared_total", nil); got != workers*rounds {
		t.Errorf("race_shared_total = %v, want %d", got, workers*rounds)
	}
	for w := 0; w < workers; w++ {
		labels := map[string]string{"worker": fmt.Sprintf("w%d", w)}
		if got := snap.CounterValue("race_worker_total", labels); got != rounds {
			t.Errorf("race_worker_total{worker=w%d} = %v, want %d", w, got, rounds)
		}
		if got := snap.CounterValue("race_last", labels); got != rounds-1 {
			t.Errorf("race_last{worker=w%d} = %v, want %d", w, got, rounds-1)
		}
	}
}
