package simrng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if New(7).Intn(1000) == New(8).Intn(1000) && New(7).Intn(1000) == New(8).Intn(1000) {
		// Single collisions are fine; identical streams are not.
		x, y := New(7), New(8)
		same := true
		for i := 0; i < 16; i++ {
			if x.Int63() != y.Int63() {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(1)
	a := g.Split("alpha")
	b := g.Split("beta")
	same := true
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("split streams identical for different labels")
	}
}

func TestExponentialMean(t *testing.T) {
	g := New(2)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exponential(5)
	}
	mean := sum / n
	if mean < 4.5 || mean > 5.5 {
		t.Errorf("exponential mean %v, want ~5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive mean did not panic")
		}
	}()
	g.Exponential(0)
}

func TestLogNormalMedian(t *testing.T) {
	g := New(3)
	const n = 20001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = g.LogNormal(math.Log(40), 1.5)
	}
	// Median of lognormal(mu, sigma) is e^mu = 40.
	med := quickSelectMedian(vals)
	if med < 35 || med > 45 {
		t.Errorf("lognormal median %v, want ~40", med)
	}
}

func quickSelectMedian(vals []float64) float64 {
	// Simple n log n median for the test.
	cp := append([]float64(nil), vals...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestBoundedLogNormal(t *testing.T) {
	g := New(4)
	for i := 0; i < 1000; i++ {
		v := g.BoundedLogNormal(math.Log(40), 2, 2, 300)
		if v < 2 || v > 300 {
			t.Fatalf("value %v outside bounds", v)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	g := New(5)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[g.WeightedChoice([]float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Errorf("weights not respected: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("heavy weight drawn %.2f of the time, want ~0.7", frac)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero weights did not panic")
		}
	}()
	g.WeightedChoice([]float64{0, 0})
}

func TestZipfSkew(t *testing.T) {
	g := New(6)
	z := NewZipf(g, 10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[5] {
		t.Errorf("zipf head %d not heavier than middle %d", counts[0], counts[5])
	}
	// s = 0 degenerates to uniform-ish.
	u := NewZipf(New(7), 4, 0)
	uc := make([]int, 4)
	for i := 0; i < 20000; i++ {
		uc[u.Next()]++
	}
	for i, c := range uc {
		if c < 4000 || c > 6000 {
			t.Errorf("uniform zipf bucket %d = %d, want ~5000", i, c)
		}
	}
}

func TestShuffleAndPermAreCompletePermutations(t *testing.T) {
	g := New(8)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(g, xs)
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
	p := g.Perm(100)
	seenP := make(map[int]bool)
	for _, x := range p {
		if x < 0 || x >= 100 {
			t.Fatalf("perm value %d out of range", x)
		}
		seenP[x] = true
	}
	if len(seenP) != 100 {
		t.Error("perm is not a permutation")
	}
}

func TestGammaMomentsAndDeterminism(t *testing.T) {
	// Mean and CV of gamma draws must track the parameterization: the
	// load generator's burstiness knob is exactly this CV.
	for _, cv := range []float64{0.5, 1.0, 2.0} {
		g := New(7)
		const n = 20000
		mean := 0.5 // seconds between arrivals
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := g.GammaInterarrival(mean, cv)
			if x < 0 {
				t.Fatalf("cv %v: negative interarrival %v", cv, x)
			}
			sum += x
			sumSq += x * x
		}
		gotMean := sum / n
		gotVar := sumSq/n - gotMean*gotMean
		gotCV := math.Sqrt(gotVar) / gotMean
		if gotMean < 0.9*mean || gotMean > 1.1*mean {
			t.Errorf("cv %v: mean = %v, want ~%v", cv, gotMean, mean)
		}
		if gotCV < 0.9*cv || gotCV > 1.1*cv {
			t.Errorf("cv %v: measured CV = %v", cv, gotCV)
		}
	}
	// Same seed, same stream.
	a, b := New(11), New(11)
	for i := 0; i < 100; i++ {
		if x, y := a.Gamma(0.25, 2), b.Gamma(0.25, 2); x != y {
			t.Fatalf("gamma stream diverged at %d: %v != %v", i, x, y)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	g := New(1)
	for _, fn := range []func(){
		func() { g.Gamma(0, 1) },
		func() { g.Gamma(1, -1) },
		func() { g.GammaInterarrival(0, 1) },
		func() { g.GammaInterarrival(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad gamma params did not panic")
				}
			}()
			fn()
		}()
	}
}
