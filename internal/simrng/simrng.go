// Package simrng provides deterministic, seeded random utilities for
// workload and trace generation. Every experiment in this repository is
// reproducible from its seed; nothing here reads global entropy.
package simrng

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RNG wraps math/rand with the distributions the trace generator needs.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child RNG; deterministic given the label.
// Use it to give each subsystem its own stream so adding draws in one
// place does not perturb another.
func (g *RNG) Split(label string) *RNG {
	var h int64 = 1469598103934665603
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return New(h ^ g.r.Int63())
}

// ArmSeed derives the seed for arm `arm` of a multi-arm experiment
// rooted at rootSeed. It reuses Split's FNV-1a mixing over the byte
// representation of (rootSeed, arm) so nearby pairs land far apart in
// seed space and every arm gets an independent stream. The derivation
// is a pure function of its arguments: it does not consume entropy
// from any RNG, so the mapping from arm index to seed is identical no
// matter how many workers run the arms or in what order they finish.
func ArmSeed(rootSeed int64, arm int) int64 {
	var h uint64 = 1469598103934665603
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(rootSeed))
	mix(uint64(arm))
	// Clear the sign bit: seeds stay non-negative so logs and JSON
	// artifacts render them the same way as user-supplied seeds.
	return int64(h &^ (1 << 63))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit value.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exponential returns an exponentially distributed value with the given
// mean. It panics if mean <= 0.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("simrng: non-positive exponential mean %v", mean))
	}
	return g.r.ExpFloat64() * mean
}

// Gamma returns a gamma-distributed value with the given shape and
// scale (mean shape*scale), via Marsaglia–Tsang squeeze sampling. For
// shape < 1 it uses the boost Gamma(k) = Gamma(k+1)·U^(1/k). Gamma
// interarrivals parameterized by a coefficient of variation are how
// the load generator shapes bursty arrival processes: CV 1 is Poisson,
// CV > 1 is burstier. It panics if shape or scale is non-positive.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("simrng: non-positive gamma shape %v or scale %v", shape, scale))
	}
	if shape < 1 {
		// Boost: draw at shape+1, then scale down by U^(1/shape).
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// GammaInterarrival returns one interarrival time for a renewal
// process with the given mean interval and coefficient of variation:
// shape 1/cv², scale mean·cv², so the draw has the requested mean and
// CV. It panics if mean or cv is non-positive.
func (g *RNG) GammaInterarrival(mean, cv float64) float64 {
	if mean <= 0 || cv <= 0 {
		panic(fmt.Sprintf("simrng: non-positive interarrival mean %v or cv %v", mean, cv))
	}
	return g.Gamma(1/(cv*cv), mean*cv*cv)
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has mean mu and standard deviation sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// Normal returns a normally distributed value.
func (g *RNG) Normal(mu, sigma float64) float64 {
	return g.r.NormFloat64()*sigma + mu
}

// Shuffle permutes xs in place.
func Shuffle[T any](g *RNG, xs []T) {
	g.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if all weights are zero or any
// weight is negative.
func (g *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("simrng: negative weight %v at %d", w, i))
		}
		total += w
	}
	if total <= 0 {
		panic("simrng: all weights zero")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf draws values in [0, n) with Zipfian skew s (s > 1 means heavier
// head). Used to model popularity of shared datasets.
type Zipf struct {
	cdf []float64
	g   *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s >= 0.
// s == 0 degenerates to uniform. It panics if n <= 0.
func NewZipf(g *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("simrng: zipf over empty domain")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, g: g}
}

// Next draws the next Zipf-distributed index.
func (z *Zipf) Next() int {
	x := z.g.Float64()
	return sort.SearchFloat64s(z.cdf, x)
}

// BoundedLogNormal draws log-normal values truncated (by resampling, with
// a clamp fallback) into [lo, hi].
func (g *RNG) BoundedLogNormal(mu, sigma, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := g.LogNormal(mu, sigma)
		if v >= lo && v <= hi {
			return v
		}
	}
	v := g.LogNormal(mu, sigma)
	return math.Min(math.Max(v, lo), hi)
}
