package eventq

import (
	"math/rand"
	"testing"
)

func BenchmarkScheduleAndStep(b *testing.B) {
	q := New()
	r := rand.New(rand.NewSource(1))
	// Keep a working set of ~1024 pending events.
	for i := 0; i < 1024; i++ {
		q.Schedule(r.Float64()*1000, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+r.Float64()*1000, func() {})
		q.Step()
	}
}
