package eventq

import (
	"math/rand"
	"testing"
)

func BenchmarkScheduleAndStep(b *testing.B) {
	q := New()
	r := rand.New(rand.NewSource(1))
	// Keep a working set of ~1024 pending events.
	for i := 0; i < 1024; i++ {
		q.Schedule(r.Float64()*1000, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+r.Float64()*1000, func() {})
		q.Step()
	}
}

// BenchmarkScheduleCancel measures the mid-heap removal path (rate
// changes cancel and re-arm fetch completions constantly in the batch
// engine). The hand-rolled heap should allocate only the Event itself —
// no interface boxing per operation.
func BenchmarkScheduleCancel(b *testing.B) {
	q := New()
	r := rand.New(rand.NewSource(2))
	pending := make([]*Event, 0, 1024)
	for i := 0; i < 1024; i++ {
		pending = append(pending, q.Schedule(r.Float64()*1000, func() {}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := r.Intn(len(pending))
		q.Cancel(pending[idx])
		pending[idx] = q.Schedule(q.Now()+r.Float64()*1000, func() {})
	}
}
