package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	q := New()
	var fired []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		q.Schedule(tm, func() { fired = append(fired, tm) })
	}
	for q.Step() {
	}
	if !sort.Float64sAreSorted(fired) {
		t.Errorf("events out of order: %v", fired)
	}
	if q.Now() != 5 {
		t.Errorf("clock = %v", q.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	q := New()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(7, func() { fired = append(fired, i) })
	}
	for q.Step() {
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events reordered: %v", fired)
		}
	}
}

func TestCancel(t *testing.T) {
	q := New()
	ran := false
	e := q.Schedule(1, func() { ran = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	for q.Step() {
	}
	if ran {
		t.Error("cancelled event fired")
	}
	// Double cancel and nil cancel are no-ops.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	q := New()
	var fired []float64
	var events []*Event
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		events = append(events, q.Schedule(tm, func() { fired = append(fired, tm) }))
	}
	q.Cancel(events[2]) // cancel t=3
	for q.Step() {
	}
	want := []float64{1, 2, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	q := New()
	q.Schedule(10, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Error("no panic for past event")
		}
	}()
	q.Schedule(5, func() {})
}

func TestAfterAndRunUntil(t *testing.T) {
	q := New()
	count := 0
	q.Schedule(5, func() {
		count++
		q.After(10, func() { count++ }) // fires at 15
	})
	q.RunUntil(10)
	if count != 1 {
		t.Errorf("count after RunUntil(10) = %d", count)
	}
	if q.Now() != 10 {
		t.Errorf("clock advanced to %v, want 10", q.Now())
	}
	tm, ok := q.PeekTime()
	if !ok || tm != 15 {
		t.Errorf("peek = %v, %v", tm, ok)
	}
	q.RunUntil(20)
	if count != 2 {
		t.Errorf("count = %d", count)
	}
}

func TestRunGuard(t *testing.T) {
	q := New()
	var rearm func()
	rearm = func() { q.After(1, rearm) }
	q.After(1, rearm)
	n, hit := q.Run(100)
	if !hit {
		t.Error("guard did not trip on self-rearming event")
	}
	if n != 100 {
		t.Errorf("processed %d, want 100", n)
	}
}

func TestRandomizedOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		q := New()
		var fired []float64
		for i := 0; i < int(n); i++ {
			tm := r.Float64() * 100
			q.Schedule(tm, func() { fired = append(fired, tm) })
		}
		for q.Step() {
		}
		return sort.Float64sAreSorted(fired) && len(fired) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
