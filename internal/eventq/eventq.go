// Package eventq implements the discrete-event queue at the heart of the
// cluster simulator: a binary min-heap ordered by event time with stable
// FIFO tie-breaking and O(log n) cancellation.
//
// The heap is hand-rolled rather than built on container/heap: the
// interface-based API forces an allocation per Push (boxing the *Event
// into an `any`) and virtual dispatch per comparison, which shows up in
// the batch engine where every block completion is an event. The manual
// siftUp/siftDown operations below keep pops, pushes, and mid-heap
// removals at O(log n) with zero allocations beyond slice growth.
package eventq

// Event is a scheduled callback. The zero Event is invalid; obtain events
// from Queue.Schedule.
type Event struct {
	time  float64
	seq   uint64
	index int // position in heap, -1 when popped or cancelled
	fn    func()
}

// Time reports when the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 }

// Queue is a time-ordered event queue. It is not safe for concurrent use;
// the simulator is single-threaded by design so event ordering is total
// and runs are reproducible.
type Queue struct {
	h   eventHeap
	seq uint64
	now float64
}

// New returns an empty queue starting at time 0.
func New() *Queue { return &Queue{} }

// Now reports the current simulation time: the fire time of the most
// recently popped event.
func (q *Queue) Now() float64 { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time t. Events scheduled for the same
// time fire in insertion order. Scheduling in the past (t < Now) is a
// programming error and panics rather than silently reordering history.
//
// silod:hotpath — the PR-5 benchmark pins schedule+step at 1 alloc/op:
// exactly the waived *Event below, nothing else.
func (q *Queue) Schedule(t float64, fn func()) *Event {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
	e := &Event{time: t, seq: q.seq, fn: fn} // silod:alloc the one budgeted alloc/op: the handle outlives the call so callers can Cancel
	q.seq++
	e.index = len(q.h)
	q.h = append(q.h, e)
	q.h.siftUp(e.index)
	return e
}

// After enqueues fn to run d time units from now.
//
// silod:hotpath
func (q *Queue) After(d float64, fn func()) *Event {
	return q.Schedule(q.now+d, fn)
}

// Cancel removes e from the queue if still pending. Cancelling an already
// fired or cancelled event is a no-op.
//
// silod:hotpath
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index == -1 {
		return
	}
	q.h.remove(e.index)
	e.index = -1
}

// Step pops and runs the earliest event. It reports false when the queue
// is empty.
//
// silod:hotpath
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := q.h[0]
	q.h.remove(0)
	e.index = -1
	q.now = e.time
	e.fn()
	return true
}

// RunUntil processes events with time <= t, then advances the clock to t.
func (q *Queue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].time <= t {
		q.Step()
	}
	if t > q.now {
		q.now = t
	}
}

// Run drains the queue completely, with an iteration guard: simulators
// with event-rescheduling bugs would otherwise loop forever. It returns
// the number of events processed and whether the guard tripped.
func (q *Queue) Run(maxEvents int) (processed int, hitGuard bool) {
	for q.Step() {
		processed++
		if maxEvents > 0 && processed >= maxEvents {
			return processed, q.Len() > 0
		}
	}
	return processed, false
}

// PeekTime returns the fire time of the earliest pending event. ok is
// false when the queue is empty.
func (q *Queue) PeekTime() (t float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].time, true
}

type eventHeap []*Event

// silod:hotpath
func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

// silod:hotpath
func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

// siftUp restores the heap invariant after h[i] became smaller (insert).
//
// silod:hotpath
func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap invariant after h[i] became larger. It
// reports whether any swap happened (remove uses this to decide whether
// the displaced element must sift up instead).
//
// silod:hotpath
func (h eventHeap) siftDown(i int) bool {
	start := i
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h.swap(i, least)
		i = least
	}
	return i > start
}

// remove deletes h[i], filling the hole with the last element and
// sifting it to its place.
//
// silod:hotpath
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil
	*h = old[:n]
	if i != n {
		if !(*h).siftDown(i) {
			(*h).siftUp(i)
		}
	}
}
