// Package eventq implements the discrete-event queue at the heart of the
// cluster simulator: a binary min-heap ordered by event time with stable
// FIFO tie-breaking and O(log n) cancellation.
package eventq

import "container/heap"

// Event is a scheduled callback. The zero Event is invalid; obtain events
// from Queue.Schedule.
type Event struct {
	time  float64
	seq   uint64
	index int // position in heap, -1 when popped or cancelled
	fn    func()
}

// Time reports when the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 }

// Queue is a time-ordered event queue. It is not safe for concurrent use;
// the simulator is single-threaded by design so event ordering is total
// and runs are reproducible.
type Queue struct {
	h   eventHeap
	seq uint64
	now float64
}

// New returns an empty queue starting at time 0.
func New() *Queue { return &Queue{} }

// Now reports the current simulation time: the fire time of the most
// recently popped event.
func (q *Queue) Now() float64 { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time t. Events scheduled for the same
// time fire in insertion order. Scheduling in the past (t < Now) is a
// programming error and panics rather than silently reordering history.
func (q *Queue) Schedule(t float64, fn func()) *Event {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
	e := &Event{time: t, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// After enqueues fn to run d time units from now.
func (q *Queue) After(d float64, fn func()) *Event {
	return q.Schedule(q.now+d, fn)
}

// Cancel removes e from the queue if still pending. Cancelling an already
// fired or cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index == -1 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = -1
}

// Step pops and runs the earliest event. It reports false when the queue
// is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.time
	e.fn()
	return true
}

// RunUntil processes events with time <= t, then advances the clock to t.
func (q *Queue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].time <= t {
		q.Step()
	}
	if t > q.now {
		q.now = t
	}
}

// Run drains the queue completely, with an iteration guard: simulators
// with event-rescheduling bugs would otherwise loop forever. It returns
// the number of events processed and whether the guard tripped.
func (q *Queue) Run(maxEvents int) (processed int, hitGuard bool) {
	for q.Step() {
		processed++
		if maxEvents > 0 && processed >= maxEvents {
			return processed, q.Len() > 0
		}
	}
	return processed, false
}

// PeekTime returns the fire time of the earliest pending event. ok is
// false when the queue is empty.
func (q *Queue) PeekTime() (t float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].time, true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
