package eventq

import (
	"math"
	"sort"
	"testing"

	"repro/internal/simrng"
)

// TestDuplicateTimestampStability drives heavy timestamp collisions —
// the event-batching regime, where simultaneous arrivals and
// completions pile onto the same instant — and checks that same-time
// events fire strictly in insertion order, interleaved with heap churn
// from cancellations.
func TestDuplicateTimestampStability(t *testing.T) {
	q := New()
	rng := simrng.New(3)
	const groups, perGroup = 200, 64
	var fired []int
	var cancels []*Event
	id := 0
	for g := 0; g < groups; g++ {
		ts := float64(rng.Intn(50)) // many groups share each timestamp
		for i := 0; i < perGroup; i++ {
			n := id
			ev := q.Schedule(ts, func() { fired = append(fired, n) })
			if rng.Intn(8) == 0 {
				cancels = append(cancels, ev)
			}
			id++
		}
	}
	for _, ev := range cancels {
		q.Cancel(ev)
	}
	for q.Step() {
	}
	// Reconstruct the expectation: events sorted by (time, insertion
	// order) with the cancelled ones dropped. Insertion order is the id.
	type slot struct {
		time float64
		id   int
		dead bool
	}
	slots := make([]slot, 0, groups*perGroup)
	rng2 := simrng.New(3)
	id = 0
	for g := 0; g < groups; g++ {
		ts := float64(rng2.Intn(50))
		for i := 0; i < perGroup; i++ {
			dead := rng2.Intn(8) == 0
			slots = append(slots, slot{time: ts, id: id, dead: dead})
			id++
		}
	}
	sort.SliceStable(slots, func(i, k int) bool { return slots[i].time < slots[k].time })
	want := make([]int, 0, len(slots))
	for _, s := range slots {
		if !s.dead {
			want = append(want, s.id)
		}
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("position %d: fired id %d, want %d (same-time FIFO broken)", i, fired[i], want[i])
		}
	}
}

// TestMillionEventOracle pushes 1e6 randomly-timed events through the
// hand-rolled heap and diffs the pop sequence bit-for-bit against a
// sort-based oracle over the same (time, seq) pairs. Any heap invariant
// bug — sift direction, tie-break inversion, index corruption — shows
// up as a first-divergence index.
func TestMillionEventOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-event scale test")
	}
	const n = 1_000_000
	q := New()
	rng := simrng.New(17)
	type rec struct {
		time float64
		seq  int
	}
	oracle := make([]rec, 0, n)
	got := make([]rec, 0, n)
	for i := 0; i < n; i++ {
		// Coarse quantization forces massive tie groups alongside exact
		// float times.
		ts := math.Floor(rng.Float64()*1e4) / 8
		seq := i
		oracle = append(oracle, rec{time: ts, seq: seq})
		q.Schedule(ts, func() { got = append(got, rec{time: q.Now(), seq: seq}) })
	}
	sort.SliceStable(oracle, func(i, k int) bool { return oracle[i].time < oracle[k].time })
	for q.Step() {
	}
	if len(got) != n {
		t.Fatalf("popped %d events, want %d", len(got), n)
	}
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Fatalf("pop %d: got (t=%v seq=%d), oracle (t=%v seq=%d)",
				i, got[i].time, got[i].seq, oracle[i].time, oracle[i].seq)
		}
	}
}

// TestScheduleStepAllocBudget pins the PR-5 allocation budget at scale:
// a schedule+step cycle against a large pending set stays at 1 alloc/op
// (the *Event handle itself).
func TestScheduleStepAllocBudget(t *testing.T) {
	q := New()
	rng := simrng.New(5)
	for i := 0; i < 100_000; i++ {
		q.Schedule(rng.Float64()*1e6, func() {})
	}
	avg := testing.AllocsPerRun(2000, func() {
		q.Schedule(q.Now()+rng.Float64()*1e6, func() {})
		q.Step()
	})
	if avg > 1 {
		t.Errorf("schedule+step at 100k pending: %.2f allocs/op, budget is 1 (the Event handle)", avg)
	}
}
