// Package faults implements deterministic fault injection for SiloD's
// robustness story (§6 "Fault tolerance"): cache is a best-effort
// performance resource, so losing cache nodes, egress bandwidth, or GPU
// capacity must degrade throughput gracefully — down to the estimator's
// remote-IO bound b/(1-c/d) — never correctness. A fault schedule is a
// sorted list of capacity shocks and recoveries replayed identically by
// both simulation engines, the testbed, and chaos tests: everything is
// driven by virtual time and seeded randomness, never the wall clock,
// so a seeded chaos run emits byte-identical metrics snapshots.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/unit"
)

// Kind classifies a fault-schedule event.
// silod:enum
type Kind string

// The fault taxonomy. Losses remove capacity; restores return
// previously lost capacity (never more than is outstanding). Job
// crashes kill one job's execution; the scheduler requeues it with
// epoch-granular progress rollback.
const (
	// KindGPULoss removes GPU capacity (a node loss). Gang jobs that no
	// longer fit are preempted and requeued; their current epoch's
	// progress rolls back (epoch granularity, like a checkpoint at each
	// epoch boundary).
	KindGPULoss Kind = "gpu_loss"
	// KindGPURestore returns previously lost GPU capacity.
	KindGPURestore Kind = "gpu_restore"
	// KindCacheLoss removes cache capacity (a cache-node loss). Cached
	// contents are invalidated proportionally and hit ratios re-derive
	// from the shrunken snapshot.
	KindCacheLoss Kind = "cache_loss"
	// KindCacheRestore returns previously lost cache capacity. Contents
	// are not resurrected; jobs re-warm the cache.
	KindCacheRestore Kind = "cache_restore"
	// KindIOLoss degrades remote-IO egress bandwidth; ledger and token
	// buckets are re-throttled to the degraded capacity.
	KindIOLoss Kind = "io_loss"
	// KindIORestore restores previously lost egress bandwidth.
	KindIORestore Kind = "io_restore"
	// KindJobCrash crashes one job: it loses its GPUs and its current
	// epoch's progress, then re-enters the queue (crash/restart).
	KindJobCrash Kind = "job_crash"
)

// Kinds lists every valid kind in a fixed, documented order.
func Kinds() []Kind {
	return []Kind{
		KindGPULoss, KindGPURestore,
		KindCacheLoss, KindCacheRestore,
		KindIOLoss, KindIORestore,
		KindJobCrash,
	}
}

// Valid reports whether k names a known fault kind.
func (k Kind) Valid() bool {
	for _, v := range Kinds() {
		if k == v {
			return true
		}
	}
	return false
}

// Recovery reports whether k returns capacity rather than removing it.
func (k Kind) Recovery() bool {
	return k == KindGPURestore || k == KindCacheRestore || k == KindIORestore
}

// Event is one scheduled fault. Exactly the payload field matching the
// kind must be set: GPUs for gpu_*, Cache for cache_*, RemoteIO for
// io_*, Job for job_crash.
type Event struct {
	// At is the virtual time (seconds since run start) the fault fires.
	At unit.Time `json:"at_seconds"`
	// Kind selects the fault taxonomy entry.
	Kind Kind `json:"kind"`
	// GPUs is the number of GPUs lost or restored (gpu_* kinds).
	GPUs int `json:"gpus,omitempty"`
	// Cache is the cache capacity lost or restored (cache_* kinds).
	Cache unit.Bytes `json:"cache_bytes,omitempty"`
	// RemoteIO is the egress bandwidth lost or restored (io_* kinds).
	RemoteIO unit.Bandwidth `json:"io_bytes_per_sec,omitempty"`
	// Job is the crashed job's ID (job_crash only).
	Job string `json:"job,omitempty"`
}

// Amount returns the event's scalar payload, for timelines and logs.
func (e Event) Amount() float64 {
	switch e.Kind {
	case KindGPULoss, KindGPURestore:
		return float64(e.GPUs)
	case KindCacheLoss, KindCacheRestore:
		return float64(e.Cache)
	case KindIOLoss, KindIORestore:
		return float64(e.RemoteIO)
	default:
		return 0
	}
}

// Validate checks the event in isolation (capacity feasibility is the
// schedule's job).
func (e Event) Validate() error {
	if !e.Kind.Valid() {
		return fmt.Errorf("faults: unknown kind %q", e.Kind)
	}
	if e.At < 0 {
		return fmt.Errorf("faults: %s at negative time %v", e.Kind, e.At)
	}
	wantGPU := e.Kind == KindGPULoss || e.Kind == KindGPURestore
	wantCache := e.Kind == KindCacheLoss || e.Kind == KindCacheRestore
	wantIO := e.Kind == KindIOLoss || e.Kind == KindIORestore
	wantJob := e.Kind == KindJobCrash
	switch {
	case wantGPU && e.GPUs <= 0:
		return fmt.Errorf("faults: %s needs gpus > 0", e.Kind)
	case wantCache && e.Cache <= 0:
		return fmt.Errorf("faults: %s needs cache_bytes > 0", e.Kind)
	case wantIO && e.RemoteIO <= 0:
		return fmt.Errorf("faults: %s needs io_bytes_per_sec > 0", e.Kind)
	case wantJob && e.Job == "":
		return fmt.Errorf("faults: %s needs a job ID", e.Kind)
	}
	if !wantGPU && e.GPUs != 0 {
		return fmt.Errorf("faults: %s must not set gpus", e.Kind)
	}
	if !wantCache && e.Cache != 0 {
		return fmt.Errorf("faults: %s must not set cache_bytes", e.Kind)
	}
	if !wantIO && e.RemoteIO != 0 {
		return fmt.Errorf("faults: %s must not set io_bytes_per_sec", e.Kind)
	}
	if !wantJob && e.Job != "" {
		return fmt.Errorf("faults: %s must not set job", e.Kind)
	}
	return nil
}

// Schedule is an ordered fault script. The zero value (or nil) injects
// nothing.
type Schedule struct {
	Events []Event `json:"events"`
}

// normalize sorts events by time, keeping input order for ties (the
// event queue's FIFO tie-break, so same-time fault sequences replay in
// the order they were written).
func (s *Schedule) normalize() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
}

// Validate checks every event and replays the schedule against the
// base cluster: effective GPU capacity must stay >= 1 (a zero-GPU
// cluster is not schedulable), cache must stay >= 0, remote IO must
// stay > 0 (a cluster with no egress path strands uncached jobs
// forever), and a restore can never exceed the outstanding loss.
func (s *Schedule) Validate(base core.Cluster) error {
	if s == nil {
		return nil
	}
	var lostGPUs int
	var lostCache unit.Bytes
	var lostIO unit.Bandwidth
	ordered := append([]Event(nil), s.Events...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	for i, e := range ordered {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		switch e.Kind {
		case KindGPULoss:
			lostGPUs += e.GPUs
		case KindGPURestore:
			lostGPUs -= e.GPUs
		case KindCacheLoss:
			lostCache += e.Cache
		case KindCacheRestore:
			lostCache -= e.Cache
		case KindIOLoss:
			lostIO += e.RemoteIO
		case KindIORestore:
			lostIO -= e.RemoteIO
		case KindJobCrash:
			// No capacity effect: the crash preempts one job but the
			// cluster keeps its GPUs. Target-job existence is checked by
			// the engine, which knows the trace (sim.Run).
		}
		if lostGPUs < 0 || lostCache < 0 || lostIO < 0 {
			return fmt.Errorf("event %d: %s at t=%v restores more than the outstanding loss", i, e.Kind, e.At)
		}
		if base.GPUs-lostGPUs < 1 {
			return fmt.Errorf("event %d: %s at t=%v leaves %d of %d GPUs; at least 1 must survive",
				i, e.Kind, e.At, base.GPUs-lostGPUs, base.GPUs)
		}
		if base.Cache-lostCache < 0 {
			return fmt.Errorf("event %d: %s at t=%v loses more cache than the cluster has (%v of %v)",
				i, e.Kind, e.At, lostCache, base.Cache)
		}
		if base.RemoteIO-lostIO <= 0 {
			return fmt.Errorf("event %d: %s at t=%v leaves no egress bandwidth (%v of %v lost); jobs with cold caches would stall forever",
				i, e.Kind, e.At, lostIO, base.RemoteIO)
		}
	}
	return nil
}

// Parse decodes a fault schedule from its JSON form, rejecting unknown
// fields so schema typos fail loudly, and validates each event in
// isolation. Capacity feasibility is checked later, against the actual
// cluster, by Validate.
func Parse(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: parsing schedule: %w", err)
	}
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
	}
	s.normalize()
	return &s, nil
}

// Marshal encodes the schedule in its canonical indented JSON form (the
// format Parse reads and docs/fault-injection.md documents).
func (s *Schedule) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("faults: encoding schedule: %w", err)
	}
	return append(out, '\n'), nil
}
