package faults

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// Injector replays a validated schedule against a base cluster and
// tracks the effective (degraded) capacity. It is a pure, virtual-time
// state machine: the engine that owns it decides when time advances and
// what each popped event means for its own state (preempting jobs,
// shrinking pools, re-throttling buckets). One engine goroutine drives
// an Injector; it is not safe for concurrent use.
type Injector struct {
	base   core.Cluster
	events []Event // sorted by At, FIFO within ties
	next   int

	lostGPUs  int
	lostCache unit.Bytes
	lostIO    unit.Bandwidth

	lastT        unit.Time     // virtual time up to which degraded time is accounted
	timeDegraded unit.Duration // total virtual time with any capacity lost

	preempted int64
	met       Metrics
	tl        *metrics.Timeline
}

// NewInjector validates sched against base and returns an injector.
// A nil or empty schedule yields a no-op injector (Effective == base
// forever). Metric handles are interned eagerly for every fault kind so
// a run's snapshot shape does not depend on which faults fired. reg and
// tl may be nil.
func NewInjector(base core.Cluster, sched *Schedule, reg *metrics.Registry, tl *metrics.Timeline) (*Injector, error) {
	if err := sched.Validate(base); err != nil {
		return nil, fmt.Errorf("faults: invalid schedule: %w", err)
	}
	in := &Injector{base: base, met: NewMetrics(reg), tl: tl}
	if sched != nil {
		in.events = append([]Event(nil), sched.Events...)
		s := Schedule{Events: in.events}
		s.normalize()
		in.events = s.Events
	}
	in.met.publish(in)
	return in, nil
}

// Base returns the undegraded cluster.
func (in *Injector) Base() core.Cluster { return in.base }

// Effective returns the current degraded capacity view. Policies and
// Assignment validation must use this, never the base cluster, so a
// post-fault re-solve cannot over-grant GPUs, cache, or bandwidth.
func (in *Injector) Effective() core.Cluster {
	return core.Cluster{
		GPUs:     in.base.GPUs - in.lostGPUs,
		Cache:    in.base.Cache - in.lostCache,
		RemoteIO: in.base.RemoteIO - in.lostIO,
	}
}

// Degraded reports whether any capacity is currently lost.
func (in *Injector) Degraded() bool {
	return in.lostGPUs > 0 || in.lostCache > 0 || in.lostIO > 0
}

// TimeDegraded reports the accumulated virtual time spent with any
// capacity lost, up to the last Next/Finish call.
func (in *Injector) TimeDegraded() unit.Duration { return in.timeDegraded }

// NextAt returns the next pending event's time, if any — engines cap
// their integration horizon with it so faults land exactly on time.
func (in *Injector) NextAt() (unit.Time, bool) {
	if in.next >= len(in.events) {
		return 0, false
	}
	return in.events[in.next].At, true
}

// Next pops and applies the next event due at or before now. Engines
// call it in a loop at each decision point and translate each returned
// event into engine-specific state changes; Effective() already
// reflects the event when Next returns. Degraded-time accounting
// accrues at event timestamps, so it is exact regardless of how late
// the engine polls.
func (in *Injector) Next(now unit.Time) (Event, bool) {
	if in.next >= len(in.events) || in.events[in.next].At > now {
		return Event{}, false
	}
	ev := in.events[in.next]
	in.next++
	in.accrueTo(ev.At)
	switch ev.Kind {
	case KindGPULoss:
		in.lostGPUs += ev.GPUs
	case KindGPURestore:
		in.lostGPUs -= ev.GPUs
	case KindCacheLoss:
		in.lostCache += ev.Cache
	case KindCacheRestore:
		in.lostCache -= ev.Cache
	case KindIOLoss:
		in.lostIO += ev.RemoteIO
	case KindIORestore:
		in.lostIO -= ev.RemoteIO
	case KindJobCrash:
		// No effective-capacity change: the engine translates the crash
		// into a preemption; the injector only stamps and counts it.
	}
	kind := metrics.EventFault
	if ev.Kind.Recovery() {
		kind = metrics.EventRecover
		in.met.Recoveries.Inc()
	}
	in.met.Injected[ev.Kind].Inc()
	in.met.publish(in)
	in.tl.RecordAt(float64(ev.At), kind, ev.Job, ev.Amount(), string(ev.Kind))
	return ev, true
}

// Finish closes the degraded-time accounting at the end of a run.
func (in *Injector) Finish(now unit.Time) {
	in.accrueTo(now)
	in.met.publish(in)
}

// CountPreemptions records jobs preempted as a direct consequence of a
// fault (node loss or crash), for the chaos counters. The victims are
// charged to the standard SLO tier; engines that know the victim's
// class use CountPreemptionsSLO.
func (in *Injector) CountPreemptions(n int) {
	in.CountPreemptionsSLO(tenant.Standard, n)
}

// CountPreemptionsSLO records fault preemptions attributed to the
// victim job's SLO class, feeding both the aggregate counter and the
// per-class split.
func (in *Injector) CountPreemptionsSLO(class tenant.SLOClass, n int) {
	if n <= 0 {
		return
	}
	in.preempted += int64(n)
	in.met.Preemptions.Add(int64(n))
	in.met.SLOPreemptions[class].Add(int64(n))
}

// Preemptions reports the fault-caused preemption count.
func (in *Injector) Preemptions() int64 { return in.preempted }

// accrueTo advances the degraded-time account to virtual time t.
func (in *Injector) accrueTo(t unit.Time) {
	if t <= in.lastT {
		return
	}
	if in.Degraded() {
		in.timeDegraded += t.Sub(in.lastT)
	}
	in.lastT = t
}
