package faults

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/unit"
)

func testCluster() core.Cluster {
	return core.Cluster{GPUs: 8, Cache: unit.TiB(2), RemoteIO: unit.MBpsOf(200)}
}

// TestScheduleGoldenRoundTrip pins the -faults JSON schema: the
// testdata schedule must parse, validate against a reference cluster,
// and re-marshal byte-identically. Any field rename or encoding change
// shows up as a diff here before it breaks users' schedule files.
func TestScheduleGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "schedule.json")
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(data)
	if err != nil {
		t.Fatalf("golden schedule does not parse: %v", err)
	}
	if len(s.Events) != 7 {
		t.Fatalf("parsed %d events, want 7", len(s.Events))
	}
	if err := s.Validate(testCluster()); err != nil {
		t.Fatalf("golden schedule invalid against reference cluster: %v", err)
	}
	out, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Errorf("schedule did not round-trip; schema drifted\n got:\n%s\nwant:\n%s", out, data)
	}
}

func TestParseRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown field", `{"events":[{"at_seconds":1,"kind":"gpu_loss","gpus":1,"bogus":2}]}`, "bogus"},
		{"unknown kind", `{"events":[{"at_seconds":1,"kind":"meteor"}]}`, "unknown kind"},
		{"missing payload", `{"events":[{"at_seconds":1,"kind":"gpu_loss"}]}`, "needs gpus > 0"},
		{"wrong payload", `{"events":[{"at_seconds":1,"kind":"gpu_loss","gpus":1,"cache_bytes":5}]}`, "must not set cache_bytes"},
		{"negative time", `{"events":[{"at_seconds":-1,"kind":"gpu_loss","gpus":1}]}`, "negative time"},
		{"crash without job", `{"events":[{"at_seconds":1,"kind":"job_crash"}]}`, "needs a job ID"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse(%s) error = %v, want mention of %q", tc.in, err, tc.want)
			}
		})
	}
}

func TestScheduleValidateFeasibility(t *testing.T) {
	cl := testCluster()
	cases := []struct {
		name string
		s    Schedule
		want string
	}{
		{"gpu loss to zero", Schedule{Events: []Event{
			{At: 1, Kind: KindGPULoss, GPUs: 8},
		}}, "at least 1 must survive"},
		{"restore exceeds loss", Schedule{Events: []Event{
			{At: 1, Kind: KindGPULoss, GPUs: 2},
			{At: 2, Kind: KindGPURestore, GPUs: 3},
		}}, "restores more than the outstanding loss"},
		{"cache overdrawn", Schedule{Events: []Event{
			{At: 1, Kind: KindCacheLoss, Cache: unit.TiB(3)},
		}}, "more cache than the cluster has"},
		{"io exhausted", Schedule{Events: []Event{
			{At: 1, Kind: KindIOLoss, RemoteIO: unit.MBpsOf(200)},
		}}, "no egress bandwidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate(cl)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate error = %v, want mention of %q", err, tc.want)
			}
		})
	}
	var nilSched *Schedule
	if err := nilSched.Validate(cl); err != nil {
		t.Errorf("nil schedule Validate = %v, want nil", err)
	}
}

// TestJobCrashHasNoCapacityEffect pins the explicit no-op cases in
// Schedule.Validate and Injector.Next: a crash event validates against
// any cluster (it preempts one job, the cluster keeps its GPUs) and is
// delivered to the engine without touching effective capacity.
func TestJobCrashHasNoCapacityEffect(t *testing.T) {
	cl := testCluster()
	s := &Schedule{Events: []Event{{At: 10, Kind: KindJobCrash, Job: "j1"}}}
	if err := s.Validate(cl); err != nil {
		t.Fatalf("Validate = %v, want nil: crashes have no capacity effect", err)
	}
	in, err := NewInjector(cl, s, metrics.NewRegistry("test"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := in.Next(10)
	if !ok || ev.Kind != KindJobCrash || ev.Job != "j1" {
		t.Fatalf("Next(10) = %+v,%v, want the j1 crash", ev, ok)
	}
	if got := in.Effective(); got != cl {
		t.Errorf("crash changed effective capacity: %+v, want %+v", got, cl)
	}
	if in.TimeDegraded() != 0 {
		t.Errorf("crash accrued degraded time %v, want 0", in.TimeDegraded())
	}
}

// TestInjectorReplay drives the injector through loss and recovery and
// checks the effective-capacity view, degraded-time accounting, and
// event ordering.
func TestInjectorReplay(t *testing.T) {
	cl := testCluster()
	s := &Schedule{Events: []Event{
		{At: 200, Kind: KindGPURestore, GPUs: 2}, // out of order on purpose
		{At: 100, Kind: KindGPULoss, GPUs: 2},
		{At: 150, Kind: KindCacheLoss, Cache: unit.TiB(1)},
		{At: 300, Kind: KindCacheRestore, Cache: unit.TiB(1)},
	}}
	reg := metrics.NewRegistry("test")
	in, err := NewInjector(cl, s, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Effective(); got != cl {
		t.Fatalf("initial Effective = %+v, want base %+v", got, cl)
	}
	if at, ok := in.NextAt(); !ok || at != 100 {
		t.Fatalf("NextAt = %v,%v, want 100,true", at, ok)
	}
	// Nothing due before t=100.
	if _, ok := in.Next(50); ok {
		t.Fatal("Next(50) popped an event before its time")
	}
	// Drain everything due by t=250: loss at 100, cache loss at 150,
	// restore at 200 — in time order despite the input order.
	var kinds []Kind
	for {
		ev, ok := in.Next(250)
		if !ok {
			break
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []Kind{KindGPULoss, KindCacheLoss, KindGPURestore}
	if len(kinds) != len(want) {
		t.Fatalf("popped %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("popped %v, want %v", kinds, want)
		}
	}
	eff := in.Effective()
	if eff.GPUs != cl.GPUs || eff.Cache != cl.Cache-unit.TiB(1) {
		t.Errorf("Effective after replay = %+v", eff)
	}
	if !in.Degraded() {
		t.Error("cache still lost but Degraded() = false")
	}
	if _, ok := in.Next(250); ok {
		t.Error("Next popped past the last due event")
	}
	// Degraded accounting: capacity was lost from t=100 continuously
	// (GPU until 200, cache from 150 until the restore at 300).
	if _, ok := in.Next(400); !ok {
		t.Fatal("cache restore at 300 not popped")
	}
	in.Finish(400)
	if got := in.TimeDegraded(); got != unit.Duration(200*unit.Second) {
		t.Errorf("TimeDegraded = %v, want 200s", got)
	}
	if in.Degraded() {
		t.Error("fully restored but Degraded() = true")
	}
	if v, ok := reg.Snapshot().Get("silod_faults_time_degraded_seconds", nil); !ok || *v.Value != 200 {
		t.Errorf("time-degraded gauge = %+v, want 200", v)
	}
}

// TestInjectorMetricsShapeIsScheduleIndependent: the snapshot must
// carry the same series whether or not any fault fires, so seeded runs
// stay byte-identical regardless of schedule content.
func TestInjectorMetricsShapeIsScheduleIndependent(t *testing.T) {
	shape := func(s *Schedule) []string {
		reg := metrics.NewRegistry("test")
		if _, err := NewInjector(testCluster(), s, reg, nil); err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		names := make([]string, 0, len(snap.Metrics))
		for _, m := range snap.Metrics {
			names = append(names, m.Name+"|"+m.Labels["kind"])
		}
		return names
	}
	empty := shape(nil)
	full := shape(&Schedule{Events: []Event{{At: 1, Kind: KindGPULoss, GPUs: 1}}})
	if len(empty) == 0 {
		t.Fatal("no fault metrics interned")
	}
	if len(empty) != len(full) {
		t.Fatalf("metric shape depends on schedule: %d vs %d series", len(empty), len(full))
	}
	for i := range empty {
		if empty[i] != full[i] {
			t.Errorf("series %d differs: %q vs %q", i, empty[i], full[i])
		}
	}
}
