package faults

import (
	"repro/internal/metrics"
	"repro/internal/tenant"
)

// Metrics is the chaos instrumentation: per-kind injection counters,
// recovery and fault-preemption totals, and gauges for the capacity
// currently lost and the virtual time spent degraded. All handles are
// nil-safe (a nil registry costs nothing).
type Metrics struct {
	Injected    map[Kind]*metrics.Counter // silod_faults_injected_total{kind=...}
	Recoveries  *metrics.Counter          // silod_faults_recoveries_total
	Preemptions *metrics.Counter          // silod_faults_preemptions_total
	// SLOPreemptions splits fault preemptions by the victim's SLO class
	// — the observable for the reverse-SLO preemption order (sheddable
	// absorbs the loss, critical stays near zero).
	SLOPreemptions map[tenant.SLOClass]*metrics.Counter // silod_faults_slo_preemptions_total{slo=...}

	GPUsLost     *metrics.Gauge // silod_faults_gpus_lost
	CacheLost    *metrics.Gauge // silod_faults_cache_lost_bytes
	IOLost       *metrics.Gauge // silod_faults_io_lost_bytes_per_sec
	Degraded     *metrics.Gauge // silod_faults_degraded (0/1)
	TimeDegraded *metrics.Gauge // silod_faults_time_degraded_seconds (virtual time)
}

// NewMetrics interns the fault metric family. Every kind's counter is
// interned up front so the snapshot shape is identical whether or not a
// given fault fired — a requirement for byte-identical chaos runs.
func NewMetrics(r *metrics.Registry) Metrics {
	m := Metrics{
		Injected:     make(map[Kind]*metrics.Counter, len(Kinds())),
		Recoveries:   r.Counter("silod_faults_recoveries_total"),
		Preemptions:  r.Counter("silod_faults_preemptions_total"),
		GPUsLost:     r.Gauge("silod_faults_gpus_lost"),
		CacheLost:    r.Gauge("silod_faults_cache_lost_bytes"),
		IOLost:       r.Gauge("silod_faults_io_lost_bytes_per_sec"),
		Degraded:     r.Gauge("silod_faults_degraded"),
		TimeDegraded: r.Gauge("silod_faults_time_degraded_seconds"),
	}
	for _, k := range Kinds() {
		m.Injected[k] = r.Counter("silod_faults_injected_total", metrics.L("kind", string(k)))
	}
	m.SLOPreemptions = make(map[tenant.SLOClass]*metrics.Counter, len(tenant.Classes()))
	for _, c := range tenant.Classes() {
		m.SLOPreemptions[c] = r.Counter("silod_faults_slo_preemptions_total", metrics.L("slo", c.String()))
	}
	return m
}

// publish refreshes the gauges from the injector's current state.
func (m Metrics) publish(in *Injector) {
	m.GPUsLost.Set(float64(in.lostGPUs))
	m.CacheLost.Set(float64(in.lostCache))
	m.IOLost.Set(float64(in.lostIO))
	if in.Degraded() {
		m.Degraded.Set(1)
	} else {
		m.Degraded.Set(0)
	}
	m.TimeDegraded.Set(in.timeDegraded.Seconds())
}
