package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatcmpPkgs are the numerical-core packages: the closed-form
// estimator and both simulation engines integrate float quantities,
// so exact equality is either vacuous (never true after accumulation)
// or, worse, true on one architecture/ordering and false on another.
var floatcmpPkgs = []string{
	"internal/estimator",
	"internal/sim",
}

// FloatCmp bans == and != on floating-point operands (including the
// float64-underlying internal/unit types) in the estimator and
// simulator packages. Use ordering comparisons, an epsilon, or
// restructure around integer state.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "bans ==/!= on float operands in internal/{estimator,sim}: " +
		"exact float equality is order- and platform-sensitive; compare " +
		"with a tolerance or ordering instead",
	Run: runFloatCmp,
}

func runFloatCmp(p *Pass) {
	if !pathEndsInAny(p.Path, floatcmpPkgs) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			xt := floatOperand(p, e.X)
			yt := floatOperand(p, e.Y)
			if xt == "" && yt == "" {
				return true
			}
			t := xt
			if t == "" {
				t = yt
			}
			p.Reportf(e.OpPos, "float equality (%s on %s): exact comparison is order- and platform-sensitive; use ordering, an epsilon, or integer state", e.Op, t)
			return true
		})
	}
}

// floatOperand returns a printable type name if e has a floating-point
// (underlying) type, else "".
func floatOperand(p *Pass, e ast.Expr) string {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	if b.Info()&types.IsFloat == 0 {
		return ""
	}
	return tv.Type.String()
}
