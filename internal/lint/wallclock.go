package lint

import "go/ast"

// wallclockPkgs are the virtual-time package suffixes: everything here
// is driven by the simulator's event clock (or an injected clock), so
// reading the machine's wall clock silently breaks bit-determinism.
var wallclockPkgs = []string{
	"internal/sim",
	"internal/eventq",
	"internal/cache",
	"internal/estimator",
	"internal/controlplane",
	"internal/faults",
}

// wallclockBanned are the time-package functions that read or block on
// the wall clock. Constructors like time.NewTicker are allowed: they
// show up only in explicitly real-time daemon loops (RunLoop), which
// take their cadence as a parameter.
var wallclockBanned = map[string]string{
	"Now":   "inject a clock (func() time.Time or the simulator's virtual clock)",
	"Sleep": "advance virtual time through the event queue instead",
	"Since": "subtract injected clock readings instead",
	"Until": "subtract injected clock readings instead",
	"Tick":  "take a ticker as a parameter at the daemon edge instead",
}

// Wallclock bans bare wall-clock reads in virtual-time packages. The
// simulator's bit-determinism (same seed, same trace, byte-identical
// metrics snapshot) only holds if every timestamp flows from the
// virtual clock; one stray time.Now contaminates JCTs, timelines and
// metrics with host-machine noise.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "bans time.Now/Sleep/Since/Until/Tick in virtual-time packages " +
		"(internal/{sim,eventq,cache,estimator,controlplane,faults}); time " +
		"must come from an injected clock so simulations stay bit-deterministic",
	Run: runWallclock,
}

func runWallclock(p *Pass) {
	if !pathEndsInAny(p.Path, wallclockPkgs) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if path, ok := pkgNameOf(p.Info, id); !ok || path != "time" {
				return true
			}
			if fix, banned := wallclockBanned[sel.Sel.Name]; banned {
				p.Reportf(sel.Pos(), "bare time.%s in virtual-time package %s: %s",
					sel.Sel.Name, p.Path, fix)
			}
			return true
		})
	}
}
