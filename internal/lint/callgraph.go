package lint

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program half of the v4 engine: a cross-package
// call graph over the module's declared functions, condensed with
// Tarjan's SCC algorithm so recursion is handled exactly, and walked
// bottom-up (reverse topological order) to compute per-function effect
// and taint summaries. summary.go builds the per-package fragments from
// the AST; the detclose and inputflow analyzers consume the finalized
// state through the driver's Merge/Finish hooks.
//
// Determinism contract: fragments are keyed by import path and
// finalized in sorted-path order, nodes keep declaration order within a
// package, and edges keep source order within a function. Every
// iteration below is over one of those orders (never over a raw map),
// so the computed summaries — and the BFS call paths printed by -why —
// are byte-identical at any -workers value.
//
// Soundness gaps, accepted and documented (docs/static-analysis.md):
// calls through plain func-typed values are not resolved — that is the
// clock/RNG *injection idiom* (a root that takes func() time.Time is
// exactly how an effect is supposed to cross the boundary) — and
// function literals bound in package-level variable initializers are
// not attributed to any function. Interface dispatch IS resolved, but
// only for interfaces defined in the module, against the module's own
// concrete types.

const callgraphKey = "callgraph"

// effect is a bitmask of the ambient effects a function may perform,
// directly or transitively.
type effect uint32

const (
	effWallclock   effect = 1 << iota // reads or blocks on the machine clock
	effGlobalRNG                      // draws from the process-global math/rand state
	effMapOrder                       // emits results in map-iteration order
	effGoroutine                      // spawns a goroutine
	effGlobalWrite                    // writes a package-level variable

	numEffects = 5
)

// gatedEffects are the effects detclose proves unreachable from
// simulation roots; goroutine spawn and package-state writes are
// summarized (visible in -why traces and future analyzers) but not
// gated, because the runner pool and metrics registries legitimately
// use both under their own analyzers (goleak, lockcheck).
const gatedEffects = effWallclock | effGlobalRNG | effMapOrder

var effectNames = [numEffects]string{
	"wallclock", "rng", "maporder", "goroutine", "globalwrite",
}

var effectDescs = [numEffects]string{
	"wall-clock read", "global-RNG draw", "map-order-dependent emission",
	"goroutine spawn", "package-state write",
}

// String renders a mask as a comma-separated name list.
func (e effect) String() string {
	var parts []string
	for i := 0; i < numEffects; i++ {
		if e&(1<<i) != 0 {
			parts = append(parts, effectNames[i])
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// desc names a single-bit effect for diagnostics.
func (e effect) desc() string {
	for i := 0; i < numEffects; i++ {
		if e == 1<<i {
			return effectDescs[i]
		}
	}
	return e.String()
}

// effectByName parses one silod:inject operand.
func effectByName(name string) (effect, bool) {
	for i, n := range effectNames {
		if n == name {
			return 1 << i, true
		}
	}
	return 0, false
}

// sinkKind is a bitmask of the dangerous positions inputflow tracks an
// untrusted value into.
type sinkKind uint32

const (
	sinkAllocSize  sinkKind = 1 << iota // make() length or capacity
	sinkIndex                           // slice/array index expression
	sinkLoopBound                       // for-loop condition
	sinkQuotaArith                      // compound assignment into a struct field

	numSinks = 4
)

var sinkNames = [numSinks]string{
	"allocation size", "slice index", "loop bound", "quota arithmetic",
}

// String renders a sink mask as a comma-separated list.
func (s sinkKind) String() string {
	var parts []string
	for i := 0; i < numSinks; i++ {
		if s&(1<<i) != 0 {
			parts = append(parts, sinkNames[i])
		}
	}
	return strings.Join(parts, ", ")
}

// cgWitness is the first syntactic site of one direct effect inside a
// function: the terminal hop of a -why trace.
type cgWitness struct {
	what string // e.g. "time.Now", "math/rand.Intn", "map-range emission"
	pos  token.Pos
}

// cgCall is one outgoing edge recorded in source order. Exactly one of
// callee (static call or address-taken reference) or iface (dynamic
// call through a module-defined interface) is set.
type cgCall struct {
	callee *types.Func
	iface  *types.TypeName
	method string
	pos    token.Pos
}

// cgFlow records one observation of a tracked value reaching a sink or
// a call argument. The origin is a parameter (param >= 0), a value of a
// module-declared named struct type (utype != nil), or both; finalize
// decides which role matters once the untrusted annotations from every
// package are known. Exactly one target group is set: sink, callee, or
// iface.
type cgFlow struct {
	param int             // origin parameter index, -1 if not parameter-derived
	utype *types.TypeName // origin named struct type, nil otherwise
	field string          // field read off the struct origin ("" = whole value)
	root  types.Object    // the local/param object the flow was observed through
	pos   token.Pos

	sink        sinkKind
	callee      *types.Func
	calleeParam int
	iface       *types.TypeName
	method      string
}

// cgGate is a call that passes a tracked struct value to a function; if
// that function turns out to be a // silod:validator, every later flow
// from the same root in the same function is considered sanitized.
type cgGate struct {
	root   types.Object
	callee *types.Func
	pos    token.Pos
}

// cgBadAnn is an annotation grammar error, reported by the owning
// analyzer's Run so diagnostics stay attributed correctly.
type cgBadAnn struct {
	owner string // analyzer name that reports it
	pos   token.Pos
	msg   string
}

// fnInfo is the per-function summary fragment built by summary.go.
type fnInfo struct {
	fn      *types.Func
	pos     token.Pos
	direct  effect
	witness map[effect]cgWitness // first site per direct-effect bit
	root    bool                 // // silod:sim-root
	inject  effect               // // silod:inject mask
	calls   []cgCall
	flows   []cgFlow
	gates   []cgGate
}

// cgFragment is one package's contribution to the whole-program state.
type cgFragment struct {
	path       string
	fns        []*fnInfo // declaration order
	concretes  []*types.TypeName
	untrusted  []*types.TypeName
	validators map[*types.Func]bool
	bad        []cgBadAnn
}

// cgNode is one finalized call-graph node.
type cgNode struct {
	info       *fnInfo
	edges      []cgEdge // static + resolved interface edges, source order
	eff        effect   // transitive effects, injection masks applied
	scc        int
	paramSinks []sinkKind // per-parameter transitive sink mask
}

type cgEdge struct {
	to  *cgNode
	pos token.Pos
}

// cgState is the shared whole-program record behind Pass.Shared.
type cgState struct {
	pkgs map[string]*cgFragment

	// Populated by finalize.
	finalized  bool
	nodes      []*cgNode // sorted package path, then declaration order
	byFunc     map[*types.Func]*cgNode
	untrusted  map[*types.TypeName]bool
	validators map[*types.Func]bool
	concretes  []*types.TypeName
}

func cgStateIn(shared map[string]any) *cgState {
	if st, ok := shared[callgraphKey].(*cgState); ok {
		return st
	}
	st := &cgState{pkgs: make(map[string]*cgFragment)}
	shared[callgraphKey] = st
	return st
}

// ensureCGFragment builds (once) the fragment for the pass's package.
// Both detclose and inputflow call it from Run; the first invocation in
// the package's analyzer sequence does the work.
func ensureCGFragment(p *Pass) *cgFragment {
	st := cgStateIn(p.Shared)
	if f, ok := st.pkgs[p.Path]; ok {
		return f
	}
	f := buildCGFragment(p)
	st.pkgs[p.Path] = f
	return f
}

// mergeCallGraph folds one package's fragments into the global state.
// Both graph-backed analyzers register it, so it must tolerate seeing
// the same fragment twice: fragments are keyed by path and the first
// merge wins.
func mergeCallGraph(global, pkg map[string]any) {
	src, ok := pkg[callgraphKey].(*cgState)
	if !ok {
		return
	}
	dst := cgStateIn(global)
	for path, f := range src.pkgs {
		if _, seen := dst.pkgs[path]; !seen {
			dst.pkgs[path] = f
		}
	}
}

// finalize condenses the graph and computes summaries bottom-up. It is
// idempotent: the first Finish hook (detclose or inputflow, whichever
// is enabled) pays the cost and the second reuses the result.
func (st *cgState) finalize() {
	if st.finalized {
		return
	}
	st.finalized = true

	paths := make([]string, 0, len(st.pkgs))
	for path := range st.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	st.byFunc = make(map[*types.Func]*cgNode)
	st.untrusted = make(map[*types.TypeName]bool)
	st.validators = make(map[*types.Func]bool)
	for _, path := range paths {
		f := st.pkgs[path]
		for _, fi := range f.fns {
			n := &cgNode{info: fi}
			if sig, ok := fi.fn.Type().(*types.Signature); ok {
				n.paramSinks = make([]sinkKind, sig.Params().Len())
			}
			st.nodes = append(st.nodes, n)
			st.byFunc[fi.fn] = n
		}
		for _, t := range f.untrusted {
			st.untrusted[t] = true
		}
		for fn := range f.validators {
			st.validators[fn] = true
		}
		st.concretes = append(st.concretes, f.concretes...)
	}

	// Resolve edges: static calls keep their callee if it is a module
	// function (has a node); interface calls fan out to every module
	// concrete type implementing the interface, in collection order
	// (sorted package path, then declaration order — deterministic).
	for _, n := range st.nodes {
		for _, c := range n.info.calls {
			if c.callee != nil {
				if to, ok := st.byFunc[c.callee]; ok {
					n.edges = append(n.edges, cgEdge{to: to, pos: c.pos})
				}
				continue
			}
			for _, to := range st.resolveIface(c.iface, c.method) {
				n.edges = append(n.edges, cgEdge{to: to, pos: c.pos})
			}
		}
	}

	sccs := st.condense()

	// Tarjan emits each SCC only after every SCC reachable from it, so
	// walking the emission order is the bottom-up (reverse topological)
	// summary pass: callee summaries outside the current SCC are final.
	for _, scc := range sccs {
		var union effect
		for _, n := range scc {
			union |= n.info.direct
			for _, e := range n.edges {
				if e.to.scc != n.scc {
					union |= e.to.eff
				}
			}
		}
		for _, n := range scc {
			n.eff = union &^ n.info.inject
		}
		st.closeParamSinks(scc)
	}
}

// resolveIface returns the nodes of every module method that can be the
// dynamic target of iface.method.
func (st *cgState) resolveIface(iface *types.TypeName, method string) []*cgNode {
	it, ok := iface.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*cgNode
	for _, tn := range st.concretes {
		t := tn.Type()
		impl := types.Implements(t, it)
		if !impl && !types.Implements(types.NewPointer(t), it) {
			continue
		}
		recv := t
		if !impl {
			recv = types.NewPointer(t)
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, tn.Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n, ok := st.byFunc[fn]; ok {
			out = append(out, n)
		}
	}
	return out
}

// condense runs Tarjan's algorithm (iterative) over the node order and
// returns the SCCs in emission order — reverse topological over the
// condensation, i.e. callees before callers.
func (st *cgState) condense() [][]*cgNode {
	index := make(map[*cgNode]int)
	low := make(map[*cgNode]int)
	onStack := make(map[*cgNode]bool)
	var stack []*cgNode
	var sccs [][]*cgNode
	next := 0

	type frame struct {
		n    *cgNode
		edge int
	}
	for _, start := range st.nodes {
		if _, seen := index[start]; seen {
			continue
		}
		work := []frame{{n: start}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := fr.n
			if fr.edge == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for fr.edge < len(n.edges) {
				to := n.edges[fr.edge].to
				fr.edge++
				if _, seen := index[to]; !seen {
					work = append(work, frame{n: to})
					advanced = true
					break
				}
				if onStack[to] && index[to] < low[n] {
					low[n] = index[to]
				}
			}
			if advanced {
				continue
			}
			if low[n] == index[n] {
				var scc []*cgNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					m.scc = len(sccs)
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
		}
	}
	return sccs
}

// closeParamSinks computes the transitive parameter→sink masks for one
// SCC; intra-SCC call cycles converge through the inner fixpoint.
func (st *cgState) closeParamSinks(scc []*cgNode) {
	for changed := true; changed; {
		changed = false
		for _, n := range scc {
			for i := range n.info.flows {
				f := &n.info.flows[i]
				if f.param < 0 || (f.utype != nil && st.untrusted[f.utype]) {
					// Values of annotated request types report at their own
					// read site (inputflow Finish), not through the caller's
					// parameter summary — one finding per violation.
					continue
				}
				if st.gateSuppressed(n.info, f) {
					continue
				}
				mask := st.flowSinks(f)
				if mask&^n.paramSinks[f.param] != 0 {
					n.paramSinks[f.param] |= mask
					changed = true
				}
			}
		}
	}
}

// flowSinks resolves the sink mask one flow record reaches: directly,
// through a callee parameter summary, or through every implementation
// of an interface method.
func (st *cgState) flowSinks(f *cgFlow) sinkKind {
	if f.sink != 0 {
		return f.sink
	}
	if f.callee != nil {
		if to, ok := st.byFunc[f.callee]; ok && f.calleeParam < len(to.paramSinks) {
			return to.paramSinks[f.calleeParam]
		}
		return 0
	}
	// Interface-forwarded flows: union over the resolved targets.
	var mask sinkKind
	for _, to := range st.resolveIface(f.iface, f.method) {
		if f.calleeParam < len(to.paramSinks) {
			mask |= to.paramSinks[f.calleeParam]
		}
	}
	return mask
}

// gateSuppressed reports whether a flow from a struct root happens
// after the root was passed to a // silod:validator function.
func (st *cgState) gateSuppressed(fi *fnInfo, f *cgFlow) bool {
	if f.root == nil {
		return false
	}
	for _, g := range fi.gates {
		if g.root == f.root && g.pos < f.pos && st.validators[g.callee] {
			return true
		}
	}
	return false
}

// tracePath finds the shortest call path (BFS, deterministic edge
// order) from a root node to a function with the direct effect e, and
// renders it as Diagnostic trace entries: each hop is a call site, the
// final entry is the effect's witness site.
func (st *cgState) tracePath(fset *token.FileSet, root *cgNode, e effect) []TraceEntry {
	type hop struct {
		n    *cgNode
		from *hop
		pos  token.Pos // call site that reached n
	}
	seen := map[*cgNode]bool{root: true}
	queue := []*hop{{n: root}}
	var terminal *hop
	for len(queue) > 0 && terminal == nil {
		h := queue[0]
		queue = queue[1:]
		if h.n.info.direct&e != 0 && h.n.info.inject&e == 0 {
			terminal = h
			break
		}
		for _, edge := range h.n.edges {
			if seen[edge.to] || edge.to.eff&e == 0 {
				continue
			}
			seen[edge.to] = true
			queue = append(queue, &hop{n: edge.to, from: h, pos: edge.pos})
		}
	}
	if terminal == nil {
		return nil
	}
	var hops []*hop
	for h := terminal; h != nil; h = h.from {
		hops = append(hops, h)
	}
	var trace []TraceEntry
	for i := len(hops) - 1; i >= 0; i-- {
		h := hops[i]
		if h.from == nil {
			trace = append(trace, TraceEntry{
				Call: "root " + h.n.info.fn.FullName(),
				Pos:  fset.Position(h.n.info.pos),
			})
			continue
		}
		trace = append(trace, TraceEntry{
			Call: "calls " + h.n.info.fn.FullName(),
			Pos:  fset.Position(h.pos),
		})
	}
	w := terminal.n.info.witness[e]
	trace = append(trace, TraceEntry{Call: w.what, Pos: fset.Position(w.pos)})
	return trace
}
