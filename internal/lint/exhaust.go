package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaust enforces the closed-enum convention: a named type annotated
// // silod:enum promises that its declared constants (in the defining
// package) are the complete value set, and every switch over the type
// must either cover all of them or carry an explicit default. The enum
// surface this protects — tenant.SLOClass, the fault kinds, the
// timeline event kinds, the policy/cache-system selectors — is exactly
// where a silently missing case turns into a job that is never
// preempted or a fault that is never recovered (the KindJobCrash class
// of bug this PR's sweep fixed in internal/faults).
//
// Coverage is judged by constant *value*, so iota aliases count as
// covered when any spelling of the value appears. A switch containing a
// non-constant case expression cannot be proven either way and is
// skipped — the convention is constant cases, and the skipping is
// documented rather than silent (docs/static-analysis.md).
//
// The analyzer is whole-module through the standard Merge/Finish hooks:
// the annotation lives on the defining package's type declaration, but
// switches over the type anywhere in the module are checked.
var Exhaust = &Analyzer{
	Name: "exhaust",
	Doc: "switches over // silod:enum types must cover every declared " +
		"constant or carry an explicit default",
	Run:    runExhaust,
	Merge:  mergeExhaust,
	Finish: finishExhaust,
}

const exhaustKey = "exhaust"

// exSwitch is one recorded switch over a named type.
type exSwitch struct {
	tn         *types.TypeName
	pos        token.Pos
	hasDefault bool
	dynamic    bool     // a non-constant case expression: unprovable
	covered    []string // constant.Value.ExactString() per case, source order
}

// exFragment is one package's contribution.
type exFragment struct {
	enums    []*types.TypeName
	switches []exSwitch
}

type exState struct {
	pkgs map[string]*exFragment
}

func exStateIn(shared map[string]any) *exState {
	if st, ok := shared[exhaustKey].(*exState); ok {
		return st
	}
	st := &exState{pkgs: make(map[string]*exFragment)}
	shared[exhaustKey] = st
	return st
}

func mergeExhaust(global, pkg map[string]any) {
	src, ok := pkg[exhaustKey].(*exState)
	if !ok {
		return
	}
	dst := exStateIn(global)
	for path, f := range src.pkgs {
		if _, seen := dst.pkgs[path]; !seen {
			dst.pkgs[path] = f
		}
	}
}

func runExhaust(p *Pass) {
	st := exStateIn(p.Shared)
	f := &exFragment{}
	st.pkgs[p.Path] = f
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !docHasMarker(typeSpecDoc(gd, ts), "silod:enum") {
					continue
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if _, isBasic := tn.Type().Underlying().(*types.Basic); !isBasic {
					p.Reportf(ts.Pos(), "silod:enum applies to types with a basic underlying type (int or string constants); %s does not qualify", ts.Name.Name)
					continue
				}
				if len(enumConstants(tn)) == 0 {
					p.Reportf(ts.Pos(), "silod:enum type %s declares no constants in its package: the annotation promises a closed value set", ts.Name.Name)
					continue
				}
				f.enums = append(f.enums, tn)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := p.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			rec := exSwitch{tn: named.Obj(), pos: sw.Pos()}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if len(cc.List) == 0 {
					rec.hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if ctv, ok := p.Info.Types[e]; ok && ctv.Value != nil {
						rec.covered = append(rec.covered, ctv.Value.ExactString())
					} else {
						rec.dynamic = true
					}
				}
			}
			f.switches = append(f.switches, rec)
			return true
		})
	}
}

// enumConstant is one declared constant of an enum type.
type enumConstant struct {
	name  string
	value string // constant.Value.ExactString()
}

// enumConstants lists the constants of tn's type declared in its own
// package, in scope (sorted-name) order.
func enumConstants(tn *types.TypeName) []enumConstant {
	pkg := tn.Pkg()
	if pkg == nil {
		return nil
	}
	var out []enumConstant
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		out = append(out, enumConstant{name: name, value: c.Val().ExactString()})
	}
	return out
}

func finishExhaust(p *Pass) {
	st, ok := p.Shared[exhaustKey].(*exState)
	if !ok {
		return
	}
	paths := make([]string, 0, len(st.pkgs))
	for path := range st.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	enums := make(map[*types.TypeName]bool)
	for _, path := range paths {
		for _, tn := range st.pkgs[path].enums {
			enums[tn] = true
		}
	}
	for _, path := range paths {
		for _, sw := range st.pkgs[path].switches {
			if !enums[sw.tn] || sw.hasDefault || sw.dynamic {
				continue
			}
			covered := make(map[string]bool, len(sw.covered))
			for _, v := range sw.covered {
				covered[v] = true
			}
			var missing []string
			for _, c := range enumConstants(sw.tn) {
				if !covered[c.value] {
					missing = append(missing, c.name)
				}
			}
			if len(missing) == 0 {
				continue
			}
			p.Reportf(sw.pos,
				"switch over closed enum %s.%s misses %s: cover every declared constant or add an explicit default",
				sw.tn.Pkg().Name(), sw.tn.Name(), strings.Join(missing, ", "))
		}
	}
}
