package lint

import "go/ast"

// MapOrder is the dataflow refinement of rngpurity's syntactic
// map-order checks. rngpurity flags output emitted from inside a
// map-range loop; maporder follows the *values* the loop produces and
// reports when any of them reaches an order-sensitive sink — float
// accumulation (the pre-PR-5 requiredIO bug), an unsorted slice that
// escapes, a metric series interned mid-loop, or output formatting.
// The two run side by side: rngpurity is cheap and syntactic, maporder
// catches the flows rngpurity cannot see (a float sum never "emits"
// anything, yet its value differs run to run).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "tracks values derived from map iteration and flags " +
		"order-sensitive sinks: float accumulation, unsorted append " +
		"escape, metric-series interning, and output emission — all of " +
		"which break same-seed byte-identity",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapOrderFlow(p, body, p.Reportf)
			}
			return true
		})
	}
}
