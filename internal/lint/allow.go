package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path"
	"strconv"
	"strings"
)

// AllowRule is one audited exception. Rules come from lint.allow, one
// per line:
//
//	<analyzer|*> <path-glob>[:<line>] [message substring]
//
// The path is slash-separated and relative to the module root. The
// glob uses path.Match semantics per segment, a trailing "/..." allows
// a whole subtree, and an optional ":<line>" pins the rule to a line
// (omit it to survive unrelated edits to the file). Blank lines and
// #-comments are ignored.
//
// Every rule must carry a justification: a #-comment on the line(s)
// directly above it. The comment covers every rule until the next
// blank line, so one comment can justify a small group. Rules with no
// adjacent comment are reported by Unjustified and fail the lint gate
// — an exception nobody can explain is a bug waiting to be grandfathered.
type AllowRule struct {
	Analyzer  string // analyzer name or "*"
	Path      string // glob, or prefix ending in "/..."
	Line      int    // 0 = any line
	Substr    string // "" = any message
	Source    string // file:line of the rule, for stale-rule reports
	Justified bool   // a #-comment directly precedes this rule's block
}

// Allowlist is a parsed lint.allow file.
type Allowlist struct {
	Rules []AllowRule
	used  []bool
}

// ParseAllowFile reads an allowlist. A missing file yields an empty
// (allow-nothing) list and no error, so the default path can be probed
// unconditionally.
func ParseAllowFile(file string) (*Allowlist, error) {
	f, err := os.Open(file)
	if os.IsNotExist(err) {
		return &Allowlist{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseAllow(f, file)
}

// ParseAllow parses allowlist rules from r; name is used in rule
// source positions and error messages.
func ParseAllow(r io.Reader, name string) (*Allowlist, error) {
	al := &Allowlist{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	justified := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			justified = false
			continue
		}
		if strings.HasPrefix(line, "#") {
			justified = true
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"<analyzer|*> <path-glob>[:<line>] [substring]\", got %q", name, lineNo, line)
		}
		rule := AllowRule{
			Analyzer:  fields[0],
			Path:      fields[1],
			Substr:    strings.Join(fields[2:], " "),
			Source:    fmt.Sprintf("%s:%d", name, lineNo),
			Justified: justified,
		}
		if rule.Analyzer != "*" && ByName(rule.Analyzer) == nil {
			return nil, fmt.Errorf("%s:%d: unknown analyzer %q", name, lineNo, rule.Analyzer)
		}
		if i := strings.LastIndex(rule.Path, ":"); i >= 0 {
			n, err := strconv.Atoi(rule.Path[i+1:])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%s:%d: bad line number in %q", name, lineNo, rule.Path)
			}
			rule.Line = n
			rule.Path = rule.Path[:i]
		}
		al.Rules = append(al.Rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	al.used = make([]bool, len(al.Rules))
	return al, nil
}

// Allows reports whether some rule covers the diagnostic (whose
// Pos.Filename must be slash-separated and module-relative), marking
// the rule used.
func (al *Allowlist) Allows(d Diagnostic) bool {
	for i, r := range al.Rules {
		if r.Analyzer != "*" && r.Analyzer != d.Analyzer {
			continue
		}
		if !pathGlobMatch(r.Path, d.Pos.Filename) {
			continue
		}
		if r.Line != 0 && r.Line != d.Pos.Line {
			continue
		}
		if r.Substr != "" && !strings.Contains(d.Message, r.Substr) {
			continue
		}
		al.used[i] = true
		return true
	}
	return false
}

// Unjustified returns the rules with no #-comment directly above their
// block — exceptions nobody wrote down a reason for.
func (al *Allowlist) Unjustified() []AllowRule {
	var out []AllowRule
	for _, r := range al.Rules {
		if !r.Justified {
			out = append(out, r)
		}
	}
	return out
}

// Unused returns the rules that never matched a diagnostic — stale
// exceptions that should be deleted.
func (al *Allowlist) Unused() []AllowRule {
	var out []AllowRule
	for i, r := range al.Rules {
		if !al.used[i] {
			out = append(out, r)
		}
	}
	return out
}

// pathGlobMatch matches a slash-separated path against a glob. An
// exact match, a path.Match match, or a "dir/..." subtree prefix all
// count.
func pathGlobMatch(glob, p string) bool {
	if glob == p {
		return true
	}
	if prefix, ok := strings.CutSuffix(glob, "/..."); ok {
		return p == prefix || strings.HasPrefix(p, prefix+"/")
	}
	ok, err := path.Match(glob, p)
	return err == nil && ok
}
