// Fixture for the metricnames analyzer: dynamic names, missing or
// misplaced _total suffixes, non-snake_case names and dynamic label
// keys are violations; constant conforming names and dynamic label
// values are accepted.
package metricnames

import (
	"fmt"

	"repro/internal/metrics"
)

// Register exercises the docs/observability.md naming rules.
func Register(r *metrics.Registry, job string) {
	r.Counter("silod_fix_probes_total")           // ok
	r.Gauge("silod_fix_queue_depth")              // ok
	r.Histogram("silod_fix_latency_minutes", nil) // ok

	r.Counter(fmt.Sprintf("silod_fix_%s_total", job)) // want `must be a compile-time constant`
	r.Counter("silod_fix_probes")                     // want `must end in _total`
	r.Gauge("silod_fix_bytes_total")                  // want `must not end in _total`
	r.Counter("SilodFixProbesTotal")                  // want `lower snake_case`
	r.Counter("probes_total")                         // want `silod_<subsystem>_ prefix`

	_ = metrics.L("policy", job) // ok: label values may vary
	_ = metrics.L(job, "x")      // want `label key .* must be a compile-time constant`
	_ = metrics.L("Policy", "x") // want `label key "Policy" must be lower snake_case`
}
