// Package sim is the detclose fixture: simulation roots whose
// transitive call graphs do and do not leak ambient effects, including
// a recursive SCC, interface dispatch, and an audited injection
// boundary.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// RootWall reaches the wall clock two calls down.
// silod:sim-root
func RootWall() time.Duration { // want `simulation root RootWall transitively reaches a wall-clock read \(time\.Now\) outside any silod:inject boundary`
	return elapsed()
}

func elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// realClock is the audited boundary: the wall-clock effect is supposed
// to cross here (the testbed idiom), so it does not propagate up.
// silod:inject wallclock
func realClock() time.Time {
	return time.Now()
}

// RootInjected is clean: its only clock access goes through the
// annotated injection point.
// silod:sim-root
func RootInjected() time.Time {
	return realClock()
}

// RootRec reaches the global RNG through a recursive pair: recA and
// recB form one SCC, and the summary must still converge and carry the
// effect out of the cycle.
// silod:sim-root
func RootRec(n int) int { // want `simulation root RootRec transitively reaches a global-RNG draw \(math/rand\.Intn\)`
	return recA(n)
}

func recA(n int) int {
	if n <= 0 {
		return rand.Intn(10)
	}
	return recB(n - 1)
}

func recB(n int) int {
	return recA(n - 1)
}

// Emitter is a module-defined interface: calls through it resolve
// against every concrete type in the analyzed packages.
type Emitter interface {
	Emit(m map[string]int)
}

type mapEmitter struct{}

// Emit prints in map-iteration order: the map-order effect.
func (mapEmitter) Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// RootIface reaches the map-order emission only through dynamic
// dispatch on Emitter.
// silod:sim-root
func RootIface(e Emitter, m map[string]int) { // want `simulation root RootIface transitively reaches a map-order-dependent emission \(map-range emission\)`
	e.Emit(m)
}

// badInject exercises the annotation grammar check.
// silod:inject
func badInject() { // want `silod:inject needs at least one effect`
}

// helperOnly has the wall-clock effect but is not reachable from any
// root, so it reports nothing on its own.
func helperOnly() time.Time {
	return time.Now()
}
