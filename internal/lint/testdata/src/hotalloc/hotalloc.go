// Fixture for the hotalloc analyzer: a // silod:hotpath function must
// not allocate — make, map/slice literals, &T{}, new, closures that
// capture, appends that grow function-fresh slices, and interface
// boxing are all flagged. A same-line // silod:alloc <reason> comment
// waives one budgeted allocation; functions without the annotation
// are free to allocate.
package hotalloc

type event struct {
	seq int
}

type queue struct {
	h   []*event
	seq int
}

func sink(v interface{}) {}

// push is the annotated hot path with its one budgeted allocation
// waived, mirroring eventq.Schedule.
//
// silod:hotpath
func (q *queue) push() {
	e := &event{seq: q.seq} // silod:alloc one event per push is the queue's contract; the handle outlives the call
	q.h = append(q.h, e)    // ok: appends to a caller-owned field, not a fresh slice
	q.seq++
}

// churn allocates every way the analyzer knows about.
//
// silod:hotpath
func (q *queue) churn(n int) int {
	m := make(map[string]int) // want `make — reuse a scratch buffer`
	_ = m
	counts := map[string]int{"a": 1} // want `map literal — reuse a scratch map`
	_ = counts
	s := []int{1, 2} // want `slice literal — reuse a scratch buffer`
	s = append(s, n) // want `append grows s, which was freshly allocated in this function`
	e := &event{}    // want `&event\{\.\.\.\} escapes to the heap`
	_ = e
	p := new(event) // want `new\(T\) escapes to the heap`
	_ = p
	f := func() int { return n } // want `closure captures n`
	sink(n)                      // want `n boxes into an interface parameter`
	_ = any(n)                   // want `conversion boxes n into an interface`
	b := make([]int, 1) /* // want `silod:alloc waiver without a reason` */ // silod:alloc
	_ = b
	return f() + len(s)
}

// fill appends to a caller-owned slice: growth is the caller's
// amortization problem, not a fresh allocation here.
//
// silod:hotpath
func fill(dst []int, n int) []int {
	return append(dst, n) // ok: dst is caller-owned
}

// cold is not annotated: allocation discipline is a hot-path rule,
// not a global one.
func cold() []int {
	return []int{1, 2, 3} // ok: not a hot path
}
