// Package lockorder exercises the global lock-graph analyzer: an A↔B
// inversion, a consistent C→D pair (accepted), and re-entry on the
// same lock type through a call chain (self-cycle).
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ab nests in A→B order.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle: lockorder.B.mu acquired while lockorder.A.mu is held`
	defer b.mu.Unlock()
}

// ba nests in B→A order: the inversion.
func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order cycle: lockorder.A.mu acquired while lockorder.B.mu is held`
	defer a.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// cd and cd2 agree on C→D: accepted.
func cd(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

func cd2(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// E re-enters its own lock type through a call chain.
type E struct{ mu sync.Mutex }

func (e *E) poke(other *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
	other.grab() // want `lock order cycle: lockorder.E.mu acquired while an instance of lockorder.E.mu is already held`
}

func (e *E) grab() {
	e.mu.Lock()
	e.mu.Unlock()
}
