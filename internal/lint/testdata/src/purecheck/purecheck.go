// Fixture for the purecheck analyzer: a // silod:pure function must
// not read its clock parameter, touch package state, use goroutines
// or channels, fold map iterations into floats, or call anything that
// is not itself vetted (annotated, pure-stdlib, or vouched for with
// assume=). Forwarding the clock to a vetted callee is the accepted
// pattern, as is calling the pure parts of the stdlib.
package purecheck

import (
	"fmt"
	"math"
	"time"

	"repro/internal/unit"
)

var epoch float64

// Policy is the interface seam the assume option vouches for.
type Policy interface {
	Score(x float64) float64
}

// score is vetted pure.
//
// silod:pure
func score(x float64) float64 { return math.Sqrt(x) }

// rawScore has no annotation.
func rawScore(x float64) float64 { return x * x }

// schedule forwards its clock to a vetted callee: the accepted
// pattern — the parameter is judged where it is read, not where it
// passes through.
//
// silod:pure
func schedule(now unit.Time, x float64) float64 {
	return tick(now) + score(x)
}

// tick actually reads the clock it was handed.
//
// silod:pure
func tick(now unit.Time) float64 {
	return float64(now) // want `reads wall-clock parameter now`
}

// leaky touches mutable package state.
//
// silod:pure
func leaky(x float64) float64 {
	epoch += x // want `touches package-level variable epoch`
	return x
}

// concurrent uses goroutines and channels.
//
// silod:pure
func concurrent(ch chan int) int {
	go score(1) // want `starts a goroutine`
	ch <- 1     // want `sends on a channel`
	return <-ch // want `receives from a channel`
}

// callsUnvetted calls a same-package function nobody annotated.
//
// silod:pure
func callsUnvetted(x float64) float64 {
	return rawScore(x) // want `calls purecheck\.rawScore, which is not annotated`
}

// callsClock reaches outside the pure-stdlib allowlist.
//
// silod:pure
func callsClock() float64 {
	_ = time.Now() // want `calls time\.Now \(reads the wall clock\), which is outside the pure-stdlib allowlist`
	_ = fmt.Sprintf("%d", 1) // ok: fmt formatting is on the allowlist
	return 0
}

// applyUnvetted calls through an interface with no assume vow.
//
// silod:pure
func applyUnvetted(p Policy, x float64) float64 {
	return p.Score(x) // want `calls Policy\.Score through an interface the checker cannot resolve`
}

// applyVetted carries the vow: every runtime Policy is vetted
// elsewhere, so the dynamic call is accepted.
//
// silod:pure assume=Policy
func applyVetted(p Policy, x float64) float64 {
	return p.Score(x) // ok: assume=Policy
}

// foldMap inherits the maporder rules with the silod:pure prefix.
//
// silod:pure
func foldMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `silod:pure function foldMap: float accumulation into s`
	}
	return s
}

// silod:pure frobnicate=yes
func typo() {} // want `unrecognized silod:pure option "frobnicate=yes"`

// Vouches names a function that does not exist.
//
// silod:pure-requires: noSuchFunc
func Vouches() {} // want `silod:pure-requires names noSuchFunc, which does not resolve`

// PureScorer vouches for one vetted and one unvetted function.
//
// silod:pure-requires: score, rawScore
func PureScorer() {} // want `silod:pure-requires: rawScore is not annotated`
