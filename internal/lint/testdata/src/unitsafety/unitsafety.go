// Fixture for the unitsafety analyzer: additive arithmetic and
// comparisons between unit quantities and raw numeric literals are
// violations, as are direct cross-unit conversions; zero comparisons,
// unit constants, dimensionless scaling, float64 round-trips and the
// sanctioned helpers are accepted.
package unitsafety

import "repro/internal/unit"

// Thresholds mixes quantities with raw literals.
func Thresholds(b unit.Bytes, bw unit.Bandwidth) unit.Bytes {
	if b > 1048576 { // want `unit\.Bytes > raw numeric literal 1048576`
		return b
	}
	sum := b + 64  // want `unit\.Bytes \+ raw numeric literal 64`
	if bw >= 100 { // want `unit\.Bandwidth >= raw numeric literal 100`
		return sum
	}
	return 0
}

// CastBandwidth reinterprets bytes as a rate without a helper.
func CastBandwidth(b unit.Bytes) unit.Bandwidth {
	return unit.Bandwidth(b) // want `direct conversion unit\.Bytes -> unit\.Bandwidth`
}

// CastDuration reinterprets a time point as a span without a helper.
func CastDuration(t unit.Time) unit.Duration {
	return unit.Duration(t) // want `direct conversion unit\.Time -> unit\.Duration`
}

// Accepted shows the idioms the analyzer must not flag.
func Accepted(b unit.Bytes, bw unit.Bandwidth, t unit.Time) {
	if b > 0 && b > 64*unit.MB { // ok: zero and unit-constant comparisons
		_ = b * 2 // ok: dimensionless scaling
		_ = b / 3
	}
	_ = unit.PerSecond(b)          // ok: sanctioned helper
	_ = unit.Bandwidth(float64(b)) // ok: explicit float64 round-trip
	_ = t.Elapsed()                // ok: sanctioned helper
	_ = unit.DivBandwidth(b, bw)   // ok: dimensional helper
}
