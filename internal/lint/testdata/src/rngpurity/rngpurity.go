// Fixture for the rngpurity analyzer: math/rand imports and
// map-iteration-order-dependent output are violations; the
// collect-then-sort idiom and order-independent aggregation are
// accepted.
package rngpurity

import (
	"fmt"
	"io"
	"math/rand" // want `import math/rand outside internal/simrng`
	"sort"
)

// Shuffle draws from the global, unseeded stream.
func Shuffle(n int) int { return rand.Intn(n) }

// EmitUnsorted prints map entries in randomized iteration order.
func EmitUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want `emitting output while ranging over a map`
		fmt.Fprintln(w, k, v)
	}
}

// CollectUnsorted leaks map order into the returned slice.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appending to "keys" while ranging over a map`
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted is the accepted collect-then-sort idiom.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // ok: sorted before anyone observes the order
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Total aggregates commutatively; iteration order cannot leak.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
