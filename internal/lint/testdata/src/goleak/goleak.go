// Package goleak exercises the goroutine-hygiene analyzer: each
// accepted shutdown idiom, plus fire-and-forget leaks.
package goleak

import (
	"context"
	"sync"
)

// leak has no shutdown path at all.
func leak() {
	go func() { // want `goroutine has no shutdown path`
		for i := 0; ; i++ {
			work()
		}
	}()
}

// leakNamed delegates to a callee that cannot observe shutdown.
func leakNamed() {
	go work() // want `goroutine has no shutdown path`
}

// leakNested: the inner goroutine has a receive, but the outer one's
// own body has nothing — each go statement stands alone.
func leakNested(ch chan int) {
	go func() { // want `goroutine has no shutdown path`
		go func() {
			<-ch
		}()
	}()
}

// okDone selects on a done channel.
func okDone(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				use(v)
			}
		}
	}()
}

// okRecv blocks on a plain receive: a close unblocks it.
func okRecv(ch chan int) {
	go func() {
		v := <-ch
		use(v)
	}()
}

// okRange drains a channel until it is closed.
func okRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// okWG ties its lifetime to a WaitGroup.
func okWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// okNamed hands the callee a stop channel.
func okNamed(stop chan struct{}) {
	go run(stop)
}

// okCtx hands the callee a context.
func okCtx(ctx context.Context) {
	go runCtx(ctx)
}

func run(stop chan struct{})     { <-stop }
func runCtx(ctx context.Context) { <-ctx.Done() }
func work()                      {}
func use(int)                    {}
