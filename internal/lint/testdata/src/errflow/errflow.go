// Package errflow exercises the error-discipline analyzer under a
// daemon-reachable path (fixture/internal/metrics): discarded errors
// in every syntactic position, the fmt/Builder exemptions, and the
// panic ban.
package errflow

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error      { return errors.New("boom") }
func value() (int, error) { return 0, errors.New("boom") }
func pair() (int, bool)   { return 0, false }

func bare() {
	mayFail() // want `discarded error return from mayFail`
}

func deferred() {
	defer mayFail() // want `discarded error return from mayFail`
}

func blank() {
	_ = mayFail() // want `error value assigned to _`
}

func tupleBlank() int {
	v, _ := value() // want `error from value assigned to _`
	return v
}

// handled propagates: accepted.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := value()
	if err != nil {
		return err
	}
	use(v)
	return nil
}

// nonError discards a bool, not an error: accepted.
func nonError() int {
	v, _ := pair()
	return v
}

// exempt callees: fmt writes and never-failing builders.
func exempt(sb *strings.Builder) {
	fmt.Println("x")
	fmt.Fprintf(sb, "y")
	sb.WriteString("z")
}

func boom() {
	panic("no") // want `panic in daemon-reachable package`
}

func use(int) {}
