// Package controlplane is the inputflow fixture: JSON-decoded request
// fields flowing into the four sink kinds, cross-function flows through
// parameter summaries, and the two recognized validation idioms.
package controlplane

import "encoding/json"

const maxItems = 1024

// Req is external input: it decodes straight off the wire.
// silod:untrusted
type Req struct {
	N  int
	ID string
}

// handle sizes an allocation off the raw field.
func handle(data []byte) []int {
	var req Req
	_ = json.Unmarshal(data, &req)
	return make([]int, req.N) // want `untrusted Req\.N flows into allocation size without validation`
}

// handleVia reaches the same sink two frames down: the engine's
// parameter summary for alloc carries the sink back to the call site.
func handleVia(data []byte) []int {
	var req Req
	_ = json.Unmarshal(data, &req)
	return alloc(req.N) // want `untrusted Req\.N flows into allocation size via fixture/internal/controlplane\.alloc`
}

func alloc(n int) []int {
	return make([]int, n)
}

// pick indexes a slice by the raw field.
func pick(req Req, table []string) string {
	return table[req.N] // want `untrusted Req\.N flows into slice index`
}

// spin loops a raw field many times.
func spin(req Req) int {
	total := 0
	for i := 0; i < req.N; i++ { // want `untrusted Req\.N flows into loop bound`
		total += i
	}
	return total
}

type usage struct {
	used int
}

// apply folds a raw field into quota accounting.
func apply(u *usage, r Req) {
	u.used += r.N // want `untrusted Req\.N flows into quota arithmetic`
}

// handleGuarded is the inline-validation idiom: the early-return guard
// sanitizes the field for the rest of the function.
func handleGuarded(data []byte) []int {
	var req Req
	_ = json.Unmarshal(data, &req)
	if req.N <= 0 || req.N > maxItems {
		return nil
	}
	return make([]int, req.N) // ok: guarded above
}

// validate is the factored validation step.
// silod:validator
func validate(r *Req) bool {
	return r.N > 0 && r.N <= maxItems
}

// handleValidated passes the whole request through the validator, which
// sanitizes every field below the call.
func handleValidated(data []byte) []int {
	var req Req
	_ = json.Unmarshal(data, &req)
	if !validate(&req) {
		return nil
	}
	return make([]int, req.N) // ok: validator gate above
}

// Port is not a struct, so the annotation cannot apply.
// silod:untrusted
type Port int // want `silod:untrusted applies to struct types; Port is not a struct`

// lookup is safe: map indexing handles any key.
func lookup(req Req, m map[string]int) int {
	return m[req.ID] // ok: map index, not a slice index
}
