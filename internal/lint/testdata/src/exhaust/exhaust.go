// Package policy is the exhaust fixture: switches over closed enums
// with missing constants, full coverage, explicit defaults, value
// aliases, and the annotation grammar checks.
package policy

// Kind selects a scheduler implementation.
// silod:enum
type Kind int

const (
	KindFIFO Kind = iota
	KindSJF
	KindGavel
)

func name(k Kind) string {
	switch k { // want `switch over closed enum policy\.Kind misses KindGavel`
	case KindFIFO:
		return "fifo"
	case KindSJF:
		return "sjf"
	}
	return "unknown"
}

func nameFull(k Kind) string {
	switch k { // ok: every constant covered
	case KindFIFO:
		return "fifo"
	case KindSJF:
		return "sjf"
	case KindGavel:
		return "gavel"
	}
	return "unknown"
}

func nameDefault(k Kind) string {
	switch k { // ok: explicit default
	case KindFIFO:
		return "fifo"
	default:
		return "other"
	}
}

func nameDynamic(k, other Kind) string {
	switch k { // ok: non-constant case, coverage unprovable, skipped
	case other:
		return "same"
	}
	return "diff"
}

// Mode is string-backed; coverage is by value, so an alias spelling
// covers the constant it aliases.
// silod:enum
type Mode string

const (
	ModeA     Mode = "a"
	ModeB     Mode = "b"
	ModeAlias Mode = "a"
)

func modeName(m Mode) string {
	switch m { // ok: ModeAlias covers ModeA by value
	case ModeAlias, ModeB:
		return "known"
	}
	return ""
}

// Empty promises a closed set it never declares.
// silod:enum
type Empty int // want `silod:enum type Empty declares no constants`

// Config carries no constants and cannot.
// silod:enum
type Config struct{} // want `silod:enum applies to types with a basic underlying type`

// Plain has constants but no annotation: switches over it are not
// checked.
type Plain int

const (
	PlainA Plain = 0
	PlainB Plain = 1
)

func plainName(p Plain) string {
	switch p { // ok: unannotated type
	case PlainA:
		return "a"
	}
	return ""
}
