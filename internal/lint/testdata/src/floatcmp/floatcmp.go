// Fixture for the floatcmp analyzer: ==/!= on float operands
// (including the float64-underlying unit types) are violations;
// ordering comparisons and integer equality are accepted.
package floatcmp

import "repro/internal/unit"

// Compare exercises the equality ban.
func Compare(a, b float64, q unit.Bytes, n int) bool {
	if a == b { // want `float equality \(== on float64\)`
		return true
	}
	if q != 0 { // want `float equality \(!= on repro/internal/unit\.Bytes\)`
		return false
	}
	if a < b { // ok: ordering comparisons are well-defined
		return true
	}
	return n == 3 // ok: integers compare exactly
}
