// Fixture for rngpurity's exemption: loaded under a path ending in
// internal/simrng, the math/rand import is the sanctioned wrapper and
// produces no finding. (Loaded under any other path it would.)
package simrng

import "math/rand"

// Intn draws from an explicitly seeded source.
func Intn(r *rand.Rand, n int) int { return r.Intn(n) }
