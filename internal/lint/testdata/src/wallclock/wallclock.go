// Fixture for the wallclock analyzer: bare wall-clock reads are
// violations, the injected-clock idiom and the time package's types
// and constants are accepted.
package wallclock

import "time"

// Engine is driven by an injected clock, the accepted idiom.
type Engine struct {
	clock func() time.Time
	now   time.Time
}

// Step mixes banned bare wall-clock reads with legal uses.
func (e *Engine) Step() time.Duration {
	e.now = time.Now()           // want `bare time\.Now`
	time.Sleep(time.Millisecond) // want `bare time\.Sleep`
	elapsed := time.Since(e.now) // want `bare time\.Since`
	_ = time.Until(e.now)        // want `bare time\.Until`

	e.now = e.clock() // ok: injected clock
	var d time.Duration
	d = 2 * time.Second // ok: types and constants carry no clock
	_ = d
	return elapsed
}
