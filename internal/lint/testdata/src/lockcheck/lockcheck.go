// Package lockcheck exercises the guarded-field analyzer: sibling and
// cross-struct annotations, the Locked-suffix convention, RWMutex
// read/write asymmetry, constructor exemption, and double-lock.
package lockcheck

import "sync"

type store struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	hits  int            // guarded by mu
}

// get holds the lock via the lock/defer-unlock idiom.
func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// put unlocks explicitly, with an early-return branch: the lock stays
// held on the fallthrough path.
func (s *store) put(k string, v int) bool {
	s.mu.Lock()
	if _, dup := s.items[k]; dup {
		s.mu.Unlock()
		return false
	}
	s.items[k] = v
	s.mu.Unlock()
	return true
}

// bumpLocked follows the convention: the caller holds s.mu.
func (s *store) bumpLocked() {
	s.hits++
}

func (s *store) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
}

func (s *store) peek(k string) int {
	return s.items[k] // want `read of s.items without holding s.mu`
}

func (s *store) bumpUnsafe() {
	s.bumpLocked() // want `call to bumpLocked requires s.mu to be held`
}

func (s *store) stuck() {
	s.mu.Lock()
	s.mu.Lock() // want `s.mu locked twice on the same path`
	s.mu.Unlock()
	s.mu.Unlock()
}

// earlyReturn: the deferred unlock is sticky, so the lock guards
// every exit — including the early return — and the fallthrough
// access.
func (s *store) earlyReturn(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hits > 0 {
		return -1
	}
	return s.items[k] // ok: deferred unlock holds to function exit
}

// halfUnlock releases the lock in only one branch: the if joins with
// the intersection of the branch states, so the lock is no longer
// provably held afterwards.
func (s *store) halfUnlock(flush bool) int {
	s.mu.Lock()
	if flush {
		s.mu.Unlock()
	}
	n := s.hits // want `read of s.hits without holding s.mu`
	if !flush {
		s.mu.Unlock()
	}
	return n
}

// relockLoop cycles the lock inside the loop body: accesses in the
// locked windows pass, the access in the unlocked window is flagged,
// and the re-lock keeps the body balanced at the back edge (no
// double-lock).
func (s *store) relockLoop(keys []string) int {
	n := 0
	s.mu.Lock()
	for _, k := range keys {
		n += s.items[k] // ok: held at loop entry
		s.mu.Unlock()
		waste := s.hits // want `read of s.hits without holding s.mu`
		n += waste
		s.mu.Lock() // ok: re-lock, balanced at the back edge
	}
	s.mu.Unlock()
	return n
}

// newStore touches fields before publication: exempt.
func newStore() *store {
	s := &store{items: make(map[string]int)}
	s.hits = 0
	return s
}

type gauge struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

// read may hold just the read lock.
func (g *gauge) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

func (g *gauge) badWrite() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val = 1 // want `write to g.val while g.mu is only read-locked`
}

// Cross-struct guard: entry values live inside table and share its lock.
type table struct {
	mu      sync.Mutex
	entries map[string]*entry // guarded by mu
}

type entry struct {
	n int // guarded by table.mu
}

func (t *table) inc(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[k].n++
}

func poke(e *entry) {
	e.n++ // want `write to e.n without holding table.mu`
}

type broken struct {
	x int // guarded by nope // want `guarded-by annotation names "nope", but the struct has no such field`
}
