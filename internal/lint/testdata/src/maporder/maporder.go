// Fixture for the maporder analyzer: values derived from ranging over
// a map must not reach order-sensitive sinks (float accumulation,
// unsorted slice escape, metric interning, emission). Sorted-key
// iteration, per-slot updates and integer counters are accepted.
package maporder

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

type group struct {
	size  float64
	cache float64
	rate  float64
}

type probe struct {
	groups map[string]*group
	keys   []string
}

// requiredIO is frozen in its pre-PR-5 form: summing over the group
// map directly makes the float accumulation order — and with it the
// feasibility verdict at the bisection boundary — depend on
// per-process map randomness. PR 5 rewrote this to scan p.keys; the
// analyzer exists so the old form cannot come back.
func (p *probe) requiredIO() float64 {
	var total float64
	for _, g := range p.groups {
		miss := 1 - g.cache/g.size
		total += g.rate * miss // want `float accumulation into total in map iteration order`
	}
	return total
}

// requiredIOSorted is the PR-5 fix: first-encounter key order makes
// the sum deterministic.
func (p *probe) requiredIOSorted() float64 {
	var total float64
	for _, key := range p.keys { // ok: slice range, not map range
		g := p.groups[key]
		total += g.rate * (1 - g.cache/g.size)
	}
	return total
}

// sortedKeys is the sweep idiom: collect, sort, then accumulate.
func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted below, before the sum
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// escapes returns map-derived values in random order.
func escapes(m map[string]float64) []string {
	var names []string
	for k := range m {
		names = append(names, k) // want `appending map-iteration-derived values to "names" without sorting`
	}
	return names
}

// counts shows the accepted non-float cases: integer accumulation is
// exact in any order, and writes through a tainted index are per-slot
// updates, not order-dependent folds.
func counts(m map[string]int, taxed map[string]float64, out map[string]float64) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer addition is associative
	}
	for id, tax := range taxed {
		out[id] -= tax // ok: per-slot update keyed by the same id
	}
	return n
}

// emit prints in map order.
func emit(m map[string]float64) {
	for k, v := range m {
		fmt.Println(k, v) // want `reaches fmt\.Println: output line order depends on per-process randomness`
	}
}

// intern creates metric series in map order, randomizing the series
// creation order the registry observes.
func intern(r *metrics.Registry, shards map[string]int) {
	for range shards {
		r.Counter("silod_fix_shards_total") // want `interning a metric series \(Registry\.Counter\) inside a map-range loop`
	}
}
