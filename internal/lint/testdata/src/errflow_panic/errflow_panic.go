// Package errflowpanic holds a lone panic: flagged under a
// daemon-reachable import path, accepted elsewhere (the scoping test
// loads it as fixture/internal/sim).
package errflowpanic

func boom() {
	panic("tooling may panic")
}
