package lint

import (
	"strings"
	"testing"
)

// TestDetcloseTrace pins the -why payload: the RootWall finding carries
// the full call path from the root declaration to the time.Now witness,
// with every hop positioned in the fixture file.
func TestDetcloseTrace(t *testing.T) {
	diags, _ := runFixture(t, DetClose, "detclose", "fixture/internal/sim")
	var found *Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, "RootWall") {
			found = &diags[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no RootWall finding in:\n%s", formatDiags(diags))
	}
	if len(found.Trace) != 3 {
		t.Fatalf("trace length = %d, want 3 (root, call hop, witness):\n%+v", len(found.Trace), found.Trace)
	}
	for i, want := range []string{
		"root fixture/internal/sim.RootWall",
		"calls fixture/internal/sim.elapsed",
		"time.Now",
	} {
		if found.Trace[i].Call != want {
			t.Errorf("trace[%d].Call = %q, want %q", i, found.Trace[i].Call, want)
		}
		if found.Trace[i].Pos.Line <= 0 || !strings.HasSuffix(found.Trace[i].Pos.Filename, "detclose.go") {
			t.Errorf("trace[%d] position not anchored in the fixture: %+v", i, found.Trace[i].Pos)
		}
	}
}

// TestDetcloseRecursiveTrace: the SCC case still produces a terminating
// path — the BFS must not loop inside the recA/recB cycle.
func TestDetcloseRecursiveTrace(t *testing.T) {
	diags, _ := runFixture(t, DetClose, "detclose", "fixture/internal/sim")
	for i := range diags {
		if !strings.Contains(diags[i].Message, "RootRec") {
			continue
		}
		tr := diags[i].Trace
		if len(tr) == 0 {
			t.Fatal("RootRec finding has no trace")
		}
		if got := tr[len(tr)-1].Call; got != "math/rand.Intn" {
			t.Errorf("terminal hop = %q, want math/rand.Intn", got)
		}
		seen := map[string]bool{}
		for _, h := range tr {
			if seen[h.Call] {
				t.Errorf("trace revisits %q: BFS failed to terminate the cycle", h.Call)
			}
			seen[h.Call] = true
		}
		return
	}
	t.Fatalf("no RootRec finding in:\n%s", formatDiags(diags))
}

// TestAffectedDirs pins the -diff closure over a synthetic import
// graph: a change to a leaf package pulls in every transitive importer
// and nothing else.
func TestAffectedDirs(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := testLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	// internal/unit is imported (transitively) by the simulator stack;
	// internal/lint is not an importer of it.
	affected := AffectedDirs(pkgs, l.Module, []string{"internal/unit/unit.go"})
	for _, want := range []string{"internal/unit", "internal/sim", "internal/experiments"} {
		if !affected[want] {
			t.Errorf("change to internal/unit should affect %s; affected = %v", want, affected)
		}
	}
	if affected["internal/lint"] {
		t.Errorf("internal/lint does not import internal/unit but is marked affected")
	}
	// A non-Go change affects nothing at this layer (the CLI falls back
	// to a full run for such diffs).
	if got := AffectedDirs(pkgs, l.Module, []string{"README.md"}); len(got) != 0 {
		t.Errorf("non-Go change produced affected dirs: %v", got)
	}
}
