package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoLintClean is the self-hosting gate: the repository itself
// must produce zero findings beyond the audited lint.allow exceptions,
// and every exception must still be earning its keep.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := filepath.Join("..", "..")
	allow, err := ParseAllowFile(filepath.Join(root, "lint.allow"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		if !allow.Allows(d) {
			t.Errorf("unallowlisted finding: %s", d)
		}
	}
	for _, r := range allow.Unused() {
		t.Errorf("stale allow rule (matched nothing): %s: %s %s", r.Source, r.Analyzer, r.Path)
	}
	for _, r := range allow.Unjustified() {
		t.Errorf("allow rule without a justification comment: %s: %s %s", r.Source, r.Analyzer, r.Path)
	}
}

// BenchmarkLintTree times one full-suite run over the repository —
// load, type-check, all fifteen analyzers including the whole-program
// summary phase — with allocation reporting, so a regression in the
// call-graph engine's memory behavior shows up next to the wall-clock
// number CI's 60-second lint assertion depends on.
func BenchmarkLintTree(b *testing.B) {
	root := filepath.Join("..", "..")
	allow, err := ParseAllowFile(filepath.Join(root, "lint.allow"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(root, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range res.Diagnostics {
			if !allow.Allows(d) {
				b.Fatalf("tree is not clean: %s", d)
			}
		}
	}
}

// TestRetiredFloatcmpRulesGoStale proves the stale-rule detector earns
// its keep: the four floatcmp exceptions that used to cover
// internal/sim record-on-change comparisons were retired by the
// unit.Bytes.Changed / unit.Bandwidth.Changed helpers, so re-adding
// one must surface as a stale (matched-nothing) rule, not silently
// ride along.
func TestRetiredFloatcmpRulesGoStale(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := filepath.Join("..", "..")
	allow, err := ParseAllow(strings.NewReader(
		"floatcmp internal/sim/batch.go float equality\n"+
			"floatcmp internal/sim/fluid.go float equality\n"), "retired.allow")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		allow.Allows(d)
	}
	stale := allow.Unused()
	if len(stale) != 2 {
		t.Fatalf("got %d stale rules, want 2 (the retired floatcmp exceptions): %v", len(stale), stale)
	}
	for _, r := range stale {
		if r.Analyzer != "floatcmp" {
			t.Errorf("unexpected stale rule: %s %s", r.Analyzer, r.Path)
		}
	}
}

// TestRunDisable pins the -disable plumbing: disabling an analyzer
// suppresses its diagnostics at the driver level.
func TestRunDisable(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := filepath.Join("..", "..")
	res, err := Run(root, Options{Disable: map[string]bool{"floatcmp": true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		if d.Analyzer == "floatcmp" {
			t.Errorf("disabled analyzer still reported: %s", d)
		}
	}
}
