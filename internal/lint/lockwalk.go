package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the shared intraprocedural lock-flow walker behind the
// concurrency analyzers (lockcheck, lockorder). It abstractly executes
// one function body in source order, tracking which mutexes are held at
// every program point, and invokes analyzer hooks at lock operations,
// calls, and struct-field accesses.
//
// The flow model is deliberately simple but branch-aware:
//
//   - x.mu.Lock()/RLock() adds the lock to the held set; Unlock/RUnlock
//     removes it; `defer x.mu.Unlock()` marks it held ("sticky") until
//     the function returns.
//   - An if/else joins with the *intersection* of the branch states; a
//     branch that terminates (return, panic, break, continue, goto)
//     contributes nothing to the join, so the lock-then-early-return
//     idiom (`if bad { mu.Unlock(); return }`) keeps the lock held on
//     the fallthrough path.
//   - Loop and switch/select bodies are analyzed with a copy of the
//     entry state; the state after the statement is the entry state
//     (bodies are assumed lock-balanced — an unbalanced body shows up
//     as a double-lock or an unguarded access inside the loop itself).
//   - Function literals run later (goroutines, defers, callbacks), so
//     their bodies are analyzed with an empty held set.
//
// Methods whose name ends in "Locked" follow the repo convention that
// the caller holds every mutex field of the receiver; the walker seeds
// their entry state accordingly, and lockcheck separately enforces the
// caller side.

// lockRef is one held (or acquired) mutex: the field object identifies
// it globally, the path identifies the instance expression it was
// locked through in this function (e.g. "m.mu").
type lockRef struct {
	path   string
	node   string     // type-level identity, e.g. "repro/internal/datamgr.Manager.mu"
	field  *types.Var // mutex field or variable object (may be nil)
	rlock  bool       // held via RLock
	sticky bool       // deferred unlock or Locked-suffix seed
}

// lockState maps lock path → held lock.
type lockState map[string]*lockRef

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}

// intersect keeps locks held in both states. A lock read-held on either
// side is only read-held in the join.
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k, v := range a {
		w, ok := b[k]
		if !ok {
			continue
		}
		c := *v
		c.rlock = v.rlock || w.rlock
		c.sticky = v.sticky && w.sticky
		out[k] = &c
	}
	return out
}

// heldList returns the held locks in deterministic (path) order.
func heldList(st lockState) []*lockRef {
	out := make([]*lockRef, 0, len(st))
	for _, v := range st {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// lockHooks are the analyzer callbacks.
type lockHooks struct {
	// lock fires on each Lock/RLock with the state held *before* it.
	lock func(lk *lockRef, pos token.Pos, held []*lockRef)
	// doubleLock fires when a path-identical lock is re-acquired.
	doubleLock func(lk *lockRef, pos token.Pos)
	// call fires on each resolvable function/method call. base is the
	// receiver expression for method calls (nil otherwise); allocated
	// reports that base is a local constructed in this function.
	call func(callee *types.Func, base ast.Expr, allocated bool, pos token.Pos, held lockState)
	// access fires on each selector that resolves to a struct field.
	access func(sel *ast.SelectorExpr, base ast.Expr, field *types.Var, write bool, held lockState)
}

// lockWalker drives one function.
type lockWalker struct {
	p     *Pass
	hooks lockHooks
	// allocated holds local variables initialized from a composite
	// literal or new() in this function: values still private to the
	// function, whose fields need no lock before publication.
	allocated map[types.Object]bool
}

// walkLockFlow analyzes one declared function.
func walkLockFlow(p *Pass, fn *ast.FuncDecl, hooks lockHooks) {
	if fn.Body == nil {
		return
	}
	w := &lockWalker{p: p, hooks: hooks, allocated: collectAllocated(p, fn.Body)}
	st := make(lockState)
	seedLockedConvention(p, fn, st)
	w.stmts(fn.Body.List, st)
}

// seedLockedConvention pre-holds every mutex field of the receiver for
// methods following the *Locked naming convention.
func seedLockedConvention(p *Pass, fn *ast.FuncDecl, st lockState) {
	if !lockedSuffix(fn.Name.Name) || fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fn.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return
	}
	obj := p.Info.Defs[fn.Recv.List[0].Names[0]]
	if obj == nil {
		return
	}
	for _, mf := range mutexFieldsOf(obj.Type()) {
		key := recvName + "." + mf.Name()
		st[key] = &lockRef{path: key, node: typeNode(obj.Type()) + "." + mf.Name(), field: mf, sticky: true}
	}
}

// typeNode renders the package-qualified name of the named type behind
// t (dereferencing pointers), or "" if t is unnamed.
func typeNode(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func lockedSuffix(name string) bool {
	return len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked"
}

// mutexFieldsOf returns the sync.Mutex/RWMutex fields of t's underlying
// struct (dereferencing one pointer level).
func mutexFieldsOf(t types.Type) []*types.Var {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < s.NumFields(); i++ {
		if isMutexType(s.Field(i).Type()) {
			out = append(out, s.Field(i))
		}
	}
	return out
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectAllocated scans for `x := &T{...}`, `x := T{...}`, `x := new(T)`
// local definitions: values constructed (not obtained) here.
func collectAllocated(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isAllocation(as.Rhs[i]) {
				continue
			}
			if obj := p.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isAllocation(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// --- statement walk ---

func (w *lockWalker) stmts(list []ast.Stmt, st lockState) {
	for _, s := range list {
		w.stmt(s, st)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, st lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, st, false)
	case *ast.SendStmt:
		w.expr(s.Chan, st, false)
		w.expr(s.Value, st, false)
	case *ast.IncDecStmt:
		w.expr(s.X, st, true)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, st, false)
		}
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			w.expr(l, st, true)
		}
	case *ast.GoStmt:
		w.callAsync(s.Call, st)
	case *ast.DeferStmt:
		if lk, op := w.mutexOp(s.Call, st); op == opUnlock {
			if held, ok := st[lk.path]; ok {
				held.sticky = true
			}
			return
		}
		w.callAsync(s.Call, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st, false)
		thenSt := st.clone()
		w.stmts(s.Body.List, thenSt)
		elseSt := st.clone()
		if s.Else != nil {
			w.stmt(s.Else, elseSt)
		}
		thenTerm := terminates(s.Body)
		elseTerm := s.Else != nil && stmtTerminates(s.Else)
		switch {
		case thenTerm && elseTerm:
			// fallthrough unreachable; keep entry state
		case thenTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, thenSt)
		default:
			replace(st, intersect(thenSt, elseSt))
		}
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st, false)
		}
		body := st.clone()
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.expr(s.X, st, false)
		body := st.clone()
		w.stmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, st, false)
		}
		w.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		w.clauses(s.Body, st)
	case *ast.SelectStmt:
		w.clauses(s.Body, st)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st, false)
					}
				}
			}
		}
	}
}

// clauses walks each case body with a copy of the entry state and joins
// the non-terminating outcomes; the post-statement state is the entry
// state (a lock taken in one arm of a switch rarely survives the join
// meaningfully, and never does in this repo's style).
func (w *lockWalker) clauses(body *ast.BlockStmt, st lockState) {
	for _, c := range body.List {
		arm := st.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, arm, false)
			}
			w.stmts(c.Body, arm)
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, arm)
			}
			w.stmts(c.Body, arm)
		}
	}
}

func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// terminates reports whether the block always transfers control away.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}

// --- expression walk ---

func (w *lockWalker) expr(e ast.Expr, st lockState, write bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e, st)
	case *ast.SelectorExpr:
		if field := w.fieldOf(e); field != nil && w.hooks.access != nil && !w.isAllocatedBase(e.X) {
			w.hooks.access(e, ast.Unparen(e.X), field, write, st)
		}
		w.expr(e.X, st, false)
	case *ast.CompositeLit:
		// Keys of struct literals are field names, not accesses: a value
		// under construction is unpublished and needs no lock.
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, st, false)
				continue
			}
			w.expr(elt, st, false)
		}
	case *ast.FuncLit:
		// Runs later, possibly on another goroutine: empty held set.
		lw := &lockWalker{p: w.p, hooks: w.hooks, allocated: collectAllocated(w.p, e.Body)}
		lw.stmts(e.Body.List, make(lockState))
	case *ast.ParenExpr:
		w.expr(e.X, st, write)
	case *ast.StarExpr:
		w.expr(e.X, st, write)
	case *ast.UnaryExpr:
		w.expr(e.X, st, write || e.Op == token.AND)
	case *ast.BinaryExpr:
		w.expr(e.X, st, false)
		w.expr(e.Y, st, false)
	case *ast.IndexExpr:
		w.expr(e.X, st, write)
		w.expr(e.Index, st, false)
	case *ast.SliceExpr:
		w.expr(e.X, st, write)
		for _, x := range []ast.Expr{e.Low, e.High, e.Max} {
			if x != nil {
				w.expr(x, st, false)
			}
		}
	case *ast.TypeAssertExpr:
		w.expr(e.X, st, false)
	case *ast.KeyValueExpr:
		w.expr(e.Key, st, false)
		w.expr(e.Value, st, false)
	}
}

// callAsync handles go/defer calls: arguments are evaluated now (under
// the current state); a literal body runs later with nothing held.
func (w *lockWalker) callAsync(call *ast.CallExpr, st lockState) {
	for _, a := range call.Args {
		w.expr(a, st, false)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		lw := &lockWalker{p: w.p, hooks: w.hooks, allocated: collectAllocated(w.p, lit.Body)}
		lw.stmts(lit.Body.List, make(lockState))
		return
	}
	w.expr(call.Fun, st, false)
	if callee, base := w.calleeOf(call); callee != nil && w.hooks.call != nil {
		w.hooks.call(callee, base, w.isAllocatedBase(base), call.Pos(), st)
	}
}

func (w *lockWalker) call(call *ast.CallExpr, st lockState) {
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() { // conversion
		for _, a := range call.Args {
			w.expr(a, st, false)
		}
		return
	}
	if lk, op := w.mutexOp(call, st); op != opNone {
		switch op {
		case opLock, opRLock:
			if _, dup := st[lk.path]; dup {
				if w.hooks.doubleLock != nil {
					w.hooks.doubleLock(lk, call.Pos())
				}
			} else {
				if w.hooks.lock != nil {
					w.hooks.lock(lk, call.Pos(), heldList(st))
				}
				st[lk.path] = lk
			}
		case opUnlock:
			delete(st, lk.path)
		}
		return
	}
	w.expr(call.Fun, st, false)
	for _, a := range call.Args {
		w.expr(a, st, false)
	}
	if callee, base := w.calleeOf(call); callee != nil && w.hooks.call != nil {
		w.hooks.call(callee, base, w.isAllocatedBase(base), call.Pos(), st)
	}
}

// isAllocatedBase reports whether e is an identifier for a local the
// function itself constructed (still unpublished, needs no lock).
func (w *lockWalker) isAllocatedBase(e ast.Expr) bool {
	if e == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.p.Info.Uses[id]
	return obj != nil && w.allocated[obj]
}

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opRLock
	opUnlock
)

// mutexOp recognizes X.Lock / X.RLock / X.Unlock / X.RUnlock where X is
// a sync.Mutex/RWMutex expression, and walks X's base chain (reads).
func (w *lockWalker) mutexOp(call *ast.CallExpr, st lockState) (*lockRef, mutexOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	var kind mutexOpKind
	rlock := false
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind, rlock = opRLock, true
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return nil, opNone
	}
	mx := ast.Unparen(sel.X)
	if !isMutexType(w.p.Info.TypeOf(mx)) {
		return nil, opNone
	}
	var field *types.Var
	path := exprPath(mx)
	node := ""
	switch mx := mx.(type) {
	case *ast.SelectorExpr:
		field = w.fieldOf(mx)
		if owner := typeNode(w.p.Info.TypeOf(ast.Unparen(mx.X))); owner != "" {
			node = owner + "." + mx.Sel.Name
		}
		// The chain below the mutex is a read (e.g. s.pool in
		// s.pool.mu.Lock()).
		w.expr(mx.X, st, false)
	case *ast.Ident:
		if v, ok := w.p.Info.Uses[mx].(*types.Var); ok {
			field = v
			if v.Pkg() != nil {
				node = v.Pkg().Path() + "." + v.Name()
			}
		}
	}
	if node == "" {
		node = w.p.Pkg.Path() + "." + path
	}
	return &lockRef{path: path, node: node, field: field, rlock: rlock}, kind
}

// fieldOf resolves a selector to the struct field it reads, if any.
func (w *lockWalker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := w.p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// calleeOf resolves the called function or method, plus the receiver
// expression for method calls.
func (w *lockWalker) calleeOf(call *ast.CallExpr) (*types.Func, ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := w.p.Info.Uses[fun].(*types.Func)
		return f, nil
	case *ast.SelectorExpr:
		if s, ok := w.p.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			f, _ := s.Obj().(*types.Func)
			return f, ast.Unparen(fun.X)
		}
		// Package-qualified function.
		f, _ := w.p.Info.Uses[fun.Sel].(*types.Func)
		return f, nil
	}
	return nil, nil
}

// exprPath renders the instance path of an expression ("m.mu",
// "s.pool.mu"). Index expressions and calls render through
// types.ExprString for stability.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprPath(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprPath(e.X)
	default:
		return types.ExprString(e)
	}
}
