package lint

import (
	"go/ast"
	"go/types"
)

// Goleak requires every `go` statement to have a visible shutdown
// path. A goroutine passes if:
//
//   - its function-literal body receives from a channel (<-ch, a
//     select statement, or `for range ch`), so a close or send can
//     unblock and stop it;
//   - its body calls Done or Wait on a sync.WaitGroup, tying its
//     lifetime to a waiter;
//   - it is a named call taking a channel or context.Context argument,
//     delegating shutdown to the callee (e.g. `go s.RunLoop(stop)`).
//
// Anything else — fire-and-forget goroutines that outlive their
// spawner — must carry a justified lint.allow entry. Leaked goroutines
// in the daemon accumulate across scheduler rounds; in tests they make
// -race and goroutine dumps useless.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement needs a shutdown path: done/ctx channel, WaitGroup, or allowlist",
	Run:  runGoleak,
}

func runGoleak(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goHasShutdownPath(p, gs.Call) {
				p.Reportf(gs.Pos(), "goroutine has no shutdown path: select on a done/ctx channel, tie it to a sync.WaitGroup, or add a justified lint.allow entry")
			}
			return true
		})
	}
}

func goHasShutdownPath(p *Pass, call *ast.CallExpr) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyHasShutdownPath(p, lit.Body)
	}
	for _, arg := range call.Args {
		if isShutdownCarrier(p.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// bodyHasShutdownPath scans a goroutine body (not descending into
// nested go statements, which are separate goroutines with their own
// obligations) for a channel receive or a WaitGroup Done/Wait.
func bodyHasShutdownPath(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if _, ok := p.Info.TypeOf(n.X).Underlying().(*types.Chan); ok {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") &&
				isWaitGroup(p.Info.TypeOf(sel.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isShutdownCarrier reports whether t is a channel or context.Context:
// an argument the callee can use to observe shutdown.
func isShutdownCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
