// Package lint is SiloD's project-specific static-analysis suite. It
// enforces the invariants the compiler cannot: the simulator stays
// bit-deterministic (wallclock, rngpurity), throughput math does not
// mix physical units (unitsafety), metric names follow the conventions
// in docs/observability.md (metricnames), simulator math never relies
// on exact float equality (floatcmp), annotated shared state is only
// touched under its mutex (lockcheck), the global lock-acquisition
// graph stays acyclic (lockorder), goroutines have shutdown paths
// (goleak), and errors are never silently discarded nor daemon paths
// allowed to panic (errflow).
//
// The suite is self-contained: packages are parsed with go/parser and
// type-checked with go/types, resolving module-internal imports from
// source in dependency order and standard-library imports through
// go/importer's "source" importer. There is no dependency on
// golang.org/x/tools.
//
// Analyzers decide applicability by import-path *suffix* (for example
// "internal/sim" matches both "repro/internal/sim" and a fixture
// module's "badmod/internal/sim"), so the same rules run unchanged
// over testdata fixture modules.
//
// See docs/static-analysis.md for the rationale of each rule and the
// lint.allow escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// Trace is the call path behind a whole-program finding (detclose):
	// the root declaration, each call hop, and the effect's witness
	// site. The CLI prints it under -why.
	Trace []TraceEntry
}

// TraceEntry is one hop of a whole-program call path.
type TraceEntry struct {
	Call string // "root pkg.F", "calls pkg.G", or the effect witness
	Pos  token.Position
}

// String renders the finding in the canonical file:line:col format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named rule. Run inspects a type-checked package and
// reports findings through the pass. Global analyzers additionally set
// Finish, which the driver calls once after every package has been
// analyzed; per-package Run invocations communicate with Finish
// through Pass.Shared.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass)
	Finish func(*Pass) // optional whole-module pass; Files/Pkg/Info are nil

	// Merge folds one package's Shared state into the module-wide
	// Shared map. The parallel driver gives every package its own
	// Shared map (so Run never races) and calls Merge in package load
	// order before Finish; global analyzers must set it alongside
	// Finish, and its result must not depend on merge timing beyond
	// that order.
	Merge func(global, pkg map[string]any)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Shared is per-driver-run cross-package state, keyed by analyzer.
	// The same map is handed to every Run and Finish invocation of one
	// lint run, letting global analyzers (lockorder) accumulate a
	// module-wide view.
	Shared map[string]any

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportTrace records a finding carrying a whole-program call path.
func (p *Pass) reportTrace(pos token.Pos, trace []TraceEntry, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Trace:    trace,
	})
}

// All returns the full analyzer suite in reporting order. This slice is
// the single registry: -list, the README analyzer count, and the docs
// are all asserted against it, so adding an analyzer here is the whole
// registration step.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock, RNGPurity, UnitSafety, MetricNames, FloatCmp,
		Lockcheck, Lockorder, Goleak, Errflow,
		MapOrder, PureCheck, HotAlloc,
		DetClose, InputFlow, Exhaust,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pathEndsIn reports whether import path p ends with the given
// slash-separated suffix on a path-segment boundary.
func pathEndsIn(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// pathEndsInAny reports whether p ends with any of the suffixes.
func pathEndsInAny(p string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathEndsIn(p, s) {
			return true
		}
	}
	return false
}

// unitType reports whether t is a named type defined in an
// internal/unit package (the repo's physical-quantity types), and if
// so returns its name (Bytes, Bandwidth, Time, Duration).
func unitType(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if !pathEndsIn(obj.Pkg().Path(), "internal/unit") {
		return "", false
	}
	return obj.Name(), true
}

// pkgNameOf resolves an identifier to the package it names, if it is a
// package qualifier (e.g. the "time" in time.Now).
func pkgNameOf(info *types.Info, id *ast.Ident) (string, bool) {
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
