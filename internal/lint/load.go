package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked module package, ready for
// analysis.
type Package struct {
	Path       string // import path
	Dir        string // absolute directory
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader parses and type-checks the packages of one module using only
// the standard library. Module-internal imports are checked from
// source in dependency order; everything else (the standard library)
// goes through go/importer's "source" importer, which also works from
// source and therefore needs no pre-built export data.
//
// Test files (*_test.go) are excluded: the invariants the suite
// enforces protect simulation and production behavior, and tests
// legitimately use wall-clock timeouts and seeded math/rand stress
// input.
type Loader struct {
	Root   string // absolute module root
	Module string // module path from go.mod
	Fset   *token.FileSet

	std      types.ImporterFrom
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader builds a loader for the module rooted at root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := moduleName(abs)
	if err != nil {
		return nil, err
	}
	// The source importer type-checks std from source; cgo packages
	// must take their pure-Go fallback or the importer would try to
	// run cgo.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Root:     abs,
		Module:   mod,
		Fset:     fset,
		std:      std,
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}, nil
}

// moduleName extracts the module path from root/go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadAll walks the module tree and loads every package containing
// non-test Go files, in sorted import-path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(dirs))
	for dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		p, err := l.load(ip)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", ip, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// load parses and type-checks one module package by import path,
// loading its module-internal dependencies first.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	rel := strings.TrimPrefix(path, l.Module)
	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	pkg, err := l.checkDir(dir, path, true)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir type-checks a single directory outside the module tree
// (analyzer fixtures) under an assumed import path. The result is not
// cached, so fixture paths may shadow real ones.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.checkDir(abs, asPath, false)
}

// checkDir parses the non-test Go files of dir and type-checks them as
// import path ipath. When preloadDeps is set, module-internal imports
// are loaded (and cached) first.
func (l *Loader) checkDir(dir, ipath string, preloadDeps bool) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	if preloadDeps {
		for _, f := range files {
			for _, imp := range f.Imports {
				dep := strings.Trim(imp.Path.Value, `"`)
				if l.isModulePath(dep) {
					if _, err := l.load(dep); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	pkg := &Package{Path: ipath, Dir: dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(ipath, l.Fset, files, info) // errors collected via conf.Error
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// isModulePath reports whether dep is inside the loader's module.
func (l *Loader) isModulePath(dep string) bool {
	return dep == l.Module || strings.HasPrefix(dep, l.Module+"/")
}

// importPkg resolves one import during type checking: module-internal
// paths recurse into the loader, everything else goes to the source
// importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if l.isModulePath(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
