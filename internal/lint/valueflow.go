package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared intraprocedural value-flow walker behind the
// dataflow analyzers (maporder, purecheck). Where lockwalk.go tracks
// which mutexes are held at each program point, this walker tracks
// which values are *derived from map iteration order* and reports when
// such a value reaches an order-sensitive sink.
//
// Go randomizes map iteration order per process on purpose, so any
// result that depends on visit order — a float sum (addition is not
// associative), an unsorted slice that escapes, a line of output —
// differs between two runs of the same seed. That is exactly the bug
// class PR 5 fixed in the Gavel bisection's requiredIO, and the class
// this walker exists to keep extinct.
//
// The flow model:
//
//   - A `range` over a map-typed expression taints the loop's key and
//     value variables ("order-tainted": their *sequence* is random,
//     even though the set of values is not).
//   - Assignments inside the loop propagate taint: a variable assigned
//     an expression that mentions a tainted object becomes tainted.
//     Propagation is source-order within the loop body, which matches
//     how straight-line accumulator code is actually written.
//   - Sinks fire only for statements inside the loop (or, for the
//     append sink, when the collected slice is never sorted afterwards
//     in the enclosing function — the collect-then-sort idiom is the
//     recognized sanitizer).
//
// Sinks (see docs/static-analysis.md for the full table):
//
//   float accumulation   acc op= tainted, acc declared outside the loop
//                        and float-typed (incl. unit.Bytes/Bandwidth)
//   append escape        s = append(s, tainted...) with s declared
//                        outside the loop and never sorted in the
//                        function
//   emission             fmt.Print*/Fprint*, encoding Encode, or a
//                        Reportf-style method receiving a tainted value
//   metric interning     Registry.Counter/Gauge/Histogram called in the
//                        loop (series creation order becomes random)
//
// Integer and boolean accumulation is order-independent and never
// flagged; so are map writes, min/max tracking via plain assignment,
// and iteration over an already-sorted key slice (a slice range is
// simply not a source).

// taintSet tracks the objects whose values are order-tainted.
type taintSet map[types.Object]bool

// checkMapOrderFlow walks one function body and reports every
// order-sensitive sink reached by map-iteration-derived values.
// Nested function literals are skipped: callers analyze each function
// body separately, as rngpurity does.
func checkMapOrderFlow(p *Pass, fnBody *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != fnBody {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapRange(p, rs) {
			return true
		}
		taint := make(taintSet)
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := p.Info.Defs[id]; obj != nil {
					taint[obj] = true
				} else if obj := p.Info.Uses[id]; obj != nil {
					taint[obj] = true
				}
			}
		}
		w := &flowWalker{p: p, loop: rs, fnBody: fnBody, taint: taint, report: report}
		w.walk(rs.Body)
		return true
	})
}

// isMapRange reports whether rs ranges over a map-typed expression
// (including a call returning a map, e.g. a Keys-style helper that
// forwards iteration order).
func isMapRange(p *Pass, rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// flowWalker carries the state of one map-range loop's analysis.
type flowWalker struct {
	p      *Pass
	loop   *ast.RangeStmt
	fnBody *ast.BlockStmt
	taint  taintSet
	report func(pos token.Pos, format string, args ...any)
}

// walk visits the loop body in source order, propagating taint through
// assignments and firing sinks.
func (w *flowWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function body; analyzed on its own
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.RangeStmt:
			// A nested range over a tainted collection forwards taint to
			// its loop variables (e.g. for _, x := range taintedSlice).
			if n != w.loop && w.mentionsTaint(n.X) {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := w.p.Info.Defs[id]; obj != nil {
							w.taint[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// assign handles taint propagation and the accumulation/append sinks.
func (w *flowWalker) assign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if w.mentionsTaint(as.Rhs[0]) {
			// m[k] op= v with a tainted index updates a distinct slot
			// per iteration — the *set* of final values is deterministic
			// even though the visit order is not.
			if w.lhsIndexTainted(lhs) {
				return
			}
			if obj := w.objOf(rootIdent(lhs)); obj != nil {
				w.taint[obj] = true
			}
			if w.isFloat(lhs) && w.declaredOutsideLoop(rootIdent(lhs)) {
				w.report(as.Pos(), "float accumulation into %s in map iteration order: float addition is not associative, so the sum depends on per-process randomness; iterate sorted keys instead", exprPath(lhs))
			}
		}
		return
	case token.DEFINE, token.ASSIGN:
	default:
		return
	}
	// x = x + tainted is accumulation spelled out.
	if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok &&
			(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) {
			lhsObj := w.objOf(rootIdent(as.Lhs[0]))
			if lhsObj != nil && (w.objOf(rootIdent(bin.X)) == lhsObj || w.objOf(rootIdent(bin.Y)) == lhsObj) &&
				w.mentionsTaint(as.Rhs[0]) && !w.lhsIndexTainted(as.Lhs[0]) &&
				w.isFloat(as.Lhs[0]) && w.declaredOutsideLoop(rootIdent(as.Lhs[0])) {
				w.report(as.Pos(), "float accumulation into %s in map iteration order: float addition is not associative, so the sum depends on per-process randomness; iterate sorted keys instead", exprPath(as.Lhs[0]))
			}
		}
	}
	// Append sink and taint propagation.
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.isBuiltinAppend(call) {
			tainted := false
			for _, a := range call.Args[1:] {
				if w.mentionsTaint(a) {
					tainted = true
					break
				}
			}
			if tainted {
				id := rootIdent(lhs)
				obj := w.objOf(id)
				if obj != nil {
					w.taint[obj] = true
					if w.declaredOutsideLoop(id) && !sortedInFunc(w.p, w.fnBody, obj) {
						w.report(as.Pos(), "appending map-iteration-derived values to %q without sorting it afterwards: the slice order is randomized per process; sort before it escapes", obj.Name())
					}
				}
			}
			continue
		}
		if w.mentionsTaint(rhs) {
			if obj := w.objOf(rootIdent(lhs)); obj != nil {
				w.taint[obj] = true
			}
		}
	}
}

// call fires the emission and metric-interning sinks.
func (w *flowWalker) call(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	anyTaintedArg := false
	for _, a := range call.Args {
		if w.mentionsTaint(a) {
			anyTaintedArg = true
			break
		}
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if path, isPkg := pkgNameOf(w.p.Info, id); isPkg && path == "fmt" && anyTaintedArg &&
			(hasPrefix(name, "Print") || hasPrefix(name, "Fprint")) {
			w.report(call.Pos(), "map-iteration-derived value reaches fmt.%s: output line order depends on per-process randomness; collect, sort, then emit", name)
			return
		}
	}
	if anyTaintedArg && (name == "Reportf" || name == "Encode") {
		w.report(call.Pos(), "map-iteration-derived value reaches %s in map iteration order: emission order depends on per-process randomness; collect, sort, then emit", name)
		return
	}
	if name == "Counter" || name == "Gauge" || name == "Histogram" {
		if recv := w.p.Info.TypeOf(sel.X); recv != nil && isMetricsRegistry(recv) {
			w.report(call.Pos(), "interning a metric series (Registry.%s) inside a map-range loop: series creation order becomes random per process; intern eagerly outside the loop (the PR-4 convention)", name)
		}
	}
}

// lhsIndexTainted reports whether lhs indexes a map or slice by a
// tainted expression — a per-key slot update, not an accumulator.
func (w *flowWalker) lhsIndexTainted(lhs ast.Expr) bool {
	found := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		if ix, ok := n.(*ast.IndexExpr); ok && w.mentionsTaint(ix.Index) {
			found = true
		}
		return !found
	})
	return found
}

// mentionsTaint reports whether any identifier in e resolves to a
// tainted object.
func (w *flowWalker) mentionsTaint(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.p.Info.Uses[id]; obj != nil && w.taint[obj] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// isFloat reports whether e's type has a floating-point underlying
// type (covering unit.Bytes, unit.Bandwidth, and friends).
func (w *flowWalker) isFloat(e ast.Expr) bool {
	t := w.p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutsideLoop reports whether id's object is declared before
// the loop body: an accumulator that survives the loop, as opposed to
// a per-iteration temporary.
func (w *flowWalker) declaredOutsideLoop(id *ast.Ident) bool {
	if id == nil {
		return false
	}
	obj := w.objOf(id)
	return obj != nil && obj.Pos() < w.loop.Body.Pos()
}

func (w *flowWalker) objOf(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := w.p.Info.Uses[id]; obj != nil {
		return obj
	}
	return w.p.Info.Defs[id]
}

func (w *flowWalker) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return false
	}
	_, isBuiltin := w.p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// rootIdent returns the base identifier of an lvalue chain
// (x, x.f, x[i].g → x), or nil for unrooted expressions.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMetricsRegistry reports whether t is internal/metrics.Registry
// (through one pointer level).
func isMetricsRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == "Registry" && obj.Pkg() != nil &&
		pathEndsIn(obj.Pkg().Path(), "internal/metrics")
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
