package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder builds a global lock-acquisition graph and rejects cycles.
// Locks are identified at the type level ("pkg.Type.field"), so the
// graph says "some Manager.mu is held while some TokenBucket.mu is
// acquired". Run records, per function, every acquisition (with the
// locks held at that point) and every resolvable call (with the locks
// held at the call site); Finish closes the call graph — resolving
// interface-method calls against every implementation seen anywhere in
// the module — propagates transitive acquisitions, and reports every
// edge that participates in a cycle. A self-edge (acquiring a lock
// type while an instance of it is already held, possibly through a
// call chain) counts as a cycle: with a single instance it deadlocks,
// and with two instances the order between them is unconstrained.
//
// Approximations, on the safe-for-this-repo side: calls through plain
// function values are not resolved, and two instances of the same
// type-level lock are not distinguished.
var Lockorder = &Analyzer{
	Name:   "lockorder",
	Doc:    "the cross-package lock-acquisition graph must be acyclic",
	Run:    runLockorder,
	Merge:  mergeLockorder,
	Finish: finishLockorder,
}

const lockorderKey = "lockorder"

type loAcquire struct {
	node string
	held []string
	pos  token.Pos
}

type loCall struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

type loFunc struct {
	fn       *types.Func
	acquires []loAcquire
	calls    []loCall

	acquired map[string]bool // transitive closure, built in Finish
	visiting bool
	closed   bool
}

// loState is the cross-package record, shared through Pass.Shared.
type loState struct {
	funcs map[*types.Func]*loFunc
	order []*loFunc // deterministic iteration order
}

func lockorderState(p *Pass) *loState {
	return loStateIn(p.Shared)
}

func loStateIn(shared map[string]any) *loState {
	if st, ok := shared[lockorderKey].(*loState); ok {
		return st
	}
	st := &loState{funcs: make(map[*types.Func]*loFunc)}
	shared[lockorderKey] = st
	return st
}

func mergeLockorder(global, pkg map[string]any) {
	src, ok := pkg[lockorderKey].(*loState)
	if !ok {
		return
	}
	dst := loStateIn(global)
	for fn, rec := range src.funcs {
		dst.funcs[fn] = rec
	}
	dst.order = append(dst.order, src.order...)
}

func runLockorder(p *Pass) {
	st := lockorderState(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			rec := &loFunc{fn: fn}
			st.funcs[fn] = rec
			st.order = append(st.order, rec)
			walkLockFlow(p, fd, lockHooks{
				lock: func(lk *lockRef, pos token.Pos, held []*lockRef) {
					rec.acquires = append(rec.acquires, loAcquire{node: lk.node, held: nodesOf(held), pos: pos})
				},
				call: func(callee *types.Func, base ast.Expr, allocated bool, pos token.Pos, held lockState) {
					rec.calls = append(rec.calls, loCall{callee: callee, held: nodesOf(heldList(held)), pos: pos})
				},
			})
		}
	}
}

func nodesOf(held []*lockRef) []string {
	var out []string
	for _, lk := range held {
		if lk.node != "" {
			out = append(out, lk.node)
		}
	}
	return out
}

type loEdge struct {
	from, to string
}

func finishLockorder(p *Pass) {
	st, ok := p.Shared[lockorderKey].(*loState)
	if !ok {
		return
	}
	for _, rec := range st.order {
		st.close(rec)
	}

	// Collect edges held → acquired, keeping the first position seen
	// (iteration order is deterministic: package load order, then
	// source order within each function).
	edgePos := make(map[loEdge]token.Pos)
	var edges []loEdge
	addEdge := func(from, to string, pos token.Pos) {
		e := loEdge{from, to}
		if _, seen := edgePos[e]; !seen {
			edgePos[e] = pos
			edges = append(edges, e)
		}
	}
	for _, rec := range st.order {
		for _, a := range rec.acquires {
			for _, h := range a.held {
				addEdge(h, a.node, a.pos)
			}
		}
		for _, c := range rec.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, callee := range st.resolve(c.callee) {
				for to := range callee.acquired {
					for _, h := range c.held {
						addEdge(h, to, c.pos)
					}
				}
			}
		}
	}

	scc := stronglyConnected(edges)
	for _, e := range edges {
		inCycle := e.from == e.to || (scc[e.from] != 0 && scc[e.from] == scc[e.to])
		if !inCycle {
			continue
		}
		if e.from == e.to {
			p.Reportf(edgePos[e], "lock order cycle: %s acquired while an instance of %s is already held (re-entry through this path deadlocks)",
				shortNode(e.to), shortNode(e.from))
			continue
		}
		p.Reportf(edgePos[e], "lock order cycle: %s acquired while %s is held, but another path acquires them in the opposite order (cycle: %s)",
			shortNode(e.to), shortNode(e.from), cycleMembers(scc, scc[e.from]))
	}
}

// close computes rec's transitive acquired set, resolving calls
// through the module-wide function index; recursion is cut at the
// back-edge (the partial set is sound for cycle detection).
func (st *loState) close(rec *loFunc) map[string]bool {
	if rec.closed || rec.visiting {
		return rec.acquired
	}
	rec.visiting = true
	rec.acquired = make(map[string]bool)
	for _, a := range rec.acquires {
		rec.acquired[a.node] = true
	}
	for _, c := range rec.calls {
		for _, callee := range st.resolve(c.callee) {
			for n := range st.close(callee) {
				rec.acquired[n] = true
			}
		}
	}
	rec.visiting = false
	rec.closed = true
	return rec.acquired
}

// resolve maps a callee to the recorded function bodies it may run:
// itself if concrete, or every module method implementing it if it is
// an interface method.
func (st *loState) resolve(callee *types.Func) []*loFunc {
	if rec, ok := st.funcs[callee]; ok {
		return []*loFunc{rec}
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*loFunc
	for _, rec := range st.order {
		rsig, ok := rec.fn.Type().(*types.Signature)
		if !ok || rsig.Recv() == nil || rec.fn.Name() != callee.Name() {
			continue
		}
		if types.Implements(rsig.Recv().Type(), iface) {
			out = append(out, rec)
		}
	}
	return out
}

// stronglyConnected returns a component id per node; nodes alone in
// their component get id 0 (no cycle through them) unless they have a
// self-edge, which the caller checks directly.
func stronglyConnected(edges []loEdge) map[string]int {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	// Tarjan, iterative over a small graph via recursion depth bound
	// by node count (fine for a lock graph).
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 1, 1

	var strong func(v string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				for _, m := range members {
					comp[m] = compID
				}
				compID++
			}
		}
	}
	for _, n := range order {
		if index[n] == 0 {
			strong(n)
		}
	}
	return comp
}

// cycleMembers renders the sorted member list of one component.
func cycleMembers(scc map[string]int, id int) string {
	var members []string
	for n, c := range scc {
		if c == id {
			members = append(members, shortNode(n))
		}
	}
	sort.Strings(members)
	return strings.Join(members, " ↔ ")
}

// shortNode trims the module path prefix off a lock node for readable
// diagnostics: "repro/internal/datamgr.Manager.mu" → "datamgr.Manager.mu".
func shortNode(n string) string {
	if i := strings.LastIndex(n, "/"); i >= 0 {
		return n[i+1:]
	}
	return n
}
