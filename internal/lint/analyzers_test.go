package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one loader across the package's tests: warming
// the source importer (which type-checks the standard library from
// source) is the slow part, and the module packages it loads are
// reused by every fixture.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// want is one golden expectation parsed from a fixture comment of the
// form "// want" followed by a backquoted regexp, placed on the line
// the diagnostic must appear on.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// collectWants extracts the golden expectations from fixture comments.
func collectWants(t *testing.T, l *Loader, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := l.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// runFixture loads a testdata/src fixture dir under an assumed import
// path and runs one analyzer over it.
func runFixture(t *testing.T, an *Analyzer, dir, asPath string) ([]Diagnostic, *Package) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", dir, pkg.TypeErrors)
	}
	pass := &Pass{
		Analyzer: an,
		Path:     asPath,
		Fset:     l.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Shared:   make(map[string]any),
	}
	an.Run(pass)
	if an.Finish != nil {
		fin := &Pass{Analyzer: an, Fset: l.Fset, Shared: pass.Shared}
		an.Finish(fin)
		pass.diags = append(pass.diags, fin.diags...)
	}
	return pass.diags, pkg
}

// checkWants matches diagnostics against golden expectations
// one-to-one by (file, line, regexp).
func checkWants(t *testing.T, diags []Diagnostic, wants []*want) {
	t.Helper()
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestAnalyzerFixtures runs every analyzer over its fixture package
// (as a restricted path where applicability matters) and checks the
// `// want` golden expectations: each fixture demonstrates at least
// one caught violation and one accepted idiom.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
		asPath   string
	}{
		{Wallclock, "wallclock", "fixture/internal/sim"},
		{RNGPurity, "rngpurity", "fixture/internal/workload"},
		{UnitSafety, "unitsafety", "fixture/internal/policy"},
		{MetricNames, "metricnames", "fixture/internal/policy"},
		{FloatCmp, "floatcmp", "fixture/internal/estimator"},
		{Lockcheck, "lockcheck", "fixture/internal/datamgr"},
		{Lockorder, "lockorder", "fixture/internal/lockorder"},
		{Goleak, "goleak", "fixture/internal/testbed"},
		{Errflow, "errflow", "fixture/internal/metrics"},
		{MapOrder, "maporder", "fixture/internal/sim"},
		{PureCheck, "purecheck", "fixture/internal/policy"},
		{HotAlloc, "hotalloc", "fixture/internal/eventq"},
		{DetClose, "detclose", "fixture/internal/sim"},
		{InputFlow, "inputflow", "fixture/internal/controlplane"},
		{Exhaust, "exhaust", "fixture/internal/policy"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			diags, pkg := runFixture(t, tc.analyzer, tc.dir, tc.asPath)
			wants := collectWants(t, testLoader(t), pkg)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want expectations", tc.dir)
			}
			checkWants(t, diags, wants)
		})
	}
}

// TestAnalyzerScoping pins the applicability rules: path-scoped
// analyzers go quiet outside their packages, and simrng may import
// math/rand.
func TestAnalyzerScoping(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
		dir      string
		asPath   string
	}{
		{"wallclock-outside-virtual-time", Wallclock, "wallclock", "fixture/internal/workload"},
		{"floatcmp-outside-numerics", FloatCmp, "floatcmp", "fixture/internal/workload"},
		{"rngpurity-inside-simrng", RNGPurity, "rngpurity_simrng", "fixture/internal/simrng"},
		{"unitsafety-inside-unit", UnitSafety, "unitsafety", "fixture/internal/unit"},
		{"errflow-panic-outside-daemon", Errflow, "errflow_panic", "fixture/internal/sim"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if diags, _ := runFixture(t, tc.analyzer, tc.dir, tc.asPath); len(diags) != 0 {
				t.Errorf("want no diagnostics for %s as %s, got:\n%s",
					tc.dir, tc.asPath, formatDiags(diags))
			}
		})
	}
}

// TestRNGPurityOutsideSimrng: the same file that is exempt under
// internal/simrng is a violation anywhere else.
func TestRNGPurityOutsideSimrng(t *testing.T) {
	diags, _ := runFixture(t, RNGPurity, "rngpurity_simrng", "fixture/internal/workload")
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "math/rand") {
		t.Errorf("want exactly the math/rand import finding, got:\n%s", formatDiags(diags))
	}
}

// TestErrflowPanicInsideDaemon: the panic fixture that is accepted
// under fixture/internal/sim is a finding on a daemon-reachable path.
func TestErrflowPanicInsideDaemon(t *testing.T) {
	diags, _ := runFixture(t, Errflow, "errflow_panic", "fixture/internal/cache")
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "panic in daemon-reachable package") {
		t.Errorf("want exactly the panic finding, got:\n%s", formatDiags(diags))
	}
}

func formatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
