package lint

import (
	"go/token"
	"strings"
	"testing"
)

func diagAt(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func TestParseAllow(t *testing.T) {
	src := `
# audited exceptions
floatcmp internal/sim/batch.go float equality
* internal/legacy/...
wallclock cmd/*/main.go:42
`
	al, err := ParseAllow(strings.NewReader(src), "lint.allow")
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Rules) != 3 {
		t.Fatalf("want 3 rules, got %d: %+v", len(al.Rules), al.Rules)
	}
	r := al.Rules[2]
	if r.Analyzer != "wallclock" || r.Path != "cmd/*/main.go" || r.Line != 42 {
		t.Errorf("line-pinned rule parsed wrong: %+v", r)
	}
}

func TestParseAllowErrors(t *testing.T) {
	cases := []string{
		"floatcmp",                      // missing path
		"nosuch internal/sim/batch.go",  // unknown analyzer
		"floatcmp internal/sim/a.go:0",  // bad line
		"floatcmp internal/sim/a.go:x9", // non-numeric line
	}
	for _, src := range cases {
		if _, err := ParseAllow(strings.NewReader(src), "lint.allow"); err == nil {
			t.Errorf("ParseAllow(%q): want error, got nil", src)
		}
	}
}

func TestAllowsMatching(t *testing.T) {
	src := `
floatcmp internal/sim/batch.go float equality
* internal/legacy/...
wallclock cmd/*/main.go:42
`
	al, err := ParseAllow(strings.NewReader(src), "lint.allow")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{diagAt("floatcmp", "internal/sim/batch.go", 7, "float equality (!= on unit.Bytes)"), true},
		{diagAt("floatcmp", "internal/sim/batch.go", 7, "some other message"), false}, // substring mismatch
		{diagAt("wallclock", "internal/sim/batch.go", 7, "float equality"), false},    // analyzer mismatch
		{diagAt("rngpurity", "internal/legacy/old.go", 3, "anything"), true},          // wildcard subtree
		{diagAt("rngpurity", "internal/legacyish/old.go", 3, "anything"), false},      // subtree is segment-exact
		{diagAt("wallclock", "cmd/silodd/main.go", 42, "time.Now"), true},             // glob + pinned line
		{diagAt("wallclock", "cmd/silodd/main.go", 43, "time.Now"), false},            // wrong line
	}
	for _, tc := range cases {
		if got := al.Allows(tc.d); got != tc.want {
			t.Errorf("Allows(%s) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestAllowUnused(t *testing.T) {
	al, err := ParseAllow(strings.NewReader("floatcmp internal/sim/batch.go\nwallclock internal/sim/never.go\n"), "lint.allow")
	if err != nil {
		t.Fatal(err)
	}
	al.Allows(diagAt("floatcmp", "internal/sim/batch.go", 7, "x"))
	unused := al.Unused()
	if len(unused) != 1 || unused[0].Path != "internal/sim/never.go" {
		t.Errorf("Unused() = %+v, want just the never-matched rule", unused)
	}
}

func TestParseAllowJustified(t *testing.T) {
	src := `
# this comment covers the whole block below
floatcmp internal/sim/batch.go
* internal/legacy/...

wallclock cmd/silodd/main.go
# comment after a blank line starts a new block
floatcmp internal/sim/other.go
`
	al, err := ParseAllow(strings.NewReader(src), "lint.allow")
	if err != nil {
		t.Fatal(err)
	}
	wantJustified := []bool{true, true, false, true}
	if len(al.Rules) != len(wantJustified) {
		t.Fatalf("want %d rules, got %+v", len(wantJustified), al.Rules)
	}
	for i, want := range wantJustified {
		if al.Rules[i].Justified != want {
			t.Errorf("rule %d (%s): Justified = %v, want %v", i, al.Rules[i].Path, al.Rules[i].Justified, want)
		}
	}
	bad := al.Unjustified()
	if len(bad) != 1 || bad[0].Path != "cmd/silodd/main.go" {
		t.Errorf("Unjustified() = %+v, want just the uncommented rule", bad)
	}
}

func TestParseAllowFileMissing(t *testing.T) {
	al, err := ParseAllowFile("testdata/does-not-exist.allow")
	if err != nil {
		t.Fatalf("missing allow file should not error: %v", err)
	}
	if len(al.Rules) != 0 {
		t.Errorf("missing allow file should yield no rules, got %+v", al.Rules)
	}
}
