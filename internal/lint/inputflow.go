package lint

import "fmt"

// InputFlow is the untrusted-input taint analyzer: struct types
// annotated // silod:untrusted (the JSON-decoded control-plane request
// types — SubmitJob, heartbeat, progress) are treated as attacker
// influenced, and any field that flows into an allocation size, a
// slice index, a loop bound, or quota arithmetic without first passing
// a validation step is a finding. This is the robustness floor for
// ROADMAP item 4's public-facing serving mode: a daemon that sizes a
// buffer or spins a loop off a raw request field is one crafted POST
// away from an out-of-memory or an index panic.
//
// Two validation idioms are recognized (see summary.go for the flow
// model):
//
//   - the inline guard: an if statement that mentions the field and
//     returns/branches out sanitizes that (value, field) pair from the
//     guard onward — the shape Scheduler.Submit already uses;
//   - the factored validator: passing the whole request (value or
//     pointer, argument or receiver) to a function annotated
//     // silod:validator sanitizes every field below the call site.
//
// Flows are tracked across function boundaries through the call-graph
// engine's parameter→sink summaries, so handing req.N to a helper that
// makes a slice of that length is found even though the make is two
// calls away. A parameter that is itself of an untrusted type reports
// at its own read sites instead of through callers' summaries — one
// finding per violation, at the most precise position.
var InputFlow = &Analyzer{
	Name: "inputflow",
	Doc: "fields of // silod:untrusted request types must not reach " +
		"allocation sizes, slice indexing, loop bounds, or quota " +
		"arithmetic without an inline guard or a // silod:validator",
	Run:    runInputFlow,
	Merge:  mergeCallGraph,
	Finish: finishInputFlow,
}

func runInputFlow(p *Pass) {
	f := ensureCGFragment(p)
	for _, ba := range f.bad {
		if ba.owner == "inputflow" {
			p.Reportf(ba.pos, "%s", ba.msg)
		}
	}
}

func finishInputFlow(p *Pass) {
	st, ok := p.Shared[callgraphKey].(*cgState)
	if !ok {
		return
	}
	st.finalize()
	for _, n := range st.nodes {
		for i := range n.info.flows {
			f := &n.info.flows[i]
			if f.utype == nil || !st.untrusted[f.utype] {
				continue
			}
			if st.gateSuppressed(n.info, f) {
				continue
			}
			mask := st.flowSinks(f)
			if mask == 0 {
				continue
			}
			via := ""
			switch {
			case f.callee != nil:
				via = fmt.Sprintf(" via %s", f.callee.FullName())
			case f.iface != nil:
				via = fmt.Sprintf(" via %s.%s", f.iface.Name(), f.method)
			}
			field := f.field
			if field == "" {
				field = "(whole value)"
			}
			p.Reportf(f.pos,
				"untrusted %s.%s flows into %s%s without validation: add an early-return guard on the field or pass the request through a // silod:validator first",
				f.utype.Name(), field, mask, via)
		}
	}
}
