package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the per-package call-graph fragments consumed by
// callgraph.go: one fnInfo per declared function, recording direct
// effects (with a witness site for -why traces), outgoing call edges,
// and taint flow observations for inputflow. All AST work happens here,
// inside the parallel per-package Run phase; finalize only joins
// fragments, so the engine adds no sequential bottleneck to the driver.
//
// Annotation grammar (doc comments; see docs/static-analysis.md):
//
//	// silod:sim-root               — detclose proves no gated effect
//	//                                is transitively reachable
//	// silod:inject eff[,eff...]    — the named effects stop propagating
//	//                                past this function: it is an
//	//                                audited injection boundary
//	// silod:validator              — passing a request value here
//	//                                sanitizes all its fields below the
//	//                                call site
//	// silod:untrusted              — (on a struct type) values decode
//	//                                from external input; field reads
//	//                                are taint sources
//
// Taint model: every parameter and every local of a module-declared
// named struct type is tracked. Reading a field of a tracked struct
// value yields a provenance (root object, field path); assignments
// propagate provenances in source order. A flow into a sink (make size,
// slice index, loop bound, compound assignment into a struct field) or
// a call argument is recorded unless an earlier if-guard over the same
// (root, field) returns/branches out — the repo's inline-validation
// idiom — or the root already passed through a silod:validator.

// cgProv is one provenance a tracked value carries.
type cgProv struct {
	param int             // parameter index, -1 if not parameter-derived
	utype *types.TypeName // named struct type of the origin, nil otherwise
	field string          // field path read off the origin ("" = whole value)
	root  types.Object    // origin object, the sanitization key
}

type provKey struct {
	root  types.Object
	field string
}

// parseCGFuncDoc extracts the call-graph annotations from a function
// doc comment. Grammar errors come back as (owner, message) pairs so
// the analyzer that owns the annotation reports them.
func parseCGFuncDoc(doc *ast.CommentGroup) (root bool, inject effect, validator bool, bad []cgBadAnn) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		switch {
		case text == "silod:sim-root":
			root = true
		case strings.HasPrefix(text, "silod:sim-root"):
			bad = append(bad, cgBadAnn{owner: "detclose", pos: c.Pos(),
				msg: "silod:sim-root takes no operands (grammar: // silod:sim-root)"})
		case strings.HasPrefix(text, "silod:inject"):
			ops := strings.TrimSpace(strings.TrimPrefix(text, "silod:inject"))
			if ops == "" {
				bad = append(bad, cgBadAnn{owner: "detclose", pos: c.Pos(),
					msg: fmt.Sprintf("silod:inject needs at least one effect (grammar: // silod:inject %s)", strings.Join(effectNames[:], "|"))})
				continue
			}
			for _, op := range strings.Split(ops, ",") {
				e, ok := effectByName(strings.TrimSpace(op))
				if !ok {
					bad = append(bad, cgBadAnn{owner: "detclose", pos: c.Pos(),
						msg: fmt.Sprintf("silod:inject: unknown effect %q (one of %s)", strings.TrimSpace(op), strings.Join(effectNames[:], ", "))})
					continue
				}
				inject |= e
			}
		case text == "silod:validator":
			validator = true
		case strings.HasPrefix(text, "silod:validator"):
			bad = append(bad, cgBadAnn{owner: "inputflow", pos: c.Pos(),
				msg: "silod:validator takes no operands (grammar: // silod:validator)"})
		}
	}
	return
}

// typeSpecDoc returns the doc comment of a type spec, falling back to
// the enclosing single-spec GenDecl's doc (the common `type T struct`
// spelling).
func typeSpecDoc(decl *ast.GenDecl, spec *ast.TypeSpec) *ast.CommentGroup {
	if spec.Doc != nil {
		return spec.Doc
	}
	if len(decl.Specs) == 1 {
		return decl.Doc
	}
	return nil
}

// docHasMarker reports whether a doc comment contains the given
// standalone silod: marker line.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}

// buildCGFragment summarizes one package. Called once per package by
// whichever graph-backed analyzer runs first (via ensureCGFragment).
func buildCGFragment(p *Pass) *cgFragment {
	f := &cgFragment{path: p.Path, validators: make(map[*types.Func]bool)}
	if p.Pkg != nil {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); !isIface {
				f.concretes = append(f.concretes, tn)
			}
		}
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !docHasMarker(typeSpecDoc(d, ts), "silod:untrusted") {
						continue
					}
					tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
						f.bad = append(f.bad, cgBadAnn{owner: "inputflow", pos: ts.Pos(),
							msg: fmt.Sprintf("silod:untrusted applies to struct types; %s is not a struct", ts.Name.Name)})
						continue
					}
					f.untrusted = append(f.untrusted, tn)
				}
			case *ast.FuncDecl:
				fn, ok := p.Info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				root, inject, validator, bad := parseCGFuncDoc(d.Doc)
				for _, b := range bad {
					b.pos = d.Pos() // report at the declaration, like purecheck
					f.bad = append(f.bad, b)
				}
				if validator {
					f.validators[fn] = true
				}
				fi := &fnInfo{
					fn:      fn,
					pos:     d.Pos(),
					root:    root,
					inject:  inject,
					witness: make(map[effect]cgWitness),
				}
				if d.Body != nil {
					w := &sumWalker{
						p:     p,
						fi:    fi,
						body:  d.Body,
						taint: make(map[types.Object][]cgProv),
						san:   make(map[provKey]bool),
					}
					w.seedParams(d)
					w.collectCalledIdents(d.Body)
					w.walk(d.Body)
				}
				f.fns = append(f.fns, fi)
			}
		}
	}
	return f
}

// sumWalker carries the state of one function's summary walk.
type sumWalker struct {
	p      *Pass
	fi     *fnInfo
	body   *ast.BlockStmt // the declaration's body, for the sort-after-loop probe
	taint  map[types.Object][]cgProv
	san    map[provKey]bool
	called map[*ast.Ident]bool // idents that are the Fun of a call
}

// addProv taints obj with pv unless an identical provenance is already
// recorded (keeps repeated assignments from duplicating flow records).
func (w *sumWalker) addProv(obj types.Object, pv cgProv) {
	for _, have := range w.taint[obj] {
		if have == pv {
			return
		}
	}
	w.taint[obj] = append(w.taint[obj], pv)
}

// seedParams taints every declared parameter.
func (w *sumWalker) seedParams(fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++ // unnamed parameter still occupies a position
			continue
		}
		for _, name := range field.Names {
			if obj := w.p.Info.Defs[name]; obj != nil {
				w.addProv(obj, cgProv{
					param: idx,
					utype: namedStructOf(obj.Type()),
					root:  obj,
				})
			}
			idx++
		}
	}
}

// collectCalledIdents marks the identifiers that appear as the called
// operand of a CallExpr, so bare *types.Func references elsewhere are
// recognized as address-taken edges.
func (w *sumWalker) collectCalledIdents(body *ast.BlockStmt) {
	w.called = make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			w.called[fun] = true
		case *ast.SelectorExpr:
			w.called[fun.Sel] = true
		}
		return true
	})
}

// namedStructOf returns the TypeName of a named struct type (through
// one pointer level), or nil.
func namedStructOf(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return n.Obj()
}

// walk visits the body in source order (function literals included:
// their effects and flows belong to the enclosing declaration).
func (w *sumWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.addEffect(effGoroutine, "go statement", n.Pos())
		case *ast.DeclStmt:
			w.declare(n)
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.IncDecStmt:
			w.checkGlobalWrite(n.X, n.Pos())
		case *ast.IfStmt:
			w.guard(n)
		case *ast.ForStmt:
			if n.Cond != nil {
				w.recordSinks(w.mentions(n.Cond), sinkLoopBound, n.Cond.Pos())
			}
		case *ast.RangeStmt:
			w.rangeStmt(n)
		case *ast.IndexExpr:
			w.index(n)
		case *ast.CallExpr:
			w.call(n)
		case *ast.Ident:
			w.bareFuncRef(n)
		}
		return true
	})
}

// addEffect records a direct effect, keeping the first witness site.
func (w *sumWalker) addEffect(e effect, what string, pos token.Pos) {
	if w.fi.direct&e == 0 {
		w.fi.direct |= e
		w.fi.witness[e] = cgWitness{what: what, pos: pos}
	}
}

// declare seeds taint for `var req T` locals of named struct types.
func (w *sumWalker) declare(ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			w.seedLocal(name)
		}
	}
}

// seedLocal taints a newly declared local if its type is a named
// struct: decode targets are exactly such locals, and whether the type
// is *untrusted* is decided at finalize when every annotation is known.
func (w *sumWalker) seedLocal(id *ast.Ident) {
	obj := w.p.Info.Defs[id]
	if obj == nil {
		return
	}
	tn := namedStructOf(obj.Type())
	if tn == nil {
		return
	}
	w.addProv(obj, cgProv{param: -1, utype: tn, root: obj})
}

// assign handles the quota-arithmetic sink, global-write detection, and
// source-order taint propagation.
func (w *sumWalker) assign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := ast.Unparen(as.Lhs[0])
		w.checkGlobalWrite(lhs, as.Pos())
		if _, isField := lhs.(*ast.SelectorExpr); isField {
			w.recordSinks(w.mentions(as.Rhs[0]), sinkQuotaArith, as.Pos())
		}
		return
	case token.DEFINE, token.ASSIGN:
	default:
		return
	}
	for _, l := range as.Lhs {
		w.checkGlobalWrite(ast.Unparen(l), as.Pos())
	}
	for i, l := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if as.Tok == token.DEFINE {
			w.seedLocal(id)
		}
		if rhs == nil {
			continue
		}
		obj := w.objOf(id)
		if obj == nil {
			continue
		}
		for _, pv := range w.mentions(rhs) {
			w.addProv(obj, pv)
		}
	}
}

// checkGlobalWrite records the package-state-write effect for writes
// whose base resolves to a package-level variable.
func (w *sumWalker) checkGlobalWrite(lhs ast.Expr, pos token.Pos) {
	id := rootIdent(lhs)
	if id == nil {
		return
	}
	v, ok := w.p.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	w.addEffect(effGlobalWrite, "write to package variable "+v.Name(), pos)
}

// guard applies the inline-validation idiom: an if whose condition
// mentions tracked provenances and whose body exits the normal flow
// sanitizes those (root, field) pairs for the rest of the walk.
func (w *sumWalker) guard(is *ast.IfStmt) {
	provs := w.mentionsRaw(is.Cond)
	if len(provs) == 0 || !bodyExits(is.Body) {
		return
	}
	for _, pv := range provs {
		w.san[provKey{root: pv.root, field: pv.field}] = true
	}
}

// bodyExits reports whether a block leaves the surrounding control flow
// (return, branch, or panic) — the shape of a validation guard.
func bodyExits(body *ast.BlockStmt) bool {
	exits := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.BranchStmt:
			exits = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				exits = true
			}
		}
		return !exits
	})
	return exits
}

// rangeStmt propagates taint to loop variables and probes the
// map-order effect with the shared rngpurity/maporder helpers.
func (w *sumWalker) rangeStmt(rs *ast.RangeStmt) {
	if isMapRange(w.p, rs) && rs.Body != nil {
		if emitsOutput(w.p, rs.Body) || len(unsortedAppends(w.p, rs.Body, w.body)) > 0 {
			w.addEffect(effMapOrder, "map-range emission", rs.Pos())
		}
	}
	provs := w.mentions(rs.X)
	if len(provs) == 0 {
		return
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := w.p.Info.Defs[id]; obj != nil {
			for _, pv := range provs {
				w.addProv(obj, pv)
			}
		}
	}
}

// index fires the slice-index sink; map indexing is safe for any key.
func (w *sumWalker) index(ix *ast.IndexExpr) {
	tv, ok := w.p.Info.Types[ix.X]
	if !ok {
		return
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
	case *types.Basic:
		if t.Info()&types.IsString == 0 {
			return
		}
	default:
		return
	}
	w.recordSinks(w.mentions(ix.Index), sinkIndex, ix.Pos())
}

// call records effect witnesses, call-graph edges, argument flows, and
// validator gates for one call expression.
func (w *sumWalker) call(call *ast.CallExpr) {
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := w.p.Info.Uses[fun].(type) {
		case *types.Builtin:
			if fun.Name == "make" && len(call.Args) > 1 {
				for _, sz := range call.Args[1:] {
					w.recordSinks(w.mentions(sz), sinkAllocSize, call.Pos())
				}
			}
			return
		case *types.Func:
			w.staticCall(call, obj)
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isPkg := pkgNameOf(w.p.Info, id); isPkg {
				if fnObj, ok := w.p.Info.Uses[fun.Sel].(*types.Func); ok {
					w.staticCall(call, fnObj)
				}
				return
			}
		}
		sel, ok := w.p.Info.Selections[fun]
		if !ok {
			// Method expression T.M: resolves like a plain function.
			if fnObj, ok := w.p.Info.Uses[fun.Sel].(*types.Func); ok {
				w.staticCall(call, fnObj)
			}
			return
		}
		fnObj, ok := sel.Obj().(*types.Func)
		if !ok {
			return // func-typed field: the injection idiom, unresolved
		}
		if sig, ok := fnObj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				w.ifaceCall(call, sel.Recv(), fnObj)
				return
			}
		}
		w.gateReceiver(fun.X, fnObj, call.Pos())
		w.staticCall(call, fnObj)
	}
}

// staticCall handles a call with a resolved concrete target: the
// wallclock/RNG direct effects, the graph edge, argument flows, and
// validator gates.
func (w *sumWalker) staticCall(call *ast.CallExpr, fnObj *types.Func) {
	if pkg := fnObj.Pkg(); pkg != nil {
		sig, _ := fnObj.Type().(*types.Signature)
		pkgLevel := sig == nil || sig.Recv() == nil
		switch {
		case pkg.Path() == "time" && pkgLevel:
			if _, banned := wallclockBanned[fnObj.Name()]; banned {
				w.addEffect(effWallclock, "time."+fnObj.Name(), call.Pos())
			}
		case strings.HasPrefix(pkg.Path(), "math/rand") && pkgLevel &&
			!strings.HasPrefix(fnObj.Name(), "New"):
			w.addEffect(effGlobalRNG, pkg.Path()+"."+fnObj.Name(), call.Pos())
		}
	}
	w.fi.calls = append(w.fi.calls, cgCall{callee: fnObj, pos: call.Pos()})
	w.argFlows(call, fnObj, nil, "")
	for _, arg := range call.Args {
		w.gateReceiver(arg, fnObj, call.Pos())
	}
}

// ifaceCall records a dynamic call through a named interface defined in
// an analyzed package; resolution happens at finalize.
func (w *sumWalker) ifaceCall(call *ast.CallExpr, recv types.Type, fnObj *types.Func) {
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	w.fi.calls = append(w.fi.calls, cgCall{iface: named.Obj(), method: fnObj.Name(), pos: call.Pos()})
	w.argFlows(call, nil, named.Obj(), fnObj.Name())
}

// argFlows records one flow per tracked provenance per argument.
func (w *sumWalker) argFlows(call *ast.CallExpr, callee *types.Func, iface *types.TypeName, method string) {
	var nparams int
	var sig *types.Signature
	if callee != nil {
		sig, _ = callee.Type().(*types.Signature)
	}
	if sig != nil {
		nparams = sig.Params().Len()
	}
	for j, arg := range call.Args {
		provs := w.mentions(arg)
		if len(provs) == 0 {
			continue
		}
		cp := j
		if sig != nil {
			if nparams == 0 {
				continue
			}
			if cp >= nparams {
				cp = nparams - 1 // variadic tail
			}
		}
		for _, pv := range provs {
			w.fi.flows = append(w.fi.flows, cgFlow{
				param: pv.param, utype: pv.utype, field: pv.field, root: pv.root,
				pos: arg.Pos(), callee: callee, calleeParam: cp,
				iface: iface, method: method,
			})
		}
	}
}

// gateReceiver records a validator gate when a whole tracked struct
// value (or its address) is passed to a concrete function.
func (w *sumWalker) gateReceiver(e ast.Expr, callee *types.Func, pos token.Pos) {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	obj := w.objOf(id)
	if obj == nil {
		return
	}
	for _, pv := range w.taint[obj] {
		if pv.utype != nil && pv.field == "" {
			w.fi.gates = append(w.fi.gates, cgGate{root: pv.root, callee: callee, pos: pos})
			return
		}
	}
}

// bareFuncRef adds an address-taken edge for a module function used as
// a value (stored in a table, passed as a callback).
func (w *sumWalker) bareFuncRef(id *ast.Ident) {
	if w.called[id] {
		return
	}
	fn, ok := w.p.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return // interface method value: unresolved, like func values
		}
	}
	w.fi.calls = append(w.fi.calls, cgCall{callee: fn, pos: id.Pos()})
}

// recordSinks records one flow per unsanitized provenance.
func (w *sumWalker) recordSinks(provs []cgProv, sink sinkKind, pos token.Pos) {
	for _, pv := range provs {
		w.fi.flows = append(w.fi.flows, cgFlow{
			param: pv.param, utype: pv.utype, field: pv.field, root: pv.root,
			pos: pos, sink: sink,
		})
	}
}

// mentions returns the provenances of the tracked values an expression
// reads, with sanitized (root, field) pairs filtered out.
func (w *sumWalker) mentions(e ast.Expr) []cgProv {
	var out []cgProv
	for _, pv := range w.mentionsRaw(e) {
		if !w.san[provKey{root: pv.root, field: pv.field}] {
			out = append(out, pv)
		}
	}
	return out
}

// mentionsRaw is mentions without the sanitization filter (guards use
// it to know which pairs to sanitize).
func (w *sumWalker) mentionsRaw(e ast.Expr) []cgProv {
	if e == nil {
		return nil
	}
	var out []cgProv
	seen := make(map[*ast.Ident]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id := rootIdent(n)
			if id == nil || seen[id] {
				return true
			}
			obj := w.objOf(id)
			provs := w.taint[obj]
			if len(provs) == 0 {
				return true
			}
			seen[id] = true
			field := strings.TrimPrefix(exprPath(n), id.Name+".")
			for _, pv := range provs {
				if pv.field == "" {
					pv.field = field
				}
				out = append(out, pv)
			}
		case *ast.Ident:
			if seen[n] {
				return true
			}
			if provs := w.taint[w.objOf(n)]; len(provs) > 0 {
				seen[n] = true
				out = append(out, provs...)
			}
		}
		return true
	})
	return out
}

func (w *sumWalker) objOf(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := w.p.Info.Uses[id]; obj != nil {
		return obj
	}
	return w.p.Info.Defs[id]
}
