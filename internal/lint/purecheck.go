package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PureCheck machine-verifies the // silod:pure annotation language that
// backs core.PureAssigner: the solve-skip memo in the simulator replays
// a cached assignment only when the policy's Assign is a pure function
// of (cluster, jobs), so a wrong purity claim silently corrupts seeded
// replay. Before this analyzer the claims lived in prose in
// internal/policy/pure.go; now they are a compile gate.
//
// Annotation grammar (doc comments; see docs/static-analysis.md):
//
//	// silod:pure [assume=Iface1,Iface2]
//	// silod:pure-requires: Name[, Name...]
//
// A silod:pure function must be a deterministic function of its
// arguments. Within the body (including nested function literals) the
// analyzer rejects:
//
//   - reading a wall-clock (unit.Time) parameter — Gavel's finish-time
//     fairness objective does this, which is exactly why it is not pure;
//   - reading or writing a package-level variable;
//   - goroutines and channel operations;
//   - map-iteration order reaching an order-sensitive sink (the
//     valueflow walker shared with maporder);
//   - calls to anything that is not itself silod:pure, a builtin, a
//     conversion, a pure-stdlib function, or a method of an interface
//     named in the assume= list.
//
// assume= is the bridge to runtime vetting: StorageAllocator and Policy
// values are checked dynamically by allocatorPure/policyPure, so a call
// through those interfaces is pure exactly when the runtime gate says
// so. The analyzer verifies everything else and trusts the named
// interface — naming it in the annotation is the auditable record.
//
// silod:pure-requires is the reverse edge: a PureAssign method that
// returns true for some configuration names the Assign path it vouches
// for, and the analyzer fails if that function exists without a
// silod:pure annotation (or stops existing). Deleting an annotation to
// silence the checker therefore breaks the build, not the replay.
//
// Soundness gaps, accepted and documented: calls through plain
// func-typed values are not resolved (the repo's pure paths only build
// such values from local closures), and assume= trusts the runtime
// vetting in pure.go.
var PureCheck = &Analyzer{
	Name: "purecheck",
	Doc: "functions annotated // silod:pure must be deterministic in " +
		"their arguments: no wall clock, no RNG, no mutable package " +
		"state, no map-order-sensitive results, and only pure callees",
	Run:    runPureCheck,
	Merge:  mergePureCheck,
	Finish: finishPureCheck,
}

const purecheckKey = "purecheck"

// pureStdlibPkgs are standard-library packages whose exported functions
// are deterministic in their arguments (no clock, no global RNG, no
// hidden mutable state). sync is included for Mutex/Once plumbing:
// locking is about *safety*, and a pure function may still guard a
// receiver-local map behind a mutex (tenant.Registry.List).
var pureStdlibPkgs = map[string]bool{
	"math":         true,
	"sort":         true,
	"strings":      true,
	"strconv":      true,
	"errors":       true,
	"slices":       true,
	"cmp":          true,
	"unicode":      true,
	"unicode/utf8": true,
	"sync":         true,
}

// pureFmtFuncs are the fmt functions that only build strings; the
// printing ones are side effects and stay banned.
var pureFmtFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

type pureAnn struct {
	pure   bool
	assume map[string]bool // interface type names exempted from the call rule
}

// pcCall is one call edge out of a pure function, resolved at Finish
// once every package's annotations are known.
type pcCall struct {
	caller *types.Func
	callee *types.Func
	pos    token.Pos
}

// pcRequire is one silod:pure-requires entry, resolved in its own
// package at Finish.
type pcRequire struct {
	name string
	pkg  *types.Package
	pos  token.Pos
}

// pcState is the cross-package record, shared through Pass.Shared.
type pcState struct {
	pure  map[*types.Func]bool
	calls []pcCall
	reqs  []pcRequire
	pkgs  map[string]bool // import paths analyzed this run
}

func pcStateIn(shared map[string]any) *pcState {
	if st, ok := shared[purecheckKey].(*pcState); ok {
		return st
	}
	st := &pcState{pure: make(map[*types.Func]bool), pkgs: make(map[string]bool)}
	shared[purecheckKey] = st
	return st
}

func mergePureCheck(global, pkg map[string]any) {
	src, ok := pkg[purecheckKey].(*pcState)
	if !ok {
		return
	}
	dst := pcStateIn(global)
	for fn := range src.pure {
		dst.pure[fn] = true
	}
	dst.calls = append(dst.calls, src.calls...)
	dst.reqs = append(dst.reqs, src.reqs...)
	for path := range src.pkgs {
		dst.pkgs[path] = true
	}
}

// parsePureDoc extracts the annotation lines from a doc comment.
func parsePureDoc(doc *ast.CommentGroup) (ann pureAnn, requires []string, badOpts []string) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		switch {
		case strings.HasPrefix(text, "silod:pure-requires:"):
			for _, name := range strings.Split(strings.TrimPrefix(text, "silod:pure-requires:"), ",") {
				if name = strings.TrimSpace(name); name != "" {
					requires = append(requires, name)
				}
			}
		case text == "silod:pure" || strings.HasPrefix(text, "silod:pure "):
			ann.pure = true
			for _, field := range strings.Fields(strings.TrimPrefix(text, "silod:pure")) {
				v, ok := strings.CutPrefix(field, "assume=")
				if !ok {
					badOpts = append(badOpts, field)
					continue
				}
				if ann.assume == nil {
					ann.assume = make(map[string]bool)
				}
				for _, n := range strings.Split(v, ",") {
					if n = strings.TrimSpace(n); n != "" {
						ann.assume[n] = true
					}
				}
			}
		}
	}
	return
}

func runPureCheck(p *Pass) {
	st := pcStateIn(p.Shared)
	st.pkgs[p.Path] = true
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			ann, requires, badOpts := parsePureDoc(fd.Doc)
			for _, opt := range badOpts {
				p.Reportf(fd.Pos(), "unrecognized silod:pure option %q (grammar: // silod:pure [assume=Iface,...])", opt)
			}
			for _, name := range requires {
				st.reqs = append(st.reqs, pcRequire{name: name, pkg: p.Pkg, pos: fd.Pos()})
			}
			if !ann.pure {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			st.pure[fn] = true
			if fd.Body != nil {
				checkPureBody(p, st, fn, fd, ann)
			}
		}
	}
}

// checkPureBody runs the intraprocedural rules over one annotated
// function, recording call edges for Finish.
func checkPureBody(p *Pass, st *pcState, fn *types.Func, fd *ast.FuncDecl, ann pureAnn) {
	// A unit.Time parameter is the caller's clock: a pure assignment may
	// receive one (core.Policy.Assign has it in the signature) but must
	// not let it influence the result.
	timeParams := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj == nil {
					continue
				}
				if n, ok := unitType(obj.Type()); ok && n == "Time" {
					timeParams[obj] = true
				}
			}
		}
	}
	// Forwarding a time parameter bare into another call is fine: the
	// callee is itself verified (pure callees cannot use it either, and
	// assumed interfaces are runtime-vetted). Only *computing* with it
	// — arithmetic, comparison, conversion, method receiver — makes the
	// result time-dependent. Collect the forwarded ident nodes first.
	forwarded := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // a conversion consumes the value
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true // append(s, now) stores the value
			}
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				forwarded[id] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "silod:pure function %s starts a goroutine: goroutine scheduling is nondeterministic", fn.Name())
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "silod:pure function %s sends on a channel", fn.Name())
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				p.Reportf(n.Pos(), "silod:pure function %s receives from a channel", fn.Name())
			}
		case *ast.Ident:
			v, ok := p.Info.Uses[n].(*types.Var)
			if !ok {
				break
			}
			if timeParams[v] && !forwarded[n] {
				p.Reportf(n.Pos(), "silod:pure function %s reads wall-clock parameter %s: the result may not depend on the current time (see Gavel's finish-time path for why that disqualifies a policy)", fn.Name(), v.Name())
			} else if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				p.Reportf(n.Pos(), "silod:pure function %s touches package-level variable %s: mutable package state breaks referential transparency", fn.Name(), v.Name())
			}
		case *ast.CallExpr:
			checkPureCall(p, st, fn, ann, n)
		}
		return true
	})
	pureFlowReport := func(pos token.Pos, format string, args ...any) {
		p.Reportf(pos, "silod:pure function %s: %s", fn.Name(), fmt.Sprintf(format, args...))
	}
	checkMapOrderFlow(p, fd.Body, pureFlowReport)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkMapOrderFlow(p, fl.Body, pureFlowReport)
		}
		return true
	})
}

// checkPureCall classifies one call site: builtins and conversions are
// value rewrites; interface calls must be assumed; everything concrete
// is recorded and judged at Finish when all annotations are known.
func checkPureCall(p *Pass, st *pcState, caller *types.Func, ann pureAnn, call *ast.CallExpr) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	record := func(callee *types.Func) {
		st.calls = append(st.calls, pcCall{caller: caller, callee: callee, pos: call.Pos()})
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fun].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			record(obj)
		}
		// A call through a func-typed variable: accepted soundness gap —
		// the repo's pure paths only build such values from local
		// closures, which this walk already inspects.
		return
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isPkg := pkgNameOf(p.Info, id); isPkg {
				if fnObj, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
					record(fnObj)
				}
				return
			}
		}
		sel, ok := p.Info.Selections[fun]
		if !ok {
			// Method expression (T.M): resolves like a plain function.
			if fnObj, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
				record(fnObj)
			}
			return
		}
		fnObj, ok := sel.Obj().(*types.Func)
		if !ok {
			return // func-typed field value: same gap as above
		}
		if sig, ok := fnObj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				name := ifaceRecvName(sel.Recv())
				if !ann.assume[name] {
					p.Reportf(call.Pos(), "silod:pure function %s calls %s.%s through an interface the checker cannot resolve; if every runtime implementation is vetted pure (see internal/policy/pure.go), annotate // silod:pure assume=%s", caller.Name(), name, fnObj.Name(), name)
				}
				return
			}
		}
		record(fnObj)
	}
}

// ifaceRecvName names the interface type a method call goes through.
func ifaceRecvName(recv types.Type) string {
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if n, ok := recv.(*types.Named); ok {
		return n.Obj().Name()
	}
	return "interface"
}

func finishPureCheck(p *Pass) {
	st, ok := p.Shared[purecheckKey].(*pcState)
	if !ok {
		return
	}
	for _, c := range st.calls {
		if st.pure[c.callee] {
			continue
		}
		pkg := c.callee.Pkg()
		if pkg == nil {
			continue // universe scope (error.Error)
		}
		path := pkg.Path()
		if st.pkgs[path] {
			p.Reportf(c.pos, "silod:pure function %s calls %s.%s, which is not annotated // silod:pure", c.caller.Name(), pkg.Name(), c.callee.Name())
			continue
		}
		if pureStdlibPkgs[path] {
			continue
		}
		if path == "fmt" && pureFmtFuncs[c.callee.Name()] {
			continue
		}
		hint := ""
		switch {
		case path == "time":
			hint = " (reads the wall clock)"
		case strings.HasPrefix(path, "math/rand"):
			hint = " (draws global randomness)"
		}
		p.Reportf(c.pos, "silod:pure function %s calls %s.%s%s, which is outside the pure-stdlib allowlist", c.caller.Name(), path, c.callee.Name(), hint)
	}
	for _, r := range st.reqs {
		fn := resolveFuncName(r.pkg, r.name)
		if fn == nil {
			p.Reportf(r.pos, "silod:pure-requires names %s, which does not resolve in package %s", r.name, r.pkg.Name())
			continue
		}
		if !st.pure[fn] {
			p.Reportf(r.pos, "silod:pure-requires: %s is not annotated // silod:pure, so the PureAssign eligibility it vouches for no longer holds", r.name)
		}
	}
}

// resolveFuncName resolves "F", "T.M", or "(*T).M" in pkg's scope.
func resolveFuncName(pkg *types.Package, name string) *types.Func {
	// "(*T).M" and "T.M" name the same declared method; the pointer
	// spelling is documentation for the reader, not the resolver.
	name = strings.ReplaceAll(strings.ReplaceAll(name, "(*", ""), ")", "")
	if i := strings.Index(name, "."); i >= 0 {
		typeName, methName := name[:i], name[i+1:]
		obj, ok := pkg.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return nil
		}
		for m := 0; m < named.NumMethods(); m++ {
			if named.Method(m).Name() == methName {
				return named.Method(m)
			}
		}
		return nil
	}
	fn, _ := pkg.Scope().Lookup(name).(*types.Func)
	return fn
}
