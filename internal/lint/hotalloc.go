package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the allocation budgets PR 5 bought: eventq at 1
// alloc/op, the fluid solver's per-tick rate recomputation at 0, the
// bisection probe reusing its scratch slices. Those wins erode one
// innocent-looking `make` at a time, and ReportAllocs benchmarks only
// catch the erosion when someone reruns them. A function annotated
// `// silod:hotpath` is instead checked at lint time for every
// construct that heap-allocates per call:
//
//   - make(...) and new(T);
//   - map and slice composite literals (value struct literals are
//     fine: they land in their destination slot);
//   - &T{...} — the pointer forces the literal to the heap;
//   - append to a slice freshly allocated in the same function (the
//     grow-from-scratch pattern; appending into a caller-owned or
//     receiver-owned buffer is the sanctioned reuse idiom);
//   - function literals that capture enclosing variables (each call
//     allocates the closure), and
//   - interface boxing: a non-interface value passed to an interface
//     parameter or converted to an interface type (sort.Slice costs 2
//     allocs/call exactly this way).
//
// Escape hatch: a trailing `// silod:alloc <reason>` comment on the
// offending line waives every finding anchored there — eventq.Schedule
// must allocate its *Event, and says why in place. A waiver without a
// reason is itself a finding: the point is the audit trail.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated // silod:hotpath must not heap-allocate: " +
		"no make/new, no map or slice literals, no &T{}, no growing " +
		"append of fresh slices, no capturing closures, no interface boxing",
	Run: runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		waivers := allocWaivers(p.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDoc(fd.Doc) {
				continue
			}
			checkHotBody(p, fd, waivers)
		}
	}
}

// hasHotpathDoc reports whether the doc comment carries the
// // silod:hotpath marker.
func hasHotpathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "silod:hotpath" || strings.HasPrefix(text, "silod:hotpath ") {
			return true
		}
	}
	return false
}

// allocWaivers maps source lines to their silod:alloc waiver reasons.
func allocWaivers(fset *token.FileSet, f *ast.File) map[int]string {
	var out map[int]string
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "silod:alloc"); ok {
				if out == nil {
					out = make(map[int]string)
				}
				out[fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return out
}

func checkHotBody(p *Pass, fd *ast.FuncDecl, waivers map[int]string) {
	name := fd.Name.Name
	report := func(pos token.Pos, format string, args ...any) {
		if reason, ok := waivers[p.Fset.Position(pos).Line]; ok {
			if reason == "" {
				p.Reportf(pos, "silod:alloc waiver without a reason: state why this allocation is acceptable on the hot path")
			}
			return
		}
		p.Reportf(pos, format, args...)
	}
	fresh := freshSlices(p, fd.Body)
	handled := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					handled[cl] = true
					report(n.Pos(), "silod:hotpath function %s allocates: &%s{...} escapes to the heap", name, exprPath(cl.Type))
				}
			}
		case *ast.CompositeLit:
			if handled[n] {
				break
			}
			t := p.Info.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "silod:hotpath function %s allocates: map literal — reuse a scratch map and clear() it", name)
			case *types.Slice:
				report(n.Pos(), "silod:hotpath function %s allocates: slice literal — reuse a scratch buffer (see internal/sim/scratch.go resize)", name)
			}
		case *ast.FuncLit:
			if capt := capturedVar(p, fd, n); capt != "" {
				report(n.Pos(), "silod:hotpath function %s allocates: closure captures %s, so each call heap-allocates the closure", name, capt)
			}
		case *ast.CallExpr:
			checkHotCall(p, fd, n, fresh, report)
		}
		return true
	})
}

// checkHotCall flags the allocating builtins, append-into-fresh
// growth, and interface boxing at call boundaries.
func checkHotCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, fresh map[types.Object]bool, report func(token.Pos, string, ...any)) {
	name := fd.Name.Name
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversions allocate only when they box into an interface.
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if boxes(p, call.Args[0]) {
				report(call.Pos(), "silod:hotpath function %s allocates: conversion boxes %s into an interface", name, argLabel(call.Args[0]))
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				report(call.Pos(), "silod:hotpath function %s allocates: make — reuse a scratch buffer (see internal/sim/scratch.go resize)", name)
			case "new":
				report(call.Pos(), "silod:hotpath function %s allocates: new(T) escapes to the heap", name)
			case "append":
				if len(call.Args) >= 2 {
					if obj := objForExpr(p, call.Args[0]); obj != nil && fresh[obj] {
						report(call.Pos(), "silod:hotpath function %s allocates: append grows %s, which was freshly allocated in this function — size it up front or reuse a caller-owned buffer", name, obj.Name())
					}
				}
			}
			return
		}
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				return // f(xs...) passes the slice itself, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if boxes(p, arg) {
			report(arg.Pos(), "silod:hotpath function %s allocates: %s boxes into an interface parameter", name, argLabel(arg))
		}
	}
}

// boxes reports whether passing arg to an interface slot allocates: it
// does unless arg is already an interface value or nil.
func boxes(p *Pass, arg ast.Expr) bool {
	at := p.Info.TypeOf(arg)
	if at == nil {
		return false
	}
	if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	_, argIface := at.Underlying().(*types.Interface)
	return !argIface
}

func argLabel(arg ast.Expr) string {
	if s := exprPath(arg); s != "" {
		return s
	}
	return "argument"
}

// freshSlices collects locals defined from make or a composite
// literal: appending to one of these is grow-from-scratch, the pattern
// resize-style scratch buffers exist to replace.
func freshSlices(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			isFresh := false
			switch r := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CompositeLit:
				isFresh = true
			case *ast.CallExpr:
				if fid, ok := r.Fun.(*ast.Ident); ok {
					if b, okb := p.Info.Uses[fid].(*types.Builtin); okb && b.Name() == "make" {
						isFresh = true
					}
				}
			}
			if isFresh {
				if obj := p.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// capturedVar returns the name of a variable the function literal
// captures from its enclosing function, or "" if it captures nothing.
func capturedVar(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.Parent() == nil {
			return true // struct fields have no parent scope
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: referenced, not captured
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own params and locals
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

func objForExpr(p *Pass, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}
