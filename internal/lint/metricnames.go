package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricNames enforces docs/observability.md at every internal/metrics
// call site: metric names are compile-time constants (a fmt.Sprintf-built
// name means unbounded series cardinality — the registry interns every
// name forever), lower snake_case, "silod_"-prefixed with a subsystem
// segment, with counters ending in _total and gauges/histograms not.
// Label keys passed to metrics.L must likewise be constant snake_case;
// label *values* may vary (they are meant to, within a closed set).
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc: "metric/label names at internal/metrics call sites must be " +
		"compile-time constants shaped silod_<subsystem>_<noun>[_total] " +
		"— dynamic names explode series cardinality",
	Run: runMetricNames,
}

var (
	metricNameRE = regexp.MustCompile(`^silod_[a-z0-9]+(_[a-z0-9]+)+$`)
	labelKeyRE   = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

func runMetricNames(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !pathEndsIn(fn.Pkg().Path(), "internal/metrics") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			switch {
			case sig.Recv() != nil && recvIsRegistry(sig):
				switch fn.Name() {
				case "Counter", "Gauge", "Histogram":
					checkMetricName(p, call.Args[0], fn.Name())
				}
			case sig.Recv() == nil && fn.Name() == "L":
				checkLabelKey(p, call.Args[0])
			}
			return true
		})
	}
}

// recvIsRegistry reports whether the method receiver is (a pointer to)
// the metrics Registry type.
func recvIsRegistry(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// checkMetricName validates the name argument of Counter/Gauge/Histogram.
func checkMetricName(p *Pass, arg ast.Expr, kind string) {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(arg.Pos(), "metric name passed to Registry.%s must be a compile-time constant string: dynamic names (fmt.Sprintf, concatenated variables) create one interned series per distinct value, forever — put variance in label values instead", kind)
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		p.Reportf(arg.Pos(), "metric name %q must be lower snake_case with a silod_<subsystem>_ prefix (see docs/observability.md)", name)
		return
	}
	if strings.Count(name, "_") < 2 {
		p.Reportf(arg.Pos(), "metric name %q is missing a subsystem segment: expected silod_<subsystem>_<noun>", name)
		return
	}
	hasTotal := strings.HasSuffix(name, "_total")
	if kind == "Counter" && !hasTotal {
		p.Reportf(arg.Pos(), "counter %q must end in _total (Prometheus counter convention)", name)
	}
	if kind != "Counter" && hasTotal {
		p.Reportf(arg.Pos(), "%s %q must not end in _total: that suffix is reserved for counters", strings.ToLower(kind), name)
	}
}

// checkLabelKey validates the key argument of metrics.L.
func checkLabelKey(p *Pass, arg ast.Expr) {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(arg.Pos(), "label key passed to metrics.L must be a compile-time constant string — dynamic keys fragment a family into incompatible series")
		return
	}
	key := constant.StringVal(tv.Value)
	if !labelKeyRE.MatchString(key) {
		p.Reportf(arg.Pos(), "label key %q must be lower snake_case ([a-z][a-z0-9_]*)", key)
	}
}
