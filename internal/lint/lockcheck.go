package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Lockcheck enforces the `// guarded by` annotation grammar: a struct
// field annotated `// guarded by mu` (a sibling mutex field) or
// `// guarded by Owner.mu` (the mutex of another package-local struct)
// may only be read or written while that mutex is held. A mutex is
// held on a program point if the function locked it earlier on every
// path (including via `defer mu.Unlock()`), or the function follows
// the *Locked naming convention, in which case the caller must hold
// every mutex field of the receiver — lockcheck checks those call
// sites too. Re-locking an already-held mutex on the same instance
// path is flagged as a guaranteed deadlock (sync mutexes are not
// reentrant). Values still private to their constructor (`x := &T{...}`)
// are exempt: they are unpublished and cannot race.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated `// guarded by mu` must be accessed with the lock held",
	Run:  runLockcheck,
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)(?:\.([A-Za-z_][A-Za-z0-9_]*))?`)

// guard is one parsed annotation: the mutex that protects a field.
type guard struct {
	mu      *types.Var // resolved mutex field
	muName  string     // mutex field name ("mu")
	owner   string     // cross-struct owner type name, "" for sibling guards
	sibling bool
}

func runLockcheck(p *Pass) {
	guards := collectGuards(p)
	checker := &lockChecker{p: p, guards: guards}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			walkLockFlow(p, fn, lockHooks{
				doubleLock: checker.doubleLock,
				call:       checker.call,
				access:     checker.access,
			})
		}
	}
}

// collectGuards parses `// guarded by` annotations off struct fields
// and resolves them, reporting malformed annotations in place.
func collectGuards(p *Pass) map[*types.Var]*guard {
	out := make(map[*types.Var]*guard)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				muName, ownerName, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				g := resolveGuard(p, st, field, muName, ownerName)
				if g == nil {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						out[v] = g
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts "guarded by X" / "guarded by Owner.X" from a
// field's doc or trailing line comment.
func guardAnnotation(field *ast.Field) (mu, owner string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			m := guardedByRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			if m[2] != "" {
				return m[2], m[1], true
			}
			return m[1], "", true
		}
	}
	return "", "", false
}

// resolveGuard binds an annotation to the mutex field it names:
// a sibling field of the same struct, or a field of a package-local
// owner struct.
func resolveGuard(p *Pass, st *ast.StructType, field *ast.Field, muName, ownerName string) *guard {
	if ownerName == "" {
		for _, sib := range st.Fields.List {
			for _, name := range sib.Names {
				if name.Name != muName {
					continue
				}
				v, ok := p.Info.Defs[name].(*types.Var)
				if !ok || !isMutexType(v.Type()) {
					p.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a sync.Mutex/RWMutex sibling field", muName)
					return nil
				}
				return &guard{mu: v, muName: muName, sibling: true}
			}
		}
		p.Reportf(field.Pos(), "guarded-by annotation names %q, but the struct has no such field", muName)
		return nil
	}
	obj, ok := p.Pkg.Scope().Lookup(ownerName).(*types.TypeName)
	if !ok {
		p.Reportf(field.Pos(), "guarded-by annotation names unknown type %q in this package", ownerName)
		return nil
	}
	for _, mf := range mutexFieldsOf(obj.Type()) {
		if mf.Name() == muName {
			return &guard{mu: mf, muName: muName, owner: ownerName}
		}
	}
	p.Reportf(field.Pos(), "guarded-by annotation: %s has no sync.Mutex/RWMutex field %q", ownerName, muName)
	return nil
}

type lockChecker struct {
	p      *Pass
	guards map[*types.Var]*guard
}

func (c *lockChecker) doubleLock(lk *lockRef, pos token.Pos) {
	c.p.Reportf(pos, "%s locked twice on the same path without an intervening unlock (sync mutexes are not reentrant: this deadlocks)", lk.path)
}

func (c *lockChecker) access(sel *ast.SelectorExpr, base ast.Expr, field *types.Var, write bool, held lockState) {
	g, ok := c.guards[field]
	if !ok {
		return
	}
	verb := "read of"
	if write {
		verb = "write to"
	}
	if g.sibling {
		want := exprPath(base) + "." + g.muName
		lk, ok := held[want]
		if !ok {
			c.p.Reportf(sel.Sel.Pos(), "%s %s.%s without holding %s (field is guarded by %s)",
				verb, exprPath(base), field.Name(), want, g.muName)
			return
		}
		if write && lk.rlock {
			c.p.Reportf(sel.Sel.Pos(), "write to %s.%s while %s is only read-locked; writes require Lock",
				exprPath(base), field.Name(), want)
		}
		return
	}
	// Cross-struct guard: any held lock resolving to the owner's mutex
	// field satisfies the access (the annotation cannot name the
	// specific instance, so this is a field-identity check).
	for _, lk := range held {
		if lk.field == g.mu {
			if write && lk.rlock {
				c.p.Reportf(sel.Sel.Pos(), "write to %s.%s while %s.%s is only read-locked; writes require Lock",
					exprPath(base), field.Name(), g.owner, g.muName)
			}
			return
		}
	}
	c.p.Reportf(sel.Sel.Pos(), "%s %s.%s without holding %s.%s (field is guarded by %s.%s)",
		verb, exprPath(base), field.Name(), g.owner, g.muName, g.owner, g.muName)
}

// call enforces the caller side of the *Locked convention: invoking
// base.fooLocked() requires every mutex field of base's type held on
// base's instance path.
func (c *lockChecker) call(callee *types.Func, base ast.Expr, allocated bool, pos token.Pos, held lockState) {
	if base == nil || allocated || !lockedSuffix(callee.Name()) {
		return
	}
	basePath := exprPath(base)
	for _, mf := range mutexFieldsOf(c.p.Info.TypeOf(base)) {
		want := basePath + "." + mf.Name()
		if _, ok := held[want]; !ok {
			c.p.Reportf(pos, "call to %s requires %s to be held (the Locked suffix means the caller locks)",
				callee.Name(), want)
		}
	}
}
