package lint

import (
	"go/types"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/runner"
)

// Options configures a suite run.
type Options struct {
	// Disable names analyzers to skip.
	Disable map[string]bool
	// Workers bounds per-package analysis concurrency: 0 means
	// GOMAXPROCS, 1 runs sequentially (the silodsim -parallel
	// convention). Loading and type-checking stay sequential — the
	// loader resolves imports in dependency order and is not
	// thread-safe — but analysis is embarrassingly parallel across
	// packages, and output is byte-identical at any worker count.
	Workers int
	// ChangedFiles restricts *reporting* to the packages containing the
	// listed files (module-root-relative, slash-separated) plus their
	// transitive reverse import dependencies — the -diff mode. The
	// whole module is still loaded and analyzed (whole-program
	// analyzers need every summary to judge anything), so a diff run
	// costs load time, not soundness. nil means full reporting; an
	// empty non-nil slice reports nothing.
	ChangedFiles []string
}

// Result is the outcome of linting one module.
type Result struct {
	// Diagnostics are all findings, sorted by file, line, column,
	// analyzer. Positions are slash-separated and relative to the
	// module root, matching lint.allow rules.
	Diagnostics []Diagnostic
	// Packages is the number of packages analyzed.
	Packages int
}

// Run lints the module rooted at root with every enabled analyzer.
// Type-check failures surface as diagnostics of the pseudo-analyzer
// "typecheck": a package the suite cannot type-check is a package the
// suite cannot vouch for.
func Run(root string, opts Options) (*Result, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs)}
	// Analysis is read-only over the type-checked packages, so the
	// packages fan out across the worker pool. Each gets a private
	// Shared map; cross-package state is folded back in package load
	// order below, which keeps global analyzers (lockorder, purecheck)
	// deterministic regardless of worker count.
	type pkgResult struct {
		diags  []Diagnostic
		shared map[string]any
	}
	results, err := runner.Map(runner.Options{Workers: opts.Workers, Sequential: opts.Workers == 1},
		len(pkgs), func(a runner.Arm) (pkgResult, error) {
			shared := make(map[string]any)
			return pkgResult{
				diags:  analyzePackage(loader, pkgs[a.Index], opts, shared),
				shared: shared,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	shared := make(map[string]any)
	for _, r := range results {
		res.Diagnostics = append(res.Diagnostics, r.diags...)
		for _, an := range All() {
			if an.Merge != nil && !opts.Disable[an.Name] {
				an.Merge(shared, r.shared)
			}
		}
	}
	// Global analyzers see the whole module before judging.
	for _, an := range All() {
		if an.Finish == nil || opts.Disable[an.Name] {
			continue
		}
		pass := &Pass{Analyzer: an, Fset: loader.Fset, Shared: shared}
		an.Finish(pass)
		res.Diagnostics = append(res.Diagnostics, pass.diags...)
	}
	for i := range res.Diagnostics {
		res.Diagnostics[i].Pos.Filename = relPath(loader.Root, res.Diagnostics[i].Pos.Filename)
		for t := range res.Diagnostics[i].Trace {
			res.Diagnostics[i].Trace[t].Pos.Filename = relPath(loader.Root, res.Diagnostics[i].Trace[t].Pos.Filename)
		}
	}
	if opts.ChangedFiles != nil {
		res.Diagnostics = filterAffected(res.Diagnostics, pkgs, loader.Module, opts.ChangedFiles)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// AnalyzePackage runs the enabled analyzers over one loaded package
// and returns raw (absolute-position) diagnostics. Global analyzers'
// Finish hooks do not run here — use Run for whole-module results.
func AnalyzePackage(loader *Loader, pkg *Package, opts Options) []Diagnostic {
	return analyzePackage(loader, pkg, opts, make(map[string]any))
}

func analyzePackage(loader *Loader, pkg *Package, opts Options, shared map[string]any) []Diagnostic {
	var out []Diagnostic
	for _, terr := range pkg.TypeErrors {
		d := Diagnostic{Analyzer: "typecheck", Message: terr.Error()}
		if te, ok := terr.(types.Error); ok {
			d.Pos = te.Fset.Position(te.Pos)
			d.Message = te.Msg
		}
		out = append(out, d)
	}
	for _, an := range All() {
		if opts.Disable[an.Name] {
			continue
		}
		pass := &Pass{
			Analyzer: an,
			Path:     pkg.Path,
			Fset:     loader.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Shared:   shared,
		}
		an.Run(pass)
		out = append(out, pass.diags...)
	}
	return out
}

// filterAffected keeps the diagnostics belonging to changed packages
// and their transitive reverse import dependencies — the -diff scope.
func filterAffected(diags []Diagnostic, pkgs []*Package, module string, changed []string) []Diagnostic {
	affected := AffectedDirs(pkgs, module, changed)
	out := diags[:0]
	for _, d := range diags {
		if affected[path.Dir(d.Pos.Filename)] {
			out = append(out, d)
		}
	}
	return out
}

// AffectedDirs computes the module-root-relative package directories
// touched by the changed files, closed under reverse imports: a change
// to internal/unit affects every package that (transitively) imports
// it. Used by the -diff mode and unit-tested directly.
func AffectedDirs(pkgs []*Package, module string, changed []string) map[string]bool {
	// pkgDir maps import path -> root-relative dir ("." for the root
	// package), mirroring how relPath rewrites diagnostic filenames.
	pkgDir := func(ip string) string {
		rel := strings.TrimPrefix(strings.TrimPrefix(ip, module), "/")
		if rel == "" {
			return "."
		}
		return rel
	}
	// Reverse import edges, module-internal only.
	importers := make(map[string][]string) // imported path -> importing paths
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		for _, imp := range p.Types.Imports() {
			dep := imp.Path()
			if dep == module || strings.HasPrefix(dep, module+"/") {
				importers[dep] = append(importers[dep], p.Path)
			}
		}
	}
	changedDirs := make(map[string]bool)
	for _, f := range changed {
		if strings.HasSuffix(f, ".go") {
			changedDirs[path.Dir(path.Clean(filepath.ToSlash(f)))] = true
		}
	}
	affected := make(map[string]bool)
	var queue []string
	for _, p := range pkgs {
		if changedDirs[pkgDir(p.Path)] {
			queue = append(queue, p.Path)
		}
	}
	for len(queue) > 0 {
		ip := queue[0]
		queue = queue[1:]
		dir := pkgDir(ip)
		if affected[dir] {
			continue
		}
		affected[dir] = true
		queue = append(queue, importers[ip]...)
	}
	return affected
}

// relPath rewrites an absolute filename to a slash-separated path
// relative to root; filenames outside root pass through unchanged.
func relPath(root, file string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil || rel == file {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
