package lint

import (
	"go/ast"
	"go/types"
)

// Errflow bans silently discarded errors and daemon-path panics.
//
// A call whose results include an error must not appear as a bare
// statement or `defer`, and an error value must not be assigned to
// `_` — either handle it, propagate it, or add a lint.allow entry
// whose comment says why ignoring it is sound (e.g. Close on a
// read-only file after a successful read). Exempt by construction:
// the fmt package (its Print/Fprint errors are terminal-write
// failures the caller cannot act on) and methods on strings.Builder /
// bytes.Buffer (documented to never return errors).
//
// Separately, `panic` is banned in packages the daemon's request path
// reaches (controlplane, datamgr, remoteio, cache, metrics, testbed,
// faults): a panic there takes down the scheduler for every job, so
// those layers must return errors instead.
var Errflow = &Analyzer{
	Name: "errflow",
	Doc:  "no discarded error returns, and no panic in daemon-reachable packages",
	Run:  runErrflow,
}

// daemonPkgs are the import-path suffixes the silodd request path
// reaches; panicking there is a denial of service, not error handling.
var daemonPkgs = []string{
	"internal/controlplane",
	"internal/datamgr",
	"internal/remoteio",
	"internal/cache",
	"internal/metrics",
	"internal/testbed",
	"internal/faults",
}

func runErrflow(p *Pass) {
	banPanic := pathEndsInAny(p.Path, daemonPkgs)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkBareCall(p, n.X)
			case *ast.DeferStmt:
				checkBareCall(p, n.Call)
			case *ast.GoStmt:
				// A goroutine's return values vanish by construction;
				// goleak owns goroutine hygiene.
				return true
			case *ast.AssignStmt:
				checkBlankError(p, n)
			case *ast.CallExpr:
				if banPanic {
					id, ok := n.Fun.(*ast.Ident)
					if !ok || id.Name != "panic" {
						return true
					}
					if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
						p.Reportf(n.Pos(), "panic in daemon-reachable package %s: return an error instead", p.Path)
					}
				}
			}
			return true
		})
	}
}

// checkBareCall flags a statement-position call that returns an error
// nobody looks at.
func checkBareCall(p *Pass, x ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if !returnsError(p, call) || exemptCallee(p, call) {
		return
	}
	p.Reportf(call.Pos(), "discarded error return from %s: handle it, propagate it, or allowlist with justification", calleeName(call))
}

// checkBlankError flags `_` bindings whose value is an error.
func checkBlankError(p *Pass, as *ast.AssignStmt) {
	blankAt := func(i int) bool {
		id, ok := as.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, _ := f() — position i of the tuple feeds LHS i.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := p.Info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i := 0; i < tuple.Len(); i++ {
			if blankAt(i) && isErrorType(tuple.At(i).Type()) && !exemptCallee(p, call) {
				p.Reportf(as.Lhs[i].Pos(), "error from %s assigned to _: handle it, propagate it, or allowlist with justification", calleeName(call))
			}
		}
		return
	}
	if len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i := range as.Lhs {
		if blankAt(i) && isErrorType(p.Info.TypeOf(as.Rhs[i])) {
			p.Reportf(as.Lhs[i].Pos(), "error value assigned to _: handle it, propagate it, or allowlist with justification")
		}
	}
}

// returnsError reports whether any of the call's results is an error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// exemptCallee: fmt.* (write errors to a terminal are unactionable)
// and methods on strings.Builder/bytes.Buffer (never fail, per spec).
func exemptCallee(p *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := pkgNameOf(p.Info, id); ok && pkg == "fmt" {
				return true
			}
		}
		if sel, ok := p.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return isNeverFailingWriter(sel.Recv())
		}
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			return true
		}
	}
	return false
}

func isNeverFailingWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return exprPath(fun)
	}
	return "call"
}
