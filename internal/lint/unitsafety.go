package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// UnitSafety guards the internal/unit quantity types. The SiloD
// estimator's core formula — SiloDPerf = min(f*, b/(1-c/d)) — mixes
// cache sizes (Bytes), throughputs (Bandwidth) and times; all four
// unit types share a float64 underlying type, so a stray literal or a
// direct cross-unit conversion compiles fine and silently corrupts the
// math (is 1048576 a count of bytes, megabytes, or bytes-per-second?).
//
// Two rules:
//
//  1. A unit-typed operand must not be added to, subtracted from, or
//     compared against a raw numeric literal other than zero. Spell
//     the quantity with a unit constant or constructor (64*unit.MB,
//     unit.Gbps(1.6)). Scaling by a dimensionless literal (q * 2,
//     q / 3) is allowed: multiplication and division change magnitude,
//     not meaning.
//
//  2. No direct conversion between two distinct unit types
//     (unit.Bandwidth(someBytes)). Conversions must go through an
//     explicit helper or float64 so the dimensional change is visible
//     (unit.PerSecond, unit.DivBandwidth, unit.MulDuration).
//
// The unit package itself is exempt: it is where the conversion
// helpers live.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc: "flags arithmetic/comparisons between internal/unit quantities " +
		"and raw numeric literals, and direct conversions between " +
		"distinct unit types — both silently corrupt throughput math",
	Run: runUnitSafety,
}

// unitMixOps are the operators where a raw literal operand implies a
// hidden unit: additive arithmetic and comparisons. * and / are
// excluded (dimensionless scaling).
var unitMixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func runUnitSafety(p *Pass) {
	if pathEndsIn(p.Path, "internal/unit") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkUnitLiteralMix(p, e)
			case *ast.CallExpr:
				checkUnitConversion(p, e)
			}
			return true
		})
	}
}

// checkUnitLiteralMix flags `q + 64`, `q > 1048576`, etc. where q has
// a unit type and the other operand is a bare numeric literal.
func checkUnitLiteralMix(p *Pass, e *ast.BinaryExpr) {
	if !unitMixOps[e.Op] {
		return
	}
	check := func(unitSide, litSide ast.Expr) {
		ut, ok := unitType(p.Info.Types[unitSide].Type)
		if !ok {
			return
		}
		if !isRawNumericLiteral(litSide) {
			return
		}
		tv, ok := p.Info.Types[litSide]
		if !ok || tv.Value == nil {
			return
		}
		if constant.Sign(tv.Value) == 0 {
			return // comparisons against zero are unit-free
		}
		p.Reportf(e.OpPos, "unit.%s %s raw numeric literal %s: spell the quantity with a unit constant or constructor (e.g. 64*unit.MB, unit.Gbps(1.6))",
			ut, e.Op, tv.Value.ExactString())
	}
	check(e.X, e.Y)
	check(e.Y, e.X)
}

// isRawNumericLiteral reports whether e is built solely from numeric
// literals (possibly parenthesized, negated, or combined), i.e. it
// names no unit constant that would carry the dimension.
func isRawNumericLiteral(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.INT || v.Kind == token.FLOAT
	case *ast.ParenExpr:
		return isRawNumericLiteral(v.X)
	case *ast.UnaryExpr:
		return (v.Op == token.SUB || v.Op == token.ADD) && isRawNumericLiteral(v.X)
	case *ast.BinaryExpr:
		return isRawNumericLiteral(v.X) && isRawNumericLiteral(v.Y)
	}
	return false
}

// checkUnitConversion flags T2(x) where both T2 and x's type are
// distinct unit types.
func checkUnitConversion(p *Pass, e *ast.CallExpr) {
	if len(e.Args) != 1 {
		return
	}
	ftv, ok := p.Info.Types[e.Fun]
	if !ok || !ftv.IsType() {
		return
	}
	dst, ok := unitType(ftv.Type)
	if !ok {
		return
	}
	atv, ok := p.Info.Types[e.Args[0]]
	if !ok {
		return
	}
	src, ok := unitType(atv.Type)
	if !ok || src == dst {
		return
	}
	p.Reportf(e.Pos(), "direct conversion unit.%s -> unit.%s reinterprets the quantity without changing its value: use an explicit helper (unit.PerSecond, unit.DivBandwidth, unit.MulDuration) or go through float64",
		src, dst)
}
