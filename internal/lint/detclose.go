package lint

// DetClose is the determinism-closure analyzer: from every declared
// simulation root (// silod:sim-root — sim.Run, the experiments entry
// points, the silodsim driver) it proves, over the whole-program call
// graph of callgraph.go, that no wall-clock read, global-RNG draw, or
// map-order-dependent emission is transitively reachable except through
// a function annotated // silod:inject with that effect.
//
// This turns the PR-5/7 determinism *tests* (byte-identical reruns at a
// fixed seed) into a *proof obligation*: a test catches the stray
// time.Now only on the code path the seed happens to exercise, while
// the closure covers every reachable function, including interface
// dispatch (resolved against the module's concrete types) and recursion
// (condensed with Tarjan SCCs). ROADMAP item 3's incremental re-solve
// will be built under this gate.
//
// An effect that is *supposed* to cross the boundary — the testbed's
// real wall clock, a daemon's ticker — is an audited injection point:
// annotate the function // silod:inject wallclock (or rng, maporder)
// and the effect stops propagating to callers. Calls through plain
// func-typed values are not resolved by design: passing func() time.Time
// into the simulator is exactly the injection idiom the closure exists
// to enforce.
//
// The driver's -why flag prints the offending call path (root, each
// call hop, the effect's witness site) carried on the diagnostic.
var DetClose = &Analyzer{
	Name: "detclose",
	Doc: "functions annotated // silod:sim-root must not transitively " +
		"reach a wall-clock read, global-RNG draw, or map-order-dependent " +
		"emission except through a // silod:inject boundary",
	Run:    runDetClose,
	Merge:  mergeCallGraph,
	Finish: finishDetClose,
}

func runDetClose(p *Pass) {
	f := ensureCGFragment(p)
	for _, ba := range f.bad {
		if ba.owner == "detclose" {
			p.Reportf(ba.pos, "%s", ba.msg)
		}
	}
}

func finishDetClose(p *Pass) {
	st, ok := p.Shared[callgraphKey].(*cgState)
	if !ok {
		return
	}
	st.finalize()
	for _, n := range st.nodes {
		if !n.info.root {
			continue
		}
		for i := 0; i < numEffects; i++ {
			e := effect(1 << i)
			if e&gatedEffects == 0 || n.eff&e == 0 {
				continue
			}
			trace := st.tracePath(p.Fset, n, e)
			what := "unknown site"
			if len(trace) > 0 {
				what = trace[len(trace)-1].Call
			}
			p.reportTrace(n.info.pos, trace,
				"simulation root %s transitively reaches a %s (%s) outside any silod:inject boundary; run silodlint -why for the call path",
				n.info.fn.Name(), e.desc(), what)
		}
	}
}
