package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGPurity keeps all randomness behind internal/simrng and flags
// map-iteration-order-dependent output. Both protect the same property
// wallclock does: two runs with the same seed must produce
// byte-identical results. math/rand outside the seeded simrng wrapper
// introduces unseeded (or doubly-seeded) streams, and Go map iteration
// order is deliberately randomized per run.
var RNGPurity = &Analyzer{
	Name: "rngpurity",
	Doc: "bans math/rand imports outside internal/simrng and flags map " +
		"iterations that emit output or accumulate into a slice without " +
		"sorting — both make output depend on per-process randomness",
	Run: runRNGPurity,
}

func runRNGPurity(p *Pass) {
	if !pathEndsIn(p.Path, "internal/simrng") {
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "import %s outside internal/simrng: draw randomness from a seeded simrng.RNG so runs are reproducible", path)
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapOrder(p, body)
			}
			return true
		})
	}
}

// checkMapOrder scans one function body for range-over-map loops whose
// visit order leaks into output: either the body writes directly to a
// stream (fmt.Fprint*/Print*, encoder.Encode), or it appends to a
// slice that the function never sorts. The collect-then-sort idiom is
// the accepted fix and is recognized.
func checkMapOrder(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // nested functions are scanned separately
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if emitsOutput(p, rs.Body) {
			p.Reportf(rs.Pos(), "emitting output while ranging over a map: iteration order is randomized per process; collect keys, sort, then emit")
			return true
		}
		for _, obj := range unsortedAppends(p, rs.Body, body) {
			p.Reportf(rs.Pos(), "appending to %q while ranging over a map without sorting it afterwards: iteration order is randomized per process", obj.Name())
		}
		return true
	})
}

// emitsOutput reports whether the loop body directly writes to an
// output stream.
func emitsOutput(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if path, isPkg := pkgNameOf(p.Info, id); isPkg && path == "fmt" &&
				(strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
				found = true
				return false
			}
		}
		if sel.Sel.Name == "Encode" {
			if tv, ok := p.Info.Types[sel.X]; ok {
				if ptr, ok := tv.Type.(*types.Pointer); ok {
					if nt, ok := ptr.Elem().(*types.Named); ok && nt.Obj().Pkg() != nil &&
						strings.HasPrefix(nt.Obj().Pkg().Path(), "encoding/") {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// unsortedAppends returns the objects of slice variables that the
// range body appends to but the enclosing function never sorts.
func unsortedAppends(p *Pass, rangeBody, fnBody *ast.BlockStmt) []types.Object {
	var targets []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(rangeBody, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return true
		}
		obj := p.Info.Uses[lhs]
		if obj == nil {
			obj = p.Info.Defs[lhs]
		}
		if obj != nil && !seen[obj] {
			seen[obj] = true
			targets = append(targets, obj)
		}
		return true
	})
	var out []types.Object
	for _, obj := range targets {
		if !sortedInFunc(p, fnBody, obj) {
			out = append(out, obj)
		}
	}
	return out
}

// sortedInFunc reports whether fnBody contains a sort-package call
// (or slices.Sort*) mentioning obj in its arguments.
func sortedInFunc(p *Pass, fnBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path, isPkg := pkgNameOf(p.Info, id)
		if !isPkg || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && p.Info.Uses[aid] == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
