package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/unit"
)

// Figure2Result is the cluster IO-demand timeline.
type Figure2Result struct {
	Demand *stats.Series // MB/s over minutes
	Peak   float64       // Gbps
}

// Figure2 reproduces Figure 2: the remote IO demand of a 400-V100
// cluster running the production-like trace with no cache at all —
// every byte is fetched remotely — against an effectively unlimited
// link, so the series is pure demand.
// silod:sim-root
func Figure2(o Options) (*Figure2Result, error) {
	jobs, err := traceFor(o, 400, 800, 12*unit.Hour)
	if err != nil {
		return nil, err
	}
	cl := core.Cluster{GPUs: 400, Cache: 0, RemoteIO: unit.GBpsOf(1000)}
	res, err := runOne(o, policy.FIFOKind, policy.Alluxio, cl, jobs, nil)
	if err != nil {
		return nil, err
	}
	demand := res.Timelines["remoteio"]
	return &Figure2Result{
		Demand: demand,
		Peak:   demand.MaxValue() * 8 / 1000, // MB/s -> Gbps
	}, nil
}

// Figure10Result is the 96-GPU cluster comparison.
type Figure10Result struct {
	Results SystemResults
	// CDF deciles of JCT (minutes) per system, Figure 10b.
	CDFFractions []float64
	CDF          map[policy.CacheSystem][]float64
	// Timelines for Figure 11 (throughput, ideal, remoteio per system).
	Timelines map[policy.CacheSystem]map[string]*stats.Series
	// EffectiveRatio is Figure 8: the time-averaged effective/allocated
	// cache ratio of the SiloD run.
	EffectiveRatio float64
	RemoteCapMBps  float64
}

// Figure10 reproduces Figures 10, 11 and 8: the FIFO-scheduled 96-GPU
// cluster under the four cache systems.
// silod:sim-root
func Figure10(o Options) (*Figure10Result, error) {
	jobs, err := traceFor(o, 96, 480, 24*unit.Hour)
	if err != nil {
		return nil, err
	}
	cl := clusterPreset(96)
	results, err := runSystems(o, policy.FIFOKind, cl, jobs, nil)
	if err != nil {
		return nil, err
	}
	out := &Figure10Result{
		Results:       results,
		CDFFractions:  []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99},
		CDF:           make(map[policy.CacheSystem][]float64),
		Timelines:     make(map[policy.CacheSystem]map[string]*stats.Series),
		RemoteCapMBps: cl.RemoteIO.MBpsValue(),
	}
	for cs, r := range results {
		out.CDF[cs] = stats.SampleCDF(r.JCTs(), out.CDFFractions)
		out.Timelines[cs] = r.Timelines
	}
	// Figure 8: effective vs allocated cache in the SiloD run.
	alloc := results[policy.SiloD].Timelines["cache_alloc"]
	eff := results[policy.SiloD].Timelines["cache_effective"]
	var ratio stats.TimeWeighted
	var lastT float64
	for i := 0; i < alloc.Len() && i < eff.Len(); i++ {
		ta, va := alloc.At(i)
		_, ve := eff.At(i)
		if va > 0 {
			ratio.Observe(ta, ve/va)
			lastT = ta
		}
	}
	out.EffectiveRatio = ratio.Finish(lastT)
	return out, nil
}

// Table renders Figure 10a (average JCT and makespan with speedups over
// each baseline, as the paper annotates).
func (r *Figure10Result) Table() *report.Table {
	t := report.NewTable("Figure 10a: 96-GPU cluster, FIFO",
		"System", "Avg JCT (min)", "vs SiloD", "Makespan (min)", "vs SiloD")
	base := r.Results[policy.SiloD]
	for _, cs := range policy.AllCacheSystems() {
		res := r.Results[cs]
		t.AddRow(cs.String(),
			fmt.Sprintf("%.0f", res.AvgJCT().Minutes()),
			report.Speedup(res.AvgJCT().Minutes(), base.AvgJCT().Minutes()),
			fmt.Sprintf("%.0f", res.Makespan.Minutes()),
			report.Speedup(res.Makespan.Minutes(), base.Makespan.Minutes()))
	}
	return t
}

// CDFTable renders Figure 10b.
func (r *Figure10Result) CDFTable() *report.Table {
	t := report.NewTable("Figure 10b: JCT distribution (minutes at CDF fraction)",
		"System", "p10", "p25", "p50", "p75", "p90", "p99")
	for _, cs := range policy.AllCacheSystems() {
		vals := r.CDF[cs]
		row := []string{cs.String()}
		for _, v := range vals {
			row = append(row, fmt.Sprintf("%.0f", v))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure11Text renders the Figure 11 timelines (remote IO usage, ideal
// and real throughput per system).
func (r *Figure10Result) Figure11Text(points int) string {
	out := fmt.Sprintf("== Figure 11: 96-GPU throughput/remote-IO timelines (capacity %.0f MB/s) ==\n", r.RemoteCapMBps)
	for _, cs := range policy.AllCacheSystems() {
		tl, ok := r.Timelines[cs]
		if !ok {
			continue
		}
		out += fmt.Sprintf("[FIFO-%s]  (t min: real MB/s / ideal MB/s / remote MB/s)\n", cs)
		th := tl["throughput"].Downsample(points)
		id := tl["ideal"].Downsample(points)
		rio := tl["remoteio"].Downsample(points)
		for i := 0; i < th.Len(); i++ {
			tm, v := th.At(i)
			_, vi := id.At(minInt(i, id.Len()-1))
			_, vr := rio.At(minInt(i, rio.Len()-1))
			out += fmt.Sprintf("  t=%8.0f  %9.1f / %9.1f / %9.1f\n", tm, v, vi, vr)
		}
	}
	return out
}

// Figure8Text summarizes the effective-cache finding.
func (r *Figure10Result) Figure8Text() string {
	return fmt.Sprintf("== Figure 8 ==\ntime-averaged effective/allocated cache ratio (SiloD run): %.1f%%\n",
		100*r.EffectiveRatio)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CDFSeries exposes a full JCT CDF for a system (Figure 10b raw form).
func (r *Figure10Result) CDFSeries(cs policy.CacheSystem) []stats.CDFPoint {
	return stats.CDF(r.Results[cs].JCTs())
}

// FidelityRow is one system's fluid-vs-batch comparison at 96-GPU
// scale.
type FidelityRow struct {
	System   policy.CacheSystem
	FluidJCT unit.Duration
	BatchJCT unit.Duration
	FluidMS  unit.Duration
	BatchMS  unit.Duration
}

// JCTError is the fluid engine's relative JCT error.
func (r FidelityRow) JCTError() float64 {
	return stats.RelativeError(r.FluidJCT.Minutes(), r.BatchJCT.Minutes())
}

// MSError is the fluid engine's relative makespan error.
func (r FidelityRow) MSError() float64 {
	return stats.RelativeError(r.FluidMS.Minutes(), r.BatchMS.Minutes())
}

// FidelityResult is the cluster-scale fidelity test.
type FidelityResult struct {
	Rows []FidelityRow
}

// Figure10Fidelity reproduces the paper's 96-GPU simulator fidelity
// claim ("the errors of JCT and makespan are only up to 5.7% and
// 8.5%", §7.2): the fluid engine versus the block-level ground truth on
// the 96-GPU FIFO trace, over the deterministic cache systems. The
// batch engine simulates tens of millions of block events here, so the
// default trace is halved; pass Jobs to override.
// silod:sim-root
func Figure10Fidelity(o Options) (*FidelityResult, error) {
	jobs, err := traceFor(o, 96, 240, 12*unit.Hour)
	if err != nil {
		return nil, err
	}
	cl := clusterPreset(96)
	systems := []policy.CacheSystem{policy.SiloD, policy.CoorDL}
	engines := []sim.Engine{sim.Fluid, sim.Batch}
	// One arm per (system, engine); the batch arms dominate, so the
	// fluid arms ride along on spare workers.
	flat, err := mapArms(o, len(systems)*len(engines), func(i int) (*sim.Result, error) {
		cs, eng := systems[i/len(engines)], engines[i%len(engines)]
		pol, err := policy.Build(policy.FIFOKind, cs, o.seed())
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(sim.Config{
			Cluster: cl, Policy: pol, System: cs, Engine: eng, Seed: o.seed(),
			FullResolve: o.FullResolve,
		}, jobs)
		if err != nil {
			return nil, fmt.Errorf("fidelity %v/%v: %w", cs, eng, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	res := &FidelityResult{}
	for si, cs := range systems {
		fl, ba := flat[si*len(engines)], flat[si*len(engines)+1]
		res.Rows = append(res.Rows, FidelityRow{
			System:   cs,
			FluidJCT: fl.AvgJCT(), FluidMS: fl.Makespan,
			BatchJCT: ba.AvgJCT(), BatchMS: ba.Makespan,
		})
	}
	return res, nil
}

// Table renders the fidelity comparison.
func (r *FidelityResult) Table() *report.Table {
	t := report.NewTable("96-GPU simulator fidelity (fluid vs block-level; paper: <=5.7% JCT, <=8.5% makespan)",
		"System", "Batch JCT", "Fluid JCT", "err", "Batch MS", "Fluid MS", "err")
	for _, row := range r.Rows {
		t.AddRow(row.System.String(),
			fmt.Sprintf("%.0f", row.BatchJCT.Minutes()),
			fmt.Sprintf("%.0f", row.FluidJCT.Minutes()),
			fmt.Sprintf("%.1f%%", 100*row.JCTError()),
			fmt.Sprintf("%.0f", row.BatchMS.Minutes()),
			fmt.Sprintf("%.0f", row.FluidMS.Minutes()),
			fmt.Sprintf("%.1f%%", 100*row.MSError()))
	}
	return t
}
