package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

// Figure16Result holds the curriculum-learning comparison.
type Figure16Result struct {
	StepSizes []int64
	// JCTs[cache][stepIndex] = per-repeat JCT minutes.
	UniformJCT map[int64][]float64
	LRUJCT     map[int64][]float64
	// PacingTable is Figure 16a: fraction of data visible by iteration.
	PacingTable *report.Table
}

// Figure16 reproduces Figure 16 (§7.4): ResNet-50 on ImageNet-22k with
// curriculum learning — samples sorted by difficulty, each batch drawn
// uniformly from the prefix admitted by the exponential pacing function
// — under Uniform caching and LRU. Because resampling makes newly
// cached items immediately reusable, LRU no longer thrashes and both
// policies should produce statistically indistinguishable JCTs.
//
// The iteration counts scale with block granularity: the job trains
// ~39k block-iterations (the paper's ~500k mini-batches), so the paper's
// 50k/75k pacing steps map to 5k/7.5k.
// silod:sim-root
func Figure16(o Options) (*Figure16Result, error) {
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	res := &Figure16Result{
		StepSizes:  []int64{5000, 7500},
		UniformJCT: make(map[int64][]float64),
		LRUJCT:     make(map[int64][]float64),
	}
	repeats := 5
	if o.Quick {
		repeats = 2
	}
	ds := workload.Dataset{Name: "imagenet22k", Size: unit.TiB(1.36)}
	cl := core.Cluster{GPUs: 1, Cache: unit.GiB(700), RemoteIO: unit.MBpsOf(60)}
	totalIters := int64(39000)
	if o.Quick {
		totalIters = 8000
	}
	for _, step := range res.StepSizes {
		cur := &workload.CurriculumSpec{StartingPercent: 0.04, Alpha: 2, StepSize: step}
		for rep := 0; rep < repeats; rep++ {
			spec := workload.JobSpec{
				ID: fmt.Sprintf("curriculum-%d-%d", step, rep), Model: rn50,
				Dataset: ds, NumGPUs: 1, Curriculum: cur,
			}
			// One block per step at the 64 MB granularity.
			spec.NumSteps = totalIters * int64(64*unit.MB/spec.StepBytesTotal())
			for _, cs := range []policy.CacheSystem{policy.SiloD, policy.Alluxio} {
				pol, err := policy.Build(policy.FIFOKind, cs, o.seed()+int64(rep))
				if err != nil {
					return nil, err
				}
				r, err := sim.Run(sim.Config{
					Cluster: cl, Policy: pol, System: cs, Engine: sim.Batch,
					Seed: o.seed() + int64(rep)*7919,
				}, []workload.JobSpec{spec})
				if err != nil {
					return nil, fmt.Errorf("figure16 %v step=%d rep=%d: %w", cs, step, rep, err)
				}
				jct := r.AvgJCT().Minutes()
				if cs == policy.SiloD {
					res.UniformJCT[step] = append(res.UniformJCT[step], jct)
				} else {
					res.LRUJCT[step] = append(res.LRUJCT[step], jct)
				}
			}
		}
	}
	// Figure 16a: the pacing functions themselves.
	pt := report.NewTable("Figure 16a: exponential pacing functions (fraction of data visible)",
		"Iteration", "Step=5k", "Step=7.5k")
	specA := workload.CurriculumSpec{StartingPercent: 0.04, Alpha: 2, StepSize: 5000}
	specB := workload.CurriculumSpec{StartingPercent: 0.04, Alpha: 2, StepSize: 7500}
	for _, it := range []int64{0, 5000, 10000, 15000, 20000, 25000, 30000, 35000, 39000} {
		pt.AddRowf(it,
			fmt.Sprintf("%.0f%%", 100*specA.VisibleFraction(it)),
			fmt.Sprintf("%.0f%%", 100*specB.VisibleFraction(it)))
	}
	res.PacingTable = pt
	return res, nil
}

// Table renders Figure 16b.
func (r *Figure16Result) Table() *report.Table {
	t := report.NewTable("Figure 16b: curriculum learning JCT, Uniform vs LRU (minutes, mean±sd)",
		"Step size", "Uniform cache", "LRU cache", "LRU/Uniform")
	for _, step := range r.StepSizes {
		u, l := r.UniformJCT[step], r.LRUJCT[step]
		t.AddRow(fmt.Sprintf("%d", step),
			fmt.Sprintf("%.1f±%.1f", stats.Mean(u), stats.Stddev(u)),
			fmt.Sprintf("%.1f±%.1f", stats.Mean(l), stats.Stddev(l)),
			fmt.Sprintf("%.3f", stats.Mean(l)/stats.Mean(u)))
	}
	return t
}
