package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/unit"
	"repro/internal/workload"
)

// MicroBenchJobs builds the §7.1.1 workload: four 1-GPU image
// classification jobs (two ResNet-50, two EfficientNetB1) on private
// 1.3 TB synthesized image datasets, plus one 4-GPU BERT job on the
// 20.9 TB web search corpus; epoch counts chosen so each runs ~3,500
// minutes at ideal speed (13 / 10 / 0.07 epochs).
func MicroBenchJobs() ([]workload.JobSpec, error) {
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	eff, err := workload.ModelByName("EfficientNetB1")
	if err != nil {
		return nil, err
	}
	bert, err := workload.ModelByName("BERT")
	if err != nil {
		return nil, err
	}
	mk := func(id string, m workload.Model, ds workload.Dataset, gpus int, epochs float64) workload.JobSpec {
		spec := workload.JobSpec{ID: id, Model: m, Dataset: ds, NumGPUs: gpus}
		spec.NumSteps = int64(epochs * float64(ds.Size) / float64(spec.StepBytesTotal()))
		if spec.NumSteps < 1 {
			spec.NumSteps = 1
		}
		return spec
	}
	syn := func(i int) workload.Dataset {
		return workload.Dataset{Name: fmt.Sprintf("synth-images-%c", 'a'+i), Size: unit.TiB(1.3)}
	}
	return []workload.JobSpec{
		mk("rn50-a", rn50, syn(0), 1, 13),
		mk("rn50-b", rn50, syn(1), 1, 13),
		mk("effb1-a", eff, syn(2), 1, 10),
		mk("effb1-b", eff, syn(3), 1, 10),
		mk("bert", bert, workload.Dataset{Name: "websearch", Size: unit.TiB(20.9)}, 4, 0.07),
	}, nil
}

// MicroCluster is the 8-V100 micro-benchmark cluster: two 4-GPU VMs
// with 1 TB SSD cache each and a 1.6 Gbps (200 MB/s) egress limit.
func MicroCluster() core.Cluster {
	return core.Cluster{GPUs: 8, Cache: unit.TiB(2), RemoteIO: unit.MBpsOf(200)}
}

// Table6Row is one system's micro-benchmark outcome across the three
// fidelity levels. The batch engine plays the paper's "real V100"
// ground truth, the testbed plays the accelerated-K80 methodology, and
// the fluid engine plays the event simulator; relative errors are
// against the batch engine.
type Table6Row struct {
	System   policy.CacheSystem
	BatchJCT unit.Duration
	BatchMS  unit.Duration
	FluidJCT unit.Duration
	FluidMS  unit.Duration
	BedJCT   unit.Duration
	BedMS    unit.Duration
}

// Table6Result aggregates the micro-benchmark.
type Table6Result struct {
	Rows []Table6Row
	// Throughput timelines from the batch engine, Figure 9's series.
	Timelines map[policy.CacheSystem]*stats.Series
	RemoteCap float64 // MB/s, Figure 9's capacity line
}

// Table6Options control the fidelity comparison.
type Table6Options struct {
	Options
	// WithTestbed also runs the (wall-clock-bound) concurrent testbed.
	WithTestbed bool
	// TimeScale for the testbed; 0 means 6000. Higher scales compress
	// wall time further but push per-block sleeps toward the OS timer
	// resolution, inflating compute-bound jobs' runtimes.
	TimeScale float64
}

// Table6 runs the micro-benchmark on all systems and engines.
// silod:sim-root
func Table6(o Table6Options) (*Table6Result, error) {
	jobs, err := MicroBenchJobs()
	if err != nil {
		return nil, err
	}
	cl := MicroCluster()
	res := &Table6Result{
		Timelines: make(map[policy.CacheSystem]*stats.Series),
		RemoteCap: cl.RemoteIO.MBpsValue(),
	}
	scale := o.TimeScale
	if scale <= 0 {
		scale = 6000
	}
	// One arm per (system, engine) simulation; the testbed runs stay
	// sequential below because they are wall-clock bound (time-scaled
	// sleeps), so overlapping them would distort their measurements.
	systems := policy.AllCacheSystems()
	engines := []sim.Engine{sim.Batch, sim.Fluid}
	flat, err := mapArms(o.Options, len(systems)*len(engines), func(i int) (*sim.Result, error) {
		cs, eng := systems[i/len(engines)], engines[i%len(engines)]
		pol, err := policy.Build(policy.FIFOKind, cs, o.seed())
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(sim.Config{
			Cluster: cl, Policy: pol, System: cs, Engine: eng, Seed: o.seed(),
			MetricsInterval: 20 * unit.Minute, FullResolve: o.FullResolve,
		}, jobs)
		if err != nil {
			return nil, fmt.Errorf("table6 %v/%v: %w", cs, eng, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for si, cs := range systems {
		ba, fl := flat[si*len(engines)], flat[si*len(engines)+1]
		row := Table6Row{
			System:   cs,
			BatchJCT: ba.AvgJCT(), BatchMS: ba.Makespan,
			FluidJCT: fl.AvgJCT(), FluidMS: fl.Makespan,
		}
		res.Timelines[cs] = ba.Timelines["throughput"]
		if o.WithTestbed {
			pol, err := policy.Build(policy.FIFOKind, cs, o.seed())
			if err != nil {
				return nil, err
			}
			tr, err := testbed.Run(testbed.Config{
				Cluster: cl, Policy: pol, System: cs,
				TimeScale: scale, BlockSize: unit.GiB(4),
				Seed: o.seed(), MaxWall: 5 * time.Minute,
			}, jobs)
			if err != nil {
				return nil, fmt.Errorf("table6 %v/testbed: %w", cs, err)
			}
			row.BedJCT, row.BedMS = tr.AvgJCT(), tr.Makespan
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the Table 6 rows with relative errors against the batch
// engine.
func (r *Table6Result) Table() *report.Table {
	t := report.NewTable("Table 6: 8-V100 micro-benchmark (minutes; rel. error vs batch engine)",
		"System", "Batch JCT", "Fluid JCT", "err", "Testbed JCT", "err",
		"Batch MS", "Fluid MS", "err", "Testbed MS", "err")
	relOrDash := func(got, want unit.Duration) string {
		if got == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*stats.RelativeError(got.Minutes(), want.Minutes()))
	}
	minOrDash := func(d unit.Duration) string {
		if d == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", d.Minutes())
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.System.String(),
			minOrDash(row.BatchJCT), minOrDash(row.FluidJCT), relOrDash(row.FluidJCT, row.BatchJCT),
			minOrDash(row.BedJCT), relOrDash(row.BedJCT, row.BatchJCT),
			minOrDash(row.BatchMS), minOrDash(row.FluidMS), relOrDash(row.FluidMS, row.BatchMS),
			minOrDash(row.BedMS), relOrDash(row.BedMS, row.BatchMS),
		)
	}
	return t
}

// Figure9 renders the Figure 9 throughput timelines from a Table6Result.
func (r *Table6Result) Figure9(points int) string {
	out := fmt.Sprintf("== Figure 9: total job throughput over time (remote IO capacity %.0f MB/s) ==\n", r.RemoteCap)
	for _, cs := range policy.AllCacheSystems() {
		s, ok := r.Timelines[cs]
		if !ok {
			continue
		}
		out += fmt.Sprintf("[%s]\n", cs)
		ds := s.Downsample(points)
		for i := 0; i < ds.Len(); i++ {
			tm, v := ds.At(i)
			out += fmt.Sprintf("  t=%7.0fmin  %8.1f MB/s\n", tm, v)
		}
	}
	return out
}

// Figure4Result captures the two-job motivating example.
type Figure4Result struct {
	// Steady-state per-job speeds (MB/s) and the overall average speed
	// across the run, per system.
	SiloDSpeeds  map[string]float64
	QuiverSpeeds map[string]float64
	SiloDAvg     float64
	QuiverAvg    float64
	SiloDMin     float64
	QuiverMin    float64
}

// Figure4 reproduces the Figure 4 example: two 1-V100 ResNet-50 jobs
// training 1.36 TB ImageNet-22k on a cluster with 1.4 TB cache and a
// 50 MB/s remote link. SiloD's max-min policy caches the dataset once
// for both jobs (dataset-level sharing, §6) so both converge to the
// ideal speed after the first epoch; Quiver's benefit-driven allocation
// accounts cache per job, so only one job's copy fits and the other is
// stuck at the remote link speed.
// silod:sim-root
func Figure4(o Options) (*Figure4Result, error) {
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	epochs := 13.0
	mkJob := func(id, ds string) workload.JobSpec {
		spec := workload.JobSpec{
			ID: id, Model: rn50, NumGPUs: 1,
			Dataset: workload.Dataset{Name: ds, Size: unit.TiB(1.36)},
		}
		spec.NumSteps = int64(epochs * float64(spec.Dataset.Size) / float64(spec.StepBytesTotal()))
		return spec
	}
	cl := core.Cluster{GPUs: 2, Cache: unit.TiB(1.4), RemoteIO: unit.MBpsOf(50)}
	run := func(cs policy.CacheSystem, k policy.SchedulerKind, shared bool) (*sim.Result, error) {
		a, b := "imagenet22k", "imagenet22k"
		if !shared {
			a, b = "imagenet22k-0", "imagenet22k-1"
		}
		jobs := []workload.JobSpec{mkJob("job-0", a), mkJob("job-1", b)}
		return runOne(o, k, cs, cl, jobs, func(c *sim.Config) {
			c.MetricsInterval = 30 * unit.Minute
		})
	}
	// SiloD: Gavel max-min with the shared dataset.
	sres, err := run(policy.SiloD, policy.GavelKind, true)
	if err != nil {
		return nil, err
	}
	// Quiver: job-granular benefit accounting — private dataset copies.
	qres, err := run(policy.Quiver, policy.GavelKind, false)
	if err != nil {
		return nil, err
	}
	speeds := func(r *sim.Result) map[string]float64 {
		out := make(map[string]float64)
		total := float64(mkJob("x", "y").TotalBytes()) / float64(unit.MB)
		for _, j := range r.Jobs {
			out[j.ID] = total / j.JCT().Seconds()
		}
		return out
	}
	res := &Figure4Result{SiloDSpeeds: speeds(sres), QuiverSpeeds: speeds(qres)}
	avgMin := func(m map[string]float64) (avg, mn float64) {
		ids := make([]string, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		mn = 1e18
		for _, id := range ids {
			v := m[id]
			avg += v
			if v < mn {
				mn = v
			}
		}
		return avg / float64(len(m)), mn
	}
	res.SiloDAvg, res.SiloDMin = avgMin(res.SiloDSpeeds)
	res.QuiverAvg, res.QuiverMin = avgMin(res.QuiverSpeeds)
	return res, nil
}

// Table renders the Figure 4 comparison.
func (r *Figure4Result) Table() *report.Table {
	t := report.NewTable("Figure 4: two ResNet-50 jobs, 1.4TB cache, 50MB/s remote (avg speed MB/s)",
		"System", "Job-0", "Job-1", "Min", "Avg")
	t.AddRowf("SiloD (max-min)", r.SiloDSpeeds["job-0"], r.SiloDSpeeds["job-1"], r.SiloDMin, r.SiloDAvg)
	t.AddRowf("Quiver", r.QuiverSpeeds["job-0"], r.QuiverSpeeds["job-1"], r.QuiverMin, r.QuiverAvg)
	return t
}
