package experiments

import "testing"

// TestIncrementalArtifactsByteIdentical is the experiments-layer gate
// for the incremental-scheduling fast paths: running the same figure
// with Options.FullResolve (every round re-solved from scratch) must
// render byte-identical artifacts to the default incremental run.
// Figure10Fidelity sweeps both simulation engines; Figure12 sweeps the
// full 3-scheduler x 4-cache-system arm matrix, so together they drive
// the delta memo, the warm-started bisections and the rate memo through
// every production code path.
func TestIncrementalArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-scale experiment")
	}
	render := map[string]func(o Options) (string, error){
		"Figure10Fidelity": func(o Options) (string, error) {
			r, err := Figure10Fidelity(o)
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		},
		"Figure12": func(o Options) (string, error) {
			r, err := Figure12(o)
			if err != nil {
				return "", err
			}
			return r.JCTTable().String() + r.MakespanTable().String() + r.FairnessTable().String(), nil
		},
	}
	for name, run := range render {
		t.Run(name, func(t *testing.T) {
			full, err := run(Options{Seed: 42, Quick: true, Sequential: true, FullResolve: true})
			if err != nil {
				t.Fatal(err)
			}
			incr, err := run(Options{Seed: 42, Quick: true, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			if full != incr {
				t.Errorf("incremental artifact differs from full-resolve reference:\n--- full resolve ---\n%s\n--- incremental ---\n%s", full, incr)
			}
			if full == "" {
				t.Error("empty artifact")
			}
		})
	}
}
