package experiments

import "testing"

func TestAblationDesignChoicesQuick(t *testing.T) {
	r, err := AblationDesignChoices(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Table())
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestAblationEngineCost(t *testing.T) {
	r, err := AblationEngineCost(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fluid: %.0fmin %d events; batch: %.0fmin %d events",
		r.FluidJCT.Minutes(), r.FluidEvents, r.BatchJCT.Minutes(), r.BatchEvents)
	// The fluid engine must be orders of magnitude cheaper while
	// agreeing with the batch ground truth within a few percent.
	if r.FluidEvents*100 > r.BatchEvents {
		t.Errorf("fluid engine not >100x cheaper: %d vs %d events", r.FluidEvents, r.BatchEvents)
	}
	err2 := (r.FluidJCT.Minutes() - r.BatchJCT.Minutes()) / r.BatchJCT.Minutes()
	if err2 < 0 {
		err2 = -err2
	}
	if err2 > 0.05 {
		t.Errorf("engine disagreement %.1f%% exceeds 5%%", 100*err2)
	}
}

func TestAblationPrefetch(t *testing.T) {
	r, err := AblationPrefetch(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Table())
	// Prefetching must never hurt (it only uses idle resources).
	if r.Prefetch.AvgJCT() > r.Baseline.AvgJCT()*101/100 {
		t.Errorf("prefetch worsened JCT: %.0f -> %.0f min",
			r.Baseline.AvgJCT().Minutes(), r.Prefetch.AvgJCT().Minutes())
	}
}

func TestGavelObjectivesQuick(t *testing.T) {
	r, err := GavelObjectives(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Table())
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AvgJCT <= 0 || row.Makespan <= 0 {
			t.Errorf("objective %v produced empty results", row.Objective)
		}
	}
}

func TestMixedCluster(t *testing.T) {
	r, err := MixedCluster(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Table())
	if r.RegularJCTPartitioned <= 0 || r.IrregularJCTNaive <= 0 {
		t.Fatal("missing results")
	}
	// Partitioning must not penalize the regular jobs relative to the
	// naive mixing (the §6 guarantee).
	if r.RegularJCTPartitioned > r.RegularJCTNaive*110/100 {
		t.Errorf("partitioning hurt regular jobs: %.1f vs %.1f min",
			r.RegularJCTPartitioned.Minutes(), r.RegularJCTNaive.Minutes())
	}
}
