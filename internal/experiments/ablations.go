package experiments

import (
	"fmt"

	"repro/internal/core"

	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

// DesignAblationResult holds the design-choice ablation: each row
// disables one mechanism of SiloD's greedy co-design and reruns the
// 96-GPU FIFO experiment.
type DesignAblationResult struct {
	Rows []DesignAblationRow
}

// DesignAblationRow is one ablated variant.
type DesignAblationRow struct {
	Name     string
	AvgJCT   unit.Duration
	Makespan unit.Duration
}

// AblationDesignChoices quantifies the design decisions DESIGN.md calls
// out, against the full FIFO-SiloD configuration:
//
//   - partial caching (vs whole-dataset-only placement),
//   - warm-data hysteresis (vs churn-prone pure efficiency ordering),
//   - the warm-up investment pass (vs plain fair-share remote IO),
//   - work-conserving throttling (vs strict allocation enforcement).
//
// silod:sim-root
func AblationDesignChoices(o Options) (*DesignAblationResult, error) {
	jobs, err := traceFor(o, 96, 480, 24*unit.Hour)
	if err != nil {
		return nil, err
	}
	cl := clusterPreset(96)
	variants := []struct {
		name   string
		alloc  policy.GreedyAllocator
		mutate func(*sim.Config)
	}{
		{name: "full co-design"},
		{name: "no partial caching", alloc: policy.GreedyAllocator{WholeDatasetsOnly: true}},
		{name: "no warm-data hysteresis", alloc: policy.GreedyAllocator{NoHysteresis: true}},
		{name: "no warm-up investment", alloc: policy.GreedyAllocator{PlainFairIO: true}},
		{name: "no work conservation", mutate: func(c *sim.Config) { c.DisableWorkConserving = true }},
	}
	rows, err := mapArms(o, len(variants), func(i int) (DesignAblationRow, error) {
		v := variants[i]
		pol := &policy.FIFO{Storage: v.alloc}
		cfg := sim.Config{
			Cluster: cl, Policy: pol, System: policy.SiloD,
			Engine: sim.Fluid, Seed: o.seed(), FullResolve: o.FullResolve,
		}
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		r, err := sim.Run(cfg, jobs)
		if err != nil {
			return DesignAblationRow{}, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		return DesignAblationRow{Name: v.name, AvgJCT: r.AvgJCT(), Makespan: r.Makespan}, nil
	})
	if err != nil {
		return nil, err
	}
	return &DesignAblationResult{Rows: rows}, nil
}

// Table renders the design ablation.
func (r *DesignAblationResult) Table() *report.Table {
	t := report.NewTable("Design ablation: FIFO-SiloD on the 96-GPU trace",
		"Variant", "Avg JCT (min)", "vs full", "Makespan (min)")
	base := r.Rows[0].AvgJCT.Minutes()
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.0f", row.AvgJCT.Minutes()),
			fmt.Sprintf("%+.1f%%", 100*(row.AvgJCT.Minutes()-base)/base),
			fmt.Sprintf("%.0f", row.Makespan.Minutes()))
	}
	return t
}

// EngineCostResult compares the two simulation engines on the same
// workload: wall time, internal events, and result agreement.
type EngineCostResult struct {
	FluidJCT    unit.Duration
	BatchJCT    unit.Duration
	FluidEvents int
	BatchEvents int
}

// AblationEngineCost runs the micro-benchmark on both engines and
// reports the cost/fidelity trade-off that justifies having a fluid
// fast-forward mode at all.
// silod:sim-root
func AblationEngineCost(o Options) (*EngineCostResult, error) {
	jobs, err := MicroBenchJobs()
	if err != nil {
		return nil, err
	}
	cl := MicroCluster()
	engines := []sim.Engine{sim.Fluid, sim.Batch}
	arms, err := mapArms(o, len(engines), func(i int) (*sim.Result, error) {
		pol, err := policy.Build(policy.FIFOKind, policy.SiloD, o.seed())
		if err != nil {
			return nil, err
		}
		return sim.Run(sim.Config{Cluster: cl, Policy: pol, System: policy.SiloD,
			Engine: engines[i], Seed: o.seed(), FullResolve: o.FullResolve}, jobs)
	})
	if err != nil {
		return nil, err
	}
	return &EngineCostResult{
		FluidJCT: arms[0].AvgJCT(), FluidEvents: arms[0].Events,
		BatchJCT: arms[1].AvgJCT(), BatchEvents: arms[1].Events,
	}, nil
}

// PrefetchResult compares FIFO-SiloD with and without the Hoard-style
// dataset prefetching extension.
type PrefetchResult struct {
	Baseline *sim.Result
	Prefetch *sim.Result
}

// AblationPrefetch evaluates the prefetching extension (related work
// [58]): queued jobs' datasets receive leftover cache and are warmed
// with idle egress bandwidth, so jobs start their first epoch already
// cached. Hoard-style prefetching "is useful when there is redundant
// remote IO bandwidth" — and needs spare cache too — so the experiment
// uses a cache-rich 96-GPU configuration (4x the usual provisioning);
// in the cache-scarce default the extension is a strict no-op, which
// the tests also pin.
// silod:sim-root
func AblationPrefetch(o Options) (*PrefetchResult, error) {
	jobs, err := traceFor(o, 96, 480, 24*unit.Hour)
	if err != nil {
		return nil, err
	}
	cl := clusterPreset(96)
	cl.Cache *= 4
	arms, err := mapArms(o, 2, func(i int) (*sim.Result, error) {
		if i == 0 {
			return runOne(o, policy.FIFOKind, policy.SiloD, cl, jobs, nil)
		}
		pol := &policy.FIFO{Storage: policy.GreedyAllocator{PrefetchQueued: true}}
		return sim.Run(sim.Config{
			Cluster: cl, Policy: pol, System: policy.SiloD,
			Engine: sim.Fluid, Seed: o.seed(), EnablePrefetch: true,
			FullResolve: o.FullResolve,
		}, jobs)
	})
	if err != nil {
		return nil, err
	}
	return &PrefetchResult{Baseline: arms[0], Prefetch: arms[1]}, nil
}

// Table renders the prefetch comparison.
func (r *PrefetchResult) Table() *report.Table {
	t := report.NewTable("Extension: Hoard-style dataset prefetching (FIFO-SiloD, 96 GPUs, cache-rich)",
		"Config", "Avg JCT (min)", "Makespan (min)")
	t.AddRowf("no prefetch", r.Baseline.AvgJCT().Minutes(), r.Baseline.Makespan.Minutes())
	t.AddRowf("prefetch queued datasets", r.Prefetch.AvgJCT().Minutes(), r.Prefetch.Makespan.Minutes())
	return t
}

// ObjectivesResult compares the Gavel objectives the SiloD framework
// supports beyond max-min fairness (§5.2: "This extension can not only
// support the max-min fairness objective but also all other objectives
// supported by Gavel").
type ObjectivesResult struct {
	Rows []ObjectiveRow
}

// ObjectiveRow is one Gavel objective's outcome.
type ObjectiveRow struct {
	Objective policy.GavelObjective
	AvgJCT    unit.Duration
	Makespan  unit.Duration
	Fairness  float64 // windowed average fairness ratio
	P99JCT    float64 // minutes
}

// GavelObjectives runs the 400-GPU trace under each Gavel objective
// with the SiloD-enhanced estimator. Expected shape: the throughput
// objective wins on makespan/JCT, max-min on the fairness ratio, and
// finish-time fairness on tail JCT.
// silod:sim-root
func GavelObjectives(o Options) (*ObjectivesResult, error) {
	jobs, err := traceFor(o, 400, 1000, 12*unit.Hour)
	if err != nil {
		return nil, err
	}
	cl := clusterPreset(400)
	objectives := []policy.GavelObjective{
		policy.MaxMinFairness, policy.TotalThroughput, policy.FinishTimeFairness,
	}
	rows, err := mapArms(o, len(objectives), func(i int) (ObjectiveRow, error) {
		obj := objectives[i]
		pol := &policy.Gavel{Enhanced: true, Objective: obj}
		r, err := sim.Run(sim.Config{
			Cluster: cl, Policy: pol, System: policy.SiloD,
			Engine: sim.Fluid, Seed: o.seed(), FullResolve: o.FullResolve,
		}, jobs)
		if err != nil {
			return ObjectiveRow{}, fmt.Errorf("objective %v: %w", obj, err)
		}
		return ObjectiveRow{
			Objective: obj,
			AvgJCT:    r.AvgJCT(),
			Makespan:  r.Makespan,
			Fairness:  seriesMeanUpTo(r.Timelines["fairness"], (12 * unit.Hour).Minutes()),
			P99JCT:    stats.Percentile(r.JCTs(), 99),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &ObjectivesResult{Rows: rows}, nil
}

// Table renders the objective comparison.
func (r *ObjectivesResult) Table() *report.Table {
	t := report.NewTable("Gavel objectives under the SiloD framework (400 GPUs)",
		"Objective", "Avg JCT (min)", "p99 JCT (min)", "Makespan (min)", "Fairness ratio")
	for _, row := range r.Rows {
		t.AddRowf(row.Objective.String(), row.AvgJCT.Minutes(), row.P99JCT,
			row.Makespan.Minutes(), row.Fairness)
	}
	return t
}

// MixedClusterResult is the §6 irregular-partitioning experiment.
type MixedClusterResult struct {
	// RegularJCTPartitioned is the regular jobs' average JCT when
	// curriculum jobs are flagged irregular and partitioned (§6).
	RegularJCTPartitioned unit.Duration
	// RegularJCTNaive is the same when curriculum jobs masquerade as
	// regular (the estimator's assumptions silently violated).
	RegularJCTNaive unit.Duration
	// IrregularJCTPartitioned / IrregularJCTNaive are the curriculum
	// jobs' averages under each regime.
	IrregularJCTPartitioned unit.Duration
	IrregularJCTNaive       unit.Duration
}

// MixedCluster evaluates §6's "handling irregular data access": a
// cluster mixing regular DL jobs with curriculum-learning jobs, run on
// the block-level engine with (a) the framework partitioning irregular
// jobs to a fallback share and (b) the curriculum jobs treated as
// regular. Partitioning shields the regular jobs' estimator-driven
// allocation from the irregular jobs' mis-estimation.
// silod:sim-root
func MixedCluster(o Options) (*MixedClusterResult, error) {
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	cur := &workload.CurriculumSpec{StartingPercent: 0.1, Alpha: 2, StepSize: 500}
	mk := func(id string, i int, irregular bool) workload.JobSpec {
		spec := workload.JobSpec{
			ID: id, Model: rn50, NumGPUs: 1,
			Dataset: workload.Dataset{Name: "ds-" + id, Size: unit.GiB(48)},
		}
		spec.NumSteps = int64(3 * float64(spec.Dataset.Size) / float64(spec.StepBytesTotal()))
		if irregular {
			spec.Curriculum = cur
		}
		return spec
	}
	jobs := []workload.JobSpec{
		mk("reg-0", 0, false), mk("reg-1", 1, false), mk("reg-2", 2, false),
		mk("cur-0", 3, true), mk("cur-1", 4, true),
	}
	cl := core.Cluster{GPUs: 5, Cache: unit.GiB(120), RemoteIO: unit.MBpsOf(200)}
	run := func(partition bool) (*sim.Result, error) {
		inner, err := policy.Build(policy.FIFOKind, policy.SiloD, o.seed())
		if err != nil {
			return nil, err
		}
		trace := jobs
		if !partition {
			// Strip the irregular flag path: the framework only
			// partitions jobs the JobView marks irregular, and the
			// simulator derives that from Curriculum != nil; run the
			// inner policy directly so everything is treated regular.
			return sim.Run(sim.Config{Cluster: cl, Policy: inner, System: policy.SiloD,
				Engine: sim.Batch, Seed: o.seed(), FullResolve: o.FullResolve}, trace)
		}
		fw := (&core.Framework{Policy: inner}).AsPolicy()
		return sim.Run(sim.Config{Cluster: cl, Policy: fw, System: policy.SiloD,
			Engine: sim.Batch, Seed: o.seed(), FullResolve: o.FullResolve}, trace)
	}
	arms, err := mapArms(o, 2, func(i int) (*sim.Result, error) {
		return run(i == 0)
	})
	if err != nil {
		return nil, err
	}
	part, naive := arms[0], arms[1]
	avg := func(r *sim.Result, prefix string) unit.Duration {
		var sum float64
		var n int
		for _, j := range r.Jobs {
			if len(j.ID) >= len(prefix) && j.ID[:len(prefix)] == prefix {
				sum += float64(j.JCT())
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return unit.Duration(sum / float64(n))
	}
	return &MixedClusterResult{
		RegularJCTPartitioned:   avg(part, "reg"),
		RegularJCTNaive:         avg(naive, "reg"),
		IrregularJCTPartitioned: avg(part, "cur"),
		IrregularJCTNaive:       avg(naive, "cur"),
	}, nil
}

// Table renders the mixed-cluster comparison.
func (r *MixedClusterResult) Table() *report.Table {
	t := report.NewTable("Mixed cluster (§6): regular + curriculum jobs, avg JCT (minutes)",
		"Config", "Regular jobs", "Curriculum jobs")
	t.AddRowf("partitioned (SiloD, §6)", r.RegularJCTPartitioned.Minutes(), r.IrregularJCTPartitioned.Minutes())
	t.AddRowf("naive (all treated regular)", r.RegularJCTNaive.Minutes(), r.IrregularJCTNaive.Minutes())
	return t
}
