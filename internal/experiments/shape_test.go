package experiments

import (
	"math"
	"testing"

	"repro/internal/policy"
)

// TestTable6FidelityQuick checks the headline fidelity claim on the
// micro-benchmark: the fluid engine agrees with the block-level batch
// engine within a few percent for the deterministic systems (the paper
// reports 0.4-3.0% for its simulator).
func TestTable6FidelityQuick(t *testing.T) {
	r, err := Table6(Table6Options{Options: Options{Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.System == policy.Quiver {
			// Quiver's profiling noise draws differently per engine;
			// its spread reflects its own run-to-run variance.
			continue
		}
		e := math.Abs(row.FluidJCT.Minutes()-row.BatchJCT.Minutes()) / row.BatchJCT.Minutes()
		t.Logf("%v: batch=%.0f fluid=%.0f err=%.2f%%", row.System,
			row.BatchJCT.Minutes(), row.FluidJCT.Minutes(), 100*e)
		limit := 0.05
		if row.System == policy.Alluxio {
			limit = 0.12 // the Che approximation is analytic, not exact
		}
		if e > limit {
			t.Errorf("%v fidelity error %.1f%% exceeds %.0f%%", row.System, 100*e, 100*limit)
		}
	}
	// The paper's Table 6 ordering: SiloD best, Alluxio worst.
	byJCT := map[policy.CacheSystem]float64{}
	for _, row := range r.Rows {
		byJCT[row.System] = row.BatchJCT.Minutes()
	}
	if byJCT[policy.SiloD] >= byJCT[policy.CoorDL] || byJCT[policy.SiloD] >= byJCT[policy.Alluxio] {
		t.Errorf("SiloD not best: %v", byJCT)
	}
}

// TestFigure12QuickStructure validates the matrix is complete and that
// SiloD never loses badly in any cell even at the tiny quick scale.
func TestFigure12QuickStructure(t *testing.T) {
	r, err := Figure12(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range policy.AllSchedulerKinds() {
		res, ok := r.Results[k]
		if !ok {
			t.Fatalf("missing scheduler %v", k)
		}
		silod := res[policy.SiloD].AvgJCT().Minutes()
		for _, cs := range policy.AllCacheSystems() {
			rr, ok := res[cs]
			if !ok || len(rr.Jobs) == 0 {
				t.Fatalf("missing %v/%v", k, cs)
			}
			if v := rr.AvgJCT().Minutes(); v < silod*0.9 {
				t.Errorf("%v/%v JCT %.0f clearly beats SiloD %.0f", k, cs, v, silod)
			}
		}
	}
	for _, cs := range policy.AllCacheSystems() {
		if r.Fairness[cs] == nil {
			t.Errorf("missing fairness series for %v", cs)
		}
	}
}

// TestFigure14bTrendQuick: faster GPUs must not shrink SiloD's gain
// over Quiver (the paper's Figure 14b trend).
func TestFigure14bTrendQuick(t *testing.T) {
	r, err := Figure14b(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gains: %v", r.Gain)
	if len(r.Gain) != 3 {
		t.Fatalf("%d points", len(r.Gain))
	}
	if r.Gain[2] < r.Gain[0]*0.9 {
		t.Errorf("gain shrank with GPU speed: %v", r.Gain)
	}
}

// TestFigure15QuickStructure: the sharing sweep is complete and sharing
// never hurts at the Gavel row.
func TestFigure15QuickStructure(t *testing.T) {
	r, err := Figure15(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SharePercent) != 4 {
		t.Fatalf("%d share points", len(r.SharePercent))
	}
	for _, k := range policy.AllSchedulerKinds() {
		if len(r.JCT[k]) != 4 {
			t.Fatalf("missing JCT series for %v", k)
		}
		first, last := r.JCT[k][0], r.JCT[k][3]
		t.Logf("%v: %.0f -> %.0f min (0%% -> 100%% sharing)", k, first, last)
		if last > first*1.15 {
			t.Errorf("%v: full sharing made JCT worse: %.0f -> %.0f", k, first, last)
		}
	}
}

// TestAblationNoIOQuick: the §7.2 ablation direction — disabling IO
// control must not improve fairness.
func TestAblationNoIOQuick(t *testing.T) {
	r, err := AblationNoIO(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	with := r.WithControl.AvgFairness()
	without := r.WithoutControl.AvgFairness()
	t.Logf("fairness with=%.2f without=%.2f", with, without)
	if without > with*1.1 {
		t.Errorf("disabling IO control improved fairness: %.2f -> %.2f", with, without)
	}
}

// TestFigure2Quick: the no-cache demand peak exceeds the Table 5 egress
// limit — the paper's motivating bottleneck.
func TestFigure2Quick(t *testing.T) {
	r, err := Figure2(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("peak demand %.0f Gbps", r.Peak)
	if r.Peak < 32 {
		t.Errorf("peak demand %.0f Gbps below the 32 Gbps egress limit — no bottleneck to solve", r.Peak)
	}
}

// TestFigure10FidelityQuick: the engines agree within the paper's
// tolerance at reduced 96-GPU scale.
func TestFigure10FidelityQuick(t *testing.T) {
	r, err := Figure10Fidelity(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Table())
	for _, row := range r.Rows {
		if row.JCTError() > 0.06 {
			t.Errorf("%v JCT error %.1f%% exceeds the paper's 5.7%% envelope+margin", row.System, 100*row.JCTError())
		}
		if row.MSError() > 0.09 {
			t.Errorf("%v makespan error %.1f%% exceeds 8.5%%+margin", row.System, 100*row.MSError())
		}
	}
}
