package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/unit"
	"repro/internal/workload"
)

// The multi-tenant chaos experiment: three tenants (one per SLO class)
// share an 8-GPU cluster while a deterministic fault schedule takes
// half the GPUs and half the cache away mid-run. The reverse-SLO
// preemption order plus SLO-weighted cache/IO allocation should keep
// the critical tenant inside its fault-free envelope — modulo the
// estimator's remote-IO-bound floor when its cache is hit — while the
// sheddable tenant absorbs the lost capacity.

// TenantChaosCluster is the experiment cluster: the 8-V100 micro
// cluster with the cache halved to 1 TiB so the three tenants' ~2 TiB
// of datasets contend for it.
func TenantChaosCluster() core.Cluster {
	return core.Cluster{GPUs: 8, Cache: unit.TiB(1), RemoteIO: unit.MBpsOf(200)}
}

// TenantChaosRegistry returns the three-tenant registry: acme
// (critical, unlimited), beta (standard, unlimited), gamma (sheddable,
// capped at 3 GPUs and 100 MB/s egress so the admission controller and
// the policy clamp both have something to enforce).
func TenantChaosRegistry() *tenant.Registry {
	reg := tenant.NewRegistry()
	for _, t := range []tenant.Tenant{
		{ID: "acme", Class: tenant.Critical},
		{ID: "beta", Class: tenant.Standard},
		{ID: "gamma", Class: tenant.Sheddable, Quota: tenant.Quota{GPUs: 3, Egress: unit.MBpsOf(100)}},
	} {
		if err := reg.Register(t); err != nil {
			panic(fmt.Sprintf("experiments: tenant registry: %v", err)) // static set; cannot fail
		}
	}
	return reg
}

// TenantChaosJobs builds the eight-job trace: two critical ResNet-50
// jobs on a shared 400 GiB dataset, two standard EfficientNetB1 jobs on
// a shared 400 GiB dataset, and four sheddable ResNet-50 jobs on
// private 300 GiB datasets. All jobs are 1-GPU and submitted at t=0.
func TenantChaosJobs() ([]workload.JobSpec, error) {
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	eff, err := workload.ModelByName("EfficientNetB1")
	if err != nil {
		return nil, err
	}
	mk := func(id string, m workload.Model, ds workload.Dataset, ten string, slo tenant.SLOClass, epochs float64) workload.JobSpec {
		spec := workload.JobSpec{ID: id, Model: m, Dataset: ds, NumGPUs: 1, Tenant: ten, SLO: slo}
		spec.NumSteps = int64(epochs * float64(ds.Size) / float64(spec.StepBytesTotal()))
		if spec.NumSteps < 1 {
			spec.NumSteps = 1
		}
		return spec
	}
	critDS := workload.Dataset{Name: "crit-images", Size: unit.GiB(400)}
	stdDS := workload.Dataset{Name: "std-images", Size: unit.GiB(400)}
	jobs := []workload.JobSpec{
		mk("crit-a", rn50, critDS, "acme", tenant.Critical, 6),
		mk("crit-b", rn50, critDS, "acme", tenant.Critical, 6),
		mk("std-a", eff, stdDS, "beta", tenant.Standard, 5),
		mk("std-b", eff, stdDS, "beta", tenant.Standard, 5),
	}
	for i := 0; i < 4; i++ {
		ds := workload.Dataset{Name: fmt.Sprintf("shed-images-%c", 'a'+i), Size: unit.GiB(300)}
		jobs = append(jobs, mk(fmt.Sprintf("shed-%c", 'a'+i), rn50, ds, "gamma", tenant.Sheddable, 4))
	}
	return jobs, nil
}

// TenantChaosSchedule is the deterministic capacity-shock schedule: at
// t=2h half the GPUs die, at t=3h half the cache is lost, and both
// recover at t=8h.
func TenantChaosSchedule() *faults.Schedule {
	return &faults.Schedule{Events: []faults.Event{
		{At: unit.Time(2 * 3600), Kind: faults.KindGPULoss, GPUs: 4},
		{At: unit.Time(3 * 3600), Kind: faults.KindCacheLoss, Cache: unit.GiB(512)},
		{At: unit.Time(8 * 3600), Kind: faults.KindGPURestore, GPUs: 4},
		{At: unit.Time(8 * 3600), Kind: faults.KindCacheRestore, Cache: unit.GiB(512)},
	}}
}

// TenantChaosRow is one (engine, SLO class) outcome.
type TenantChaosRow struct {
	Engine      string
	Class       string
	CleanJCT    unit.Duration // class mean JCT, fault-free run
	FaultJCT    unit.Duration // class mean JCT, chaos run
	Preemptions float64       // fault preemptions charged to the class (chaos run)
	TrainedGiB  float64       // tenant trained bytes (chaos run)
}

// TenantChaosResult aggregates the experiment.
type TenantChaosResult struct {
	Rows []TenantChaosRow
	// CleanMakespan / FaultMakespan are keyed by engine name.
	CleanMakespan map[string]unit.Duration
	FaultMakespan map[string]unit.Duration
}

// tenantChaosArm is one simulation run's harvest.
type tenantChaosArm struct {
	res  *sim.Result
	snap metrics.Snapshot
}

// runTenantChaosArm executes one (engine, faulted?) run with a fresh
// metric registry and the tenant-aware policy stack.
func runTenantChaosArm(eng sim.Engine, faulted bool, seed int64) (*tenantChaosArm, error) {
	jobs, err := TenantChaosJobs()
	if err != nil {
		return nil, err
	}
	pol, err := policy.BuildTenant(policy.FIFOKind, policy.SiloD, seed, TenantChaosRegistry())
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry("tenant-chaos")
	cfg := sim.Config{
		Cluster:         TenantChaosCluster(),
		Policy:          pol,
		System:          policy.SiloD,
		Engine:          eng,
		Seed:            seed,
		MetricsInterval: 20 * unit.Minute,
		Metrics:         reg,
	}
	if faulted {
		cfg.Faults = TenantChaosSchedule()
	}
	res, err := sim.Run(cfg, jobs)
	if err != nil {
		return nil, fmt.Errorf("tenant-chaos %v faulted=%v: %w", eng, faulted, err)
	}
	return &tenantChaosArm{res: res, snap: reg.Snapshot()}, nil
}

// classMeanJCT averages the JCT of the jobs whose tenant has the class.
func classMeanJCT(res *sim.Result, jobs []workload.JobSpec, class tenant.SLOClass) unit.Duration {
	classOf := make(map[string]tenant.SLOClass, len(jobs))
	for _, j := range jobs {
		classOf[j.ID] = j.SLO
	}
	var sum float64
	var n int
	for _, st := range res.Jobs {
		if classOf[st.ID] == class {
			sum += float64(st.JCT())
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return unit.Duration(sum / float64(n))
}

// MultiTenantChaos runs the seeded multi-tenant chaos experiment on
// both engines, fault-free and faulted (four arms), and reports the
// per-class protection outcome.
// silod:sim-root
func MultiTenantChaos(o Options) (*TenantChaosResult, error) {
	jobs, err := TenantChaosJobs()
	if err != nil {
		return nil, err
	}
	engines := []sim.Engine{sim.Fluid, sim.Batch}
	arms, err := mapArms(o, 2*len(engines), func(i int) (*tenantChaosArm, error) {
		return runTenantChaosArm(engines[i/2], i%2 == 1, o.seed())
	})
	if err != nil {
		return nil, err
	}
	tenantOf := map[tenant.SLOClass]string{
		tenant.Critical:  "acme",
		tenant.Standard:  "beta",
		tenant.Sheddable: "gamma",
	}
	out := &TenantChaosResult{
		CleanMakespan: make(map[string]unit.Duration),
		FaultMakespan: make(map[string]unit.Duration),
	}
	for ei, eng := range engines {
		clean, faulted := arms[ei*2], arms[ei*2+1]
		out.CleanMakespan[eng.String()] = clean.res.Makespan
		out.FaultMakespan[eng.String()] = faulted.res.Makespan
		for _, class := range tenant.Classes() {
			out.Rows = append(out.Rows, TenantChaosRow{
				Engine:   eng.String(),
				Class:    class.String(),
				CleanJCT: classMeanJCT(clean.res, jobs, class),
				FaultJCT: classMeanJCT(faulted.res, jobs, class),
				Preemptions: faulted.snap.CounterValue("silod_faults_slo_preemptions_total",
					map[string]string{"slo": class.String()}),
				TrainedGiB: faulted.snap.CounterValue("silod_tenant_trained_bytes_total",
					map[string]string{"tenant": tenantOf[class]}) / float64(unit.GiB(1)),
			})
		}
	}
	return out, nil
}

// Table renders the per-class chaos outcome.
func (r *TenantChaosResult) Table() *report.Table {
	t := report.NewTable("Multi-tenant chaos: per-SLO-class outcome (4 of 8 GPUs + 512 GiB cache lost 2h-8h)",
		"Engine", "Class", "Clean JCT (min)", "Chaos JCT (min)", "Slowdown", "Fault preempts", "Trained GiB")
	for _, row := range r.Rows {
		slow := "-"
		if row.CleanJCT > 0 {
			slow = fmt.Sprintf("%.2fx", float64(row.FaultJCT)/float64(row.CleanJCT))
		}
		t.AddRow(row.Engine, row.Class,
			fmt.Sprintf("%.0f", row.CleanJCT.Minutes()),
			fmt.Sprintf("%.0f", row.FaultJCT.Minutes()),
			slow,
			fmt.Sprintf("%.0f", row.Preemptions),
			fmt.Sprintf("%.0f", row.TrainedGiB),
		)
	}
	return t
}
