package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

// fixedPolicy grants every job its gang plus a fixed cache quota and
// remote IO rate — the controlled-allocation harness for validating the
// closed-form estimator against block-level simulation.
type fixedPolicy struct {
	cache unit.Bytes
	io    unit.Bandwidth
}

func (p *fixedPolicy) Name() string { return "fixed" }

func (p *fixedPolicy) Assign(c core.Cluster, now unit.Time, jobs []core.JobView) core.Assignment {
	a := core.NewAssignment()
	for _, j := range jobs {
		a.GPUs[j.ID] = j.NumGPUs
		a.CacheQuota[j.DatasetKey] = p.cache
		a.RemoteIO[j.ID] = p.io
	}
	return a
}

// AccuracyPoint is one validated (cache, bandwidth) configuration.
type AccuracyPoint struct {
	CacheFrac    float64
	RemoteIO     unit.Bandwidth
	PredictedJCT unit.Duration
	MeasuredJCT  unit.Duration
	Error        float64
}

// AccuracyResult is the §4 estimator-accuracy validation.
type AccuracyResult struct {
	Points   []AccuracyPoint
	MaxError float64
}

// EstimatorAccuracy validates the paper's claim that SiloDPerf (Eq. 4)
// predicts job performance within a few percent: a single ResNet-50 job
// runs in the block-level simulator under fixed cache/IO allocations,
// and its completion time is compared against the closed-form
// prediction (first epoch at the cold-cache rate, remaining epochs at
// SiloDPerf — the delayed-effectiveness model of §6).
// silod:sim-root
func EstimatorAccuracy(o Options) (*AccuracyResult, error) {
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	ds := workload.Dataset{Name: "imagenet1k", Size: unit.GiB(143)}
	epochs := 6.0
	if o.Quick {
		epochs = 3
	}
	spec := workload.JobSpec{ID: "probe", Model: rn50, Dataset: ds, NumGPUs: 1}
	spec.NumSteps = int64(epochs * float64(ds.Size) / float64(spec.StepBytesTotal()))

	res := &AccuracyResult{}
	for _, cacheFrac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		for _, bw := range []unit.Bandwidth{unit.MBpsOf(30), unit.MBpsOf(60), unit.MBpsOf(120)} {
			blockAligned := unit.AlignUp(ds.Size, 64*unit.MB)
			cache := unit.Bytes(cacheFrac * float64(blockAligned))
			prof := estimator.JobProfile{IdealThroughput: spec.IdealThroughput(), DatasetSize: blockAligned}
			// Closed-form prediction with the §6 warm-up model: the
			// first epoch misses everything (uniform cache still
			// filling), later epochs run at SiloDPerf.
			coldRate := prof.Perf(estimator.Resources{Cache: 0, RemoteIO: bw})
			warmRate := prof.Perf(estimator.Resources{Cache: cache, RemoteIO: bw})
			epochBytes := float64(blockAligned)
			totalBytes := epochs * float64(ds.Size)
			predicted := epochBytes/float64(coldRate) +
				(totalBytes-epochBytes)/float64(warmRate)

			pol := &fixedPolicy{cache: cache, io: bw}
			cl := core.Cluster{GPUs: 1, Cache: unit.TiB(1), RemoteIO: bw}
			r, err := sim.Run(sim.Config{
				Cluster: cl, Policy: pol, System: policy.SiloD, Engine: sim.Batch,
				Seed: o.seed(), DisableWorkConserving: true,
			}, []workload.JobSpec{spec})
			if err != nil {
				return nil, fmt.Errorf("accuracy cache=%.2f bw=%v: %w", cacheFrac, bw, err)
			}
			measured := r.AvgJCT().Seconds()
			pt := AccuracyPoint{
				CacheFrac:    cacheFrac,
				RemoteIO:     bw,
				PredictedJCT: unit.Duration(predicted),
				MeasuredJCT:  unit.Duration(measured),
				Error:        stats.RelativeError(measured, predicted),
			}
			res.Points = append(res.Points, pt)
			if pt.Error > res.MaxError {
				res.MaxError = pt.Error
			}
		}
	}
	return res, nil
}

// Table renders the accuracy validation.
func (r *AccuracyResult) Table() *report.Table {
	t := report.NewTable("Estimator accuracy (§4): SiloDPerf prediction vs block-level simulation",
		"Cache frac", "Remote IO", "Predicted (min)", "Measured (min)", "Error")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.2f", p.CacheFrac),
			p.RemoteIO.String(),
			fmt.Sprintf("%.1f", p.PredictedJCT.Minutes()),
			fmt.Sprintf("%.1f", p.MeasuredJCT.Minutes()),
			fmt.Sprintf("%.2f%%", 100*p.Error),
		)
	}
	t.AddRow("max error", "", "", "", fmt.Sprintf("%.2f%%", 100*r.MaxError))
	return t
}
