package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/unit"
	"repro/internal/workload"
)

// Table1 regenerates Table 1: training dataset sizes at Microsoft in
// 2020 and 24 months later.
// silod:sim-root
func Table1() *report.Table {
	t := report.NewTable("Table 1: dataset size and growth", "Task", "Year 2020", "In 24 months")
	for _, g := range workload.Table1DatasetGrowth() {
		t.AddRow(g.Task, g.Year2020.String(), g.In24Mo.String())
	}
	return t
}

// Table2 regenerates Table 2: mixed-precision ResNet-50 training speeds
// and the IO they demand.
// silod:sim-root
func Table2() *report.Table {
	t := report.NewTable("Table 2: ResNet-50 training speed and IO demand", "GPU", "Speed (images/s)", "IO")
	for _, r := range workload.Table2TrainingSpeeds() {
		t.AddRowf(r.GPU, fmt.Sprintf("%.0f", r.ImagesPS), r.IO.String())
	}
	return t
}

// Figure1 regenerates Figure 1: the GPU-compute versus storage-egress
// trend, including the headline growth factors (125x vs 12x).
// silod:sim-root
func Figure1() *report.Table {
	t := report.NewTable("Figure 1: GPU perf vs cloud storage egress limit",
		"Year", "GPU", "SP TFLOPS", "Egress (Gbps)")
	pts := workload.Figure1GPUTrend()
	for _, p := range pts {
		t.AddRowf(p.Year, p.GPU, fmt.Sprintf("%.1f", p.TFLOPS), fmt.Sprintf("%.0f", p.EgressGbps))
	}
	first, last := pts[0], pts[len(pts)-1]
	t.AddRow("growth", "",
		fmt.Sprintf("%.0fx", last.TFLOPS/first.TFLOPS),
		fmt.Sprintf("%.0fx", last.EgressGbps/first.EgressGbps))
	return t
}

// Figure3Result holds the cache-scaling series.
type Figure3Result struct {
	Servers   []int
	Actual    []float64 // GB/s
	Linear    []float64 // GB/s
	LocalOnly []float64 // GB/s if every byte were a local read
}

// Figure3 regenerates Figure 3: aggregate read throughput of the
// distributed cache as the cluster grows, with jobs demanding 1923 MB/s
// per 8-A100 server and datasets spread evenly over all servers.
// silod:sim-root
func Figure3() *Figure3Result {
	m := cluster.FabricModel{
		DemandPerServer: unit.MBpsOf(1923),
		LocalDiskBW:     unit.GBpsOf(3.2), // NVMe local read
		FabricNICBW:     unit.GBpsOf(2.5), // storage-fabric NIC (Figure 3's setting)
	}
	res := &Figure3Result{}
	for _, n := range []int{1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50} {
		actual, linear := m.Throughput(n)
		res.Servers = append(res.Servers, n)
		res.Actual = append(res.Actual, float64(actual)/float64(unit.GB))
		res.Linear = append(res.Linear, float64(linear)/float64(unit.GB))
		localOnly, _ := cluster.FabricModel{
			DemandPerServer: m.DemandPerServer, LocalDiskBW: m.LocalDiskBW,
		}.Throughput(n)
		res.LocalOnly = append(res.LocalOnly, float64(localOnly)/float64(unit.GB))
	}
	return res
}

// Table renders the Figure 3 series.
func (r *Figure3Result) Table() *report.Table {
	t := report.NewTable("Figure 3: distributed cache throughput scaling",
		"Servers", "Linear (GB/s)", "Local read (GB/s)", "Peer read (GB/s)")
	for i, n := range r.Servers {
		t.AddRowf(n, r.Linear[i], r.LocalOnly[i], r.Actual[i])
	}
	return t
}

// Figure6 regenerates Figure 6: cache efficiency (MB/s saved per GB of
// cache) for the 11 model/dataset combinations.
// silod:sim-root
func Figure6() *report.Table {
	t := report.NewTable("Figure 6: cache efficiency on a V100",
		"Job", "f* (MB/s)", "Dataset", "Size", "Efficiency (MB/s per GB)")
	for _, j := range workload.Figure6Jobs() {
		eff := j.CacheEfficiency()
		var effStr string
		if eff < 0.001 {
			effStr = fmt.Sprintf("%.1e", eff)
		} else {
			effStr = fmt.Sprintf("%.2f", eff)
		}
		t.AddRow(
			j.Model.Name,
			fmt.Sprintf("%.0f", j.Model.IdealIOPerGPU.MBpsValue()),
			j.Dataset.Name,
			j.Dataset.Size.String(),
			effStr,
		)
	}
	return t
}

// RenderStatic renders every catalog-derived artifact at once.
// silod:sim-root
func RenderStatic() string {
	var b strings.Builder
	Table1().Render(&b)
	b.WriteString("\n")
	Table2().Render(&b)
	b.WriteString("\n")
	Figure1().Render(&b)
	b.WriteString("\n")
	Figure3().Table().Render(&b)
	b.WriteString("\n")
	Figure6().Render(&b)
	return b.String()
}
