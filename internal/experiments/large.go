package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

// Figure12Result holds the 400-GPU policy-by-system matrix.
type Figure12Result struct {
	// Results[scheduler][system].
	Results map[policy.SchedulerKind]SystemResults
	// Fairness timelines under Gavel (Figure 13).
	Fairness map[policy.CacheSystem]*stats.Series
	// AvgFairness under Gavel per system (the 2.56 / 1.51 / 1.39 / 1.35
	// comparison).
	AvgFairness map[policy.CacheSystem]float64
}

// Figure12 reproduces Figures 12 and 13: FIFO, SJF and Gavel on the
// four cache systems in the 400-GPU cluster with a 32 Gbps remote link.
// silod:sim-root
func Figure12(o Options) (*Figure12Result, error) {
	jobs, err := traceFor(o, 400, 1000, 12*unit.Hour)
	if err != nil {
		return nil, err
	}
	cl := clusterPreset(400)
	out := &Figure12Result{
		Results:     make(map[policy.SchedulerKind]SystemResults),
		Fairness:    make(map[policy.CacheSystem]*stats.Series),
		AvgFairness: make(map[policy.CacheSystem]float64),
	}
	// One arm per (scheduler, system) cell: the full 12-cell matrix
	// fans out at once rather than scheduler-by-scheduler.
	kinds := policy.AllSchedulerKinds()
	systems := policy.AllCacheSystems()
	flat, err := mapArms(o, len(kinds)*len(systems), func(i int) (*sim.Result, error) {
		return runOne(o, kinds[i/len(systems)], systems[i%len(systems)], cl, jobs, nil)
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range kinds {
		res := make(SystemResults, len(systems))
		for si, cs := range systems {
			res[cs] = flat[ki*len(systems)+si]
		}
		out.Results[k] = res
		if k == policy.GavelKind {
			for cs, r := range res {
				out.Fairness[cs] = r.Timelines["fairness"]
				// Average over the arrival window only: after arrivals
				// stop the cluster drains and the ratio trivially
				// approaches 1 for every system (the paper's 4-week
				// trace keeps the cluster contended throughout).
				out.AvgFairness[cs] = seriesMeanUpTo(r.Timelines["fairness"], (12 * unit.Hour).Minutes())
			}
		}
	}
	return out, nil
}

// JCTTable renders Figure 12a.
func (r *Figure12Result) JCTTable() *report.Table {
	t := report.NewTable("Figure 12a: 400-GPU average JCT (minutes; speedup of SiloD in parens)",
		"Scheduler", "SiloD", "Alluxio", "CoorDL", "Quiver")
	for _, k := range policy.AllSchedulerKinds() {
		res := r.Results[k]
		base := res[policy.SiloD].AvgJCT().Minutes()
		row := []string{k.String(), fmt.Sprintf("%.0f", base)}
		for _, cs := range []policy.CacheSystem{policy.Alluxio, policy.CoorDL, policy.Quiver} {
			v := res[cs].AvgJCT().Minutes()
			row = append(row, fmt.Sprintf("%.0f (%s)", v, report.Speedup(v, base)))
		}
		t.AddRow(row...)
	}
	return t
}

// MakespanTable renders Figure 12b.
func (r *Figure12Result) MakespanTable() *report.Table {
	t := report.NewTable("Figure 12b: 400-GPU makespan (minutes; speedup of SiloD in parens)",
		"Scheduler", "SiloD", "Alluxio", "CoorDL", "Quiver")
	for _, k := range policy.AllSchedulerKinds() {
		res := r.Results[k]
		base := res[policy.SiloD].Makespan.Minutes()
		row := []string{k.String(), fmt.Sprintf("%.0f", base)}
		for _, cs := range []policy.CacheSystem{policy.Alluxio, policy.CoorDL, policy.Quiver} {
			v := res[cs].Makespan.Minutes()
			row = append(row, fmt.Sprintf("%.0f (%s)", v, report.Speedup(v, base)))
		}
		t.AddRow(row...)
	}
	return t
}

// FairnessTable renders the Figure 13 summary.
func (r *Figure12Result) FairnessTable() *report.Table {
	t := report.NewTable("Figure 13: average fairness ratio under Gavel (higher is better)",
		"System", "Avg fairness ratio")
	for _, cs := range policy.AllCacheSystems() {
		t.AddRowf(cs.String(), r.AvgFairness[cs])
	}
	return t
}

// Figure14aResult is the remote-bandwidth sweep.
type Figure14aResult struct {
	BandwidthGBps []float64
	SiloDJCT      []float64 // minutes
	AlluxioJCT    []float64
}

// Figure14a reproduces Figure 14a: average JCT of FIFO-SiloD versus
// FIFO-Alluxio as the remote bandwidth grows; the gap should close once
// even LRU no longer bottlenecks on remote IO.
// silod:sim-root
func Figure14a(o Options) (*Figure14aResult, error) {
	jobs, err := traceFor(o, 400, 600, 8*unit.Hour)
	if err != nil {
		return nil, err
	}
	res := &Figure14aResult{}
	points := []float64{2, 4, 6, 8, 10, 12}
	systems := []policy.CacheSystem{policy.SiloD, policy.Alluxio}
	// One arm per (bandwidth, system) point: 12 arms instead of 6
	// sequential pairs.
	flat, err := mapArms(o, len(points)*len(systems), func(i int) (*sim.Result, error) {
		cl := clusterPreset(400)
		cl.RemoteIO = unit.GBpsOf(points[i/len(systems)])
		return runOne(o, policy.FIFOKind, systems[i%len(systems)], cl, jobs, nil)
	})
	if err != nil {
		return nil, err
	}
	for pi, gbps := range points {
		res.BandwidthGBps = append(res.BandwidthGBps, gbps)
		res.SiloDJCT = append(res.SiloDJCT, flat[pi*len(systems)].AvgJCT().Minutes())
		res.AlluxioJCT = append(res.AlluxioJCT, flat[pi*len(systems)+1].AvgJCT().Minutes())
	}
	return res, nil
}

// Table renders Figure 14a.
func (r *Figure14aResult) Table() *report.Table {
	t := report.NewTable("Figure 14a: impact of remote bandwidth (FIFO, avg JCT minutes)",
		"Bandwidth (GB/s)", "SiloD", "Alluxio", "Alluxio/SiloD")
	for i, bw := range r.BandwidthGBps {
		t.AddRowf(fmt.Sprintf("%.0f", bw), r.SiloDJCT[i], r.AlluxioJCT[i],
			report.Speedup(r.AlluxioJCT[i], r.SiloDJCT[i]))
	}
	return t
}

// Figure14bResult is the GPU-speed sweep.
type Figure14bResult struct {
	SpeedScale []float64
	SiloDJCT   []float64
	QuiverJCT  []float64
	Gain       []float64 // Quiver JCT / SiloD JCT under Gavel
}

// Figure14b reproduces Figure 14b: JCT gain of Gavel-SiloD over
// Gavel-Quiver as GPUs get faster (1x, 2x, 4x V100 speed); faster GPUs
// push more jobs into IO bottleneck, widening SiloD's advantage.
// silod:sim-root
func Figure14b(o Options) (*Figure14bResult, error) {
	res := &Figure14bResult{}
	scales := []float64{1, 2, 4}
	systems := []policy.CacheSystem{policy.SiloD, policy.Quiver}
	// One arm per (scale, system); each arm regenerates the scale's
	// trace, which is deterministic given the config and cheap next to
	// the simulation it feeds.
	flat, err := mapArms(o, len(scales)*len(systems), func(i int) (*sim.Result, error) {
		n := 600
		if o.Jobs > 0 {
			n = o.Jobs
		}
		if o.Quick {
			n = max(10, n/10)
		}
		cfg := workload.DefaultTraceConfig(o.seed(), n, 8*unit.Hour)
		cfg.SpeedScale = scales[i/len(systems)]
		jobs, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		return runOne(o, policy.GavelKind, systems[i%len(systems)], clusterPreset(400), jobs, nil)
	})
	if err != nil {
		return nil, err
	}
	for si, scale := range scales {
		s, q := flat[si*len(systems)], flat[si*len(systems)+1]
		res.SpeedScale = append(res.SpeedScale, scale)
		res.SiloDJCT = append(res.SiloDJCT, s.AvgJCT().Minutes())
		res.QuiverJCT = append(res.QuiverJCT, q.AvgJCT().Minutes())
		res.Gain = append(res.Gain, q.AvgJCT().Minutes()/s.AvgJCT().Minutes())
	}
	return res, nil
}

// Table renders Figure 14b.
func (r *Figure14bResult) Table() *report.Table {
	t := report.NewTable("Figure 14b: impact of GPU speed (Gavel, JCT gain of SiloD over Quiver)",
		"Speed scaling", "SiloD JCT (min)", "Quiver JCT (min)", "Gain")
	for i, s := range r.SpeedScale {
		t.AddRowf(fmt.Sprintf("%.0fx", s), r.SiloDJCT[i], r.QuiverJCT[i],
			fmt.Sprintf("%.2fx", r.Gain[i]))
	}
	return t
}

// Figure15Result is the dataset-sharing sweep.
type Figure15Result struct {
	SharePercent []float64
	// JCT[scheduler] aligned with SharePercent.
	JCT map[policy.SchedulerKind][]float64
}

// Figure15 reproduces Figure 15: the benefit of dataset sharing as the
// fraction of jobs drawing from a shared dataset pool grows, under all
// three SiloD-enhanced schedulers.
// silod:sim-root
func Figure15(o Options) (*Figure15Result, error) {
	res := &Figure15Result{JCT: make(map[policy.SchedulerKind][]float64)}
	shares := []float64{0, 0.25, 0.5, 1.0}
	kinds := policy.AllSchedulerKinds()
	// One arm per (share fraction, scheduler): 12 arms, each
	// regenerating its share point's deterministic trace.
	flat, err := mapArms(o, len(shares)*len(kinds), func(i int) (*sim.Result, error) {
		n := 400
		if o.Jobs > 0 {
			n = o.Jobs
		}
		if o.Quick {
			n = max(10, n/10)
		}
		cfg := workload.DefaultTraceConfig(o.seed(), n, 8*unit.Hour)
		cfg.ShareFraction = shares[i/len(kinds)]
		jobs, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		return runOne(o, kinds[i%len(kinds)], policy.SiloD, clusterPreset(96), jobs, nil)
	})
	if err != nil {
		return nil, err
	}
	for si, share := range shares {
		res.SharePercent = append(res.SharePercent, share*100)
		for ki, k := range kinds {
			res.JCT[k] = append(res.JCT[k], flat[si*len(kinds)+ki].AvgJCT().Minutes())
		}
	}
	return res, nil
}

// Table renders Figure 15.
func (r *Figure15Result) Table() *report.Table {
	t := report.NewTable("Figure 15: impact of dataset sharing (SiloD, avg JCT minutes)",
		"% sharing", "FIFO", "SJF", "Gavel")
	for i, p := range r.SharePercent {
		t.AddRowf(fmt.Sprintf("%.0f", p),
			r.JCT[policy.FIFOKind][i], r.JCT[policy.SJFKind][i], r.JCT[policy.GavelKind][i])
	}
	return t
}

// AblationNoIOResult is the §7.2 remote-IO-control ablation.
type AblationNoIOResult struct {
	WithControl    *sim.Result
	WithoutControl *sim.Result
}

// AblationNoIO reproduces the §7.2 ablation: disabling SiloD's remote
// IO allocation (falling back to provider fair share) barely moves JCT
// and makespan but significantly degrades the instantaneous fairness
// ratio.
// silod:sim-root
func AblationNoIO(o Options) (*AblationNoIOResult, error) {
	jobs, err := traceFor(o, 96, 300, 8*unit.Hour)
	if err != nil {
		return nil, err
	}
	cl := clusterPreset(96)
	mutates := []func(*sim.Config){nil, func(c *sim.Config) { c.DisableIOControl = true }}
	arms, err := mapArms(o, len(mutates), func(i int) (*sim.Result, error) {
		return runOne(o, policy.GavelKind, policy.SiloD, cl, jobs, mutates[i])
	})
	if err != nil {
		return nil, err
	}
	return &AblationNoIOResult{WithControl: arms[0], WithoutControl: arms[1]}, nil
}

// Table renders the ablation.
func (r *AblationNoIOResult) Table() *report.Table {
	t := report.NewTable("Ablation (§7.2): disabling SiloD's remote IO control (Gavel)",
		"Config", "Avg JCT (min)", "Makespan (min)", "Avg fairness ratio")
	t.AddRowf("cache+IO control", r.WithControl.AvgJCT().Minutes(),
		r.WithControl.Makespan.Minutes(), r.WithControl.AvgFairness())
	t.AddRowf("cache only (fair-share IO)", r.WithoutControl.AvgJCT().Minutes(),
		r.WithoutControl.Makespan.Minutes(), r.WithoutControl.AvgFairness())
	return t
}

// ClusterFor exposes the preset used by the large experiments, for the
// CLI.
func ClusterFor(gpus int) core.Cluster { return clusterPreset(gpus) }
