// Package experiments implements one reproduction per table and figure
// of the paper's evaluation (§7). Every experiment is deterministic
// given its options, builds its own workload, runs the appropriate
// engine(s), and renders the same rows or series the paper reports.
// DESIGN.md carries the experiment index; EXPERIMENTS.md records
// paper-versus-measured numbers.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

// Options control experiment scale. The zero value means "default
// reproduction scale" — large enough to show every paper trend, small
// enough to run in seconds to a few minutes.
type Options struct {
	Seed int64
	// Jobs overrides the trace size for cluster experiments (0 = each
	// experiment's default).
	Jobs int
	// Quick shrinks the cluster experiments further for unit tests.
	Quick bool
	// Sequential runs experiment arms inline in index order instead of
	// fanning them across the worker pool (silodsim -parallel=1). The
	// parallel path is tested byte-identical to this one; Sequential
	// exists for debugging and as the reference order.
	Sequential bool
	// Workers bounds the arm worker pool (0 = GOMAXPROCS).
	Workers int
	// FullResolve disables the engines' incremental fast paths (solve
	// memo, warm-started bisections, rate memo) so every round re-solves
	// from scratch. Outputs are byte-identical either way — the identity
	// tests diff the two modes — so this exists for those gates and for
	// timing the unoptimized reference.
	FullResolve bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func (o Options) runnerOpts() runner.Options {
	return runner.Options{Seed: o.seed(), Workers: o.Workers, Sequential: o.Sequential}
}

// mapArms fans n experiment arms across the deterministic worker pool
// (or runs them inline under Options.Sequential). Arms receive their
// index only: every experiment in this package derives its randomness
// from Options.Seed so that published golden numbers (EXPERIMENTS.md)
// are independent of how arms are scheduled; arms that need a private
// stream should use runner.Map directly and draw from Arm.Seed.
func mapArms[T any](o Options, n int, run func(i int) (T, error)) ([]T, error) {
	return runner.Map(o.runnerOpts(), n, func(a runner.Arm) (T, error) {
		return run(a.Index)
	})
}

// Cluster presets follow Table 5: the remote IO limit scales down from
// the production cluster with size, and cache provisioning follows the
// 8-V100 micro-benchmark's 250 GB per GPU.
func clusterPreset(gpus int) core.Cluster {
	var egress unit.Bandwidth
	switch {
	case gpus <= 8:
		egress = unit.Gbps(1.6) // 200 MB/s
	case gpus <= 96:
		egress = unit.Gbps(8) // 1 GB/s
	default:
		egress = unit.Gbps(32) // 4 GB/s
	}
	return core.Cluster{
		GPUs:     gpus,
		Cache:    unit.GiB(250) * unit.Bytes(gpus),
		RemoteIO: egress,
	}
}

// runOne builds the policy for (scheduler, cache system) and runs the
// fluid simulator over the trace. Options carries the seed and the
// FullResolve reference-mode flag (identity tests diff the two modes).
func runOne(o Options, k policy.SchedulerKind, cs policy.CacheSystem, cl core.Cluster,
	jobs []workload.JobSpec, mutate func(*sim.Config)) (*sim.Result, error) {
	seed := o.seed()
	pol, err := policy.Build(k, cs, seed)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Cluster:     cl,
		Policy:      pol,
		System:      cs,
		Engine:      sim.Fluid,
		Seed:        seed,
		FullResolve: o.FullResolve,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := sim.Run(cfg, jobs)
	if err != nil {
		return nil, fmt.Errorf("%v/%v: %w", k, cs, err)
	}
	return res, nil
}

// SystemResults maps cache systems to run results for one scheduler.
type SystemResults map[policy.CacheSystem]*sim.Result

// runSystems executes the trace under every cache system with the given
// scheduler, one parallel arm per system.
func runSystems(o Options, k policy.SchedulerKind, cl core.Cluster, jobs []workload.JobSpec,
	mutate func(*sim.Config)) (SystemResults, error) {
	systems := policy.AllCacheSystems()
	results, err := mapArms(o, len(systems), func(i int) (*sim.Result, error) {
		return runOne(o, k, systems[i], cl, jobs, mutate)
	})
	if err != nil {
		return nil, err
	}
	out := make(SystemResults, len(systems))
	for i, cs := range systems {
		out[cs] = results[i]
	}
	return out, nil
}

// traceFor generates the standard trace for a cluster experiment: load
// factor ~1.3-1.4 over the window so the queue builds up as in the
// paper's long traces.
func traceFor(o Options, gpus, defaultJobs int, window unit.Duration) ([]workload.JobSpec, error) {
	n := defaultJobs
	if o.Jobs > 0 {
		n = o.Jobs
	}
	if o.Quick {
		// Preserve the offered load when shrinking: fewer jobs over a
		// proportionally shorter window.
		shrunk := max(10, n/10)
		window = unit.Duration(float64(window) * float64(shrunk) / float64(n))
		n = shrunk
	}
	cfg := workload.DefaultTraceConfig(o.seed(), n, window)
	return workload.Generate(cfg)
}

// seriesMeanUpTo is the time-weighted mean of s over [0, tMax].
func seriesMeanUpTo(s *stats.Series, tMax float64) float64 {
	if s == nil || s.Len() == 0 {
		return 0
	}
	var tw stats.TimeWeighted
	for i := 0; i < s.Len(); i++ {
		t, v := s.At(i)
		if t > tMax {
			break
		}
		tw.Observe(t, v)
	}
	return tw.Finish(tMax)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
