package experiments

import "testing"

// TestParallelArtifactsByteIdentical is the acceptance gate for the
// worker-pool port: fanning experiment arms across 4 workers must
// render byte-identical artifacts to the sequential reference order,
// for the same seed. Workers is forced to 4 (not GOMAXPROCS) so the
// parallel path is exercised even on single-core CI runners.
//
// Figure10Fidelity covers both simulation engines (fluid and batch) in
// one fan-out; Figure12 covers the widest arm matrix (3 schedulers x 4
// cache systems). Together they sweep every runner invariant: derived
// arm seeds, pre-indexed result slots, and index-order collection.
func TestParallelArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-scale experiment")
	}
	render := map[string]func(o Options) (string, error){
		"Figure10Fidelity": func(o Options) (string, error) {
			r, err := Figure10Fidelity(o)
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		},
		"Figure12": func(o Options) (string, error) {
			r, err := Figure12(o)
			if err != nil {
				return "", err
			}
			return r.JCTTable().String() + r.MakespanTable().String() + r.FairnessTable().String(), nil
		},
	}
	for name, run := range render {
		t.Run(name, func(t *testing.T) {
			seq, err := run(Options{Seed: 42, Quick: true, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			par, err := run(Options{Seed: 42, Quick: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Errorf("parallel artifact differs from sequential reference:\n--- sequential ---\n%s\n--- 4 workers ---\n%s", seq, par)
			}
			if seq == "" {
				t.Error("empty artifact")
			}
		})
	}
}
