package experiments

import (
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestStaticArtifacts(t *testing.T) {
	out := RenderStatic()
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 1", "Figure 3", "Figure 6",
		"ResNet-50", "ImageNet-1k", "WebSearch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("static render missing %q", want)
		}
	}
	// Figure 6's headline numbers: ResNet-50/ImageNet-1k ~0.80, BERT ~9.5e-05.
	if !strings.Contains(out, "0.80") {
		t.Errorf("Figure 6 missing ResNet-50 cache efficiency 0.80:\n%s", out)
	}
	// Figure 1's growth factors: >100x GPU vs ~12x egress.
	if !strings.Contains(out, "114x") && !strings.Contains(out, "113x") {
		t.Errorf("Figure 1 growth factor missing:\n%s", out)
	}
}

func TestFigure3Shape(t *testing.T) {
	r := Figure3()
	if len(r.Servers) == 0 {
		t.Fatal("no series")
	}
	// Peer reads should track linear scaling within ~25% at every
	// point: the paper's conclusion that the storage fabric sustains
	// local-disk throughput.
	for i := range r.Servers {
		if r.Actual[i] < 0.75*r.Linear[i] {
			t.Errorf("n=%d: peer read %.1f GB/s too far below linear %.1f",
				r.Servers[i], r.Actual[i], r.Linear[i])
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SiloD: %v (min %.0f avg %.0f), Quiver: %v (min %.0f avg %.0f)",
		r.SiloDSpeeds, r.SiloDMin, r.SiloDAvg, r.QuiverSpeeds, r.QuiverMin, r.QuiverAvg)
	// SiloD's max-min allocation serves both jobs equally.
	if lo, hi := r.SiloDMin, maxOf(r.SiloDSpeeds); hi > 1.05*lo {
		t.Errorf("SiloD speeds unequal: %.1f vs %.1f", lo, hi)
	}
	// Quiver starves one job (paper: 114 vs 52 MB/s steady state).
	if maxOf(r.QuiverSpeeds) < 1.3*r.QuiverMin {
		t.Errorf("Quiver speeds too equal: %v", r.QuiverSpeeds)
	}
	// SiloD lifts the worst job well above Quiver's starved one.
	if r.SiloDMin < 1.3*r.QuiverMin {
		t.Errorf("SiloD min speed %.1f not clearly above Quiver min %.1f", r.SiloDMin, r.QuiverMin)
	}
	// Quiver's favored job reaches the level SiloD gives everyone.
	if best := maxOf(r.QuiverSpeeds); best < 0.9*r.SiloDMin {
		t.Errorf("Quiver's favored job %.1f below SiloD's level %.1f", best, r.SiloDMin)
	}
}

func TestEstimatorAccuracyQuick(t *testing.T) {
	r, err := EstimatorAccuracy(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Table())
	if r.MaxError > 0.05 {
		t.Errorf("estimator max error %.2f%% exceeds 5%%", 100*r.MaxError)
	}
}

func TestFigure16Quick(t *testing.T) {
	r, err := Figure16(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", r.PacingTable, r.Table())
	for _, step := range r.StepSizes {
		u, l := r.UniformJCT[step], r.LRUJCT[step]
		if len(u) == 0 || len(l) == 0 {
			t.Fatalf("missing repeats for step %d", step)
		}
		mu, ml := mean(u), mean(l)
		// Under curriculum resampling LRU should match uniform caching
		// within ~10% (the paper finds them indistinguishable).
		if ml > 1.15*mu || mu > 1.15*ml {
			t.Errorf("step %d: LRU %.1f vs Uniform %.1f differ too much", step, ml, mu)
		}
	}
}

func maxOf(m map[string]float64) float64 {
	var best float64
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFigure10Quick(t *testing.T) {
	r, err := Figure10(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s\n%s", r.Table(), r.CDFTable(), r.Figure8Text())
	silod := r.Results[policy.SiloD].AvgJCT()
	for _, cs := range []policy.CacheSystem{policy.Alluxio, policy.CoorDL} {
		if r.Results[cs].AvgJCT() < silod {
			t.Errorf("%v beats SiloD at quick scale: %.0f vs %.0f min",
				cs, r.Results[cs].AvgJCT().Minutes(), silod.Minutes())
		}
	}
	if r.EffectiveRatio < 0.5 || r.EffectiveRatio > 1.0001 {
		t.Errorf("effective cache ratio %.2f implausible", r.EffectiveRatio)
	}
}
