package testbed

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// TestFaultsAppliedToLiveManager is the concurrency stress for fault
// injection (run under -race by `make chaos`): cache-capacity loss and
// remote-IO degradation land mid-run while loader goroutines hammer
// the pool and token buckets, and every job still finishes. The cache
// loss invalidates contents under the jobs' feet; the IO loss
// re-throttles their buckets; both are later restored.
func TestFaultsAppliedToLiveManager(t *testing.T) {
	specs := []workload.JobSpec{
		tinyJob(t, "a", "ds-a", 32, 4),
		tinyJob(t, "b", "ds-b", 32, 4),
		tinyJob(t, "c", "ds-c", 32, 4),
	}
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry("testbed")
	// Times are simulated seconds; at TimeScale 2000 the whole window
	// fits in a few wall seconds. The loss window opens early and closes
	// while the (slowed) jobs are still running: with most of the cache
	// and 90% of the egress gone they crawl until the restore, so both
	// restores observably fire mid-run.
	sched := &faults.Schedule{Events: []faults.Event{
		{At: 300, Kind: faults.KindCacheLoss, Cache: unit.GiB(96)},
		{At: 300, Kind: faults.KindIOLoss, RemoteIO: unit.MBpsOf(270)},
		{At: 1500, Kind: faults.KindCacheRestore, Cache: unit.GiB(96)},
		{At: 1500, Kind: faults.KindIORestore, RemoteIO: unit.MBpsOf(270)},
	}}
	res, err := Run(Config{
		Cluster:         core.Cluster{GPUs: 3, Cache: unit.GiB(128), RemoteIO: unit.MBpsOf(300)},
		Policy:          pol,
		System:          policy.SiloD,
		TimeScale:       2000,
		BlockSize:       unit.GiB(2),
		ReschedInterval: 30 * unit.Second,
		Seed:            1,
		MaxWall:         90 * time.Second,
		Faults:          sched,
		Metrics:         reg,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(specs) {
		t.Fatalf("finished %d jobs, want %d", len(res.Jobs), len(specs))
	}
	snap := reg.Snapshot()
	for _, kind := range []string{"cache_loss", "io_loss", "cache_restore", "io_restore"} {
		if v := snap.CounterValue("silod_faults_injected_total", map[string]string{"kind": kind}); v != 1 {
			t.Errorf("injected{kind=%s} = %v, want 1", kind, v)
		}
	}
	if v := snap.CounterValue("silod_faults_recoveries_total", nil); v != 2 {
		t.Errorf("recoveries = %v, want 2", v)
	}
	if v, ok := snap.Get("silod_faults_time_degraded_seconds", nil); !ok || *v.Value <= 0 {
		t.Errorf("time degraded = %+v, want > 0", v)
	}
	// Fully restored by the end.
	if v, ok := snap.Get("silod_faults_degraded", nil); !ok || *v.Value != 0 {
		t.Errorf("degraded gauge = %+v, want 0 after restore", v)
	}
}

// TestFaultScheduleKindValidation: the testbed has no preemption model,
// so GPU and job-crash kinds are rejected up front with a pointer to
// the simulator.
func TestFaultScheduleKindValidation(t *testing.T) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{
		Cluster:   core.Cluster{GPUs: 2, Cache: unit.GiB(64), RemoteIO: unit.MBpsOf(100)},
		Policy:    pol,
		System:    policy.SiloD,
		TimeScale: 1000,
		Faults: &faults.Schedule{Events: []faults.Event{
			{At: 60, Kind: faults.KindGPULoss, GPUs: 1},
		}},
	}, []workload.JobSpec{tinyJob(t, "j", "ds", 8, 1)})
	if err == nil || !strings.Contains(err.Error(), "use the simulator") {
		t.Errorf("Run with gpu_loss = %v, want unsupported-kind error", err)
	}
}
