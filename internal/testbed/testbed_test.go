package testbed

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// tinyJob builds a fast-to-emulate job: small dataset, few epochs.
func tinyJob(t *testing.T, id string, dsName string, dsGiB float64, epochs float64) workload.JobSpec {
	t.Helper()
	m, err := workload.ModelByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.JobSpec{
		ID: id, Model: m, NumGPUs: 1,
		Dataset: workload.Dataset{Name: dsName, Size: unit.GiB(dsGiB)},
	}
	spec.NumSteps = int64(epochs * float64(spec.Dataset.Size) / float64(spec.StepBytesTotal()))
	if spec.NumSteps < 1 {
		spec.NumSteps = 1
	}
	return spec
}

// TestSingleJobRunsAtIdealWhenCached: a fully cacheable job should
// finish close to its ideal duration (warm-up epoch at remote speed,
// remaining epochs compute-bound).
func TestSingleJobRunsAtIdealWhenCached(t *testing.T) {
	spec := tinyJob(t, "j", "ds", 32, 4)
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Cluster:         core.Cluster{GPUs: 1, Cache: unit.GiB(64), RemoteIO: unit.MBpsOf(114)},
		Policy:          pol,
		System:          policy.SiloD,
		TimeScale:       1000, // keep per-block sleeps well above timer resolution
		BlockSize:       unit.GiB(2),
		ReschedInterval: 30 * unit.Second,
		Seed:            1,
		MaxWall:         30 * time.Second,
	}, []workload.JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("finished %d jobs", len(res.Jobs))
	}
	ideal := spec.IdealDuration().Minutes()
	got := res.Jobs[0].Finish.Minutes()
	// With the full remote link matching f*, even the cold epoch runs
	// at ideal speed; allow generous scheduling/timer slack.
	if got < ideal*0.9 || got > ideal*1.5 {
		t.Errorf("JCT %.1f min, ideal %.1f min", got, ideal)
	}
}

// TestThrottledJobSlowsProportionally: with an uncacheable dataset and
// a remote link at half of f*, the testbed JCT should be ~2x ideal.
func TestThrottledJobSlowsProportionally(t *testing.T) {
	spec := tinyJob(t, "j", "ds", 64, 2)
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		// No cache at all: the job is purely remote-IO bound.
		Cluster:         core.Cluster{GPUs: 1, Cache: 0, RemoteIO: unit.MBpsOf(57)},
		Policy:          pol,
		System:          policy.SiloD,
		TimeScale:       2000,
		BlockSize:       unit.GiB(2),
		ReschedInterval: 30 * unit.Second,
		Seed:            1,
		MaxWall:         60 * time.Second,
	}, []workload.JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	ideal := spec.IdealDuration().Minutes()
	got := res.Jobs[0].Finish.Minutes()
	ratio := got / ideal
	if math.Abs(ratio-2) > 0.5 {
		t.Errorf("half-bandwidth slowdown %.2fx, want ~2x (JCT %.1f vs ideal %.1f)", ratio, got, ideal)
	}
}

func TestRunValidation(t *testing.T) {
	spec := tinyJob(t, "j", "ds", 8, 1)
	pol, _ := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if _, err := Run(Config{TimeScale: 0, Cluster: core.Cluster{GPUs: 1}, Policy: pol}, nil); err == nil {
		t.Error("zero time scale accepted")
	}
	big := spec
	big.NumGPUs = 4
	if _, err := Run(Config{
		TimeScale: 1000,
		Cluster:   core.Cluster{GPUs: 1, Cache: unit.GiB(1), RemoteIO: unit.MBpsOf(10)},
		Policy:    pol, System: policy.SiloD,
	}, []workload.JobSpec{big}); err == nil {
		t.Error("oversubscribed gang accepted")
	}
}

// TestTwoJobsShareBandwidth: two identical uncacheable jobs split the
// link and finish around the same (doubled) time.
func TestTwoJobsShareBandwidth(t *testing.T) {
	a := tinyJob(t, "a", "ds-a", 32, 2)
	b := tinyJob(t, "b", "ds-b", 32, 2)
	pol, _ := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	res, err := Run(Config{
		Cluster:         core.Cluster{GPUs: 2, Cache: 0, RemoteIO: unit.MBpsOf(114)},
		Policy:          pol,
		System:          policy.SiloD,
		TimeScale:       2000,
		BlockSize:       unit.GiB(2),
		ReschedInterval: 30 * unit.Second,
		Seed:            1,
		MaxWall:         60 * time.Second,
	}, []workload.JobSpec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("finished %d jobs", len(res.Jobs))
	}
	fa := res.Jobs[0].Finish.Minutes()
	fb := res.Jobs[1].Finish.Minutes()
	if math.Abs(fa-fb)/math.Max(fa, fb) > 0.25 {
		t.Errorf("identical jobs finished far apart: %.1f vs %.1f min", fa, fb)
	}
	ideal := a.IdealDuration().Minutes()
	if avg := (fa + fb) / 2; avg < 1.5*ideal {
		t.Errorf("sharing a half-capacity link should roughly double JCT: %.1f vs ideal %.1f", avg, ideal)
	}
}
