package testbed

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// TestRunWithMetrics attaches a registry and timeline to a short run
// and checks the data manager's cache counters, the testbed's JCT
// histogram, and the per-job event stream all populate.
func TestRunWithMetrics(t *testing.T) {
	specs := []workload.JobSpec{
		tinyJob(t, "j1", "ds", 16, 3),
		tinyJob(t, "j2", "ds", 16, 3),
	}
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry("testbed")
	tl := metrics.NewTimeline(0)
	res, err := Run(Config{
		Cluster:         core.Cluster{GPUs: 2, Cache: unit.GiB(32), RemoteIO: unit.MBpsOf(228)},
		Policy:          pol,
		System:          policy.SiloD,
		TimeScale:       1000,
		BlockSize:       unit.GiB(2),
		ReschedInterval: 30 * unit.Second,
		Seed:            1,
		MaxWall:         60 * time.Second,
		Metrics:         reg,
		Timeline:        tl,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(specs) {
		t.Fatalf("finished %d jobs, want %d", len(res.Jobs), len(specs))
	}

	snap := reg.Snapshot()
	pol2 := map[string]string{"policy": "uniform"}
	hits := snap.CounterValue("silod_cache_hits_total", pol2)
	misses := snap.CounterValue("silod_cache_misses_total", pol2)
	if hits <= 0 || misses <= 0 {
		t.Errorf("cache hits/misses = %v/%v, want both > 0", hits, misses)
	}
	if got := snap.CounterValue("silod_remoteio_egress_bytes_total", nil); got <= 0 {
		t.Errorf("remote egress = %v, want > 0", got)
	}
	if got := snap.CounterValue("silod_testbed_rounds_total", nil); got <= 0 {
		t.Errorf("rounds = %v, want > 0", got)
	}
	jct, ok := snap.Get("silod_testbed_jct_minutes", nil)
	if !ok || jct.Count != int64(len(specs)) {
		t.Errorf("JCT histogram = %+v, want count %d", jct, len(specs))
	}

	for _, kind := range []metrics.EventKind{metrics.EventSubmit, metrics.EventSchedule, metrics.EventComplete} {
		if n := len(tl.ByKind(kind)); n != len(specs) {
			t.Errorf("%s events = %d, want %d", kind, n, len(specs))
		}
	}
}
