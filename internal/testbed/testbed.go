// Package testbed is the concurrent cluster emulator used for fidelity
// validation (the analogue of the paper's accelerated-K80 methodology,
// §7.1): every training job runs as a real loader+compute goroutine
// pipeline against the real data manager — cache pool, per-job token
// buckets, allocation APIs — with GPU compute replaced by scaled
// sleeps, exactly as the paper replaces forward/backward passes with
// sleep() for the profiled duration.
//
// Simulated time runs TimeScale times faster than wall time: all sleeps
// are divided by TimeScale and all token-bucket rates multiplied by it,
// so a 3,500-simulated-minute micro-benchmark completes in seconds of
// wall time while preserving every rate relationship.
package testbed

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/dataset"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/remoteio"
	"repro/internal/simrng"
	"repro/internal/unit"
	"repro/internal/workload"
)

// Config parameterizes a testbed run.
type Config struct {
	Cluster core.Cluster
	Policy  core.Policy
	System  policy.CacheSystem
	// TimeScale is simulated seconds per wall-clock second (e.g. 10000
	// compresses a ~3-day run into ~25 s).
	TimeScale float64
	// BlockSize is the cache/IO granularity; testbed runs use coarser
	// blocks than the simulator so per-block sleeps stay well above
	// timer resolution.
	BlockSize unit.Bytes
	// ReschedInterval is the scheduling period in simulated time.
	ReschedInterval unit.Duration
	Seed            int64
	// MaxWall bounds the wall-clock duration of the run.
	MaxWall time.Duration
	// Faults, when non-nil, is a deterministic fault schedule applied to
	// the live data manager mid-run: cache-capacity loss/restoration
	// (pool contents invalidated under the jobs' feet) and remote-IO
	// degradation/restoration (ledger and token buckets re-throttled).
	// Faults land at the scheduling round whose simulated time first
	// reaches the event time. GPU and job-crash kinds are rejected: the
	// testbed has no preemption model (once started, a job runs to
	// finish), so those belong to the simulator.
	Faults *faults.Schedule
	// Metrics, when non-nil, instruments the run: the data manager's
	// cache/remote-IO counters plus testbed round and JCT metrics.
	Metrics *metrics.Registry
	// Timeline, when non-nil, records per-job events stamped with
	// simulated (scaled) time, comparable to simulator timelines.
	Timeline *metrics.Timeline
}

// JobResult is one job's outcome in simulated time.
type JobResult struct {
	ID     string
	Start  unit.Time
	Finish unit.Time
}

// Result aggregates a run.
type Result struct {
	Jobs     []JobResult
	Makespan unit.Duration
}

// AvgJCT is the mean completion time (all testbed jobs submit at t=0).
func (r *Result) AvgJCT() unit.Duration {
	if len(r.Jobs) == 0 {
		return 0
	}
	var s float64
	for _, j := range r.Jobs {
		s += float64(j.Finish)
	}
	return unit.Duration(s / float64(len(r.Jobs)))
}

// jobRun is the per-job concurrent state.
type jobRun struct {
	spec    workload.JobSpec
	profile estimator.JobProfile
	blocks  dataset.Blocks
	stream  *dataset.EpochStream

	mu        sync.Mutex
	remaining int64     // guarded by mu (blocks left)
	total     int64     // immutable after construction
	running   bool      // guarded by mu
	finished  bool      // guarded by mu
	finishAt  time.Time // guarded by mu
	startAt   time.Time // guarded by mu
}

// Run executes the trace on the testbed. All jobs must fit the cluster
// simultaneously (the testbed emulates the §7.1.1 micro-benchmark
// setting; queueing experiments belong to the simulator).
//
// The testbed is the one component that intentionally runs against the
// real clock: it emulates wall-time execution scaled by TimeScale, so
// the wall-clock reads below are the audited boundary where real time
// enters, not a determinism leak.
// silod:inject wallclock
func Run(cfg Config, specs []workload.JobSpec) (*Result, error) {
	if cfg.TimeScale <= 0 {
		return nil, fmt.Errorf("testbed: non-positive time scale %v", cfg.TimeScale)
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = unit.GiB(4)
	}
	if cfg.ReschedInterval <= 0 {
		cfg.ReschedInterval = 10 * unit.Minute
	}
	if cfg.MaxWall <= 0 {
		cfg.MaxWall = 2 * time.Minute
	}
	var gpus int
	for _, s := range specs {
		gpus += s.NumGPUs
	}
	if gpus > cfg.Cluster.GPUs {
		return nil, fmt.Errorf("testbed: trace needs %d GPUs, cluster has %d", gpus, cfg.Cluster.GPUs)
	}
	if cfg.Faults != nil {
		for i, ev := range cfg.Faults.Events {
			switch ev.Kind {
			case faults.KindCacheLoss, faults.KindCacheRestore, faults.KindIOLoss, faults.KindIORestore:
			default:
				return nil, fmt.Errorf("testbed: fault event %d: kind %s is not supported (no preemption model); use the simulator", i, ev.Kind)
			}
		}
	}
	inj, err := faults.NewInjector(cfg.Cluster, cfg.Faults, cfg.Metrics, cfg.Timeline)
	if err != nil {
		return nil, err
	}

	mgr := datamgr.New(cfg.Cluster.Cache, unit.Bandwidth(float64(cfg.Cluster.RemoteIO)*cfg.TimeScale), cfg.Seed, nil)
	mgr.EnableMetrics(cfg.Metrics)
	rng := simrng.New(cfg.Seed)
	jobs := make([]*jobRun, 0, len(specs))
	for _, spec := range specs {
		blocks, err := dataset.New(spec.Dataset.Name, spec.Dataset.Size, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		// Block-align the dataset so full-dataset quotas cover every
		// block (same rationale as the batch simulator).
		spec.Dataset.Size = unit.Bytes(blocks.Num) * cfg.BlockSize
		key := spec.Dataset.Name
		if cfg.System.PrivateCaches() {
			key = policy.CoorDLKey(spec.ID)
		}
		if err := mgr.RegisterDataset(key, spec.Dataset.Size, cfg.BlockSize); err != nil {
			return nil, err
		}
		if err := mgr.AttachJob(spec.ID, key); err != nil {
			return nil, err
		}
		total := int64((float64(spec.TotalBytes()) + float64(cfg.BlockSize) - 1) / float64(cfg.BlockSize))
		if total < 1 {
			total = 1
		}
		jobs = append(jobs, &jobRun{
			spec: spec,
			profile: estimator.JobProfile{
				IdealThroughput: spec.IdealThroughput(),
				DatasetSize:     spec.Dataset.Size,
			},
			blocks:    blocks,
			stream:    dataset.NewEpochStream(blocks, rng.Split("stream-"+spec.ID)),
			remaining: total,
			total:     total,
		})
	}

	start := time.Now()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Scheduler goroutine: periodic allocation rounds.
	tb := &bed{cfg: cfg, mgr: mgr, jobs: jobs, start: start, met: newBedMetrics(cfg),
		failc: make(chan struct{}), inj: inj, eff: inj.Effective()}
	for _, j := range jobs { // all testbed jobs submit at t=0
		tb.met.tl.RecordAt(0, metrics.EventSubmit, j.spec.ID, float64(j.spec.NumGPUs), "gpus_requested")
	}
	if err := tb.round(); err != nil { // initial allocation before jobs start
		return nil, err
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		period := time.Duration(float64(cfg.ReschedInterval) / cfg.TimeScale * float64(time.Second))
		if period < time.Millisecond {
			period = time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := tb.round(); err != nil {
					tb.fail(err)
					return
				}
			}
		}
	}()

	// Job pipelines.
	done := make(chan *jobRun, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j *jobRun) {
			defer wg.Done()
			tb.runJob(j, stop)
			done <- j
		}(j)
	}

	// Wait with a wall-clock bound, aborting early on the first fatal
	// error any goroutine records.
	deadline := time.After(cfg.MaxWall)
	finished := 0
	var timeout, failed bool
	for finished < len(jobs) && !timeout && !failed {
		select {
		case <-done:
			finished++
		case <-tb.failc:
			failed = true
		case <-deadline:
			timeout = true
		}
	}
	close(stop)
	wg.Wait()
	// The round goroutine has exited, so the injector is safe to close
	// out from here; this finalizes the degraded-time accounting.
	tb.inj.Finish(unit.Time(time.Since(start).Seconds() * cfg.TimeScale))
	if err := tb.firstErr(); err != nil {
		return nil, err
	}
	if timeout {
		return nil, fmt.Errorf("testbed: wall-clock bound %v exceeded with %d/%d jobs finished",
			cfg.MaxWall, finished, len(jobs))
	}

	res := &Result{}
	var makespan unit.Duration
	for _, j := range jobs {
		j.mu.Lock()
		finishAt := j.finishAt
		j.mu.Unlock()
		simFinish := unit.Time(finishAt.Sub(start).Seconds() * cfg.TimeScale)
		res.Jobs = append(res.Jobs, JobResult{ID: j.spec.ID, Start: 0, Finish: simFinish})
		if d := simFinish.Elapsed(); d > makespan {
			makespan = d
		}
	}
	sort.Slice(res.Jobs, func(i, j int) bool { return res.Jobs[i].ID < res.Jobs[j].ID })
	res.Makespan = makespan
	return res, nil
}

// bed holds the scheduler-side state.
type bed struct {
	cfg   Config
	mgr   *datamgr.Manager
	jobs  []*jobRun
	start time.Time
	met   bedMetrics

	// inj and eff belong to the scheduler: the initial round runs before
	// the round goroutine starts, and after that only the round
	// goroutine touches them, so rounds see a consistent capacity view
	// while job goroutines hit the (internally locked) manager.
	inj *faults.Injector
	eff core.Cluster

	mu    sync.Mutex
	err   error // guarded by mu (first fatal error of the run)
	failc chan struct{}
}

// fail records the run's first fatal error and wakes the waiter; later
// errors (usually knock-on effects of the first) are dropped.
func (b *bed) fail(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = err
		close(b.failc)
	}
}

// firstErr returns the error recorded by fail, if any.
func (b *bed) firstErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// bedMetrics is the testbed's own instrumentation (the data manager
// carries the cache and remote-IO metrics). Zero value no-ops.
type bedMetrics struct {
	tl          *metrics.Timeline
	rounds      *metrics.Counter   // silod_testbed_rounds_total
	completions *metrics.Counter   // silod_testbed_job_completions_total
	jct         *metrics.Histogram // silod_testbed_jct_minutes
}

func newBedMetrics(cfg Config) bedMetrics {
	r := cfg.Metrics // nil-safe
	return bedMetrics{
		tl:          cfg.Timeline,
		rounds:      r.Counter("silod_testbed_rounds_total"),
		completions: r.Counter("silod_testbed_job_completions_total"),
		jct:         r.Histogram("silod_testbed_jct_minutes", metrics.ExpBuckets(1, 2, 14)),
	}
}

// views builds the policy's job views from live counters.
func (b *bed) views() []core.JobView {
	out := make([]core.JobView, 0, len(b.jobs))
	for _, j := range b.jobs {
		j.mu.Lock()
		rem := j.remaining
		fin := j.finished
		run := j.running
		j.mu.Unlock()
		if fin {
			continue
		}
		key := j.spec.Dataset.Name
		if b.cfg.System.PrivateCaches() {
			key = policy.CoorDLKey(j.spec.ID)
		}
		cached := b.mgr.CachedBytes(key)
		if cached > j.spec.Dataset.Size {
			cached = j.spec.Dataset.Size
		}
		// Effective cache is the epoch-start snapshot the data manager
		// tracks (§6) — NOT the live contents: blocks admitted this
		// epoch serve no reads until the next pass, so demand must be
		// sized against the snapshot or warming jobs get starved as
		// their cache fills.
		effective := unit.Bytes(0)
		if st, err := b.mgr.Stats(j.spec.ID); err == nil {
			effective = st.EffectiveCached
			if effective > j.spec.Dataset.Size {
				effective = j.spec.Dataset.Size
			}
		}
		out = append(out, core.JobView{
			ID:              j.spec.ID,
			NumGPUs:         j.spec.NumGPUs,
			Profile:         j.profile,
			DatasetKey:      key,
			DatasetSize:     j.spec.Dataset.Size,
			RemainingBytes:  unit.Bytes(rem) * b.cfg.BlockSize,
			AttainedBytes:   unit.Bytes(j.total-rem) * b.cfg.BlockSize,
			EffectiveCached: effective,
			CachedBytes:     cached,
			Submit:          0,
			Running:         run,
		})
	}
	return out
}

// round runs one allocation round and pushes it into the data manager.
// An allocation the data manager rejects is a protocol violation
// between policy and manager: it aborts the run.
func (b *bed) round() error {
	now := unit.Time(time.Since(b.start).Seconds() * b.cfg.TimeScale)
	b.applyFaults(now)
	views := b.views()
	if len(views) == 0 {
		return nil
	}
	b.met.rounds.Inc()
	a := b.cfg.Policy.Assign(b.eff, now, views)
	if err := a.Validate(b.eff, views); err != nil {
		return fmt.Errorf("testbed: infeasible assignment: %w", err)
	}
	// Cache quotas.
	mentioned := make(map[string]bool)
	for key, q := range a.CacheQuota {
		mentioned[key] = true
		if err := b.mgr.AllocateCacheSize(key, q); err != nil {
			return fmt.Errorf("testbed: allocate cache for %s: %w", key, err)
		}
	}
	// Remote IO: honor policy allocations, then distribute leftovers
	// (and everything, for uncontrolled systems) fair-share by demand,
	// mirroring the simulator's work-conserving throttle.
	demands := make([]remoteio.Demand, 0, len(views))
	grants := make(map[string]float64, len(views))
	var allocated float64
	anyAlloc := false
	for _, v := range views {
		miss := 1.0
		if v.DatasetSize > 0 {
			miss = 1 - float64(v.EffectiveCached)/float64(v.DatasetSize)
		}
		want := float64(v.Profile.IdealThroughput) * miss
		// Floor: even a fully-cached job keeps a sliver of remote-IO
		// demand. Its bucket rate must never be zero, because a fault can
		// invalidate cached blocks mid-epoch and a miss against a
		// zero-rate bucket stalls the loader unboundedly instead of
		// degrading gracefully.
		if minWant := float64(v.Profile.IdealThroughput) * 0.02; want < minWant {
			want = minWant
		}
		if bw, ok := a.RemoteIO[v.ID]; ok && bw > 0 {
			grants[v.ID] = float64(bw)
			allocated += float64(bw)
			anyAlloc = true
			want -= float64(bw)
		}
		if want > 0 {
			demands = append(demands, remoteio.Demand{JobID: v.ID, Want: unit.Bandwidth(want)})
		}
	}
	pool := float64(b.eff.RemoteIO)
	if anyAlloc {
		pool -= allocated
	}
	if pool > 0 && len(demands) > 0 {
		share := remoteio.FairShare(unit.Bandwidth(pool), demands)
		for id, bw := range share {
			grants[id] += float64(bw)
		}
	}
	// Apply decreases before increases: replacing rates one at a time
	// against a live ledger would otherwise transiently oversubscribe
	// (job A's new high rate lands while job B still holds last round's
	// high rate).
	type update struct {
		id     string
		scaled unit.Bandwidth
	}
	var raises []update
	for _, v := range views {
		scaled := unit.Bandwidth(grants[v.ID] * b.cfg.TimeScale)
		if st, err := b.mgr.Stats(v.ID); err == nil && scaled > st.RemoteIO {
			raises = append(raises, update{v.ID, scaled})
			continue
		}
		if err := b.mgr.AllocateRemoteIO(v.ID, scaled); err != nil {
			return fmt.Errorf("testbed: allocate remote IO for %s: %w", v.ID, err)
		}
	}
	for _, u := range raises {
		if err := b.mgr.AllocateRemoteIO(u.id, u.scaled); err != nil {
			return fmt.Errorf("testbed: allocate remote IO for %s: %w", u.id, err)
		}
	}
	// GPU starts (no preemption: once started, a job runs to finish).
	for _, j := range b.jobs {
		j.mu.Lock()
		if !j.finished && !j.running && a.GPUs[j.spec.ID] > 0 {
			j.running = true
			j.startAt = time.Now()
			b.met.tl.RecordAt(float64(now), metrics.EventSchedule, j.spec.ID,
				float64(a.GPUs[j.spec.ID]), "gpus")
		}
		j.mu.Unlock()
	}
	return nil
}

// applyFaults drains fault events due by now and applies them to the
// live data manager: cache losses invalidate the lost fraction of pool
// contents and shrink capacity (jobs keep running; subsequent reads miss
// and fall back to throttled remote IO); remote-IO events resize the
// ledger, re-throttling token buckets mid-stream. Only round() calls
// this, so b.eff is read and written without locking.
func (b *bed) applyFaults(now unit.Time) {
	for {
		before := b.eff
		ev, ok := b.inj.Next(now)
		if !ok {
			return
		}
		b.eff = b.inj.Effective()
		switch ev.Kind {
		case faults.KindCacheLoss:
			frac := 0.0
			if before.Cache > 0 {
				frac = 1 - float64(b.eff.Cache)/float64(before.Cache)
			}
			b.mgr.ResizeCache(b.eff.Cache, frac)
		case faults.KindCacheRestore:
			b.mgr.ResizeCache(b.eff.Cache, 0)
		case faults.KindIOLoss, faults.KindIORestore:
			// Ledger rates are stored TimeScale-scaled (simulated bytes
			// per wall second), so the effective capacity is scaled the
			// same way before resizing.
			b.mgr.ResizeEgress(unit.Bandwidth(float64(b.eff.RemoteIO) * b.cfg.TimeScale))
		default:
			// Unreachable: Run rejects GPU and job-crash kinds up front
			// (the testbed has no preemption model).
		}
	}
}

// runJob drives one job's loader+compute pipeline: the loader goroutine
// reads blocks through the data manager (sleeping out throttle delays
// on misses) into a bounded channel; the compute loop sleeps the scaled
// step time per block, exactly the paper's accelerated-GPU method.
func (b *bed) runJob(j *jobRun, stop <-chan struct{}) {
	// Wait until granted GPUs.
	for {
		j.mu.Lock()
		run := j.running
		j.mu.Unlock()
		if run {
			break
		}
		select {
		case <-stop:
			return
		case <-time.After(time.Millisecond):
		}
	}
	computeWall := time.Duration(float64(unit.DivBandwidth(b.cfg.BlockSize, j.profile.IdealThroughput)) /
		b.cfg.TimeScale * float64(time.Second))
	loaded := make(chan struct{}, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // loader
		defer wg.Done()
		defer close(loaded)
		for i := int64(0); i < j.total; i++ {
			blk, newEpoch := j.stream.Next()
			if newEpoch {
				if err := b.mgr.EpochStart(j.spec.ID); err != nil {
					b.fail(fmt.Errorf("testbed: epoch start for %s: %w", j.spec.ID, err))
					return
				}
			}
			res, err := b.mgr.Read(j.spec.ID, blk)
			if err != nil {
				b.fail(fmt.Errorf("testbed: read for %s: %w", j.spec.ID, err))
				return
			}
			if res.Wait > 0 {
				select {
				case <-stop:
					return
				case <-time.After(res.Wait):
				}
			}
			select {
			case <-stop:
				return
			case loaded <- struct{}{}:
			}
		}
	}()
	// Compute loop.
	for range loaded {
		select {
		case <-stop:
			wg.Wait()
			return
		case <-time.After(computeWall):
		}
		j.mu.Lock()
		j.remaining--
		rem := j.remaining
		j.mu.Unlock()
		if rem <= 0 {
			break
		}
	}
	if b.firstErr() != nil {
		// The loader aborted: the job did not finish, and the waiter is
		// already unblocking via failc.
		wg.Wait()
		return
	}
	j.mu.Lock()
	j.finished = true
	j.running = false
	j.finishAt = time.Now()
	finish := j.finishAt
	j.mu.Unlock()
	simFinish := finish.Sub(b.start).Seconds() * b.cfg.TimeScale
	b.met.completions.Inc()
	b.met.jct.Observe(unit.Duration(simFinish).Minutes())
	b.met.tl.RecordAt(simFinish, metrics.EventComplete, j.spec.ID, simFinish, "jct_seconds")
	b.mgr.DetachJob(j.spec.ID)
	wg.Wait()
}
