package cluster

import (
	"fmt"
	"testing"

	"repro/internal/simrng"
	"repro/internal/unit"
)

func TestNewCluster(t *testing.T) {
	c, err := New(4, 8, unit.TiB(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalGPUs() != 32 || c.FreeGPUs() != 32 {
		t.Errorf("GPUs: %d/%d", c.FreeGPUs(), c.TotalGPUs())
	}
	if c.TotalCache() != unit.TiB(4) {
		t.Errorf("cache: %v", c.TotalCache())
	}
	if _, err := New(0, 8, 0); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestPlaceWholeServerPreferred(t *testing.T) {
	c, _ := New(3, 8, unit.TiB(1))
	p, err := c.Place("j1", 8, Pack)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 {
		t.Errorf("8-GPU gang spread over %d servers, want 1", len(p))
	}
	if c.FreeGPUs() != 16 {
		t.Errorf("free = %d", c.FreeGPUs())
	}
}

func TestPlaceSpansWhenNeeded(t *testing.T) {
	c, _ := New(2, 4, unit.TiB(1))
	if _, err := c.Place("a", 3, Pack); err != nil {
		t.Fatal(err)
	}
	// 5 free GPUs across (1, 4): a 5-GPU gang must span.
	p, err := c.Place("b", 5, Pack)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range p {
		total += g
	}
	if total != 5 || len(p) != 2 {
		t.Errorf("placement %v", p)
	}
	if c.FreeGPUs() != 0 {
		t.Errorf("free = %d", c.FreeGPUs())
	}
}

func TestPlaceRejectsOversizedGang(t *testing.T) {
	c, _ := New(2, 4, unit.TiB(1))
	if _, err := c.Place("x", 9, Pack); err == nil {
		t.Error("oversized gang placed")
	}
	if _, err := c.Place("x", 0, Pack); err == nil {
		t.Error("zero gang placed")
	}
}

func TestPackVsSpread(t *testing.T) {
	c, _ := New(2, 8, unit.TiB(1))
	c.Place("a", 4, Pack)
	// Pack prefers the fuller server for the next small gang.
	p, _ := c.Place("b", 2, Pack)
	for sid := range p {
		if sid != 0 {
			t.Errorf("pack placed on server %d, want 0", sid)
		}
	}
	c2, _ := New(2, 8, unit.TiB(1))
	c2.Place("a", 4, Spread)
	p2, _ := c2.Place("b", 2, Spread)
	for sid := range p2 {
		if sid != 1 {
			t.Errorf("spread placed on server %d, want 1", sid)
		}
	}
}

func TestRelease(t *testing.T) {
	c, _ := New(2, 4, unit.TiB(1))
	c.Place("a", 6, Pack)
	c.Release("a")
	if c.FreeGPUs() != 8 {
		t.Errorf("release left %d free", c.FreeGPUs())
	}
	c.Release("never-placed") // no-op
}

// TestFabricModelFigure3 pins the Figure 3 conclusion: with a
// datacenter storage fabric, peer reads sustain near-linear scaling.
func TestFabricModelFigure3(t *testing.T) {
	m := FabricModel{
		DemandPerServer: unit.MBpsOf(1923),
		LocalDiskBW:     unit.GBpsOf(3.2),
		FabricNICBW:     unit.GBpsOf(2.5),
	}
	for _, n := range []int{1, 10, 50} {
		actual, linear := m.Throughput(n)
		if float64(actual) < 0.75*float64(linear) {
			t.Errorf("n=%d: %v vs linear %v", n, actual, linear)
		}
		if actual > linear {
			t.Errorf("n=%d: actual above linear", n)
		}
	}
	// A slow NIC becomes the bottleneck as the peer fraction grows.
	slow := FabricModel{
		DemandPerServer: unit.MBpsOf(1923),
		LocalDiskBW:     unit.GBpsOf(3.2),
		FabricNICBW:     unit.MBpsOf(500),
	}
	a1, _ := slow.Throughput(1)
	a50, l50 := slow.Throughput(50)
	if float64(a1) != 1923*float64(unit.MB) {
		t.Errorf("n=1 has no peer traffic, throughput %v", a1)
	}
	if float64(a50) > 0.5*float64(l50) {
		t.Errorf("slow NIC at n=50 should bottleneck hard: %v vs %v", a50, l50)
	}
	if got, _ := m.Throughput(0); got != 0 {
		t.Error("n=0")
	}
}

// TestPlacementInvariantsProperty: under random place/release
// sequences, no server ever exceeds its GPU count and accounting stays
// exact.
func TestPlacementInvariantsProperty(t *testing.T) {
	rng := simrng.New(31)
	for trial := 0; trial < 50; trial++ {
		servers := rng.Intn(6) + 1
		perServer := rng.Intn(7) + 2
		c, err := New(servers, perServer, unit.TiB(1))
		if err != nil {
			t.Fatal(err)
		}
		placed := map[string]int{}
		nextID := 0
		for step := 0; step < 100; step++ {
			if rng.Float64() < 0.6 {
				gang := rng.Intn(perServer*2) + 1
				id := fmt.Sprintf("j%d", nextID)
				nextID++
				p, err := c.Place(id, gang, []PlacementStrategy{Pack, Spread}[rng.Intn(2)])
				if err != nil {
					if gang <= c.FreeGPUs() {
						t.Fatalf("placement failed with %d free: %v", c.FreeGPUs(), err)
					}
					continue
				}
				total := 0
				for _, g := range p {
					total += g
				}
				if total != gang {
					t.Fatalf("placed %d of %d GPUs", total, gang)
				}
				placed[id] = gang
			} else {
				for id := range placed {
					c.Release(id)
					delete(placed, id)
					break
				}
			}
			used := 0
			for _, g := range placed {
				used += g
			}
			if c.FreeGPUs() != servers*perServer-used {
				t.Fatalf("accounting drift: free=%d want %d", c.FreeGPUs(), servers*perServer-used)
			}
			for _, srv := range c.Servers() {
				if srv.FreeGPUs < 0 || srv.FreeGPUs > srv.GPUs {
					t.Fatalf("server %d free=%d of %d", srv.ID, srv.FreeGPUs, srv.GPUs)
				}
			}
		}
	}
}
