// Package cluster models the physical GPU cluster: servers with GPU
// slots and local cache disks, gang placement, and the storage-fabric
// throughput model behind Figure 3 — which shows that a distributed
// cache can serve peer reads at local-disk speed, justifying the flat
// cache-pool abstraction the scheduler and simulator use.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/unit"
)

// Server is one GPU server.
type Server struct {
	ID        int
	GPUs      int
	FreeGPUs  int
	CacheDisk unit.Bytes
	jobs      map[string]int // jobID -> GPUs placed here
}

// Cluster is a set of servers.
type Cluster struct {
	servers []*Server
}

// New builds a homogeneous cluster of n servers with gpusPerServer GPUs
// and cachePerServer of local cache disk each.
func New(n, gpusPerServer int, cachePerServer unit.Bytes) (*Cluster, error) {
	if n <= 0 || gpusPerServer <= 0 {
		return nil, fmt.Errorf("cluster: invalid geometry %d servers x %d GPUs", n, gpusPerServer)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.servers = append(c.servers, &Server{
			ID: i, GPUs: gpusPerServer, FreeGPUs: gpusPerServer,
			CacheDisk: cachePerServer, jobs: make(map[string]int),
		})
	}
	return c, nil
}

// TotalGPUs reports the cluster's GPU count.
func (c *Cluster) TotalGPUs() int {
	var s int
	for _, srv := range c.servers {
		s += srv.GPUs
	}
	return s
}

// FreeGPUs reports unallocated GPUs.
func (c *Cluster) FreeGPUs() int {
	var s int
	for _, srv := range c.servers {
		s += srv.FreeGPUs
	}
	return s
}

// TotalCache reports the consolidated cache capacity (the distributed
// cache pools all servers' local disks together, §2.1).
func (c *Cluster) TotalCache() unit.Bytes {
	var s unit.Bytes
	for _, srv := range c.servers {
		s += srv.CacheDisk
	}
	return s
}

// Servers returns the servers in ID order.
func (c *Cluster) Servers() []*Server {
	out := append([]*Server(nil), c.servers...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PlacementStrategy selects servers for a gang.
type PlacementStrategy int

// Placement strategies: Pack fills the fullest servers first (gang
// locality), Spread the emptiest first (load balance).
const (
	Pack PlacementStrategy = iota
	Spread
)

// Place allocates gpus GPUs for jobID, preferring whole-server fits.
// It returns the per-server placement or an error when the gang cannot
// fit. Gangs may span servers (distributed data-parallel training).
func (c *Cluster) Place(jobID string, gpus int, strat PlacementStrategy) (map[int]int, error) {
	if gpus <= 0 {
		return nil, fmt.Errorf("cluster: placing %d GPUs for %s", gpus, jobID)
	}
	if gpus > c.FreeGPUs() {
		return nil, fmt.Errorf("cluster: %d GPUs requested for %s, %d free", gpus, jobID, c.FreeGPUs())
	}
	order := c.Servers()
	sort.SliceStable(order, func(i, j int) bool {
		if strat == Pack {
			if order[i].FreeGPUs != order[j].FreeGPUs {
				return order[i].FreeGPUs < order[j].FreeGPUs
			}
		} else {
			if order[i].FreeGPUs != order[j].FreeGPUs {
				return order[i].FreeGPUs > order[j].FreeGPUs
			}
		}
		return order[i].ID < order[j].ID
	})
	// Prefer a single server that fits the whole gang.
	placement := make(map[int]int)
	for _, srv := range order {
		if srv.FreeGPUs >= gpus {
			srv.FreeGPUs -= gpus
			srv.jobs[jobID] += gpus
			placement[srv.ID] = gpus
			return placement, nil
		}
	}
	// Otherwise span servers.
	left := gpus
	for _, srv := range order {
		if left == 0 {
			break
		}
		take := srv.FreeGPUs
		if take > left {
			take = left
		}
		if take == 0 {
			continue
		}
		srv.FreeGPUs -= take
		srv.jobs[jobID] += take
		placement[srv.ID] = take
		left -= take
	}
	if left > 0 {
		// Roll back (cannot happen given the FreeGPUs precheck, but be
		// defensive against concurrent misuse).
		c.Release(jobID)
		return nil, fmt.Errorf("cluster: failed to place %d GPUs for %s", gpus, jobID)
	}
	return placement, nil
}

// Release frees all GPUs held by jobID.
func (c *Cluster) Release(jobID string) {
	for _, srv := range c.servers {
		if g, ok := srv.jobs[jobID]; ok {
			srv.FreeGPUs += g
			delete(srv.jobs, jobID)
		}
	}
}

// FabricModel parameterizes the Figure 3 storage-fabric experiment: n
// servers each running jobs with aggregate IO demand DemandPerServer,
// datasets spread evenly across all servers' caches, so each server
// reads 1/n of its data locally and (n-1)/n from peers over the storage
// fabric.
type FabricModel struct {
	DemandPerServer unit.Bandwidth // e.g. 1923 MB/s (ResNet-50 on 8 A100s)
	LocalDiskBW     unit.Bandwidth // local NVMe read bandwidth per server
	FabricNICBW     unit.Bandwidth // per-server storage-fabric bandwidth
}

// Throughput returns the aggregate achievable read throughput with n
// servers, and the same under an idealized no-data-bottleneck (linear)
// scaling, both in bytes/s.
//
// Disk load per server is demand-independent of n (it serves 1/n for
// its own jobs plus (n-1)·(1/n) for peers), so the only n-dependent
// bottleneck is the NIC carrying the (n-1)/n peer fraction — with a
// datacenter storage fabric (NIC >= demand) throughput stays linear,
// which is the figure's conclusion.
func (m FabricModel) Throughput(n int) (actual, linear unit.Bandwidth) {
	if n <= 0 {
		return 0, 0
	}
	d := float64(m.DemandPerServer)
	linear = unit.Bandwidth(d * float64(n))
	scale := 1.0
	if m.LocalDiskBW > 0 && d > float64(m.LocalDiskBW) {
		scale = float64(m.LocalDiskBW) / d
	}
	peerFrac := float64(n-1) / float64(n)
	if m.FabricNICBW > 0 && peerFrac > 0 {
		nicScale := float64(m.FabricNICBW) / (d * peerFrac)
		if nicScale < scale {
			scale = nicScale
		}
	}
	if scale > 1 {
		scale = 1
	}
	return unit.Bandwidth(d * float64(n) * scale), linear
}
