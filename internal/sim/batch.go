package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eventq"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/remoteio"
	"repro/internal/simrng"
	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

// batchJob is the per-job state of the batch engine: a two-stage
// pipeline (data loading, compute) at block granularity, matching the
// paper's Figure 5 execution model. Cache hits cost no loader time (the
// storage fabric sustains local-disk speed, Figure 3), so loader time
// accrues only on remote fetches and the long-run loading rate is
// b/(1-c/d) — the quantity Eq. 3 models.
type batchJob struct {
	rt     *jobRT
	stream dataset.Stream
	blocks dataset.Blocks

	blocksTotal int64 // total blocks to train through
	blocksDone  int64
	// doneAtEpoch is the issued-block count when the current epoch
	// began — the checkpoint a fault-driven rollback rewinds to.
	doneAtEpoch int64
	// effBytes is the cache snapshot at the job's current epoch start:
	// the effective cache (§6) used for demand sizing.
	effBytes unit.Bytes

	// Pipeline state.
	prefetch     int // blocks loaded and awaiting compute
	fetchEvent   *eventq.Event
	fetchLeft    unit.Bytes // bytes left of the in-flight remote fetch
	fetchRateAt  float64    // sim time the in-flight rate was set
	rate         unit.Bandwidth
	computeEvent *eventq.Event
	computing    bool

	issued int64 // blocks issued to the loader so far
	epochs int   // passes started, for timeline epoch events
}

// prefetchDepth is the loader's prefetch queue in blocks. DL data
// loaders prefetch aggressively, which is what lets the closed-form
// model treat loading and compute as a perfectly overlapped pipeline; a
// shallow queue would stall compute during miss bursts and bias
// measured throughput below b/(1-c/d).
const prefetchDepth = 64

// batchSim is the batch engine.
type batchSim struct {
	cfg   Config
	q     *eventq.Queue
	pool  cache.Pool
	jobs  []*jobRT
	byID  map[string]*jobRT
	bjobs map[string]*batchJob
	rng   *simrng.RNG

	// inj replays the fault schedule; eff is the degraded capacity every
	// scheduling decision uses instead of cfg.Cluster. faultPreempt
	// marks the next round as fault-driven (stopped jobs roll back).
	inj          *faults.Injector
	eff          core.Cluster
	faultPreempt bool

	res        *Result
	series     map[string]*stats.Series
	met        *simMetrics
	finished   int
	lastFinish unit.Time

	// Windowed throughput accounting.
	lastSampleT     float64
	bytesSinceSamp  float64
	remoteSinceSamp float64

	// Scratch buffers reused across scheduling rounds (the engine is
	// single-threaded); each is valid only until the method that filled
	// it runs again.
	actBuf     []*jobRT
	runBuf     []*jobRT
	viewsBuf   []core.JobView
	keysBuf    []string
	hitsBuf    []float64
	grantsBuf  []unit.Bandwidth
	demandsBuf []float64
	demandBuf  []remoteio.Demand
	residBuf   []remoteio.Demand
	residIdx   []int
	shareBuf   []unit.Bandwidth
	divider    remoteio.Divider
	valScratch core.ValidateScratch

	// Solve-skip memo: the last (effective cluster, views) the policy
	// solved against and the assignment it produced. Valid only for
	// pure policies (core.PureAssigner); see reschedule.
	solvePure  bool
	solveOK    bool
	lastEff    core.Cluster
	lastViews  []core.JobView
	lastAssign core.Assignment
	// ignoreFields widens the memo from exact-match to delta-aware: it
	// holds the JobView fields the (pure) policy declares it never
	// reads (core.DeltaAssigner). Zero for impure policies and in
	// full-resolve mode.
	ignoreFields core.ViewFields

	// Event batching: tickEvent is the single armed periodic tick
	// (re-armed, not stacked, by each round) and roundPending coalesces
	// same-instant arrivals/completions/faults into one scheduling
	// round instead of N back-to-back rounds.
	tickEvent    *eventq.Event
	roundPending bool
}

// runBatch executes the batch engine.
func runBatch(cfg Config, specs []workload.JobSpec) (*Result, error) {
	s := &batchSim{
		cfg:   cfg,
		q:     eventq.New(),
		byID:  make(map[string]*jobRT),
		bjobs: make(map[string]*batchJob),
		rng:   simrng.New(cfg.Seed),
		series: map[string]*stats.Series{
			"throughput":      {Name: "throughput"},
			"ideal":           {Name: "ideal"},
			"remoteio":        {Name: "remoteio"},
			"fairness":        {Name: "fairness"},
			"cache_alloc":     {Name: "cache_alloc"},
			"cache_effective": {Name: "cache_effective"},
		},
	}
	s.met = newSimMetrics(cfg)
	s.solvePure = policyPure(cfg.Policy)
	if fr, ok := cfg.Policy.(core.FullResolver); ok {
		fr.SetFullResolve(cfg.FullResolve)
	}
	if cfg.FullResolve {
		// Reference mode: every round re-solves from scratch; the
		// identity tests diff this against the memoized fast path.
		s.solvePure = false
	} else {
		s.ignoreFields = core.PolicyIgnoredFields(cfg.Policy)
	}
	// The batch engine drives the real pools, so block-level hit/miss/
	// eviction counters come straight from the cache package.
	pm := cache.NewPoolMetrics(cfg.Metrics, cfg.System.String())
	if cfg.System.UsesLRU() {
		lp := cache.NewLRUPool(cfg.Cluster.Cache)
		lp.SetMetrics(pm)
		s.pool = lp
	} else {
		qp := cache.NewQuotaPool(cfg.Cluster.Cache, s.rng.Split("evict"))
		qp.SetMetrics(pm)
		s.pool = qp
	}
	ordered := append([]workload.JobSpec(nil), specs...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Submit < ordered[j].Submit {
			return true
		}
		if ordered[j].Submit < ordered[i].Submit {
			return false
		}
		return ordered[i].ID < ordered[j].ID
	})
	for _, spec := range ordered {
		blocks, err := dataset.New(spec.Dataset.Name, spec.Dataset.Size, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		// Block-align the dataset size so a "cache the whole dataset"
		// quota covers every block; otherwise the final partial block
		// can never be admitted and trickles in remotely every epoch.
		spec.Dataset.Size = unit.Bytes(blocks.Num) * cfg.BlockSize
		rt := newJobRT(spec, cfg.System)
		s.jobs = append(s.jobs, rt)
		s.byID[spec.ID] = rt
		if err := s.pool.Register(rt.dsKey, blocks.Num, cfg.BlockSize); err != nil {
			return nil, err
		}
		var stream dataset.Stream
		srng := s.rng.Split("stream-" + spec.ID)
		if spec.Curriculum != nil {
			cs, err := dataset.NewCurriculumStream(blocks, *spec.Curriculum, srng)
			if err != nil {
				return nil, err
			}
			stream = cs
		} else {
			stream = dataset.NewEpochStream(blocks, srng)
		}
		total := int64(math.Ceil(float64(spec.TotalBytes()) / float64(cfg.BlockSize)))
		if total < 1 {
			total = 1
		}
		s.bjobs[spec.ID] = &batchJob{rt: rt, stream: stream, blocks: blocks, blocksTotal: total}
		// Arrival event requests a scheduling round; same-instant
		// arrivals coalesce into one round (see requestRound).
		submit := float64(spec.Submit)
		s.q.Schedule(submit, func() { s.requestRound() })
	}
	s.met.initTenants(s.jobs)
	s.met.submitAll(s.jobs)
	inj, err := faults.NewInjector(cfg.Cluster, cfg.Faults, cfg.Metrics, cfg.Timeline)
	if err != nil {
		return nil, err
	}
	s.inj = inj
	s.eff = inj.Effective()
	if cfg.Faults != nil {
		// One queue event per distinct fault time; the injector drains
		// every event due at that instant (FIFO within ties).
		seen := make(map[float64]bool, len(cfg.Faults.Events))
		for _, ev := range cfg.Faults.Events {
			at := float64(ev.At)
			if !seen[at] {
				seen[at] = true
				s.q.Schedule(at, func() { s.onFault() })
			}
		}
	}
	s.res = &Result{Timelines: s.series}
	// Periodic rescheduling ticks are (re)armed by reschedule itself.
	total := len(s.jobs)
	maxEvents := 500_000_000
	for s.finished < total {
		if !s.q.Step() {
			return nil, fmt.Errorf("sim(batch): event queue drained with %d/%d jobs finished", s.finished, total)
		}
		s.res.Events++
		if s.res.Events > maxEvents {
			return nil, fmt.Errorf("sim(batch): event guard tripped at %d events", s.res.Events)
		}
		if unit.Duration(s.q.Now()) > s.cfg.MaxSimTime {
			return nil, fmt.Errorf("sim(batch): exceeded max simulated time with %d/%d jobs; stuck: %s",
				s.finished, total, s.describeStuck())
		}
	}
	s.inj.Finish(unit.Time(s.q.Now()))
	s.met.flushBytes()
	s.met.flushTenantTrained(s.jobs)
	s.sample(true)
	s.res.Makespan = s.lastFinish.Sub(0)
	sort.Slice(s.res.Jobs, func(i, j int) bool { return s.res.Jobs[i].ID < s.res.Jobs[j].ID })
	return s.res, nil
}

// describeStuck reports the pipeline state of unfinished jobs, for the
// runaway-simulation diagnostic.
func (s *batchSim) describeStuck() string {
	out := ""
	for _, j := range s.jobs {
		if j.done {
			continue
		}
		bj := s.bjobs[j.spec.ID]
		out += fmt.Sprintf("[%s running=%v gpus=%d done=%d/%d prefetch=%d computing=%v fetch=%v rate=%v left=%v] ",
			j.spec.ID, j.running, j.gpus, bj.blocksDone, bj.blocksTotal, bj.prefetch,
			bj.computing, bj.fetchEvent != nil, bj.rate, bj.fetchLeft)
	}
	return out
}

// active returns arrived, unfinished jobs. The slice is scratch, valid
// until the next call.
func (s *batchSim) active() []*jobRT {
	now := unit.Time(s.q.Now())
	out := s.actBuf[:0]
	for _, j := range s.jobs {
		if !j.done && j.spec.Submit <= now {
			out = append(out, j)
		}
	}
	s.actBuf = out
	return out
}

// runningJobs returns jobs holding GPUs. The slice is scratch, valid
// until the next call.
func (s *batchSim) runningJobs() []*jobRT {
	out := s.runBuf[:0]
	for _, j := range s.jobs {
		if j.running && !j.done {
			out = append(out, j)
		}
	}
	s.runBuf = out
	return out
}

// reschedule runs the policy, applies quotas and rates, and re-arms the
// periodic tick.
func (s *batchSim) reschedule() {
	now := unit.Time(s.q.Now())
	act := s.active()
	views := resize(&s.viewsBuf, len(act))
	for i, j := range act {
		views[i] = j.view()
		// Effective cache is the per-job epoch-start snapshot (§6):
		// blocks admitted mid-epoch are not re-read until the next
		// pass, so demand sizing must ignore them. CachedBytes is the
		// live pool content, used for placement hysteresis.
		cached := s.pool.CachedBytes(j.dsKey)
		if cached > j.spec.Dataset.Size {
			cached = j.spec.Dataset.Size
		}
		eff := s.bjobs[j.spec.ID].effBytes
		if eff > cached {
			eff = cached
		}
		views[i].EffectiveCached = eff
		views[i].CachedBytes = cached
	}
	var a core.Assignment
	if s.solveOK && s.eff == s.lastEff &&
		core.ViewsEquivalent(views, s.lastViews, s.ignoreFields) {
		// Pure policy, unchanged relevant inputs: the previous solve's
		// assignment is still the answer (re-applying it is a no-op on
		// every observable), so the solve is skipped. Fields in
		// ignoreFields are ones the policy provably never reads
		// (core.DeltaAssigner), so e.g. FIFO keeps its memo while jobs
		// merely make progress between rounds.
		a = s.lastAssign
	} else {
		// Solve and validate against the *effective* capacity so a
		// post-fault re-solve cannot over-grant GPUs, cache, or bandwidth.
		a = s.cfg.Policy.Assign(s.eff, now, views)
		if err := a.ValidateWith(s.eff, views, &s.valScratch); err != nil {
			panic(fmt.Sprintf("sim(batch): invalid assignment at t=%v from %s: %v", now, s.cfg.Policy.Name(), err))
		}
		if s.solvePure {
			s.lastEff = s.eff
			s.lastViews = append(s.lastViews[:0], views...)
			s.lastAssign = a
			s.solveOK = true
		}
	}
	// Apply cache quotas and IO allocations BEFORE (re)starting any
	// pipeline: a newly kicked job issues its first block access
	// immediately, and with quotas still unset that block would be
	// rejected from the cache and paid for again next epoch.
	s.met.reschedules.Inc()
	if qp, ok := s.pool.(*cache.QuotaPool); ok {
		// Sorted key order: quota changes land on the event timeline,
		// and map-iteration order would leak into the dump.
		keys := s.keysBuf[:0]
		for key := range a.CacheQuota {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		s.keysBuf = keys
		for _, key := range keys {
			q := a.CacheQuota[key]
			if q.Changed(qp.Quota(key)) {
				s.met.tl.RecordAt(s.q.Now(), metrics.EventCacheAlloc, key, float64(q), "quota_bytes")
			}
			if err := qp.SetQuota(key, q); err != nil {
				panic(fmt.Sprintf("sim(batch): %v", err))
			}
		}
		for _, key := range qp.Keys() {
			if _, ok := a.CacheQuota[key]; !ok {
				if err := qp.SetQuota(key, 0); err != nil {
					panic(fmt.Sprintf("sim(batch): %v", err))
				}
			}
		}
	}
	for _, j := range act {
		bw := a.RemoteIO[j.spec.ID]
		if bw.Changed(j.remoteIO) {
			s.met.tl.RecordAt(s.q.Now(), metrics.EventIOAlloc, j.spec.ID, float64(bw), "bytes_per_sec")
		}
		j.remoteIO = bw
	}
	for _, j := range act {
		g := a.GPUs[j.spec.ID]
		wasRunning := j.running
		j.gpus = g
		j.running = g > 0
		s.met.transition(now, j, wasRunning)
		if j.running && !j.started {
			j.started = true
			j.start = now
		}
		if j.running && !wasRunning {
			s.kick(s.bjobs[j.spec.ID])
		}
		if !j.running && wasRunning {
			bj := s.bjobs[j.spec.ID]
			s.pause(bj)
			if s.faultPreempt {
				// Fault-driven preemption: the node (and the epoch's
				// uncheckpointed progress) is gone.
				s.rollback(bj)
				s.inj.CountPreemptionsSLO(j.spec.SLO, 1)
			}
		}
	}
	s.faultPreempt = false
	s.refreshRates()
	s.sample(false)
	// Re-arm the single periodic tick. Cancelling the old one keeps
	// exactly one tick pending no matter how many event-driven rounds
	// ran in between; previously every round stacked a fresh tick, so a
	// burst of completions left a storm of near-simultaneous ticks each
	// driving a full round.
	s.q.Cancel(s.tickEvent)
	s.tickEvent = s.q.After(float64(s.cfg.ReschedInterval), func() { s.requestRound() })
}

// requestRound schedules at most one scheduling round at the current
// instant. Arrivals, completions and faults that land at the same
// simulated time all call this; the first call enqueues the round
// behind the remaining same-instant events (the queue is FIFO within a
// timestamp), so the policy solves once against the settled state
// instead of once per event.
func (s *batchSim) requestRound() {
	if s.roundPending {
		return
	}
	s.roundPending = true
	s.q.Schedule(s.q.Now(), func() {
		s.roundPending = false
		s.reschedule()
	})
}

// onFault drains the injector's due events into batch state, then runs
// a scheduling round against the degraded (or recovered) capacity.
func (s *batchSim) onFault() {
	now := unit.Time(s.q.Now())
	applied := false
	for {
		before := s.inj.Effective()
		ev, ok := s.inj.Next(now)
		if !ok {
			break
		}
		applied = true
		s.eff = s.inj.Effective()
		switch ev.Kind {
		case faults.KindGPULoss:
			s.faultPreempt = true
		case faults.KindCacheLoss:
			// The failed cache node held a uniform share of the pool's
			// blocks: invalidate that fraction, then shrink capacity so
			// admissions respect the surviving nodes. Hit ratios
			// re-derive from the shrunken pool on the next access.
			frac := 0.0
			if before.Cache > 0 {
				frac = 1 - float64(s.eff.Cache)/float64(before.Cache)
			}
			s.pool.EvictFraction(frac)
			s.pool.Resize(s.eff.Cache)
		case faults.KindCacheRestore:
			// Capacity returns empty; jobs re-warm it.
			s.pool.Resize(s.eff.Cache)
		case faults.KindJobCrash:
			if bj, ok := s.bjobs[ev.Job]; ok {
				s.crash(bj)
			}
		case faults.KindGPURestore, faults.KindIOLoss, faults.KindIORestore:
			// Capacity-only kinds: restored GPUs are picked up and IO is
			// re-throttled by the scheduling round below; no pool surgery
			// and no preemption.
		}
	}
	if applied {
		s.requestRound()
	}
}

// crash kills one job's execution: it loses its GPUs and its current
// epoch's progress, then re-enters the queue (the scheduler restarts it
// on a later round). The cache survives — it lives on other nodes (§6).
func (s *batchSim) crash(bj *batchJob) {
	j := bj.rt
	if j.done || !j.started {
		return
	}
	if j.running {
		s.pause(bj)
		j.running = false
		j.gpus = 0
		s.met.preemptions.Inc()
		s.met.tenantPreempt(j.spec.Tenant)
		s.met.tl.RecordAt(s.q.Now(), metrics.EventPreempt, j.spec.ID, 0, "crash")
		s.inj.CountPreemptionsSLO(j.spec.SLO, 1)
	}
	s.rollback(bj)
}

// rollback discards the current epoch's partial progress: the pipeline
// is drained, blocksDone rewinds to the epoch-start checkpoint, and the
// stream replays the epoch with a fresh shuffle (a restarted loader
// draws a new permutation). Curriculum jobs have no epoch concept and
// resume at their current pacing position — nothing to roll back.
func (s *batchSim) rollback(bj *batchJob) {
	es, ok := bj.stream.(*dataset.EpochStream)
	if !ok {
		return
	}
	if bj.fetchEvent != nil {
		s.q.Cancel(bj.fetchEvent)
		bj.fetchEvent = nil
		bj.fetchLeft = 0
	}
	if bj.computeEvent != nil {
		s.q.Cancel(bj.computeEvent)
		bj.computeEvent = nil
		bj.computing = false
	}
	bj.prefetch = 0
	es.RestartEpoch()
	bj.blocksDone = bj.doneAtEpoch
	bj.issued = bj.doneAtEpoch
	trained := unit.Bytes(bj.blocksDone) * s.cfg.BlockSize
	total := bj.rt.spec.TotalBytes()
	if trained > total {
		trained = total
	}
	bj.rt.remaining = total - trained
	bj.rt.attained = trained
}

// observedHit estimates a running job's hit ratio from its effective
// cache — the epoch-start snapshot, since blocks admitted this epoch
// serve no reads until the next pass (used for bandwidth division).
func (s *batchSim) observedHit(j *jobRT) float64 {
	d := float64(j.spec.Dataset.Size)
	if d <= 0 {
		return 0
	}
	eff := s.bjobs[j.spec.ID].effBytes
	if c := s.pool.CachedBytes(j.dsKey); c < eff {
		eff = c
	}
	return math.Min(float64(eff)/d, 1)
}

// refreshRates recomputes every running job's remote fetch rate and
// adjusts in-flight fetches.
func (s *batchSim) refreshRates() {
	running := s.runningJobs()
	hits := resize(&s.hitsBuf, len(running))
	for i, j := range running {
		hits[i] = s.observedHit(j)
	}
	grants := s.grants(running, hits)
	for i, j := range running {
		bj := s.bjobs[j.spec.ID]
		s.setFetchRate(bj, grants[i])
	}
}

// grants mirrors the fluid engine's bandwidth division so the two
// engines agree (a requirement for the Table 6 fidelity result).
func (s *batchSim) grants(running []*jobRT, hits []float64) []unit.Bandwidth {
	out := resize(&s.grantsBuf, len(running))
	demands := resize(&s.demandsBuf, len(running))
	var allocated float64
	anyAlloc := false
	for i, j := range running {
		out[i] = 0
		demands[i] = float64(j.profile.IdealThroughput) * (1 - hits[i])
		// An in-flight transfer is instantaneous demand regardless of
		// the analytic miss ratio (the pool already counts the block as
		// admitted): give it enough bandwidth to land within a round,
		// or a fully-warmed job's final straggler block never arrives.
		if bj := s.bjobs[j.spec.ID]; bj.fetchLeft > 0 {
			if floor := float64(bj.fetchLeft) / float64(s.cfg.ReschedInterval); floor > demands[i] {
				demands[i] = floor
			}
		}
		if !s.cfg.DisableIOControl && j.remoteIO > 0 {
			out[i] = j.remoteIO
			allocated += float64(j.remoteIO)
			anyAlloc = true
		}
	}
	if !anyAlloc || s.cfg.DisableIOControl {
		// Provider-controlled static fair share (see the fluid engine):
		// equal egress split capped at demand, unused remainder idles.
		ds := resize(&s.demandBuf, len(running))
		for i, j := range running {
			ds[i] = remoteio.Demand{JobID: j.spec.ID, Want: unit.Bandwidth(demands[i])}
		}
		s.shareBuf = s.divider.EqualShareInto(s.shareBuf, s.eff.RemoteIO, ds)
		copy(out, s.shareBuf)
		return out
	}
	if s.cfg.DisableWorkConserving {
		return out
	}
	leftover := float64(s.eff.RemoteIO) - allocated
	if leftover <= 0 {
		return out
	}
	resid := s.residBuf[:0]
	residIdx := s.residIdx[:0]
	for i, j := range running {
		extra := demands[i] - float64(out[i])
		if extra > 1e-9 {
			resid = append(resid, remoteio.Demand{JobID: j.spec.ID, Want: unit.Bandwidth(extra)})
			residIdx = append(residIdx, i)
		}
	}
	s.residBuf, s.residIdx = resid, residIdx
	if len(resid) == 0 {
		return out
	}
	s.shareBuf = s.divider.FairShareInto(s.shareBuf, unit.Bandwidth(leftover), resid)
	for k, i := range residIdx {
		out[i] += s.shareBuf[k]
	}
	return out
}

// setFetchRate updates a job's remote rate, rescheduling any in-flight
// fetch completion for the new rate.
func (s *batchSim) setFetchRate(bj *batchJob, rate unit.Bandwidth) {
	if bj.fetchEvent != nil && !bj.fetchEvent.Cancelled() {
		// Account progress at the old rate, then re-time the remainder.
		elapsed := s.q.Now() - bj.fetchRateAt
		progressed := unit.Bytes(float64(bj.rate) * elapsed)
		if progressed > bj.fetchLeft {
			progressed = bj.fetchLeft
		}
		bj.fetchLeft -= progressed
		s.remoteSinceSamp += float64(progressed)
		s.q.Cancel(bj.fetchEvent)
		bj.fetchEvent = nil
		bj.rate = rate
		bj.fetchRateAt = s.q.Now()
		s.scheduleFetchCompletion(bj)
		return
	}
	bj.rate = rate
}

// scheduleFetchCompletion arms the completion event for the in-flight
// fetch at the current rate.
func (s *batchSim) scheduleFetchCompletion(bj *batchJob) {
	var dur float64
	if bj.fetchLeft <= 0 {
		// The transfer finished during a rate change's progress
		// accounting; deliver it now.
		bj.fetchEvent = s.q.After(0, func() { s.fetchDone(bj) })
		return
	}
	if bj.rate <= 0 {
		// Stalled: re-check at the next rescheduling round; arm a long
		// placeholder the next rate change cancels.
		dur = float64(s.cfg.ReschedInterval)
		bj.fetchEvent = s.q.After(dur, func() {
			bj.fetchEvent = nil
			if bj.rt.running {
				s.scheduleFetchCompletion(bj)
			}
		})
		return
	}
	dur = float64(unit.DivBandwidth(bj.fetchLeft, bj.rate))
	bj.fetchRateAt = s.q.Now()
	bj.fetchEvent = s.q.After(dur, func() { s.fetchDone(bj) })
}

// kick (re)starts a paused or newly admitted job's pipeline.
func (s *batchSim) kick(bj *batchJob) {
	s.fillLoader(bj)
	s.maybeCompute(bj)
}

// pause stops a preempted job's pipeline. The in-flight fetch is
// abandoned (its partial progress is lost, as in a real preemption).
func (s *batchSim) pause(bj *batchJob) {
	if bj.fetchEvent != nil {
		s.q.Cancel(bj.fetchEvent)
		bj.fetchEvent = nil
		bj.fetchLeft = 0
		bj.issued-- // the block will be re-issued on resume
	}
	if bj.computeEvent != nil {
		s.q.Cancel(bj.computeEvent)
		bj.computeEvent = nil
		bj.computing = false
		bj.prefetch++ // the block returns to the prefetch queue
	}
}

// fillLoader issues block reads until the prefetch queue is full or a
// remote fetch is in flight. Cache hits complete immediately (local
// fabric speed is not the bottleneck, Figure 3), so only misses consume
// loader time.
func (s *batchSim) fillLoader(bj *batchJob) {
	if !bj.rt.running || bj.rt.done {
		return
	}
	for bj.fetchEvent == nil && bj.prefetch < prefetchDepth && bj.issued < bj.blocksTotal {
		blk, newEpoch := bj.stream.Next()
		if newEpoch {
			bj.effBytes = s.pool.CachedBytes(bj.rt.dsKey)
			bj.doneAtEpoch = bj.issued
			bj.epochs++
			s.met.tl.RecordAt(s.q.Now(), metrics.EventEpoch, bj.rt.spec.ID,
				float64(bj.epochs), "epochs_started")
		}
		bj.issued++
		out, err := s.pool.Access(bj.rt.dsKey, cache.BlockID(blk))
		if err != nil {
			panic(fmt.Sprintf("sim(batch): %v", err))
		}
		if out.Hit {
			bj.prefetch++
			s.met.addHitMiss(float64(s.cfg.BlockSize), 0)
			continue
		}
		// Remote fetch.
		s.met.addHitMiss(0, float64(s.cfg.BlockSize))
		bj.fetchLeft = s.cfg.BlockSize
		s.scheduleFetchCompletion(bj)
	}
	s.maybeCompute(bj)
}

// fetchDone completes an in-flight remote fetch.
func (s *batchSim) fetchDone(bj *batchJob) {
	s.remoteSinceSamp += float64(bj.fetchLeft)
	bj.fetchLeft = 0
	bj.fetchEvent = nil
	bj.prefetch++
	s.fillLoader(bj)
}

// maybeCompute starts computing the next block if the GPU is idle.
func (s *batchSim) maybeCompute(bj *batchJob) {
	if bj.computing || bj.prefetch == 0 || !bj.rt.running || bj.rt.done {
		return
	}
	bj.prefetch--
	bj.computing = true
	dur := float64(unit.DivBandwidth(s.cfg.BlockSize, bj.rt.profile.IdealThroughput))
	bj.computeEvent = s.q.After(dur, func() { s.computeDone(bj) })
}

// computeDone completes a block of training.
func (s *batchSim) computeDone(bj *batchJob) {
	bj.computing = false
	bj.computeEvent = nil
	bj.blocksDone++
	adv := s.cfg.BlockSize
	if adv > bj.rt.remaining {
		adv = bj.rt.remaining
	}
	bj.rt.remaining -= adv
	bj.rt.attained += adv
	s.bytesSinceSamp += float64(adv)
	if bj.blocksDone >= bj.blocksTotal {
		now := unit.Time(s.q.Now())
		bj.rt.done = true
		bj.rt.running = false
		bj.rt.remaining = 0
		bj.rt.finish = now
		s.finished++
		if now > s.lastFinish {
			s.lastFinish = now
		}
		st := JobStat{ID: bj.rt.spec.ID, Submit: bj.rt.spec.Submit, Start: bj.rt.start, Finish: now}
		s.res.Jobs = append(s.res.Jobs, st)
		s.met.jobDone(now, st, bj.rt.spec.Tenant)
		if bj.fetchEvent != nil {
			s.q.Cancel(bj.fetchEvent)
			bj.fetchEvent = nil
		}
		s.maybeDropDataset(bj.rt)
		s.requestRound()
		return
	}
	s.fillLoader(bj)
	s.maybeCompute(bj)
}

// maybeDropDataset frees the cache key when no unfinished job uses it.
func (s *batchSim) maybeDropDataset(done *jobRT) {
	for _, j := range s.jobs {
		if !j.done && j.dsKey == done.dsKey {
			return
		}
	}
	switch p := s.pool.(type) {
	case *cache.QuotaPool:
		p.DropKey(done.dsKey)
	case *cache.LRUPool:
		p.DropKey(done.dsKey)
	}
}

// sample records timeline metrics using windowed byte counters.
func (s *batchSim) sample(force bool) {
	now := s.q.Now()
	dt := now - s.lastSampleT
	if !force && dt < float64(s.cfg.MetricsInterval) {
		return
	}
	if dt <= 0 {
		dt = 1
	}
	t := unit.Time(now).Minutes()
	tput := s.bytesSinceSamp / dt / float64(unit.MB)
	rio := s.remoteSinceSamp / dt / float64(unit.MB)
	s.bytesSinceSamp, s.remoteSinceSamp = 0, 0
	s.lastSampleT = now

	running := s.runningJobs()
	var ideal float64
	for _, j := range running {
		ideal += j.profile.IdealThroughput.MBpsValue()
	}
	s.series["throughput"].Append(t, tput)
	s.series["ideal"].Append(t, ideal)
	s.series["remoteio"].Append(t, rio)
	s.met.utilization(running, rio, s.eff.RemoteIO)
	s.series["fairness"].Append(t, fairnessRatio(s.eff, running, func(j *jobRT) unit.Bandwidth {
		// Instantaneous estimate from pool state and current rate.
		h := s.observedHit(j)
		miss := 1 - h
		if miss <= 1e-12 {
			return j.profile.IdealThroughput
		}
		bj := s.bjobs[j.spec.ID]
		f := unit.Bandwidth(float64(bj.rate) / miss)
		if f > j.profile.IdealThroughput {
			f = j.profile.IdealThroughput
		}
		return f
	}))
	var alloc float64
	if qp, ok := s.pool.(*cache.QuotaPool); ok {
		for _, key := range qp.Keys() {
			alloc += float64(qp.Quota(key))
		}
	} else {
		alloc = float64(s.pool.TotalCachedBytes())
	}
	s.series["cache_alloc"].Append(t, alloc/float64(unit.GB))
	s.series["cache_effective"].Append(t, float64(s.pool.TotalCachedBytes())/float64(unit.GB))
}
