package sim

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/unit"
)

// jctBuckets spans 1 minute to ~5.7 simulated days in powers of two —
// wide enough for the paper's Philly-derived traces.
var jctBuckets = metrics.ExpBuckets(1, 2, 14)

// simMetrics bundles the instrumentation handles shared by both
// engines. Every handle no-ops when Config.Metrics / Config.Timeline
// are nil, so engine code updates them unconditionally.
type simMetrics struct {
	tl *metrics.Timeline

	// Hit/miss byte totals accumulate in compensated floating point and
	// flush to the integer counters once at the end of the run. The
	// fluid engine advances jobs in fractional-byte steps whose
	// boundaries depend on the configuration (completions, epoch edges,
	// rescheduling horizons), so truncating to int64 per step made two
	// runs over the *same* hit stream report different totals — the
	// BENCH_baseline.json hit-ratio discrepancy. Compensated summation
	// plus a single rounding at flush time makes the reported ratio a
	// function of the stream alone.
	hitAcc  stats.Kahan
	missAcc stats.Kahan

	hitBytes    *metrics.Counter   // silod_sim_cache_hit_bytes_total
	missBytes   *metrics.Counter   // silod_sim_cache_miss_bytes_total
	reschedules *metrics.Counter   // silod_sim_reschedules_total
	completions *metrics.Counter   // silod_sim_job_completions_total
	preemptions *metrics.Counter   // silod_sim_preemptions_total
	gpusBusy    *metrics.Gauge     // silod_sim_gpus_busy
	runningJobs *metrics.Gauge     // silod_sim_running_jobs
	remoteMBps  *metrics.Gauge     // silod_sim_remoteio_mbps
	remoteUtil  *metrics.Gauge     // silod_sim_remoteio_utilization_ratio
	jct         *metrics.Histogram // silod_sim_jct_minutes
}

// newSimMetrics interns the engine metric handles. cfg.Metrics may be
// nil (all handles nil, all updates free).
func newSimMetrics(cfg Config) *simMetrics {
	r := cfg.Metrics
	return &simMetrics{
		tl:          cfg.Timeline,
		hitBytes:    r.Counter("silod_sim_cache_hit_bytes_total"),
		missBytes:   r.Counter("silod_sim_cache_miss_bytes_total"),
		reschedules: r.Counter("silod_sim_reschedules_total"),
		completions: r.Counter("silod_sim_job_completions_total"),
		preemptions: r.Counter("silod_sim_preemptions_total"),
		gpusBusy:    r.Gauge("silod_sim_gpus_busy"),
		runningJobs: r.Gauge("silod_sim_running_jobs"),
		remoteMBps:  r.Gauge("silod_sim_remoteio_mbps"),
		remoteUtil:  r.Gauge("silod_sim_remoteio_utilization_ratio"),
		jct:         r.Histogram("silod_sim_jct_minutes", jctBuckets),
	}
}

// addHitMiss accumulates one advance step's hit/miss byte split.
func (m *simMetrics) addHitMiss(hit, miss float64) {
	m.hitAcc.Add(hit)
	m.missAcc.Add(miss)
}

// flushBytes rounds the compensated totals into the exported counters.
// Call exactly once, when the run completes.
func (m *simMetrics) flushBytes() {
	m.hitBytes.Add(int64(math.Round(m.hitAcc.Sum())))
	m.missBytes.Add(int64(math.Round(m.missAcc.Sum())))
}

// submitAll records a submit event per job at its arrival time.
func (m *simMetrics) submitAll(jobs []*jobRT) {
	for _, j := range jobs {
		m.tl.RecordAt(float64(j.spec.Submit), metrics.EventSubmit, j.spec.ID,
			float64(j.spec.NumGPUs), "gpus_requested")
	}
}

// transition records a job gaining or losing GPUs at a decision point.
func (m *simMetrics) transition(now unit.Time, j *jobRT, wasRunning bool) {
	if j.running && !wasRunning {
		m.tl.RecordAt(float64(now), metrics.EventSchedule, j.spec.ID, float64(j.gpus), "gpus")
	}
	if !j.running && wasRunning && !j.done {
		m.preemptions.Inc()
		m.tl.RecordAt(float64(now), metrics.EventPreempt, j.spec.ID, 0, "")
	}
}

// jobDone records a completion: counter, JCT histogram, timeline event.
func (m *simMetrics) jobDone(now unit.Time, st JobStat) {
	m.completions.Inc()
	m.jct.Observe(st.JCT().Minutes())
	m.tl.RecordAt(float64(now), metrics.EventComplete, st.ID, float64(st.JCT()), "jct_seconds")
}

// utilization refreshes the point-in-time gauges. remoteMBps is the
// current remote IO draw; cap the cluster egress capacity.
func (m *simMetrics) utilization(running []*jobRT, remoteMBps float64, capacity unit.Bandwidth) {
	var gpus int
	for _, j := range running {
		gpus += j.gpus
	}
	m.gpusBusy.Set(float64(gpus))
	m.runningJobs.Set(float64(len(running)))
	m.remoteMBps.Set(remoteMBps)
	if c := capacity.MBpsValue(); c > 0 {
		m.remoteUtil.Set(remoteMBps / c)
	}
}
