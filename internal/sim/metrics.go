package sim

import (
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/unit"
)

// jctBuckets spans 1 minute to ~5.7 simulated days in powers of two —
// wide enough for the paper's Philly-derived traces.
var jctBuckets = metrics.ExpBuckets(1, 2, 14)

// simMetrics bundles the instrumentation handles shared by both
// engines. Every handle no-ops when Config.Metrics / Config.Timeline
// are nil, so engine code updates them unconditionally.
type simMetrics struct {
	tl *metrics.Timeline

	// Hit/miss byte totals accumulate in compensated floating point and
	// flush to the integer counters once at the end of the run. The
	// fluid engine advances jobs in fractional-byte steps whose
	// boundaries depend on the configuration (completions, epoch edges,
	// rescheduling horizons), so truncating to int64 per step made two
	// runs over the *same* hit stream report different totals — the
	// BENCH_baseline.json hit-ratio discrepancy. Compensated summation
	// plus a single rounding at flush time makes the reported ratio a
	// function of the stream alone.
	hitAcc  stats.Kahan
	missAcc stats.Kahan

	hitBytes    *metrics.Counter   // silod_sim_cache_hit_bytes_total
	missBytes   *metrics.Counter   // silod_sim_cache_miss_bytes_total
	reschedules *metrics.Counter   // silod_sim_reschedules_total
	completions *metrics.Counter   // silod_sim_job_completions_total
	preemptions *metrics.Counter   // silod_sim_preemptions_total
	gpusBusy    *metrics.Gauge     // silod_sim_gpus_busy
	runningJobs *metrics.Gauge     // silod_sim_running_jobs
	remoteMBps  *metrics.Gauge     // silod_sim_remoteio_mbps
	remoteUtil  *metrics.Gauge     // silod_sim_remoteio_utilization_ratio
	jct         *metrics.Histogram // silod_sim_jct_minutes

	// reg is kept so initTenants can intern per-tenant handles; ten is
	// immutable after initTenants, keyed by tenant label ("" maps to
	// "default"). Handles are interned eagerly for every tenant in the
	// trace so the snapshot shape depends only on the job set, keeping
	// same-seed runs byte-identical.
	reg *metrics.Registry
	ten map[string]*tenantSimMetrics
}

// tenantSimMetrics are one tenant's engine-side handles.
type tenantSimMetrics struct {
	trained     *metrics.Counter // silod_tenant_trained_bytes_total{tenant}
	completions *metrics.Counter // silod_tenant_completions_total{tenant}
	preemptions *metrics.Counter // silod_tenant_preemptions_total{tenant}
	running     *metrics.Gauge   // silod_tenant_running_jobs{tenant}
	gpusBusy    *metrics.Gauge   // silod_tenant_gpus_busy{tenant}
}

// tenantLabel maps the untenanted flat pool onto a stable label.
func tenantLabel(id string) string {
	if id == "" {
		return "default"
	}
	return id
}

// newSimMetrics interns the engine metric handles. cfg.Metrics may be
// nil (all handles nil, all updates free).
func newSimMetrics(cfg Config) *simMetrics {
	r := cfg.Metrics
	return &simMetrics{
		tl:          cfg.Timeline,
		hitBytes:    r.Counter("silod_sim_cache_hit_bytes_total"),
		missBytes:   r.Counter("silod_sim_cache_miss_bytes_total"),
		reschedules: r.Counter("silod_sim_reschedules_total"),
		completions: r.Counter("silod_sim_job_completions_total"),
		preemptions: r.Counter("silod_sim_preemptions_total"),
		gpusBusy:    r.Gauge("silod_sim_gpus_busy"),
		runningJobs: r.Gauge("silod_sim_running_jobs"),
		remoteMBps:  r.Gauge("silod_sim_remoteio_mbps"),
		remoteUtil:  r.Gauge("silod_sim_remoteio_utilization_ratio"),
		jct:         r.Histogram("silod_sim_jct_minutes", jctBuckets),
		reg:         r,
		ten:         make(map[string]*tenantSimMetrics),
	}
}

// initTenants interns the per-tenant handles for every distinct tenant
// in the trace. Both engines call it once, after building their job
// runtimes and before the run starts.
func (m *simMetrics) initTenants(jobs []*jobRT) {
	for _, j := range jobs {
		id := tenantLabel(j.spec.Tenant)
		if _, ok := m.ten[id]; ok {
			continue
		}
		m.ten[id] = &tenantSimMetrics{
			trained:     m.reg.Counter("silod_tenant_trained_bytes_total", metrics.L("tenant", id)),
			completions: m.reg.Counter("silod_tenant_completions_total", metrics.L("tenant", id)),
			preemptions: m.reg.Counter("silod_tenant_preemptions_total", metrics.L("tenant", id)),
			running:     m.reg.Gauge("silod_tenant_running_jobs", metrics.L("tenant", id)),
			gpusBusy:    m.reg.Gauge("silod_tenant_gpus_busy", metrics.L("tenant", id)),
		}
	}
}

// flushTenantTrained rounds each tenant's total attained bytes into its
// trained-bytes counter. Attained bytes can move backwards mid-run
// (epoch rollback on fault preemption), so the counter is written once
// at run end from the final per-job totals, keeping it monotonic.
func (m *simMetrics) flushTenantTrained(jobs []*jobRT) {
	sums := make(map[string]float64, len(m.ten))
	for _, j := range jobs {
		sums[tenantLabel(j.spec.Tenant)] += float64(j.attained)
	}
	ids := make([]string, 0, len(sums))
	for id := range sums {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m.ten[id].trained.Add(int64(math.Round(sums[id])))
	}
}

// addHitMiss accumulates one advance step's hit/miss byte split.
func (m *simMetrics) addHitMiss(hit, miss float64) {
	m.hitAcc.Add(hit)
	m.missAcc.Add(miss)
}

// flushBytes rounds the compensated totals into the exported counters.
// Call exactly once, when the run completes.
func (m *simMetrics) flushBytes() {
	m.hitBytes.Add(int64(math.Round(m.hitAcc.Sum())))
	m.missBytes.Add(int64(math.Round(m.missAcc.Sum())))
}

// submitAll records a submit event per job at its arrival time.
func (m *simMetrics) submitAll(jobs []*jobRT) {
	for _, j := range jobs {
		m.tl.RecordAt(float64(j.spec.Submit), metrics.EventSubmit, j.spec.ID,
			float64(j.spec.NumGPUs), "gpus_requested")
	}
}

// transition records a job gaining or losing GPUs at a decision point.
func (m *simMetrics) transition(now unit.Time, j *jobRT, wasRunning bool) {
	if j.running && !wasRunning {
		m.tl.RecordAt(float64(now), metrics.EventSchedule, j.spec.ID, float64(j.gpus), "gpus")
	}
	if !j.running && wasRunning && !j.done {
		m.preemptions.Inc()
		if ts := m.ten[tenantLabel(j.spec.Tenant)]; ts != nil {
			ts.preemptions.Inc()
		}
		m.tl.RecordAt(float64(now), metrics.EventPreempt, j.spec.ID, 0, "")
	}
}

// tenantPreempt bumps the per-tenant preemption counter for paths that
// bypass transition (job crashes).
func (m *simMetrics) tenantPreempt(tenantID string) {
	if ts := m.ten[tenantLabel(tenantID)]; ts != nil {
		ts.preemptions.Inc()
	}
}

// jobDone records a completion: counters (aggregate and per-tenant),
// JCT histogram, timeline event.
func (m *simMetrics) jobDone(now unit.Time, st JobStat, tenantID string) {
	m.completions.Inc()
	if ts := m.ten[tenantLabel(tenantID)]; ts != nil {
		ts.completions.Inc()
	}
	m.jct.Observe(st.JCT().Minutes())
	m.tl.RecordAt(float64(now), metrics.EventComplete, st.ID, float64(st.JCT()), "jct_seconds")
}

// utilization refreshes the point-in-time gauges. remoteMBps is the
// current remote IO draw; cap the cluster egress capacity.
func (m *simMetrics) utilization(running []*jobRT, remoteMBps float64, capacity unit.Bandwidth) {
	var gpus int
	tenGPUs := make(map[string]int, len(m.ten))
	tenJobs := make(map[string]int, len(m.ten))
	for _, j := range running {
		gpus += j.gpus
		id := tenantLabel(j.spec.Tenant)
		tenGPUs[id] += j.gpus
		tenJobs[id]++
	}
	m.gpusBusy.Set(float64(gpus))
	m.runningJobs.Set(float64(len(running)))
	// Every interned tenant's gauge is refreshed, including back to
	// zero, so a tenant fully preempted by a fault reads 0 rather than
	// its stale last value.
	ids := make([]string, 0, len(m.ten))
	for id := range m.ten {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m.ten[id].running.Set(float64(tenJobs[id]))
		m.ten[id].gpusBusy.Set(float64(tenGPUs[id]))
	}
	m.remoteMBps.Set(remoteMBps)
	if c := capacity.MBpsValue(); c > 0 {
		m.remoteUtil.Set(remoteMBps / c)
	}
}
