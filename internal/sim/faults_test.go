package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// runFaulted executes the micro-benchmark workload under a fault
// schedule with full instrumentation.
func runFaulted(t testing.TB, eng Engine, cl core.Cluster, jobs []workload.JobSpec, sched *faults.Schedule) (*Result, *metrics.Registry) {
	t.Helper()
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry("test")
	res, err := Run(Config{
		Cluster:  cl,
		Policy:   pol,
		System:   policy.SiloD,
		Engine:   eng,
		Seed:     7,
		Faults:   sched,
		Metrics:  reg,
		Timeline: metrics.NewTimeline(0),
	}, jobs)
	if err != nil {
		t.Fatalf("%v: %v", eng, err)
	}
	return res, reg
}

// cleanMicroMemo caches the fault-free SiloD baseline per engine: two
// chaos tests compare against it, and a batch-engine micro run is
// expensive under -race. Tests in this package do not run in parallel.
var cleanMicroMemo = map[Engine]*Result{}

func cleanMicro(t *testing.T, eng Engine) *Result {
	t.Helper()
	if r, ok := cleanMicroMemo[eng]; ok {
		return r
	}
	r := runMicro(t, policy.SiloD, eng)
	cleanMicroMemo[eng] = r
	return r
}

// requireAllJobs asserts no job was lost to a fault: every spec shows
// up in the result exactly once, finished.
func requireAllJobs(t *testing.T, res *Result, specs []workload.JobSpec) {
	t.Helper()
	seen := make(map[string]bool, len(res.Jobs))
	for _, j := range res.Jobs {
		if j.Finish < j.Start || j.Start < j.Submit {
			t.Errorf("job %s has inconsistent times: %+v", j.ID, j)
		}
		seen[j.ID] = true
	}
	for _, s := range specs {
		if !seen[s.ID] {
			t.Errorf("job %s lost during chaos run", s.ID)
		}
	}
	if len(res.Jobs) != len(specs) {
		t.Errorf("finished %d jobs, want %d", len(res.Jobs), len(specs))
	}
}

// TestNodeLossFluidBatchAgreement: losing half the GPUs mid-run and
// restoring them later must play out equivalently on both engines —
// all gang jobs preempted, requeued, and finished — with the engines
// agreeing on the cost of the outage.
func TestNodeLossFluidBatchAgreement(t *testing.T) {
	specs := microBenchJobs(t)
	cl := microCluster()
	sched := &faults.Schedule{Events: []faults.Event{
		{At: unit.Time(10 * 3600), Kind: faults.KindGPULoss, GPUs: 4},
		{At: unit.Time(30 * 3600), Kind: faults.KindGPURestore, GPUs: 4},
	}}
	makespans := map[Engine]float64{}
	for _, eng := range []Engine{Fluid, Batch} {
		clean := cleanMicro(t, eng)
		res, reg := runFaulted(t, eng, cl, specs, sched)
		requireAllJobs(t, res, specs)
		if res.Makespan <= clean.Makespan {
			t.Errorf("%v: makespan %v under node loss not longer than clean %v",
				eng, res.Makespan, clean.Makespan)
		}
		snap := reg.Snapshot()
		if v := snap.CounterValue("silod_faults_injected_total", map[string]string{"kind": "gpu_loss"}); v != 1 {
			t.Errorf("%v: gpu_loss injected counter = %v, want 1", eng, v)
		}
		if v := snap.CounterValue("silod_faults_recoveries_total", nil); v != 1 {
			t.Errorf("%v: recoveries = %v, want 1", eng, v)
		}
		if v := snap.CounterValue("silod_faults_preemptions_total", nil); v < 1 {
			t.Errorf("%v: no fault preemptions recorded under node loss", eng)
		}
		makespans[eng] = res.Makespan.Minutes()
		t.Logf("%v: faulted makespan %.0f min (clean %.0f)", eng, res.Makespan.Minutes(), clean.Makespan.Minutes())
	}
	if re := relErr(makespans[Fluid], makespans[Batch]); re > 0.35 {
		t.Errorf("engines disagree on node-loss makespan: fluid %.0f vs batch %.0f min (%.0f%%)",
			makespans[Fluid], makespans[Batch], 100*re)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// TestCacheLossDegradesToRemoteBoundAndRecovers is the acceptance
// scenario: a solo cached job loses the whole cache mid-run, its
// throughput degrades to the estimator's remote-IO bound (b at zero
// cache), and after restoration it re-warms and climbs back above the
// bound. The job is never lost.
func TestCacheLossDegradesToRemoteBoundAndRecovers(t *testing.T) {
	specs := microBenchJobs(t)[:1] // rn50-a: 1 GPU, 1.3 TiB dataset, 13 epochs
	remote := unit.MBpsOf(50)
	cl := core.Cluster{GPUs: 2, Cache: unit.TiB(2), RemoteIO: remote}
	lossAt, restoreAt := unit.Time(15*3600), unit.Time(25*3600)
	sched := &faults.Schedule{Events: []faults.Event{
		{At: lossAt, Kind: faults.KindCacheLoss, Cache: cl.Cache},
		{At: restoreAt, Kind: faults.KindCacheRestore, Cache: cl.Cache},
	}}
	for _, eng := range []Engine{Fluid, Batch} {
		res, reg := runFaulted(t, eng, cl, specs, sched)
		requireAllJobs(t, res, specs)
		series := res.Timelines["throughput"]
		if series == nil || series.Len() == 0 {
			t.Fatalf("%v: no throughput timeline", eng)
		}
		bound := remote.MBpsValue()
		lossMin, restoreMin := lossAt.Minutes(), restoreAt.Minutes()
		var degradedMax, afterMax float64
		for i := 0; i < series.Len(); i++ {
			ts, v := series.At(i) // series times are in minutes
			switch {
			case ts > lossMin+30 && ts <= restoreMin:
				if v > degradedMax {
					degradedMax = v
				}
			case ts > restoreMin+10*60:
				if v > afterMax {
					afterMax = v
				}
			}
		}
		if degradedMax > bound*1.1+1 {
			t.Errorf("%v: throughput %.1f MB/s during total cache loss exceeds remote bound %.0f",
				eng, degradedMax, bound)
		}
		if afterMax <= bound*1.2 {
			t.Errorf("%v: throughput never recovered past the remote bound after restore (max %.1f, bound %.0f)",
				eng, afterMax, bound)
		}
		snap := reg.Snapshot()
		if v, ok := snap.Get("silod_faults_time_degraded_seconds", nil); !ok ||
			*v.Value != float64(restoreAt.Sub(lossAt).Seconds()) {
			t.Errorf("%v: time degraded = %+v, want %v s", eng, v, restoreAt.Sub(lossAt).Seconds())
		}
		t.Logf("%v: degradedMax=%.1f afterMax=%.1f makespan=%.0f min",
			eng, degradedMax, afterMax, res.Makespan.Minutes())
	}
}

// TestJobCrashRequeuesWithRollback: a crashed job loses its current
// epoch's progress and re-enters the queue, finishing later than in a
// clean run but never lost.
func TestJobCrashRequeues(t *testing.T) {
	specs := microBenchJobs(t)
	cl := microCluster()
	sched := &faults.Schedule{Events: []faults.Event{
		{At: unit.Time(5 * 3600), Kind: faults.KindJobCrash, Job: "rn50-a"},
	}}
	for _, eng := range []Engine{Fluid, Batch} {
		clean := cleanMicro(t, eng)
		res, reg := runFaulted(t, eng, cl, specs, sched)
		requireAllJobs(t, res, specs)
		var cleanFin, crashFin unit.Time
		for _, j := range clean.Jobs {
			if j.ID == "rn50-a" {
				cleanFin = j.Finish
			}
		}
		for _, j := range res.Jobs {
			if j.ID == "rn50-a" {
				crashFin = j.Finish
			}
		}
		if crashFin <= cleanFin {
			t.Errorf("%v: crashed job finished at %v, not later than clean %v (no rollback?)",
				eng, crashFin, cleanFin)
		}
		snap := reg.Snapshot()
		if v := snap.CounterValue("silod_faults_injected_total", map[string]string{"kind": "job_crash"}); v != 1 {
			t.Errorf("%v: job_crash injected = %v, want 1", eng, v)
		}
		if v := snap.CounterValue("silod_faults_preemptions_total", nil); v < 1 {
			t.Errorf("%v: crash recorded no preemption", eng)
		}
	}
}

// TestChaosDeterminism: the same seed and fault schedule must produce
// byte-identical metrics snapshots and identical job outcomes, run to
// run, on both engines.
func TestChaosDeterminism(t *testing.T) {
	specs := microBenchJobs(t)
	cl := microCluster()
	sched := &faults.Schedule{Events: []faults.Event{
		{At: unit.Time(5 * 3600), Kind: faults.KindGPULoss, GPUs: 2},
		{At: unit.Time(8 * 3600), Kind: faults.KindCacheLoss, Cache: unit.TiB(1)},
		{At: unit.Time(10 * 3600), Kind: faults.KindIOLoss, RemoteIO: unit.MBpsOf(100)},
		{At: unit.Time(12 * 3600), Kind: faults.KindJobCrash, Job: "bert"},
		{At: unit.Time(20 * 3600), Kind: faults.KindGPURestore, GPUs: 2},
		{At: unit.Time(20 * 3600), Kind: faults.KindCacheRestore, Cache: unit.TiB(1)},
		{At: unit.Time(20 * 3600), Kind: faults.KindIORestore, RemoteIO: unit.MBpsOf(100)},
	}}
	for _, eng := range []Engine{Fluid, Batch} {
		var snaps [][]byte
		var makespans []unit.Duration
		for i := 0; i < 2; i++ {
			res, reg := runFaulted(t, eng, cl, specs, sched)
			requireAllJobs(t, res, specs)
			blob, err := json.Marshal(reg.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, blob)
			makespans = append(makespans, res.Makespan)
		}
		if !bytes.Equal(snaps[0], snaps[1]) {
			t.Errorf("%v: same seed+schedule produced different metrics snapshots", eng)
		}
		if makespans[0] != makespans[1] {
			t.Errorf("%v: makespans differ: %v vs %v", eng, makespans[0], makespans[1])
		}
	}
}
