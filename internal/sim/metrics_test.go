package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// TestEngineMetrics runs a small trace through both engines with a
// registry and timeline attached and checks the instrumentation agrees
// with the Result: every job submits, schedules, and completes; the JCT
// histogram matches the per-job stats; hit+miss bytes are populated;
// the remote IO capacity is respected by the utilization gauge.
func TestEngineMetrics(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(5, 30, 2*unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 16, Cache: unit.TiB(1), RemoteIO: unit.MBpsOf(400)}
	for _, eng := range []Engine{Fluid, Batch} {
		reg := metrics.NewRegistry("sim")
		tl := metrics.NewTimeline(0)
		cfg := Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD,
			Engine: eng, Seed: 3, Metrics: reg, Timeline: tl}
		res := runSim(t, cfg, jobs)

		snap := reg.Snapshot()
		if got := snap.CounterValue("silod_sim_job_completions_total", nil); got != float64(len(jobs)) {
			t.Errorf("%v: completions = %v, want %d", eng, got, len(jobs))
		}
		ms, ok := snap.Get("silod_sim_jct_minutes", nil)
		if !ok {
			t.Fatalf("%v: no JCT histogram", eng)
		}
		if ms.Count != int64(len(jobs)) {
			t.Errorf("%v: JCT count = %d, want %d", eng, ms.Count, len(jobs))
		}
		var wantSum float64
		for _, j := range res.Jobs {
			wantSum += j.JCT().Minutes()
		}
		if math.Abs(ms.Sum-wantSum) > 1e-6*math.Max(1, wantSum) {
			t.Errorf("%v: JCT sum = %v, want %v", eng, ms.Sum, wantSum)
		}
		hit := snap.CounterValue("silod_sim_cache_hit_bytes_total", nil)
		miss := snap.CounterValue("silod_sim_cache_miss_bytes_total", nil)
		if hit <= 0 || miss <= 0 {
			t.Errorf("%v: hit/miss bytes = %v/%v, want both > 0", eng, hit, miss)
		}
		if got := snap.CounterValue("silod_sim_reschedules_total", nil); got <= 0 {
			t.Errorf("%v: no reschedules recorded", eng)
		}

		if n := len(tl.ByKind(metrics.EventSubmit)); n != len(jobs) {
			t.Errorf("%v: %d submit events, want %d", eng, n, len(jobs))
		}
		if n := len(tl.ByKind(metrics.EventComplete)); n != len(jobs) {
			t.Errorf("%v: %d complete events, want %d", eng, n, len(jobs))
		}
		if n := len(tl.ByKind(metrics.EventSchedule)); n < len(jobs) {
			t.Errorf("%v: %d schedule events, want >= %d", eng, n, len(jobs))
		}
		// Completion timestamps must not precede submission.
		sub := make(map[string]float64)
		for _, e := range tl.ByKind(metrics.EventSubmit) {
			sub[e.Job] = e.T
		}
		for _, e := range tl.ByKind(metrics.EventComplete) {
			if e.T < sub[e.Job] {
				t.Errorf("%v: job %s completes at %v before submit %v", eng, e.Job, e.T, sub[e.Job])
			}
		}
	}
}

// TestBatchEnginePoolCounters checks that the batch engine's real cache
// pool reports block-level counters under the cache-system label.
func TestBatchEnginePoolCounters(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(3, 30, unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry("sim")
	cfg := Config{
		Cluster: core.Cluster{GPUs: 16, Cache: unit.TiB(1), RemoteIO: unit.MBpsOf(400)},
		Policy:  siloFIFO(t), System: policy.SiloD, Engine: Batch, Seed: 3, Metrics: reg,
	}
	runSim(t, cfg, jobs)
	snap := reg.Snapshot()
	l := map[string]string{"policy": policy.SiloD.String()}
	if got := snap.CounterValue("silod_cache_misses_total", l); got <= 0 {
		t.Errorf("pool misses = %v, want > 0", got)
	}
	if got := snap.CounterValue("silod_cache_admissions_total", l); got <= 0 {
		t.Errorf("pool admissions = %v, want > 0", got)
	}
}

// TestMetricsOffIsIdentical: attaching instrumentation must not perturb
// the simulation (determinism guard for the nil-handle design).
func TestMetricsOffIsIdentical(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(5, 30, 2*unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 16, Cache: unit.TiB(1), RemoteIO: unit.MBpsOf(400)}
	for _, eng := range []Engine{Fluid, Batch} {
		plain := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Engine: eng, Seed: 3}, jobs)
		inst := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Engine: eng, Seed: 3,
			Metrics: metrics.NewRegistry("sim"), Timeline: metrics.NewTimeline(0)}, jobs)
		if len(plain.Jobs) != len(inst.Jobs) {
			t.Fatalf("%v: job counts differ", eng)
		}
		for i := range plain.Jobs {
			if plain.Jobs[i] != inst.Jobs[i] {
				t.Errorf("%v: job %d differs with metrics on: %+v vs %+v",
					eng, i, plain.Jobs[i], inst.Jobs[i])
			}
		}
	}
}
