package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

func mkSpec(t *testing.T, id, model, ds string, size unit.Bytes, gpus int, epochs float64) workload.JobSpec {
	t.Helper()
	m, err := workload.ModelByName(model)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.JobSpec{ID: id, Model: m, NumGPUs: gpus,
		Dataset: workload.Dataset{Name: ds, Size: size}}
	spec.NumSteps = int64(epochs * float64(size) / float64(spec.StepBytesTotal()))
	if spec.NumSteps < 1 {
		spec.NumSteps = 1
	}
	return spec
}

func runSim(t *testing.T, cfg Config, jobs []workload.JobSpec) *Result {
	t.Helper()
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func siloFIFO(t *testing.T) core.Policy {
	t.Helper()
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestDeterminism: identical configs yield identical results on both
// engines.
func TestDeterminism(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(7, 30, 2*unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 16, Cache: unit.TiB(4), RemoteIO: unit.MBpsOf(400)}
	for _, eng := range []Engine{Fluid, Batch} {
		cfg := Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Engine: eng, Seed: 3}
		a := runSim(t, cfg, jobs)
		cfg.Policy = siloFIFO(t) // fresh policy instance, same seed
		b := runSim(t, cfg, jobs)
		if len(a.Jobs) != len(b.Jobs) {
			t.Fatalf("%v: job counts differ", eng)
		}
		for i := range a.Jobs {
			if a.Jobs[i] != b.Jobs[i] {
				t.Fatalf("%v: job %d differs: %+v vs %+v", eng, i, a.Jobs[i], b.Jobs[i])
			}
		}
	}
}

// TestSingleJobIdealDuration: an unconstrained job finishes at its
// ideal duration on both engines.
func TestSingleJobIdealDuration(t *testing.T) {
	spec := mkSpec(t, "j", "ResNet-50", "ds", unit.GiB(64), 1, 3)
	cl := core.Cluster{GPUs: 1, Cache: unit.GiB(128), RemoteIO: unit.MBpsOf(500)}
	for _, eng := range []Engine{Fluid, Batch} {
		res := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Engine: eng, Seed: 1},
			[]workload.JobSpec{spec})
		ideal := spec.IdealDuration().Minutes()
		got := res.Jobs[0].JCT().Minutes()
		if math.Abs(got-ideal)/ideal > 0.05 {
			t.Errorf("%v: JCT %.1f, ideal %.1f", eng, got, ideal)
		}
	}
}

// TestWarmupThenIdeal: a cacheable job behind a slow link runs epoch 1
// at link speed and later epochs at f* — the delayed-effectiveness
// timeline of Figure 9 ("before the 460th minute all systems have the
// same performance").
func TestWarmupThenIdeal(t *testing.T) {
	spec := mkSpec(t, "j", "ResNet-50", "ds", unit.GiB(100), 1, 4)
	cl := core.Cluster{GPUs: 1, Cache: unit.GiB(128), RemoteIO: unit.MBpsOf(57)}
	for _, eng := range []Engine{Fluid, Batch} {
		res := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Engine: eng, Seed: 1},
			[]workload.JobSpec{spec})
		// Expected: epoch 1 at 57 MB/s (2x epoch time), epochs 2-4 at 114.
		epochIdeal := float64(spec.Dataset.Size) / float64(unit.MBpsOf(114))
		want := (2*epochIdeal + 3*epochIdeal) / 60
		got := res.Jobs[0].JCT().Minutes()
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("%v: JCT %.1f min, want ~%.1f (cold epoch at link speed)", eng, got, want)
		}
	}
}

// TestDisableIOControlFallsBackToProviderShare: with IO control off,
// SiloD's allocations are ignored and jobs get the static equal share.
func TestDisableIOControlFallsBackToProviderShare(t *testing.T) {
	// Two jobs, one tiny demand, one large: under SiloD control the
	// large job gets the slack; under provider share it gets cap/2.
	big := mkSpec(t, "big", "ResNet-50", "ds-big", unit.TiB(2), 1, 1)
	small := mkSpec(t, "small", "BERT", "ds-small", unit.TiB(2), 1, 0.02)
	cl := core.Cluster{GPUs: 2, Cache: 0, RemoteIO: unit.MBpsOf(60)}
	with := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Seed: 1},
		[]workload.JobSpec{big, small})
	without := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Seed: 1,
		DisableIOControl: true}, []workload.JobSpec{big, small})
	bigWith := jctOf(with, "big")
	bigWithout := jctOf(without, "big")
	// With control: big gets 60-2=58 MB/s; without: capped at 30 while
	// BERT's unused 28 idles -> big roughly doubles.
	if bigWithout < bigWith*1.2 {
		t.Errorf("disabling IO control should slow the big job: %.0f vs %.0f min", bigWithout, bigWith)
	}
}

func jctOf(r *Result, id string) float64 {
	for _, j := range r.Jobs {
		if j.ID == id {
			return j.JCT().Minutes()
		}
	}
	return -1
}

// TestDatasetSharingCachesOnce: two jobs on one dataset fit in a cache
// that could not hold two copies, and both reach ideal speed.
func TestDatasetSharingCachesOnce(t *testing.T) {
	a := mkSpec(t, "a", "ResNet-50", "shared", unit.GiB(100), 1, 4)
	b := mkSpec(t, "b", "ResNet-50", "shared", unit.GiB(100), 1, 4)
	cl := core.Cluster{GPUs: 2, Cache: unit.GiB(110), RemoteIO: unit.MBpsOf(120)}
	for _, eng := range []Engine{Fluid, Batch} {
		res := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Engine: eng, Seed: 1},
			[]workload.JobSpec{a, b})
		ideal := a.IdealDuration().Minutes()
		for _, j := range res.Jobs {
			got := j.JCT().Minutes()
			// Warm-up epoch shared at 60 MB/s each, then both at f*.
			if got > ideal*1.6 {
				t.Errorf("%v: job %s JCT %.1f vs ideal %.1f — sharing not effective", eng, j.ID, got, ideal)
			}
		}
	}
}

// TestGangQueueing: jobs queue when GPUs are scarce and FIFO order is
// respected in start times.
func TestGangQueueing(t *testing.T) {
	j1 := mkSpec(t, "j1", "ResNet-50", "d1", unit.GiB(32), 2, 2)
	j2 := mkSpec(t, "j2", "ResNet-50", "d2", unit.GiB(32), 2, 2)
	j2.Submit = 60 // a minute later
	cl := core.Cluster{GPUs: 2, Cache: unit.GiB(128), RemoteIO: unit.MBpsOf(500)}
	res := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Seed: 1},
		[]workload.JobSpec{j1, j2})
	var s1, s2 JobStat
	for _, j := range res.Jobs {
		if j.ID == "j1" {
			s1 = j
		} else {
			s2 = j
		}
	}
	if s2.Start < s1.Finish {
		t.Errorf("j2 started at %.1f before j1 finished at %.1f on a full cluster",
			s2.Start.Minutes(), s1.Finish.Minutes())
	}
	if s2.QueueDelay() <= 0 {
		t.Error("queued job reports no queue delay")
	}
}

// TestCurriculumJobRunsInBatchEngine: curriculum jobs are accepted and
// finish; LRU and uniform caching agree (§7.4).
func TestCurriculumJobRunsInBatchEngine(t *testing.T) {
	spec := mkSpec(t, "cur", "ResNet-50", "ds", unit.GiB(64), 1, 2)
	spec.Curriculum = &workload.CurriculumSpec{StartingPercent: 0.1, Alpha: 2, StepSize: 100}
	cl := core.Cluster{GPUs: 1, Cache: unit.GiB(32), RemoteIO: unit.MBpsOf(60)}
	var jcts []float64
	for _, cs := range []policy.CacheSystem{policy.SiloD, policy.Alluxio} {
		pol, err := policy.Build(policy.FIFOKind, cs, 1)
		if err != nil {
			t.Fatal(err)
		}
		res := runSim(t, Config{Cluster: cl, Policy: pol, System: cs, Engine: Batch, Seed: 5},
			[]workload.JobSpec{spec})
		jcts = append(jcts, res.Jobs[0].JCT().Minutes())
	}
	if math.Abs(jcts[0]-jcts[1])/jcts[0] > 0.15 {
		t.Errorf("curriculum: uniform %.1f vs LRU %.1f differ > 15%%", jcts[0], jcts[1])
	}
}

// TestIrregularPartition: a mixed cluster schedules curriculum jobs via
// the framework's fallback partition without starving them.
func TestIrregularPartition(t *testing.T) {
	reg := mkSpec(t, "reg", "ResNet-50", "d-reg", unit.GiB(64), 1, 3)
	irr := mkSpec(t, "irr", "ResNet-50", "d-irr", unit.GiB(64), 1, 3)
	irr.Curriculum = &workload.CurriculumSpec{StartingPercent: 0.1, Alpha: 2, StepSize: 200}
	pol := siloFIFO(t)
	fw := (&core.Framework{Policy: pol}).AsPolicy()
	cl := core.Cluster{GPUs: 2, Cache: unit.GiB(128), RemoteIO: unit.MBpsOf(200)}
	res := runSim(t, Config{Cluster: cl, Policy: fw, System: policy.SiloD, Engine: Batch, Seed: 2},
		[]workload.JobSpec{reg, irr})
	if len(res.Jobs) != 2 {
		t.Fatalf("finished %d jobs", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.JCT().Minutes() > 4*reg.IdealDuration().Minutes() {
			t.Errorf("job %s starved: JCT %.1f", j.ID, j.JCT().Minutes())
		}
	}
}

func TestRunValidatesInputs(t *testing.T) {
	spec := mkSpec(t, "j", "ResNet-50", "ds", unit.GiB(1), 4, 1)
	cl := core.Cluster{GPUs: 2, Cache: unit.GiB(1), RemoteIO: unit.MBpsOf(10)}
	if _, err := Run(Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD}, []workload.JobSpec{spec}); err == nil {
		t.Error("4-GPU job on 2-GPU cluster accepted")
	}
	if _, err := Run(Config{Cluster: cl}, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := Run(Config{Cluster: core.Cluster{}, Policy: siloFIFO(t)}, nil); err == nil {
		t.Error("invalid cluster accepted")
	}
}

// TestTimelinesRecorded: the standard series exist and make sense.
func TestTimelinesRecorded(t *testing.T) {
	spec := mkSpec(t, "j", "ResNet-50", "ds", unit.GiB(64), 1, 3)
	cl := core.Cluster{GPUs: 1, Cache: unit.GiB(128), RemoteIO: unit.MBpsOf(57)}
	res := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Seed: 1,
		MetricsInterval: unit.Minute}, []workload.JobSpec{spec})
	for _, name := range []string{"throughput", "ideal", "remoteio", "fairness", "cache_alloc", "cache_effective"} {
		s, ok := res.Timelines[name]
		if !ok || s.Len() == 0 {
			t.Errorf("series %q missing or empty", name)
		}
	}
	// Remote IO usage never exceeds the link capacity.
	if res.Timelines["remoteio"].MaxValue() > cl.RemoteIO.MBpsValue()*1.01 {
		t.Errorf("remote usage %v exceeds capacity", res.Timelines["remoteio"].MaxValue())
	}
	// Ideal >= throughput at all times.
	th, id := res.Timelines["throughput"], res.Timelines["ideal"]
	for i := 0; i < th.Len() && i < id.Len(); i++ {
		_, tv := th.At(i)
		_, iv := id.At(i)
		if tv > iv*1.01+1 {
			t.Errorf("throughput %v above ideal %v at sample %d", tv, iv, i)
		}
	}
}

// TestGavelPreemptsAndResumes: with more gangs than GPUs, Gavel
// time-shares — every job makes progress and finishes, and the
// preempted job's cached data survives the pause (quota kept because
// Gavel funds all active jobs' datasets).
func TestGavelPreemptsAndResumes(t *testing.T) {
	a := mkSpec(t, "a", "ResNet-50", "da", unit.GiB(64), 2, 3)
	b := mkSpec(t, "b", "ResNet-50", "db", unit.GiB(64), 2, 3)
	pol, err := policy.Build(policy.GavelKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 2, Cache: unit.GiB(200), RemoteIO: unit.MBpsOf(300)}
	res := runSim(t, Config{Cluster: cl, Policy: pol, System: policy.SiloD, Seed: 1,
		ReschedInterval: 5 * unit.Minute}, []workload.JobSpec{a, b})
	if len(res.Jobs) != 2 {
		t.Fatalf("finished %d jobs", len(res.Jobs))
	}
	// Time sharing: both JCTs land well beyond one ideal duration but
	// under three (they split the GPU pair roughly evenly).
	ideal := a.IdealDuration().Minutes()
	for _, j := range res.Jobs {
		got := j.JCT().Minutes()
		if got < ideal*1.2 || got > ideal*3 {
			t.Errorf("job %s JCT %.1f vs ideal %.1f: not time-shared as expected", j.ID, got, ideal)
		}
	}
}

// TestCacheAllocationNeverExceedsCapacity: the recorded allocation
// timeline respects the cluster capacity at every sample, for every
// system.
func TestCacheAllocationNeverExceedsCapacity(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(3, 40, 3*unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 24, Cache: unit.TiB(6), RemoteIO: unit.MBpsOf(300)}
	for _, cs := range policy.AllCacheSystems() {
		for _, k := range policy.AllSchedulerKinds() {
			pol, err := policy.Build(k, cs, 3)
			if err != nil {
				t.Fatal(err)
			}
			res := runSim(t, Config{Cluster: cl, Policy: pol, System: cs, Seed: 3}, jobs)
			capGB := float64(cl.Cache) / float64(unit.GB)
			if got := res.Timelines["cache_alloc"].MaxValue(); got > capGB*1.001 {
				t.Errorf("%v/%v: cache allocation %v GB exceeds capacity %v GB", k, cs, got, capGB)
			}
			if got := res.Timelines["remoteio"].MaxValue(); got > cl.RemoteIO.MBpsValue()*1.01 {
				t.Errorf("%v/%v: remote usage %v exceeds capacity", k, cs, got)
			}
		}
	}
}

// TestSJFEnhancedPrefersShortCacheEfficientJobs: end-to-end, the
// enhanced SJF finishes a cache-efficient short job before an IO-bound
// "deceptively short" one (§5.1's ImageNet-1k vs ImageNet-22k example).
func TestSJFEnhancedPrefersShortCacheEfficientJobs(t *testing.T) {
	small := mkSpec(t, "small", "ResNet-50", "imagenet1k", unit.GiB(100), 4, 4)
	big := mkSpec(t, "big", "ResNet-50", "imagenet22k", unit.TiB(1), 4, 0.4)
	pol, err := policy.Build(policy.SJFKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One gang slot: SJF must order them; the cluster's storage makes
	// the big dataset uncacheable and the link slow.
	cl := core.Cluster{GPUs: 4, Cache: unit.GiB(128), RemoteIO: unit.MBpsOf(120)}
	res := runSim(t, Config{Cluster: cl, Policy: pol, System: policy.SiloD, Seed: 1},
		[]workload.JobSpec{big, small})
	var fSmall, fBig unit.Time
	for _, j := range res.Jobs {
		if j.ID == "small" {
			fSmall = j.Finish
		} else {
			fBig = j.Finish
		}
	}
	if fSmall > fBig {
		t.Errorf("enhanced SJF finished the IO-bound job first: small=%.0f big=%.0f min",
			fSmall.Minutes(), fBig.Minutes())
	}
}

// TestPlacementTracking: with servers configured, every gang places
// successfully, multi-server spanning is counted, and results are
// unchanged (placement is observational — Figure 3's flat fabric).
func TestPlacementTracking(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(5, 24, 2*unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 16, Cache: unit.TiB(4), RemoteIO: unit.MBpsOf(400)}
	flat := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Seed: 3}, jobs)
	placed := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Seed: 3,
		Servers: 4, GPUsPerServer: 4}, jobs)
	if placed.PlacedGangs == 0 {
		t.Fatal("no placements recorded")
	}
	if placed.AvgJCT() != flat.AvgJCT() {
		t.Errorf("placement changed results: %.1f vs %.1f min",
			placed.AvgJCT().Minutes(), flat.AvgJCT().Minutes())
	}
	t.Logf("placed %d gangs, %d spanned servers", placed.PlacedGangs, placed.SpannedGangs)
	// Misconfigured geometry is rejected.
	if _, err := Run(Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD,
		Servers: 3, GPUsPerServer: 4}, jobs); err == nil {
		t.Error("mismatched server geometry accepted")
	}
}

// TestBatchEnginePreemption exercises pause/resume in the block-level
// engine: Gavel time-shares two gangs over one GPU pair; in-flight
// fetches are abandoned on preemption and re-issued on resume, and both
// jobs complete with exact block accounting.
func TestBatchEnginePreemption(t *testing.T) {
	a := mkSpec(t, "a", "ResNet-50", "da", unit.GiB(16), 2, 2)
	b := mkSpec(t, "b", "ResNet-50", "db", unit.GiB(16), 2, 2)
	pol, err := policy.Build(policy.GavelKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 2, Cache: unit.GiB(64), RemoteIO: unit.MBpsOf(120)}
	res := runSim(t, Config{Cluster: cl, Policy: pol, System: policy.SiloD,
		Engine: Batch, Seed: 9, ReschedInterval: 2 * unit.Minute},
		[]workload.JobSpec{a, b})
	if len(res.Jobs) != 2 {
		t.Fatalf("finished %d jobs", len(res.Jobs))
	}
	ideal := a.IdealDuration().Minutes()
	for _, j := range res.Jobs {
		got := j.JCT().Minutes()
		if got < ideal || got > 4*ideal {
			t.Errorf("job %s JCT %.1f outside time-sharing band (ideal %.1f)", j.ID, got, ideal)
		}
	}
}

// TestSubEpochJobCannotBenefitFromCache pins the §7.1.1 BERT
// observation: a job that never completes an epoch gets nothing from
// cache (items are never re-read), so its JCT is identical with a full
// cache quota and with none.
func TestSubEpochJobCannotBenefitFromCache(t *testing.T) {
	spec := mkSpec(t, "bert", "BERT", "web", unit.TiB(2), 1, 0.05)
	link := unit.MBpsOf(1) // half of BERT's 2 MB/s demand
	for _, eng := range []Engine{Fluid, Batch} {
		withCache := runSim(t, Config{
			Cluster: core.Cluster{GPUs: 1, Cache: unit.TiB(4), RemoteIO: link},
			Policy:  siloFIFO(t), System: policy.SiloD, Engine: eng, Seed: 1,
		}, []workload.JobSpec{spec})
		noCache := runSim(t, Config{
			Cluster: core.Cluster{GPUs: 1, Cache: 0, RemoteIO: link},
			Policy:  siloFIFO(t), System: policy.SiloD, Engine: eng, Seed: 1,
		}, []workload.JobSpec{spec})
		a, b := withCache.Jobs[0].JCT().Minutes(), noCache.Jobs[0].JCT().Minutes()
		if math.Abs(a-b)/b > 0.01 {
			t.Errorf("%v: cache changed a sub-epoch job's JCT: %.1f vs %.1f min", eng, a, b)
		}
		// And the job runs at link speed, not f*.
		wantMin := float64(spec.TotalBytes()) / float64(link) / 60
		if math.Abs(a-wantMin)/wantMin > 0.05 {
			t.Errorf("%v: JCT %.1f, want link-limited ~%.1f min", eng, a, wantMin)
		}
	}
}

// TestFluidRejectsCurriculum: the fluid engine's closed forms do not
// model resampled access; it must refuse rather than silently
// mis-simulate.
func TestFluidRejectsCurriculum(t *testing.T) {
	spec := mkSpec(t, "cur", "ResNet-50", "ds", unit.GiB(8), 1, 1)
	spec.Curriculum = &workload.CurriculumSpec{StartingPercent: 0.1, Alpha: 2, StepSize: 10}
	cl := core.Cluster{GPUs: 1, Cache: unit.GiB(8), RemoteIO: unit.MBpsOf(100)}
	if _, err := Run(Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD, Engine: Fluid},
		[]workload.JobSpec{spec}); err == nil {
		t.Fatal("fluid engine accepted a curriculum job")
	}
}

// TestByteConservation: every job's attained work at completion equals
// its specified total, for both engines and a mixed trace — the
// simulator neither loses nor invents training progress.
func TestByteConservation(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(13, 20, unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 16, Cache: unit.TiB(4), RemoteIO: unit.MBpsOf(300)}
	for _, eng := range []Engine{Fluid, Batch} {
		res := runSim(t, Config{Cluster: cl, Policy: siloFIFO(t), System: policy.SiloD,
			Engine: eng, Seed: 13}, jobs)
		if len(res.Jobs) != len(jobs) {
			t.Fatalf("%v: %d of %d jobs finished", eng, len(res.Jobs), len(jobs))
		}
		byID := map[string]workload.JobSpec{}
		for _, j := range jobs {
			byID[j.ID] = j
		}
		for _, j := range res.Jobs {
			spec := byID[j.ID]
			// Minimum physically possible JCT: the ideal duration.
			if j.JCT() < spec.IdealDuration()*99/100 {
				t.Errorf("%v: job %s finished faster than physics allows: %.1f < %.1f min",
					eng, j.ID, j.JCT().Minutes(), spec.IdealDuration().Minutes())
			}
			if j.Finish < j.Start || j.Start < spec.Submit {
				t.Errorf("%v: job %s has inconsistent timestamps: %+v", eng, j.ID, j)
			}
		}
	}
}
