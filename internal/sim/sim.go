// Package sim is the event-driven cluster simulator the evaluation runs
// on — the analogue of the paper's ~5,200-line Go simulator (§7.2). It
// simulates job submission, scheduling rounds, data loading and GPU
// compute, with two engines:
//
//   - The fluid engine advances running jobs analytically at their
//     closed-form throughput between scheduling events and epoch
//     boundaries. It captures uniform caching's delayed effectiveness
//     exactly (hit ratios use the epoch-start cache snapshot) and
//     models Alluxio's LRU with a Che-style approximation. It scales to
//     400-GPU, multi-week traces.
//
//   - The batch engine simulates every block access through the real
//     cache pools (QuotaPool / LRUPool) with a pipelined loader+compute
//     model per job — the paper's "granularity of mini-batch". It is
//     used for the micro-benchmarks, curriculum learning, and for
//     validating the fluid engine's fidelity.
package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

// Engine selects the simulation engine.
// silod:enum
type Engine int

// The available engines.
const (
	Fluid Engine = iota
	Batch
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	if e == Batch {
		return "batch"
	}
	return "fluid"
}

// Config parameterizes a simulation run.
type Config struct {
	Cluster core.Cluster
	Policy  core.Policy
	// System tells the simulator which cache mechanism backs the
	// policy's quotas (LRU for Alluxio, private per-job quota caches
	// for CoorDL, shared per-dataset quota caches otherwise).
	System policy.CacheSystem
	Engine Engine
	// BlockSize is the cache block granularity (batch engine and quota
	// accounting); zero means the 64 MB default.
	BlockSize unit.Bytes
	// ReschedInterval is how often the policy re-runs in addition to
	// arrival/completion events; zero means 10 simulated minutes.
	ReschedInterval unit.Duration
	// MetricsInterval is the timeline sampling period; zero means the
	// rescheduling interval.
	MetricsInterval unit.Duration
	// Seed drives all stochastic elements (eviction, shuffles).
	Seed int64
	// FullResolve disables the incremental-scheduling fast paths (the
	// delta-aware solve-skip memo, warm-started max-min bisection and
	// the per-step rate memo), forcing a from-scratch solve every round.
	// Results are byte-identical either way — this is the reference
	// trajectory the identity tests diff the fast paths against.
	FullResolve bool
	// MaxSimTime aborts runaway simulations; zero means 10 simulated
	// years.
	MaxSimTime unit.Duration
	// WorkConserving lets IO-bottlenecked jobs share any unallocated
	// remote bandwidth (true matches real throttlers; the §7.2
	// "disable IO control" ablation also uses it). Default true; set
	// DisableWorkConserving to turn off.
	DisableWorkConserving bool
	// DisableIOControl ignores the policy's remote IO allocations and
	// divides bandwidth by provider fair share (the §7.2 ablation).
	DisableIOControl bool
	// EnablePrefetch lets idle egress bandwidth fill datasets the
	// policy has funded but whose jobs are not running — the
	// Hoard-style extension (fluid engine only). Pair with a
	// queue-aware allocator (policy.GreedyAllocator.PrefetchQueued) so
	// queued jobs' datasets actually receive quotas.
	EnablePrefetch bool
	// Servers and GPUsPerServer, when both positive, enable server
	// placement tracking in the fluid engine: gangs are placed with
	// pack-first placement and the Result reports how many spanned
	// multiple servers. Placement is observational — the storage fabric
	// serves peer reads at local speed (Figure 3), so it does not
	// change performance — but it validates that the flat-pool
	// abstraction maps onto physical servers. Servers*GPUsPerServer
	// must equal Cluster.GPUs.
	Servers       int
	GPUsPerServer int
	// Faults, when non-nil, is the deterministic fault schedule the run
	// replays: capacity shocks (GPU-node loss, cache loss, egress
	// degradation) and recoveries land as first-class events that
	// trigger a scheduling round against the degraded capacity. The
	// schedule is validated against the cluster before the run starts.
	Faults *faults.Schedule
	// Metrics, when non-nil, receives run-wide counters, gauges and
	// histograms (cache hit/miss bytes, reschedules, JCT distribution —
	// see docs/observability.md). Nil disables instrumentation at zero
	// cost.
	Metrics *metrics.Registry
	// Timeline, when non-nil, records per-job lifecycle events (submit,
	// schedule, preempt, cache_alloc, io_alloc, epoch, complete) stamped
	// with simulated time.
	Timeline *metrics.Timeline
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BlockSize <= 0 {
		out.BlockSize = 64 * unit.MB
	}
	if out.ReschedInterval <= 0 {
		out.ReschedInterval = 10 * unit.Minute
	}
	if out.MetricsInterval <= 0 {
		out.MetricsInterval = out.ReschedInterval
	}
	if out.MaxSimTime <= 0 {
		out.MaxSimTime = 10 * 365 * unit.Day
	}
	return out
}

// JobStat is the per-job outcome.
type JobStat struct {
	ID     string
	Submit unit.Time
	Start  unit.Time
	Finish unit.Time
}

// JCT is the job completion time (finish minus submit).
func (s JobStat) JCT() unit.Duration { return s.Finish.Sub(s.Submit) }

// QueueDelay is the time spent waiting before first execution.
func (s JobStat) QueueDelay() unit.Duration { return s.Start.Sub(s.Submit) }

// Result aggregates a run.
type Result struct {
	Jobs     []JobStat
	Makespan unit.Duration
	// Timelines, keyed by series name: "throughput" (total actual MB/s),
	// "ideal" (total ideal MB/s of running jobs), "remoteio" (MB/s used),
	// "fairness" (Eq. 8 objective over running jobs), "cache_alloc" and
	// "cache_effective" (GB).
	Timelines map[string]*stats.Series
	// Events counts engine-internal events, for performance reporting.
	Events int
	// PlacedGangs and SpannedGangs report placement statistics when
	// Config.Servers is set: how many gang placements occurred and how
	// many had to span multiple servers.
	PlacedGangs  int
	SpannedGangs int
}

// AvgJCT is the mean job completion time.
func (r *Result) AvgJCT() unit.Duration {
	if len(r.Jobs) == 0 {
		return 0
	}
	var s float64
	for _, j := range r.Jobs {
		s += float64(j.JCT())
	}
	return unit.Duration(s / float64(len(r.Jobs)))
}

// JCTs returns all job completion times in minutes, for CDFs.
func (r *Result) JCTs() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.JCT().Minutes()
	}
	return out
}

// AvgFairness is the time-weighted mean of the fairness-ratio timeline.
func (r *Result) AvgFairness() float64 {
	s, ok := r.Timelines["fairness"]
	if !ok {
		return 0
	}
	return s.MeanValue()
}

// Run executes the simulation for the given trace.
// silod:sim-root
func Run(cfg Config, jobs []workload.JobSpec) (*Result, error) {
	c := cfg.withDefaults()
	if err := c.Cluster.Validate(); err != nil {
		return nil, err
	}
	if c.Policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if j.NumGPUs > c.Cluster.GPUs {
			return nil, fmt.Errorf("sim: job %s needs %d GPUs, cluster has %d", j.ID, j.NumGPUs, c.Cluster.GPUs)
		}
	}
	if err := c.Faults.Validate(c.Cluster); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if c.Faults != nil {
		known := make(map[string]bool, len(jobs))
		for _, j := range jobs {
			known[j.ID] = true
		}
		for _, ev := range c.Faults.Events {
			if ev.Kind == faults.KindJobCrash && !known[ev.Job] {
				return nil, fmt.Errorf("sim: fault schedule crashes unknown job %q", ev.Job)
			}
		}
	}
	if c.Servers > 0 || c.GPUsPerServer > 0 {
		if c.Servers*c.GPUsPerServer != c.Cluster.GPUs {
			return nil, fmt.Errorf("sim: %d servers x %d GPUs != cluster's %d GPUs",
				c.Servers, c.GPUsPerServer, c.Cluster.GPUs)
		}
	}
	switch c.Engine {
	case Batch:
		return runBatch(c, jobs)
	default:
		return runFluid(c, jobs)
	}
}

// jobRT is the engine-shared per-job runtime state.
type jobRT struct {
	spec    workload.JobSpec
	profile estimator.JobProfile
	dsKey   string // cache accounting key (dataset, or job for CoorDL)

	remaining unit.Bytes // bytes of training work left
	attained  unit.Bytes
	running   bool
	started   bool
	start     unit.Time
	finish    unit.Time
	done      bool

	gpus     int
	remoteIO unit.Bandwidth // scheduler-allocated (0 when uncontrolled)

	// Fluid-engine cache state: effective cached bytes for the current
	// epoch (the epoch-start snapshot, §6 "delayed effectiveness") and
	// bytes left to read in the current epoch. epochSize is the full
	// length of the current epoch, so epochSize-epochLeft is the
	// progress a fault-driven rollback discards.
	effCached unit.Bytes
	epochLeft unit.Bytes
	epochSize unit.Bytes
}

// rollbackEpoch discards the current epoch's partial progress — the
// crash/preemption recovery model: work is checkpointed at epoch
// boundaries, so a job losing its GPUs mid-epoch resumes from the last
// boundary (§6 "Fault tolerance").
func (j *jobRT) rollbackEpoch() {
	lost := j.epochSize - j.epochLeft
	if lost <= 0 {
		return
	}
	j.remaining += lost
	j.attained -= lost
	if j.attained < 0 {
		j.attained = 0
	}
	j.epochLeft = j.epochSize
}

// view builds the scheduler's JobView.
func (j *jobRT) view() core.JobView {
	return core.JobView{
		ID:              j.spec.ID,
		NumGPUs:         j.spec.NumGPUs,
		Profile:         j.profile,
		DatasetKey:      j.dsKey,
		DatasetSize:     j.spec.Dataset.Size,
		RemainingBytes:  j.remaining,
		AttainedBytes:   j.attained,
		EffectiveCached: j.effCached,
		Tenant:          j.spec.Tenant,
		SLO:             j.spec.SLO,
		Submit:          j.spec.Submit,
		Running:         j.running,
		Irregular:       j.spec.Curriculum != nil,
	}
}

// newJobRT initializes runtime state for a spec.
func newJobRT(spec workload.JobSpec, system policy.CacheSystem) *jobRT {
	key := spec.Dataset.Name
	if system.PrivateCaches() {
		key = policy.CoorDLKey(spec.ID)
	}
	first := minBytes(spec.Dataset.Size, spec.TotalBytes())
	return &jobRT{
		spec: spec,
		profile: estimator.JobProfile{
			IdealThroughput: spec.IdealThroughput(),
			DatasetSize:     spec.Dataset.Size,
		},
		dsKey:     key,
		remaining: spec.TotalBytes(),
		epochLeft: first,
		epochSize: first,
	}
}

func minBytes(a, b unit.Bytes) unit.Bytes {
	if a < b {
		return a
	}
	return b
}

// fairnessRatio computes the Eq. 8 objective over the running jobs:
// min_j perf_j / perf_j(R_equal), where R_equal divides the cluster's
// storage resources equally among the running jobs — the same
// normalization the max-min storage program optimizes, so the series
// directly tracks how well each system serves Gavel's objective.
func fairnessRatio(cl core.Cluster, running []*jobRT, perfOf func(*jobRT) unit.Bandwidth) float64 {
	if len(running) == 0 {
		return 1
	}
	n := float64(len(running))
	minRatio := math.Inf(1)
	for _, j := range running {
		equal := estimator.Resources{
			Cache:    unit.Bytes(float64(cl.Cache) / n),
			RemoteIO: unit.Bandwidth(float64(cl.RemoteIO) / n),
		}
		pe := float64(j.profile.Perf(equal))
		if pe <= 0 {
			continue
		}
		r := float64(perfOf(j)) / pe
		if r < minRatio {
			minRatio = r
		}
	}
	if math.IsInf(minRatio, 1) {
		return 1
	}
	return minRatio
}
