package sim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// diffResults fails the test unless two results are bitwise identical:
// every per-job stat, the makespan, the event count, and every timeline
// sample (times and values compared at the float64 bit level).
func diffResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("%s: job counts differ: %d vs %d", label, len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("%s: job %d differs:\n  full: %+v\n  incr: %+v", label, i, a.Jobs[i], b.Jobs[i])
		}
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("%s: makespan %v vs %v", label, a.Makespan, b.Makespan)
	}
	if len(a.Timelines) != len(b.Timelines) {
		t.Fatalf("%s: timeline sets differ: %d vs %d", label, len(a.Timelines), len(b.Timelines))
	}
	for name, sa := range a.Timelines {
		sb := b.Timelines[name]
		if sb == nil {
			t.Fatalf("%s: timeline %q missing in incremental run", label, name)
		}
		if len(sa.Times) != len(sb.Times) || len(sa.Values) != len(sb.Values) {
			t.Fatalf("%s: timeline %q lengths differ", label, name)
		}
		for i := range sa.Times {
			if math.Float64bits(sa.Times[i]) != math.Float64bits(sb.Times[i]) {
				t.Fatalf("%s: timeline %q time[%d]: %v vs %v", label, name, i, sa.Times[i], sb.Times[i])
			}
			if math.Float64bits(sa.Values[i]) != math.Float64bits(sb.Values[i]) {
				t.Fatalf("%s: timeline %q value[%d]: %v vs %v", label, name, i, sa.Values[i], sb.Values[i])
			}
		}
	}
}

// TestIncrementalByteIdentity is the engine-level gate for the PR's
// whole incremental-scheduling stack: for every engine × scheduler ×
// cache-system combination, a run with FullResolve (every round
// re-solved from scratch) must be bitwise identical to the default
// incremental run — same jobs, same makespan, same timelines down to
// the last float64 bit.
func TestIncrementalByteIdentity(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(11, 40, 3*unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 24, Cache: unit.TiB(2), RemoteIO: unit.MBpsOf(600)}
	kinds := []policy.SchedulerKind{policy.FIFOKind, policy.SJFKind, policy.GavelKind}
	systems := []policy.CacheSystem{policy.SiloD, policy.Alluxio, policy.CoorDL, policy.Quiver}
	for _, eng := range []Engine{Fluid, Batch} {
		for _, k := range kinds {
			for _, cs := range systems {
				name := fmt.Sprintf("%v_%v_%v", eng, k, cs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					mk := func(full bool) *Result {
						pol, err := policy.Build(k, cs, 5)
						if err != nil {
							t.Fatal(err)
						}
						cfg := Config{
							Cluster: cl, Policy: pol, System: cs,
							Engine: eng, Seed: 9,
							MetricsInterval: 5 * unit.Minute,
							FullResolve:     full,
						}
						return runSim(t, cfg, jobs)
					}
					diffResults(t, name, mk(true), mk(false))
				})
			}
		}
	}
}

// TestIncrementalByteIdentityEnhancedGavel covers Gavel's pure
// TotalThroughput objective — the configuration whose solve rounds the
// delta memo actually skips — on both engines.
func TestIncrementalByteIdentityEnhancedGavel(t *testing.T) {
	jobs, err := workload.Generate(workload.DefaultTraceConfig(13, 32, 2*unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster{GPUs: 16, Cache: unit.TiB(1), RemoteIO: unit.MBpsOf(400)}
	for _, eng := range []Engine{Fluid, Batch} {
		t.Run(fmt.Sprintf("%v", eng), func(t *testing.T) {
			t.Parallel()
			mk := func(full bool) *Result {
				pol, err := policy.Build(policy.GavelKind, policy.SiloD, 3)
				if err != nil {
					t.Fatal(err)
				}
				pol.(*policy.Gavel).Objective = policy.TotalThroughput
				cfg := Config{
					Cluster: cl, Policy: pol, System: policy.SiloD,
					Engine: eng, Seed: 4,
					MetricsInterval: 5 * unit.Minute,
					FullResolve:     full,
				}
				return runSim(t, cfg, jobs)
			}
			diffResults(t, "gavel-tput", mk(true), mk(false))
		})
	}
}
