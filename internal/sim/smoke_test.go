package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// microBenchJobs builds the §7.1.1 workload: two ResNet-50 and two
// EfficientNetB1 single-GPU jobs on private 1.3 TB datasets, plus one
// 4-GPU BERT job on the 20.9 TB web corpus.
func microBenchJobs(t testing.TB) []workload.JobSpec {
	t.Helper()
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	eff, err := workload.ModelByName("EfficientNetB1")
	if err != nil {
		t.Fatal(err)
	}
	bert, err := workload.ModelByName("BERT")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, m workload.Model, ds workload.Dataset, gpus int, epochs float64) workload.JobSpec {
		spec := workload.JobSpec{ID: id, Model: m, Dataset: ds, NumGPUs: gpus}
		perEpoch := float64(ds.Size)
		spec.NumSteps = int64(epochs * perEpoch / float64(spec.StepBytesTotal()))
		if spec.NumSteps < 1 {
			spec.NumSteps = 1
		}
		return spec
	}
	syn := func(i int) workload.Dataset {
		return workload.Dataset{Name: "synth-images-" + string(rune('a'+i)), Size: unit.TiB(1.3)}
	}
	return []workload.JobSpec{
		mk("rn50-a", rn50, syn(0), 1, 13),
		mk("rn50-b", rn50, syn(1), 1, 13),
		mk("effb1-a", eff, syn(2), 1, 10),
		mk("effb1-b", eff, syn(3), 1, 10),
		mk("bert", bert, workload.Dataset{Name: "websearch", Size: unit.TiB(20.9)}, 4, 0.07),
	}
}

func microCluster() core.Cluster {
	return core.Cluster{GPUs: 8, Cache: unit.TiB(2), RemoteIO: unit.MBpsOf(200)}
}

func runMicro(t testing.TB, cs policy.CacheSystem, eng Engine) *Result {
	t.Helper()
	pol, err := policy.Build(policy.FIFOKind, cs, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Cluster: microCluster(),
		Policy:  pol,
		System:  cs,
		Engine:  eng,
		Seed:    7,
	}, microBenchJobs(t))
	if err != nil {
		t.Fatalf("%v on %v: %v", cs, eng, err)
	}
	return res
}

// TestMicroBenchmarkOrdering reproduces the §7.1.1 ranking: SiloD has
// the best average JCT, CoorDL and Alluxio the worst, Quiver in
// between, on both engines.
func TestMicroBenchmarkOrdering(t *testing.T) {
	for _, eng := range []Engine{Fluid, Batch} {
		res := map[policy.CacheSystem]*Result{}
		for _, cs := range policy.AllCacheSystems() {
			res[cs] = runMicro(t, cs, eng)
			if len(res[cs].Jobs) != 5 {
				t.Fatalf("%v/%v finished %d jobs, want 5", cs, eng, len(res[cs].Jobs))
			}
			t.Logf("%v/%v: avgJCT=%.0fmin makespan=%.0fmin events=%d",
				cs, eng, res[cs].AvgJCT().Minutes(), res[cs].Makespan.Minutes(), res[cs].Events)
		}
		silod := res[policy.SiloD].AvgJCT()
		for _, cs := range []policy.CacheSystem{policy.Alluxio, policy.CoorDL, policy.Quiver} {
			if res[cs].AvgJCT() < silod {
				t.Errorf("engine %v: %v avg JCT %.0f beats SiloD %.0f", eng, cs,
					res[cs].AvgJCT().Minutes(), silod.Minutes())
			}
		}
	}
}
