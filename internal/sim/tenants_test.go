package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/tenant"
	"repro/internal/unit"
	"repro/internal/workload"
)

// tenantRegistry mirrors experiments.TenantChaosRegistry: one tenant
// per SLO class, the sheddable one quota-capped so the policy clamp is
// exercised during the run.
func tenantRegistry(t testing.TB) *tenant.Registry {
	t.Helper()
	reg := tenant.NewRegistry()
	for _, tn := range []tenant.Tenant{
		{ID: "acme", Class: tenant.Critical},
		{ID: "beta", Class: tenant.Standard},
		{ID: "gamma", Class: tenant.Sheddable, Quota: tenant.Quota{GPUs: 3, Egress: unit.MBpsOf(100)}},
	} {
		if err := reg.Register(tn); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// tenantChaosJobs is the three-tenant, eight-job trace: two critical
// ResNet-50 jobs sharing a dataset, two standard EfficientNetB1 jobs
// sharing a dataset, four sheddable ResNet-50 jobs on private datasets.
func tenantChaosJobs(t testing.TB) []workload.JobSpec {
	t.Helper()
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	eff, err := workload.ModelByName("EfficientNetB1")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, m workload.Model, ds workload.Dataset, ten string, slo tenant.SLOClass, epochs float64) workload.JobSpec {
		spec := workload.JobSpec{ID: id, Model: m, Dataset: ds, NumGPUs: 1, Tenant: ten, SLO: slo}
		spec.NumSteps = int64(epochs * float64(ds.Size) / float64(spec.StepBytesTotal()))
		if spec.NumSteps < 1 {
			spec.NumSteps = 1
		}
		return spec
	}
	critDS := workload.Dataset{Name: "crit-images", Size: unit.GiB(400)}
	stdDS := workload.Dataset{Name: "std-images", Size: unit.GiB(400)}
	jobs := []workload.JobSpec{
		mk("crit-a", rn50, critDS, "acme", tenant.Critical, 6),
		mk("crit-b", rn50, critDS, "acme", tenant.Critical, 6),
		mk("std-a", eff, stdDS, "beta", tenant.Standard, 5),
		mk("std-b", eff, stdDS, "beta", tenant.Standard, 5),
	}
	for i := 0; i < 4; i++ {
		ds := workload.Dataset{Name: "shed-images-" + string(rune('a'+i)), Size: unit.GiB(300)}
		jobs = append(jobs, mk("shed-"+string(rune('a'+i)), rn50, ds, "gamma", tenant.Sheddable, 4))
	}
	return jobs
}

// tenantChaosSchedule takes half the GPUs at t=2h and half the cache at
// t=3h, restoring both at t=8h.
func tenantChaosSchedule() *faults.Schedule {
	return &faults.Schedule{Events: []faults.Event{
		{At: unit.Time(2 * 3600), Kind: faults.KindGPULoss, GPUs: 4},
		{At: unit.Time(3 * 3600), Kind: faults.KindCacheLoss, Cache: unit.GiB(512)},
		{At: unit.Time(8 * 3600), Kind: faults.KindGPURestore, GPUs: 4},
		{At: unit.Time(8 * 3600), Kind: faults.KindCacheRestore, Cache: unit.GiB(512)},
	}}
}

// runTenantChaos runs the trace under the tenant-aware policy stack,
// optionally with the chaos schedule, and returns result + registry.
func runTenantChaos(t testing.TB, eng Engine, faulted bool) (*Result, *metrics.Registry) {
	t.Helper()
	pol, err := policy.BuildTenant(policy.FIFOKind, policy.SiloD, 7, tenantRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	var sched *faults.Schedule
	if faulted {
		sched = tenantChaosSchedule()
	}
	reg := metrics.NewRegistry("test")
	res, err := Run(Config{
		Cluster: core.Cluster{GPUs: 8, Cache: unit.TiB(1), RemoteIO: unit.MBpsOf(200)},
		Policy:  pol,
		System:  policy.SiloD,
		Engine:  eng,
		Seed:    7,
		Faults:  sched,
		Metrics: reg,
	}, tenantChaosJobs(t))
	if err != nil {
		t.Fatalf("%v faulted=%v: %v", eng, faulted, err)
	}
	return res, reg
}

// classMeans returns the mean JCT per SLO class of a run.
func classMeans(t testing.TB, res *Result, jobs []workload.JobSpec) map[tenant.SLOClass]float64 {
	t.Helper()
	classOf := make(map[string]tenant.SLOClass, len(jobs))
	for _, j := range jobs {
		classOf[j.ID] = j.SLO
	}
	sums := map[tenant.SLOClass]float64{}
	counts := map[tenant.SLOClass]int{}
	for _, st := range res.Jobs {
		c := classOf[st.ID]
		sums[c] += float64(st.JCT())
		counts[c]++
	}
	out := map[tenant.SLOClass]float64{}
	for c, s := range sums {
		out[c] = s / float64(counts[c])
	}
	return out
}

// TestMultiTenantChaosProtection is the tentpole acceptance check:
// under a GPU+cache outage the critical tenant's mean JCT stays within
// the fault-free envelope (the estimator's remote-IO-bound degradation
// allowance) while the sheddable tenant absorbs every fault preemption
// and the bulk of the slowdown, on both engines.
func TestMultiTenantChaosProtection(t *testing.T) {
	jobs := tenantChaosJobs(t)
	for _, eng := range []Engine{Fluid, Batch} {
		clean, _ := runTenantChaos(t, eng, false)
		faulted, reg := runTenantChaos(t, eng, true)
		requireAllJobs(t, faulted, jobs)

		cm := classMeans(t, clean, jobs)
		fm := classMeans(t, faulted, jobs)
		critSlow := fm[tenant.Critical] / cm[tenant.Critical]
		shedSlow := fm[tenant.Sheddable] / cm[tenant.Sheddable]
		t.Logf("%v: critical %.2fx, standard %.2fx, sheddable %.2fx",
			eng, critSlow, fm[tenant.Standard]/cm[tenant.Standard], shedSlow)

		// Critical throughput within the fault-free envelope: its cache
		// was protected, so the only permissible degradation is the
		// estimator's remote-IO bound — a 10% JCT allowance here.
		if critSlow > 1.10 {
			t.Errorf("%v: critical-tier JCT degraded %.2fx under chaos, want <= 1.10x", eng, critSlow)
		}
		// The sheddable tenant must absorb a materially larger share of
		// the lost capacity than the critical tier.
		if shedSlow < critSlow+0.25 {
			t.Errorf("%v: sheddable slowdown %.2fx does not absorb the loss (critical %.2fx)",
				eng, shedSlow, critSlow)
		}

		snap := reg.Snapshot()
		slo := func(c tenant.SLOClass) float64 {
			return snap.CounterValue("silod_faults_slo_preemptions_total",
				map[string]string{"slo": c.String()})
		}
		if v := slo(tenant.Critical); v != 0 {
			t.Errorf("%v: %v critical-tier fault preemptions, want 0 (reverse-SLO order)", eng, v)
		}
		if v := slo(tenant.Sheddable); v < 1 {
			t.Errorf("%v: no sheddable fault preemptions recorded under GPU loss", eng)
		}
		// Per-tenant trained-bytes counters must account for every
		// tenant's full workload (all jobs finish despite the outage).
		want := map[string]float64{}
		for _, j := range jobs {
			want[j.Tenant] += float64(j.TotalBytes())
		}
		for ten, w := range want {
			got := snap.CounterValue("silod_tenant_trained_bytes_total", map[string]string{"tenant": ten})
			if got < 0.99*w || got > 1.01*w {
				t.Errorf("%v: tenant %s trained %.0f bytes, want ~%.0f", eng, ten, got, w)
			}
		}
	}
}

// TestTenantChaosDeterminism: same seed, same schedule, same registry
// shape — the per-tenant metric snapshot must be byte-identical run to
// run on both engines.
func TestTenantChaosDeterminism(t *testing.T) {
	for _, eng := range []Engine{Fluid, Batch} {
		var snaps [][]byte
		for i := 0; i < 2; i++ {
			_, reg := runTenantChaos(t, eng, true)
			blob, err := json.Marshal(reg.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, blob)
		}
		if !bytes.Equal(snaps[0], snaps[1]) {
			t.Errorf("%v: same-seed tenant chaos runs produced different metric snapshots", eng)
		}
	}
}
