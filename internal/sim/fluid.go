package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/remoteio"
	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

// dsRT is the fluid engine's per-cache-key state.
type dsRT struct {
	key    string
	size   unit.Bytes
	quota  unit.Bytes
	cached unit.Bytes
}

// fluidSim is the fluid engine state.
// subByteResidue is the completion threshold for fluid integration:
// float advance steps leave sub-byte residue on remaining/epochLeft,
// which counts as finished rather than scheduling another step.
const subByteResidue unit.Bytes = 0.5

type fluidSim struct {
	cfg      Config
	jobs     []*jobRT
	byID     map[string]*jobRT
	datasets map[string]*dsRT
	epochIdx map[string]int // job -> completed-epoch count

	// inj replays the fault schedule; eff is the current degraded
	// capacity every scheduling decision uses instead of cfg.Cluster.
	inj *faults.Injector
	eff core.Cluster
	// faultPreempt marks the next scheduling round as fault-driven:
	// jobs it stops lost their node, so their epoch progress rolls back.
	faultPreempt bool

	now        unit.Time
	nextArrive int
	res        *Result
	lastSample unit.Time

	series map[string]*stats.Series
	events int
	met    *simMetrics

	// placement tracks gangs on physical servers when configured.
	placement *cluster.Cluster

	// Scratch buffers reused across integration steps. The fluid loop
	// recomputes the active/running sets and per-job rate vectors every
	// step; allocating them fresh dominated the allocation profile, and
	// the engine is single-threaded so one set of buffers suffices.
	// Each is valid only until the method that filled it runs again.
	actBuf     []*jobRT
	runBuf     []*jobRT
	viewsBuf   []core.JobView
	keysBuf    []string
	hitsBuf    []float64
	ratesBuf   []unit.Bandwidth
	grantsBuf  []unit.Bandwidth
	demandsBuf []float64
	lruRates   []float64
	lruPrev    []float64
	lruIdx     []int
	streamsBuf []cache.FluidStream
	demandBuf  []remoteio.Demand
	residBuf   []remoteio.Demand
	residIdx   []int
	shareBuf   []unit.Bandwidth
	divider    remoteio.Divider
	valScratch core.ValidateScratch

	// LRU stream-layout memo: which jobs share a dataset key, the
	// sorted key order, and each job's stream index depend only on the
	// identity of the running set, not on rates or cache state, so
	// lruHits rebuilds them only when the running set changes.
	layoutJobs []*jobRT
	lruKeys    []string
	lruUsers   []int // per running-index sharer count for j.dsKey
	usersBuf   map[string]int

	// Sorted funded/unfunded quota-key cache: when the solve memo hits,
	// the assignment's CacheQuota map and the dataset set are both
	// unchanged since the round that built these, so the two sorts in
	// reschedule's quota application can be skipped.
	quotaKeys   []string
	quotaFunded int
	quotaKeysOK bool

	// sample scratch maps, recycled across metric samples.
	realizedBuf map[string]unit.Bandwidth
	effSumBuf   map[string]float64
	effCntBuf   map[string]int

	// Solve-skip memo: the last (effective cluster, views) the policy
	// solved against and the assignment it produced. Valid only for
	// pure policies (core.PureAssigner); see reschedule.
	solvePure  bool
	solveOK    bool
	lastEff    core.Cluster
	lastViews  []core.JobView
	lastAssign core.Assignment
	// ignoreFields widens the memo from exact-match to delta-aware:
	// JobView fields the (pure) policy declares it never reads
	// (core.DeltaAssigner) are excluded from the comparison, so e.g.
	// FIFO keeps its memoized solve while jobs merely make progress.
	// Zero for impure policies and in full-resolve mode.
	ignoreFields core.ViewFields

	// Rate memo: jobRates is a deterministic function of inputs that
	// only change at discrete points (assignment application, fault
	// landing, warm-up transitions, running-set changes). rateGen is
	// bumped at each such point; between bumps the scratch buffers
	// still hold the exact answer, so the whole Che fixed point and
	// bandwidth division are skipped.
	rateGen      uint64
	lastRateGen  uint64
	rateMemoOK   bool
	lastRateJobs []*jobRT

	// cheTau is the last converged Che characteristic time, fed back as
	// the warm-start hint for the next solve (see cache.CheLRUWarm).
	// Zero (cold) in full-resolve mode.
	cheTau float64
}

// runFluid executes the fluid engine.
func runFluid(cfg Config, specs []workload.JobSpec) (*Result, error) {
	for _, spec := range specs {
		if spec.Curriculum != nil {
			// The fluid engine's closed forms assume the regular
			// exactly-once-per-epoch pattern (§2.2); curriculum jobs
			// resample and must run on the block-level engine.
			return nil, fmt.Errorf("sim: job %s uses curriculum learning; use Engine: Batch", spec.ID)
		}
	}
	ordered := append([]workload.JobSpec(nil), specs...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Submit < ordered[j].Submit {
			return true
		}
		if ordered[j].Submit < ordered[i].Submit {
			return false
		}
		return ordered[i].ID < ordered[j].ID
	})
	s := &fluidSim{
		cfg:         cfg,
		byID:        make(map[string]*jobRT),
		datasets:    make(map[string]*dsRT),
		epochIdx:    make(map[string]int),
		usersBuf:    make(map[string]int),
		realizedBuf: make(map[string]unit.Bandwidth),
		effSumBuf:   make(map[string]float64),
		effCntBuf:   make(map[string]int),
		series: map[string]*stats.Series{
			"throughput":      {Name: "throughput"},
			"ideal":           {Name: "ideal"},
			"remoteio":        {Name: "remoteio"},
			"fairness":        {Name: "fairness"},
			"cache_alloc":     {Name: "cache_alloc"},
			"cache_effective": {Name: "cache_effective"},
		},
	}
	for _, spec := range ordered {
		j := newJobRT(spec, cfg.System)
		s.jobs = append(s.jobs, j)
		s.byID[spec.ID] = j
	}
	s.met = newSimMetrics(cfg)
	s.met.initTenants(s.jobs)
	s.met.submitAll(s.jobs)
	s.solvePure = policyPure(cfg.Policy)
	if fr, ok := cfg.Policy.(core.FullResolver); ok {
		fr.SetFullResolve(cfg.FullResolve)
	}
	if cfg.FullResolve {
		// Reference mode: every round re-solves from scratch and every
		// step recomputes rates; the identity tests diff this against
		// the memoized fast path.
		s.solvePure = false
	} else {
		s.ignoreFields = core.PolicyIgnoredFields(cfg.Policy)
	}
	inj, err := faults.NewInjector(cfg.Cluster, cfg.Faults, cfg.Metrics, cfg.Timeline)
	if err != nil {
		return nil, err
	}
	s.inj = inj
	s.eff = inj.Effective()
	s.res = &Result{Timelines: s.series}
	if cfg.Servers > 0 {
		pl, err := cluster.New(cfg.Servers, cfg.GPUsPerServer, unit.Bytes(float64(cfg.Cluster.Cache)/float64(cfg.Servers)))
		if err != nil {
			return nil, err
		}
		s.placement = pl
	}
	if err := s.loop(); err != nil {
		return nil, err
	}
	s.met.flushBytes()
	s.met.flushTenantTrained(s.jobs)
	s.res.Events = s.events
	return s.res, nil
}

// ds returns (creating on demand) the cache-key state for a job.
func (s *fluidSim) ds(j *jobRT) *dsRT {
	d, ok := s.datasets[j.dsKey]
	if !ok {
		d = &dsRT{key: j.dsKey, size: j.spec.Dataset.Size}
		s.datasets[j.dsKey] = d
	}
	return d
}

// active returns the jobs that have arrived and are not finished. The
// slice is scratch, valid until the next call.
func (s *fluidSim) active() []*jobRT {
	out := s.actBuf[:0]
	for _, j := range s.jobs {
		if !j.done && j.spec.Submit <= s.now {
			out = append(out, j)
		}
	}
	s.actBuf = out
	return out
}

// runningJobs returns the jobs currently holding GPUs. The slice is
// scratch, valid until the next call.
func (s *fluidSim) runningJobs() []*jobRT {
	out := s.runBuf[:0]
	for _, j := range s.jobs {
		if j.running && !j.done {
			out = append(out, j)
		}
	}
	s.runBuf = out
	return out
}

// reschedule runs the policy over active jobs and applies the
// assignment to the fluid state.
func (s *fluidSim) reschedule() error {
	act := s.active()
	if cap(s.viewsBuf) < len(act) {
		s.viewsBuf = make([]core.JobView, 0, len(act))
	}
	views := s.viewsBuf[:len(act)]
	for i, j := range act {
		views[i] = j.view()
		views[i].CachedBytes = minBytes(s.ds(j).cached, j.spec.Dataset.Size)
	}
	var a core.Assignment
	reused := s.solveOK && s.eff == s.lastEff &&
		core.ViewsEquivalent(views, s.lastViews, s.ignoreFields)
	if reused {
		// Pure policy, unchanged relevant inputs: the previous solve's
		// assignment is still the answer. Fields in ignoreFields are
		// ones the policy provably never reads (core.DeltaAssigner), so
		// "unchanged" is checked only on the fields that could steer the
		// solve. Re-applying the assignment below is a no-op on every
		// observable (quotas, IO allocations, GPU transitions all
		// compare equal), so skipping the solve cannot change results.
		a = s.lastAssign
	} else {
		// The policy solves against the *effective* capacity: after a
		// fault the re-solve must not over-grant GPUs, cache, or
		// bandwidth, and Assignment validation enforces it against the
		// same view.
		a = s.cfg.Policy.Assign(s.eff, s.now, views)
		if err := a.ValidateWith(s.eff, views, &s.valScratch); err != nil {
			return fmt.Errorf("sim: at t=%v policy %s produced invalid assignment: %w",
				s.now, s.cfg.Policy.Name(), err)
		}
		if s.solvePure {
			s.lastEff = s.eff
			s.lastViews = append(s.lastViews[:0], views...)
			s.lastAssign = a
			s.solveOK = true
		}
	}
	s.met.reschedules.Inc()
	// A reused assignment with no running-set transitions leaves every
	// rate input untouched; anything else invalidates the rate memo.
	// Transitions can occur even under a reused solve: a crash flips
	// j.running between rounds, and re-applying the memoized grants
	// readmits the job — a rate-relevant change the views comparison
	// cannot see when the policy ignores FieldRunning.
	rateDirty := !reused
	// GPUs: grant/revoke.
	for _, j := range act {
		g := a.GPUs[j.spec.ID]
		wasRunning := j.running
		if wasRunning != (g > 0) {
			rateDirty = true
		}
		j.gpus = g
		j.running = g > 0
		s.met.transition(s.now, j, wasRunning)
		if !j.running && wasRunning && s.faultPreempt {
			// Fault-driven preemption: the node (and the epoch's
			// uncheckpointed progress) is gone.
			j.rollbackEpoch()
			s.inj.CountPreemptionsSLO(j.spec.SLO, 1)
		}
		if j.running && !j.started {
			j.started = true
			j.start = s.now
		}
		if j.running && !wasRunning {
			// (Re)admission: the effective cache for the rest of this
			// epoch is whatever was cached before now.
			j.effCached = minBytes(s.ds(j).cached, j.spec.Dataset.Size)
			if s.placement != nil {
				p, err := s.placement.Place(j.spec.ID, j.spec.NumGPUs, cluster.Pack)
				if err != nil {
					return fmt.Errorf("sim: placement: %w", err)
				}
				s.res.PlacedGangs++
				if len(p) > 1 {
					s.res.SpannedGangs++
				}
			}
		}
		if !j.running && wasRunning && s.placement != nil {
			s.placement.Release(j.spec.ID)
		}
	}
	// Cache quotas (quota-based systems only; LRU manages itself).
	// Apply in sorted key order: quota changes land on the event
	// timeline, and map-iteration order would leak into the dump.
	if !s.cfg.System.UsesLRU() {
		// On a memo hit the assignment's CacheQuota map and the dataset
		// set are both exactly what they were when the cached key order
		// was built (any dataset arrival/departure changes the views and
		// forces a re-solve), so the sorts are skipped and the identical
		// key sequence is replayed.
		if !(reused && s.quotaKeysOK) {
			keys := s.quotaKeys[:0]
			for key := range a.CacheQuota {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			funded := len(keys)
			for key := range s.datasets {
				if _, ok := a.CacheQuota[key]; !ok {
					keys = append(keys, key)
				}
			}
			sort.Strings(keys[funded:])
			s.quotaKeys = keys
			s.quotaFunded = funded
			s.quotaKeysOK = !s.cfg.FullResolve
		}
		for _, key := range s.quotaKeys[:s.quotaFunded] {
			s.applyQuota(key, a.CacheQuota[key])
		}
		// Keys not mentioned lose their allocation: the data manager
		// evicts datasets the scheduler no longer funds.
		for _, key := range s.quotaKeys[s.quotaFunded:] {
			s.applyQuota(key, 0)
		}
	}
	// Remote IO allocations.
	for _, j := range act {
		bw := a.RemoteIO[j.spec.ID]
		if bw.Changed(j.remoteIO) {
			s.met.tl.RecordAt(float64(s.now), metrics.EventIOAlloc, j.spec.ID, float64(bw), "bytes_per_sec")
		}
		j.remoteIO = bw
	}
	if rateDirty {
		s.rateGen++
	}
	s.faultPreempt = false
	return nil
}

// applyFaults drains the injector's due events into fluid state. Each
// batch lands immediately before a scheduling round, so the policy
// re-solves against the degraded (or recovered) capacity.
func (s *fluidSim) applyFaults() {
	for {
		before := s.inj.Effective()
		ev, ok := s.inj.Next(s.now)
		if !ok {
			return
		}
		s.events++
		s.eff = s.inj.Effective()
		switch ev.Kind {
		case faults.KindGPULoss:
			// The next round re-solves with fewer GPUs; whoever it
			// stops was on the lost node and rolls back an epoch.
			s.faultPreempt = true
		case faults.KindCacheLoss:
			// The failed cache node held a uniform share of every
			// dataset's blocks: contents and effective snapshots scale
			// by the survival ratio, and hit ratios re-derive from the
			// shrunken snapshot on the next rate computation.
			ratio := 0.0
			if before.Cache > 0 {
				ratio = float64(s.eff.Cache) / float64(before.Cache)
			}
			for _, d := range s.datasets {
				d.cached = unit.Bytes(float64(d.cached) * ratio)
			}
			for _, j := range s.jobs {
				if !j.done {
					j.effCached = unit.Bytes(float64(j.effCached) * ratio)
				}
			}
		case faults.KindJobCrash:
			j, ok := s.byID[ev.Job]
			if !ok || j.done || !j.started {
				break
			}
			if j.running {
				j.running = false
				j.gpus = 0
				s.met.preemptions.Inc()
				s.met.tenantPreempt(j.spec.Tenant)
				s.met.tl.RecordAt(float64(s.now), metrics.EventPreempt, j.spec.ID, 0, "crash")
				s.inj.CountPreemptionsSLO(j.spec.SLO, 1)
				if s.placement != nil {
					s.placement.Release(j.spec.ID)
				}
			}
			// The restarted process replays its epoch from the last
			// boundary; the cache survives the crash (§6).
			j.rollbackEpoch()
		case faults.KindCacheRestore, faults.KindGPURestore, faults.KindIOLoss, faults.KindIORestore:
			// Capacity-only kinds: restored cache comes back empty (jobs
			// re-warm it) and GPU/IO changes land when the next round
			// re-solves against s.eff; no per-job state changes here.
		}
	}
}

// applyQuota sets a key's quota, evicting proportionally on shrink
// (random eviction keeps the cached set uniform, so every job's
// effective cache scales by the survival ratio).
func (s *fluidSim) applyQuota(key string, q unit.Bytes) {
	d, ok := s.datasets[key]
	if !ok {
		for _, j := range s.jobs {
			if j.dsKey == key {
				d = s.ds(j)
				break
			}
		}
		if d == nil {
			return
		}
	}
	if q.Changed(d.quota) {
		s.met.tl.RecordAt(float64(s.now), metrics.EventCacheAlloc, key, float64(q), "quota_bytes")
	}
	d.quota = q
	if d.cached > q {
		ratio := 0.0
		if d.cached > 0 {
			ratio = float64(q) / float64(d.cached)
		}
		d.cached = q
		for _, j := range s.jobs {
			if j.dsKey == key && !j.done {
				j.effCached = unit.Bytes(float64(j.effCached) * ratio)
			}
		}
	}
}

// jobRates computes each running job's data-loading hit ratio and
// end-to-end throughput under the current allocations. The returned
// slices are scratch, valid until the next call.
//
// silod:hotpath — runs on every simulator event; all buffers are
// sim-owned scratch grown via resize.
func (s *fluidSim) jobRates(running []*jobRT) (hits []float64, rates, grants []unit.Bandwidth) {
	if s.rateMemoOK && s.rateGen == s.lastRateGen && samePtrs(running, s.lastRateJobs) {
		// No rate-relevant input changed since the last computation
		// (reschedule, epoch warm-up and fault transitions all bump
		// rateGen) and the running set is the same jobs: the scratch
		// buffers still hold the exact answer — including the full Che
		// fixed point for LRU systems — so recomputing is a no-op.
		n := len(running)
		return s.hitsBuf[:n], s.ratesBuf[:n], s.grantsBuf[:n]
	}
	s.rateMemoOK = false
	hits = resize(&s.hitsBuf, len(running))
	rates = resize(&s.ratesBuf, len(running))
	if len(running) == 0 {
		return hits, rates, nil
	}
	if s.cfg.System.UsesLRU() {
		s.lruHits(running, hits)
	} else {
		for i, j := range running {
			hits[i] = 0
			if d := float64(j.spec.Dataset.Size); d > 0 {
				hits[i] = math.Min(float64(j.effCached)/d, 1)
			}
		}
	}
	grants = s.bandwidthGrants(running, hits)
	for i, j := range running {
		miss := 1 - hits[i]
		fstar := j.profile.IdealThroughput
		if miss <= 1e-12 {
			rates[i] = fstar
			continue
		}
		f := unit.Bandwidth(float64(grants[i]) / miss)
		if f > fstar {
			f = fstar
		}
		rates[i] = f
	}
	if !s.cfg.FullResolve {
		s.lastRateGen = s.rateGen
		s.lastRateJobs = append(s.lastRateJobs[:0], running...)
		s.rateMemoOK = true
	}
	return hits, rates, grants
}

// lruHits runs the Che fixed point: hit ratios depend on loading rates,
// which depend on bandwidth shares, which depend on hit ratios.
// First-epoch jobs on datasets nobody else shares cannot hit (each item
// is read at most once before the first epoch completes).
func (s *fluidSim) lruHits(running []*jobRT, hits []float64) {
	// The dataset layout — which jobs share a key, the sorted key order,
	// and each job's stream index — is invariant across the fixed-point
	// iterations AND across calls with the same running set (a job's
	// dsKey never changes), so it is rebuilt only when the running set
	// does. The cached layout is byte-identical to a rebuild: it is a
	// deterministic function of the jobs' dataset keys alone.
	if !samePtrs(running, s.layoutJobs) {
		users := s.usersBuf
		clear(users)
		for _, j := range running {
			users[j.dsKey]++
		}
		keys := s.lruKeys[:0]
		for k := range users {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s.lruKeys = keys
		idx := resize(&s.lruIdx, len(running))
		uc := resize(&s.lruUsers, len(running))
		for i, j := range running {
			idx[i] = sort.SearchStrings(keys, j.dsKey)
			uc[i] = users[j.dsKey]
		}
		s.layoutJobs = append(s.layoutJobs[:0], running...)
	}
	keys := s.lruKeys
	idx := s.lruIdx
	streams := resize(&s.streamsBuf, len(keys))
	rates := resize(&s.lruRates, len(running))
	prev := resize(&s.lruPrev, len(running))
	for i, j := range running {
		rates[i] = float64(j.profile.IdealThroughput)
	}
	for iter := 0; iter < 6; iter++ {
		copy(prev, rates)
		// Aggregate per-dataset streams at the current rate estimates.
		for i := range streams {
			streams[i] = cache.FluidStream{}
		}
		for i, j := range running {
			st := &streams[idx[i]]
			st.Size = j.spec.Dataset.Size
			st.Rate += unit.Bandwidth(rates[i])
		}
		// The previous converged τ warm-starts the Che bisection; in
		// full-resolve mode the hint stays 0 so the reference path runs
		// the cold computation. Either way the hits are byte-identical.
		hitByKey, tau := cache.CheLRUWarm(s.eff.Cache, streams, s.cheTau)
		if tau > 0 && !s.cfg.FullResolve {
			s.cheTau = tau
		}
		for i, j := range running {
			h := hitByKey[idx[i]]
			if s.lruUsers[i] == 1 && s.epochIdx[j.spec.ID] == 0 {
				h = 0
			}
			hits[i] = h
		}
		grants := s.bandwidthGrants(running, hits)
		for i, j := range running {
			miss := 1 - hits[i]
			f := float64(j.profile.IdealThroughput)
			if miss > 1e-12 {
				f = math.Min(f, float64(grants[i])/miss)
			}
			rates[i] = f
		}
		// Exact convergence: each iteration is a deterministic function
		// of the rate vector alone, so once an iteration reproduces its
		// own input bit-for-bit, every remaining iteration would rewrite
		// identical streams, hits, grants and rates. Stopping here
		// cannot change any output byte.
		converged := true
		for i := range rates {
			// Bit-pattern comparison, not float equality: the exit fires
			// only when the iteration reproduced its input exactly, which
			// is the one case where skipping the rest provably changes
			// nothing.
			if math.Float64bits(rates[i]) != math.Float64bits(prev[i]) {
				converged = false
				break
			}
		}
		if converged && !s.cfg.FullResolve {
			// Full-resolve mode keeps the historical 6-iteration loop so
			// the reference trajectory is the unoptimized one.
			break
		}
	}
}

// bandwidthGrants divides the remote IO capacity. Scheduler allocations
// are honored when present and IO control is enabled; the remainder (or
// everything, for uncontrolled systems) is divided max-min fairly over
// residual demands.
//
// silod:hotpath — called from jobRates and from every Che fixed-point
// iteration; reuses the sim's grant/demand scratch buffers.
func (s *fluidSim) bandwidthGrants(running []*jobRT, hits []float64) []unit.Bandwidth {
	grants := resize(&s.grantsBuf, len(running))
	demands := resize(&s.demandsBuf, len(running))
	var allocated float64
	anyAlloc := false
	for i, j := range running {
		grants[i] = 0
		demands[i] = float64(j.profile.IdealThroughput) * (1 - hits[i])
		if !s.cfg.DisableIOControl && j.remoteIO > 0 {
			grants[i] = j.remoteIO
			allocated += float64(j.remoteIO)
			anyAlloc = true
		}
	}
	capTotal := float64(s.eff.RemoteIO)
	if !anyAlloc || s.cfg.DisableIOControl {
		// Provider-controlled static fair share: equal egress split per
		// running job, capped at demand, with no redistribution of the
		// unused remainder — the throttle a cloud storage frontend
		// applies when nothing smarter manages remote IO (§2.1, §7.2).
		ds := resize(&s.demandBuf, len(running))
		for i, j := range running {
			ds[i] = remoteio.Demand{JobID: j.spec.ID, Want: unit.Bandwidth(demands[i])}
		}
		s.shareBuf = s.divider.EqualShareInto(s.shareBuf, s.eff.RemoteIO, ds)
		copy(grants, s.shareBuf)
		return grants
	}
	if s.cfg.DisableWorkConserving {
		return grants
	}
	// Work-conserving: unallocated (or unused) bandwidth is fair-shared
	// over jobs whose demand exceeds their grant.
	leftover := capTotal - allocated
	if leftover <= 0 {
		return grants
	}
	resid := s.residBuf[:0]
	residIdx := s.residIdx[:0]
	for i, j := range running {
		extra := demands[i] - float64(grants[i])
		if extra > 1e-9 {
			resid = append(resid, remoteio.Demand{JobID: j.spec.ID, Want: unit.Bandwidth(extra)})
			residIdx = append(residIdx, i)
		}
	}
	s.residBuf, s.residIdx = resid, residIdx
	if len(resid) == 0 {
		return grants
	}
	s.shareBuf = s.divider.FairShareInto(s.shareBuf, unit.Bandwidth(leftover), resid)
	for k, i := range residIdx {
		grants[i] += s.shareBuf[k]
	}
	return grants
}

// sample records the timeline metrics at the current time.
func (s *fluidSim) sample(running []*jobRT, hits []float64, rates, grants []unit.Bandwidth, force bool) {
	if !force && s.now.Sub(s.lastSample) < s.cfg.MetricsInterval {
		return
	}
	s.lastSample = s.now
	t := s.now.Minutes()
	var tput, ideal, rio float64
	for i, j := range running {
		tput += rates[i].MBpsValue()
		ideal += j.profile.IdealThroughput.MBpsValue()
		rio += rates[i].MBpsValue() * (1 - hits[i])
	}
	s.series["throughput"].Append(t, tput)
	s.series["ideal"].Append(t, ideal)
	s.series["remoteio"].Append(t, rio)
	s.met.utilization(running, rio, s.eff.RemoteIO)
	// The fairness objective (Eq. 8) is evaluated on realized
	// throughput: the performance jobs actually experience under the
	// current allocation, warm-up effects included — plans that flatter
	// cold caches earn no credit.
	_ = grants
	realized := s.realizedBuf
	clear(realized)
	for i, j := range running {
		realized[j.spec.ID] = rates[i]
	}
	s.series["fairness"].Append(t, fairnessRatio(s.eff, running, func(j *jobRT) unit.Bandwidth {
		return realized[j.spec.ID]
	}))
	var alloc, eff float64
	if !s.cfg.System.UsesLRU() {
		// Effective bytes per dataset: mean of its active jobs'
		// effective snapshots (cached but not-yet-effective blocks are
		// the gap, §6 / Figure 8).
		effSum := s.effSumBuf
		effCnt := s.effCntBuf
		clear(effSum)
		clear(effCnt)
		for _, j := range running {
			effSum[j.dsKey] += float64(j.effCached)
			effCnt[j.dsKey]++
		}
		// Sorted-key order: both sums land in recorded series, where a
		// map-order-dependent float total would break same-seed
		// byte-identity.
		keys := s.keysBuf[:0]
		for key := range s.datasets {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		s.keysBuf = keys
		for _, key := range keys {
			d := s.datasets[key]
			alloc += float64(d.quota)
			if n := effCnt[key]; n > 0 {
				eff += effSum[key] / float64(n)
			} else {
				eff += float64(d.cached)
			}
		}
	}
	s.series["cache_alloc"].Append(t, alloc/float64(unit.GB))
	s.series["cache_effective"].Append(t, eff/float64(unit.GB))
}

// loop is the main fluid integration loop.
func (s *fluidSim) loop() error {
	nextTick := s.now
	lastFinish := unit.Time(0)
	totalJobs := len(s.jobs)
	finished := 0
	for finished < totalJobs {
		if s.now.Elapsed() > s.cfg.MaxSimTime {
			return fmt.Errorf("sim: exceeded max simulated time %v with %d/%d jobs finished",
				s.cfg.MaxSimTime, finished, totalJobs)
		}
		// Decision point: land due faults, then (re)schedule against
		// whatever capacity survives.
		s.applyFaults()
		if err := s.reschedule(); err != nil {
			return err
		}
		s.events++
		// Determine the next decision point.
		nextTick = s.now.Add(s.cfg.ReschedInterval)
		horizon := nextTick
		if at, ok := s.inj.NextAt(); ok && at < horizon {
			horizon = at
		}
		if s.nextArrive < totalJobs {
			at := s.jobs[s.nextArrive].spec.Submit
			// Advance nextArrive past already-arrived jobs.
			for s.nextArrive < totalJobs && s.jobs[s.nextArrive].spec.Submit <= s.now {
				s.nextArrive++
			}
			if s.nextArrive < totalJobs {
				at = s.jobs[s.nextArrive].spec.Submit
				if at < horizon {
					horizon = at
				}
			}
		}
		// Integrate until the horizon, handling completions and epoch
		// boundaries as they occur.
		for s.now < horizon {
			running := s.runningJobs()
			hits, rates, grants := s.jobRates(running)
			s.sample(running, hits, rates, grants, false)
			if len(running) == 0 {
				s.now = horizon
				break
			}
			// Earliest internal event under constant rates.
			dt := float64(horizon.Sub(s.now))
			for i, j := range running {
				r := float64(rates[i])
				if r <= 0 {
					continue
				}
				if d := float64(j.remaining) / r; d < dt {
					dt = d
				}
				if !s.cfg.System.UsesLRU() {
					if d := float64(j.epochLeft) / r; d < dt {
						dt = d
					}
				} else if d := float64(j.epochLeft) / r; d < dt {
					// Epoch boundaries still advance the per-job epoch
					// counter used for LRU warm-up.
					dt = d
				}
			}
			if dt <= 0 {
				dt = 1e-6
			}
			// Hoard-style prefetch: idle egress fills funded datasets
			// with no running reader (their future jobs start warm).
			var prefetch []*dsRT
			var prefRate float64
			if s.cfg.EnablePrefetch && !s.cfg.System.UsesLRU() {
				var used float64
				for i, j := range running {
					used += float64(rates[i]) * (1 - hits[i])
					_ = j
				}
				leftover := float64(s.eff.RemoteIO) - used
				if leftover > 1e-6 {
					hasRunner := make(map[string]bool, len(running))
					for _, j := range running {
						hasRunner[j.dsKey] = true
					}
					for _, d := range s.datasets {
						limit := minBytes(d.quota, d.size)
						if !hasRunner[d.key] && d.cached < limit {
							prefetch = append(prefetch, d)
						}
					}
					if len(prefetch) > 0 {
						sort.Slice(prefetch, func(i, j int) bool { return prefetch[i].key < prefetch[j].key })
						prefRate = leftover / float64(len(prefetch))
					}
				}
			}
			// Advance.
			s.now = s.now.Add(unit.Duration(dt))
			for _, d := range prefetch {
				limit := minBytes(d.quota, d.size)
				fill := unit.Bytes(prefRate * dt)
				d.cached = minBytes(d.cached+fill, limit)
			}
			reschedNow := false
			for i, j := range running {
				adv := unit.Bytes(float64(rates[i]) * dt)
				if adv > j.remaining {
					adv = j.remaining
				}
				j.remaining -= adv
				j.attained += adv
				j.epochLeft -= adv
				hitB := float64(adv) * hits[i]
				s.met.addHitMiss(hitB, float64(adv)-hitB)
				if !s.cfg.System.UsesLRU() {
					// Misses admitted this step fill the cache toward
					// the quota continuously (effectiveness still waits
					// for the epoch boundary).
					d := s.ds(j)
					limit := minBytes(d.quota, j.spec.Dataset.Size)
					if d.cached < limit {
						fill := unit.Bytes(float64(adv) * (1 - hits[i]))
						d.cached = minBytes(d.cached+fill, limit)
					}
				}
				if j.remaining <= subByteResidue {
					j.remaining = 0
					j.done = true
					j.running = false
					j.finish = s.now
					finished++
					if s.now > lastFinish {
						lastFinish = s.now
					}
					st := JobStat{ID: j.spec.ID, Submit: j.spec.Submit, Start: j.start, Finish: j.finish}
					s.res.Jobs = append(s.res.Jobs, st)
					s.met.jobDone(s.now, st, j.spec.Tenant)
					if s.placement != nil {
						s.placement.Release(j.spec.ID)
					}
					s.maybeDropDataset(j)
					reschedNow = true
					continue
				}
				if j.epochLeft <= subByteResidue {
					// Epoch boundary: the pass filled the cache up to
					// quota, and everything cached is now effective.
					s.events++
					s.epochIdx[j.spec.ID]++
					s.met.tl.RecordAt(float64(s.now), metrics.EventEpoch, j.spec.ID,
						float64(s.epochIdx[j.spec.ID]), "epochs_completed")
					if !s.cfg.System.UsesLRU() {
						d := s.ds(j)
						fill := minBytes(d.quota, j.spec.Dataset.Size)
						if fill > d.cached {
							d.cached = fill
						}
						j.effCached = minBytes(d.cached, j.spec.Dataset.Size)
						// effCached is a hit-ratio input on the quota path.
						s.rateGen++
					} else if s.epochIdx[j.spec.ID] == 1 {
						// LRU warm-up: lruHits zeroes hits only while
						// epochIdx is 0, so crossing 0 -> 1 changes a rate
						// input; later boundaries change nothing it reads.
						s.rateGen++
					}
					j.epochLeft = minBytes(j.spec.Dataset.Size, j.remaining)
					j.epochSize = j.epochLeft
				}
			}
			if reschedNow {
				break // completions trigger an immediate scheduling round
			}
		}
	}
	// Final sample and makespan.
	s.inj.Finish(s.now)
	running := s.runningJobs()
	hits, rates, grants := s.jobRates(running)
	s.sample(running, hits, rates, grants, true)
	s.res.Makespan = lastFinish.Sub(0)
	sort.Slice(s.res.Jobs, func(i, j int) bool { return s.res.Jobs[i].ID < s.res.Jobs[j].ID })
	return nil
}

// maybeDropDataset frees the cache key when no unfinished job uses it.
func (s *fluidSim) maybeDropDataset(done *jobRT) {
	for _, j := range s.jobs {
		if !j.done && j.dsKey == done.dsKey {
			return
		}
	}
	delete(s.datasets, done.dsKey)
}
