package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// benchTrace is a mid-size cluster workload for engine benchmarks.
func benchTrace(b *testing.B) ([]workload.JobSpec, core.Cluster) {
	b.Helper()
	jobs, err := workload.Generate(workload.DefaultTraceConfig(11, 60, 4*unit.Hour))
	if err != nil {
		b.Fatal(err)
	}
	return jobs, core.Cluster{GPUs: 32, Cache: unit.TiB(8), RemoteIO: unit.MBpsOf(400)}
}

func BenchmarkFluidEngine(b *testing.B) {
	jobs, cl := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 11)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(Config{Cluster: cl, Policy: pol, System: policy.SiloD, Engine: Fluid, Seed: 11}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchEngine(b *testing.B) {
	jobs, cl := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 11)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(Config{Cluster: cl, Policy: pol, System: policy.SiloD, Engine: Batch, Seed: 11}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluidJobRates isolates the fluid engine's hottest path: the
// per-integration-step hit-ratio and throughput computation. The
// scratch buffers should keep its slice allocations at zero (the only
// remaining allocations are the bandwidth-division result maps).
func BenchmarkFluidJobRates(b *testing.B) {
	jobs, cl := benchTrace(b)
	if len(jobs) > 32 {
		jobs = jobs[:32]
	}
	s := &fluidSim{cfg: Config{Cluster: cl, System: policy.SiloD}, eff: cl}
	for _, spec := range jobs {
		j := newJobRT(spec, policy.SiloD)
		j.running = true
		j.gpus = spec.NumGPUs
		j.remoteIO = unit.MBpsOf(10)
		j.effCached = spec.Dataset.Size / 2
		s.jobs = append(s.jobs, j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		running := s.runningJobs()
		s.jobRates(running)
	}
}

func BenchmarkFluidEngineAlluxio(b *testing.B) {
	jobs, cl := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.Build(policy.FIFOKind, policy.Alluxio, 11)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(Config{Cluster: cl, Policy: pol, System: policy.Alluxio, Engine: Fluid, Seed: 11}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
