package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

// benchTrace is a mid-size cluster workload for engine benchmarks.
func benchTrace(b *testing.B) ([]workload.JobSpec, core.Cluster) {
	b.Helper()
	jobs, err := workload.Generate(workload.DefaultTraceConfig(11, 60, 4*unit.Hour))
	if err != nil {
		b.Fatal(err)
	}
	return jobs, core.Cluster{GPUs: 32, Cache: unit.TiB(8), RemoteIO: unit.MBpsOf(400)}
}

func BenchmarkFluidEngine(b *testing.B) {
	jobs, cl := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 11)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(Config{Cluster: cl, Policy: pol, System: policy.SiloD, Engine: Fluid, Seed: 11}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchEngine(b *testing.B) {
	jobs, cl := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 11)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(Config{Cluster: cl, Policy: pol, System: policy.SiloD, Engine: Batch, Seed: 11}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFluidEngineAlluxio(b *testing.B) {
	jobs, cl := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.Build(policy.FIFOKind, policy.Alluxio, 11)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(Config{Cluster: cl, Policy: pol, System: policy.Alluxio, Engine: Fluid, Seed: 11}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
