package sim

import "repro/internal/core"

// resize returns a length-n slice backed by *buf, reallocating only
// when the capacity is insufficient. Element contents are unspecified
// (they may hold stale data from a previous use), so callers must
// overwrite every element before reading. The result aliases *buf and
// is valid until the buffer's next resize.
func resize[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// viewsEqual reports element-wise equality of two job-view slices.
// core.JobView is comparable (all fields are value types), so == is a
// full deep comparison.
func viewsEqual(a, b []core.JobView) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// policyPure reports whether the policy declares, via
// core.PureAssigner, that identical inputs always produce an
// equivalent assignment — the precondition for the engines' solve-skip
// memo.
func policyPure(p core.Policy) bool {
	pa, ok := p.(core.PureAssigner)
	return ok && pa.PureAssign()
}
