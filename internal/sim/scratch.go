package sim

import "repro/internal/core"

// resize returns a length-n slice backed by *buf, reallocating only
// when the capacity is insufficient. Element contents are unspecified
// (they may hold stale data from a previous use), so callers must
// overwrite every element before reading. The result aliases *buf and
// is valid until the buffer's next resize.
func resize[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// samePtrs reports whether two pointer slices hold the same elements in
// the same order. Identity (not value) comparison is what the rate memo
// wants: runtime job state lives behind these pointers, and state
// changes are tracked separately via the rate generation counter.
func samePtrs[T any](a, b []*T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// policyPure reports whether the policy declares, via
// core.PureAssigner, that identical inputs always produce an
// equivalent assignment — the precondition for the engines' solve-skip
// memo.
func policyPure(p core.Policy) bool {
	pa, ok := p.(core.PureAssigner)
	return ok && pa.PureAssign()
}
