package remoteio

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/unit"
)

func TestLedgerMetrics(t *testing.T) {
	reg := metrics.NewRegistry("test")
	l := NewLedger(unit.MBpsOf(100))
	l.SetMetrics(NewLedgerMetrics(reg))

	if err := l.Set("job-a", unit.MBpsOf(40)); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("job-b", unit.MBpsOf(35)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("silod_remoteio_allocated_bytes_per_sec", nil); got != float64(unit.MBpsOf(75)) {
		t.Errorf("allocated = %v, want %v", got, float64(unit.MBpsOf(75)))
	}
	if got := snap.CounterValue("silod_remoteio_utilization_ratio", nil); got != 0.75 {
		t.Errorf("utilization = %v, want 0.75", got)
	}

	l.Remove("job-a")
	snap = reg.Snapshot()
	if got := snap.CounterValue("silod_remoteio_utilization_ratio", nil); got != 0.35 {
		t.Errorf("utilization after remove = %v, want 0.35", got)
	}
}

func TestBucketMetrics(t *testing.T) {
	reg := metrics.NewRegistry("test")
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewTokenBucket(unit.MBpsOf(10), 5*unit.MB, clock)
	b.SetMetrics(NewBucketMetrics(reg))

	if d := b.Reserve(4 * unit.MB); d != 0 {
		t.Errorf("first reserve waited %v", d)
	}
	if d := b.Reserve(4 * unit.MB); d <= 0 {
		t.Errorf("second reserve should throttle, waited %v", d)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("silod_remoteio_egress_bytes_total", nil); got != float64(8*unit.MB) {
		t.Errorf("egress = %v, want %v", got, float64(8*unit.MB))
	}
	if got := snap.CounterValue("silod_remoteio_throttle_events_total", nil); got != 1 {
		t.Errorf("throttles = %v, want 1", got)
	}
}
