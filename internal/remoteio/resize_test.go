package remoteio

import (
	"math"
	"testing"

	"repro/internal/unit"
)

// TestLedgerResizeToZero: a total egress outage scales every allocation
// to zero, reports each change, and rejects new positive allocations
// until capacity returns.
func TestLedgerResizeToZero(t *testing.T) {
	l := NewLedger(unit.MBpsOf(100))
	for _, j := range []string{"a", "b", "c"} {
		if err := l.Set(j, unit.MBpsOf(30)); err != nil {
			t.Fatal(err)
		}
	}
	changed := l.Resize(0)
	if len(changed) != 3 {
		t.Fatalf("changed %d jobs, want 3: %v", len(changed), changed)
	}
	for j, bw := range changed {
		if bw != 0 {
			t.Errorf("job %s scaled to %v, want 0", j, bw)
		}
	}
	if got := l.Allocated(); got != 0 {
		t.Errorf("Allocated = %v after resize to zero", got)
	}
	if err := l.Set("a", unit.MBpsOf(10)); err == nil {
		t.Error("positive allocation accepted against zero capacity")
	}
	// Negative capacities clamp to zero rather than going nonsensical.
	l.Resize(unit.Bandwidth(-5))
	if got := l.Capacity(); got != 0 {
		t.Errorf("negative resize left capacity %v", got)
	}
	// Restoration re-opens the ledger.
	l.Resize(unit.MBpsOf(50))
	if err := l.Set("a", unit.MBpsOf(50)); err != nil {
		t.Errorf("allocation rejected after capacity restore: %v", err)
	}
}

// TestLedgerResizeRoundingStrandsNothing: proportional scale-down with
// a non-terminating ratio (100 -> 100/3) must neither oversubscribe the
// new capacity nor strand bandwidth beyond float round-off.
func TestLedgerResizeRoundingStrandsNothing(t *testing.T) {
	l := NewLedger(unit.MBpsOf(100))
	shares := []unit.Bandwidth{unit.MBpsOf(7), unit.MBpsOf(31), unit.MBpsOf(62)}
	for i, bw := range shares {
		if err := l.Set(string(rune('a'+i)), bw); err != nil {
			t.Fatal(err)
		}
	}
	target := unit.Bandwidth(float64(unit.MBpsOf(100)) / 3)
	changed := l.Resize(target)
	if len(changed) != 3 {
		t.Fatalf("changed %d jobs, want 3", len(changed))
	}
	total := float64(l.Allocated())
	if total > float64(target)*(1+1e-9) {
		t.Errorf("scale-down oversubscribes: %v > %v", l.Allocated(), target)
	}
	if total < float64(target)*(1-1e-9) {
		t.Errorf("scale-down strands bandwidth: %v of %v allocated", l.Allocated(), target)
	}
	// Relative shares are preserved: 7:31:62.
	a, b := float64(l.Get("a")), float64(l.Get("b"))
	if r := b / a; math.Abs(r-31.0/7.0) > 1e-9 {
		t.Errorf("relative share drifted: b/a = %v, want %v", r, 31.0/7.0)
	}
}

// TestLedgerResizeAtExactCapacity: a ledger allocated to exactly its
// capacity resized to exactly that total is a no-op — nothing is
// rescaled and no change set is reported.
func TestLedgerResizeAtExactCapacity(t *testing.T) {
	l := NewLedger(unit.MBpsOf(100))
	if err := l.Set("a", unit.MBpsOf(40)); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("b", unit.MBpsOf(60)); err != nil {
		t.Fatal(err)
	}
	if changed := l.Resize(unit.MBpsOf(100)); changed != nil {
		t.Errorf("resize to exact total rescaled: %v", changed)
	}
	if got := l.Get("a"); got != unit.MBpsOf(40) {
		t.Errorf("allocation disturbed: %v", got)
	}
	// Growing is also change-free: existing grants keep their rates.
	if changed := l.Resize(unit.MBpsOf(200)); changed != nil {
		t.Errorf("grow rescaled: %v", changed)
	}
	if got := l.Allocated(); got != unit.MBpsOf(100) {
		t.Errorf("Allocated = %v after grow, want 100 MB/s", got)
	}
}
