package remoteio

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/unit"
)

func TestLedger(t *testing.T) {
	l := NewLedger(unit.MBpsOf(100))
	if err := l.Set("a", unit.MBpsOf(60)); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("b", unit.MBpsOf(40)); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("c", unit.MBpsOf(1)); err == nil {
		t.Error("oversubscription accepted")
	}
	// Re-setting a job replaces, not adds.
	if err := l.Set("a", unit.MBpsOf(10)); err != nil {
		t.Fatal(err)
	}
	if got := l.Allocated().MBpsValue(); math.Abs(got-50) > 1e-9 {
		t.Errorf("allocated = %v", got)
	}
	if got := l.Free().MBpsValue(); math.Abs(got-50) > 1e-9 {
		t.Errorf("free = %v", got)
	}
	if err := l.Set("a", -1); err == nil {
		t.Error("negative allocation accepted")
	}
	l.Remove("a")
	if l.Get("a") != 0 {
		t.Error("removed job still allocated")
	}
	jobs := l.Jobs()
	if len(jobs) != 1 || jobs[0] != "b" {
		t.Errorf("jobs = %v", jobs)
	}
}

func TestFairShareWaterFilling(t *testing.T) {
	out := FairShare(unit.MBpsOf(90), []Demand{
		{"small", unit.MBpsOf(10)},
		{"mid", unit.MBpsOf(40)},
		{"big", unit.MBpsOf(100)},
	})
	// small fully served; mid and big split the remaining 80.
	if out["small"].MBpsValue() != 10 {
		t.Errorf("small = %v", out["small"])
	}
	if out["mid"].MBpsValue() != 40 {
		t.Errorf("mid = %v", out["mid"])
	}
	if out["big"].MBpsValue() != 40 {
		t.Errorf("big = %v", out["big"])
	}
}

func TestFairShareProperties(t *testing.T) {
	f := func(cap16 uint16, raw []uint16) bool {
		capacity := unit.Bandwidth(float64(cap16%1000+1)) * unit.MBps
		demands := make([]Demand, 0, len(raw))
		var total float64
		for i, r := range raw {
			w := unit.Bandwidth(float64(r % 500))
			demands = append(demands, Demand{JobID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Want: w * unit.MBps})
			total += float64(w) * float64(unit.MBps)
		}
		out := FairShare(capacity, demands)
		var sum float64
		for _, d := range demands {
			g := float64(out[d.JobID])
			if g < 0 || g > float64(d.Want)+1e-6 {
				return false // never exceed demand
			}
			sum += g
		}
		// Work conservation: capacity or total demand exhausted.
		return sum <= float64(capacity)+1e-3 &&
			(math.Abs(sum-float64(capacity)) < 1 || math.Abs(sum-total) < 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEqualShare(t *testing.T) {
	out := EqualShare(unit.MBpsOf(90), []Demand{
		{"tiny", unit.MBpsOf(5)},
		{"big1", unit.MBpsOf(100)},
		{"big2", unit.MBpsOf(100)},
	})
	// Each share = 30; tiny capped at demand; the unused 25 idles.
	if out["tiny"].MBpsValue() != 5 {
		t.Errorf("tiny = %v", out["tiny"])
	}
	if out["big1"].MBpsValue() != 30 || out["big2"].MBpsValue() != 30 {
		t.Errorf("bigs = %v / %v", out["big1"], out["big2"])
	}
	var sum float64
	for _, v := range out {
		sum += v.MBpsValue()
	}
	if sum != 65 {
		t.Errorf("total %v: EqualShare must NOT redistribute the idle remainder", sum)
	}
}

func TestEdgeShares(t *testing.T) {
	if out := FairShare(0, []Demand{{"a", 1}}); out["a"] != 0 {
		t.Error("zero capacity")
	}
	if out := FairShare(unit.MBpsOf(10), nil); len(out) != 0 {
		t.Error("no demands")
	}
	out := FairShare(unit.MBpsOf(10), []Demand{{"a", -5}})
	if out["a"] != 0 {
		t.Error("negative demand should clamp to 0")
	}
}

// fakeClock is a manually advanced clock for token bucket tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestTokenBucketRate(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewTokenBucket(unit.MBpsOf(10), 10*unit.MB, clk.Now)
	// Burst covers the first 10MB.
	if w := b.Reserve(10 * unit.MB); w != 0 {
		t.Errorf("burst reserve waited %v", w)
	}
	// The next 10MB must wait ~1s at 10MB/s.
	w := b.Reserve(10 * unit.MB)
	if w < 900*time.Millisecond || w > 1100*time.Millisecond {
		t.Errorf("reserve wait %v, want ~1s", w)
	}
	// After advancing the clock, tokens refill.
	clk.Advance(2 * time.Second)
	if w := b.Reserve(5 * unit.MB); w != 0 {
		t.Errorf("post-refill reserve waited %v", w)
	}
}

func TestTokenBucketSetRate(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewTokenBucket(unit.MBpsOf(10), unit.MB, clk.Now)
	b.Reserve(unit.MB) // drain burst
	b.SetRate(unit.MBpsOf(100))
	if got := b.Rate(); got != unit.MBpsOf(100) {
		t.Errorf("rate = %v", got)
	}
	w := b.Reserve(10 * unit.MB)
	if w > 200*time.Millisecond {
		t.Errorf("wait %v at 100MB/s for 10MB, want ~100ms", w)
	}
}

func TestTokenBucketZeroRateBlocks(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewTokenBucket(0, unit.MB, clk.Now)
	b.Reserve(unit.MB) // burst
	if w := b.Reserve(unit.MB); w < time.Hour {
		t.Errorf("zero-rate bucket waited only %v", w)
	}
}

// TestTokenBucketLongRunRate checks the reservation model achieves the
// configured long-run rate regardless of request sizes.
func TestTokenBucketLongRunRate(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewTokenBucket(unit.MBpsOf(50), unit.MB, clk.Now)
	var total unit.Bytes
	for i := 0; i < 100; i++ {
		n := unit.Bytes(i%7+1) * unit.MB
		w := b.Reserve(n)
		clk.Advance(w)
		total += n
	}
	elapsed := clk.now.Sub(time.Unix(0, 0)).Seconds()
	rate := float64(total) / elapsed / float64(unit.MB)
	if rate < 45 || rate > 56 {
		t.Errorf("long-run rate %.1f MB/s, want ~50", rate)
	}
}
