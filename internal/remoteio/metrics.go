package remoteio

import "repro/internal/metrics"

// LedgerMetrics exposes the allocation state of a Ledger: how much of
// the egress capacity the scheduler has handed out. The zero value
// no-ops, so an uninstrumented ledger pays nothing.
type LedgerMetrics struct {
	Allocated   *metrics.Gauge // silod_remoteio_allocated_bytes_per_sec
	Utilization *metrics.Gauge // silod_remoteio_utilization_ratio (allocated/capacity)
}

// NewLedgerMetrics interns the ledger gauges in r.
func NewLedgerMetrics(r *metrics.Registry) LedgerMetrics {
	return LedgerMetrics{
		Allocated:   r.Gauge("silod_remoteio_allocated_bytes_per_sec"),
		Utilization: r.Gauge("silod_remoteio_utilization_ratio"),
	}
}

// SetMetrics attaches instrumentation and publishes the current state.
func (l *Ledger) SetMetrics(m LedgerMetrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = m
	l.publishLocked()
}

// publishLocked refreshes the ledger gauges from the current
// allocations; the caller holds l.mu.
func (l *Ledger) publishLocked() {
	alloc := l.allocatedLocked()
	l.met.Allocated.Set(float64(alloc))
	if l.capacity > 0 {
		l.met.Utilization.Set(float64(alloc) / float64(l.capacity))
	}
}

// BucketMetrics counts the traffic a TokenBucket admits and how often
// it has to delay a caller. Buckets for many jobs typically share one
// handle set, aggregating cluster-wide egress.
type BucketMetrics struct {
	Egress    *metrics.Counter // silod_remoteio_egress_bytes_total
	Throttles *metrics.Counter // silod_remoteio_throttle_events_total
}

// NewBucketMetrics interns the token-bucket counters in r.
func NewBucketMetrics(r *metrics.Registry) BucketMetrics {
	return BucketMetrics{
		Egress:    r.Counter("silod_remoteio_egress_bytes_total"),
		Throttles: r.Counter("silod_remoteio_throttle_events_total"),
	}
}

// SetMetrics attaches instrumentation to the bucket.
func (b *TokenBucket) SetMetrics(m BucketMetrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.met = m
}
