// Package remoteio manages the remote IO bandwidth between the GPU
// cluster and cloud storage: an allocation ledger the scheduler writes
// (Table 3: allocateRemoteIO), a demand-based max-min fair divider used
// when remote IO is left uncontrolled (§7.2 ablation), and a
// token-bucket throttle used by the real-time testbed to enforce
// per-job rates.
package remoteio

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/unit"
)

// Ledger tracks per-job remote IO allocations against the cluster's
// egress capacity. Allocations are advisory targets the data plane
// enforces; the ledger validates they never oversubscribe capacity.
// All methods are safe for concurrent use.
type Ledger struct {
	mu       sync.Mutex
	capacity unit.Bandwidth            // guarded by mu (degrades on egress faults)
	alloc    map[string]unit.Bandwidth // guarded by mu
	met      LedgerMetrics             // guarded by mu
}

// NewLedger returns an empty ledger with the given egress capacity.
func NewLedger(capacity unit.Bandwidth) *Ledger {
	return &Ledger{capacity: capacity, alloc: make(map[string]unit.Bandwidth)}
}

// Capacity reports the total egress capacity.
func (l *Ledger) Capacity() unit.Bandwidth {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.capacity
}

// Resize changes the egress capacity — a link degradation or
// restoration. If existing allocations oversubscribe the new capacity
// they are scaled down proportionally (every job keeps its relative
// share of the shrunken link). The returned map holds the new rate of
// every job whose allocation changed, so callers can re-throttle the
// matching token buckets.
func (l *Ledger) Resize(capacity unit.Bandwidth) map[string]unit.Bandwidth {
	if capacity < 0 {
		capacity = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.capacity = capacity
	total := l.allocatedLocked()
	if float64(total) <= float64(capacity) {
		return nil
	}
	ratio := 0.0
	if total > 0 {
		ratio = float64(capacity) / float64(total)
	}
	changed := make(map[string]unit.Bandwidth, len(l.alloc))
	for id, bw := range l.alloc {
		nbw := unit.Bandwidth(float64(bw) * ratio)
		l.alloc[id] = nbw
		changed[id] = nbw
	}
	l.publishLocked()
	return changed
}

// Set assigns bw to jobID. An over-subscribing assignment is rejected
// so scheduler bugs surface immediately instead of as silent slowdowns.
// A tiny tolerance absorbs floating-point round-off from solvers.
func (l *Ledger) Set(jobID string, bw unit.Bandwidth) error {
	if bw < 0 {
		return fmt.Errorf("remoteio: negative allocation %v for %s", bw, jobID)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	const tol = 1e-6
	newTotal := l.allocatedLocked() - l.alloc[jobID] + bw
	if float64(newTotal) > float64(l.capacity)*(1+tol)+1 {
		return fmt.Errorf("remoteio: allocating %v to %s oversubscribes capacity %v (already %v)",
			bw, jobID, l.capacity, l.allocatedLocked()-l.alloc[jobID])
	}
	l.alloc[jobID] = bw
	l.publishLocked()
	return nil
}

// Get reports jobID's allocation (0 if none).
func (l *Ledger) Get(jobID string) unit.Bandwidth {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.alloc[jobID]
}

// Remove forgets jobID's allocation.
func (l *Ledger) Remove(jobID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.alloc, jobID)
	l.publishLocked()
}

// Allocated reports the sum of all allocations.
func (l *Ledger) Allocated() unit.Bandwidth {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.allocatedLocked()
}

func (l *Ledger) allocatedLocked() unit.Bandwidth {
	// Sorted-key sum keeps the float total identical across processes
	// (map iteration order is randomized; float addition is not
	// associative).
	ids := make([]string, 0, len(l.alloc))
	for id := range l.alloc {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var s unit.Bandwidth
	for _, id := range ids {
		s += l.alloc[id]
	}
	return s
}

// Free reports the unallocated capacity (never negative).
func (l *Ledger) Free() unit.Bandwidth {
	l.mu.Lock()
	defer l.mu.Unlock()
	f := l.capacity - l.allocatedLocked()
	if f < 0 {
		return 0
	}
	return f
}

// Jobs returns the jobs with allocations, sorted for determinism.
func (l *Ledger) Jobs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.alloc))
	for id := range l.alloc {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Demand is one job's remote IO demand for fair division.
type Demand struct {
	JobID string
	Want  unit.Bandwidth
}

// FairShare divides capacity across demands by progressive filling
// (max-min fairness): every job receives min(want, fair level), and
// capacity freed by small demands is redistributed. This models the
// provider-controlled remote IO of the §7.2 ablation ("a simple fair
// share algorithm for remote IO").
func FairShare(capacity unit.Bandwidth, demands []Demand) map[string]unit.Bandwidth {
	out := make(map[string]unit.Bandwidth, len(demands))
	var d Divider
	grants := d.FairShareInto(nil, capacity, demands)
	for i, dm := range demands {
		out[dm.JobID] = grants[i]
	}
	return out
}

// Divider computes the same divisions as FairShare/EqualShare into
// index-aligned slices, recycling its sort scratch across calls — for
// callers (the sim engines' Che fixed point) that divide bandwidth
// thousands of times per run. Grants are byte-identical to the map
// variants': the progressive filling visits demands in the same
// (want, then JobID) order via an index permutation, which is unique
// because job IDs are.
type Divider struct {
	idx   []int
	wants []float64
}

// FairShareInto returns FairShare's grants with grants[i] belonging to
// demands[i]. The result aliases out's backing array when capacity
// allows and is valid until the next call.
//
// silod:pure
func (dv *Divider) FairShareInto(out []unit.Bandwidth, capacity unit.Bandwidth, demands []Demand) []unit.Bandwidth {
	out = out[:0]
	for range demands {
		out = append(out, 0)
	}
	if capacity <= 0 || len(demands) == 0 {
		return out
	}
	idx := dv.idx[:0]
	wants := dv.wants[:0]
	for i, d := range demands {
		w := float64(d.Want)
		if w < 0 {
			w = 0
		}
		idx = append(idx, i)
		wants = append(wants, w)
	}
	dv.idx, dv.wants = idx, wants
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := wants[idx[a]], wants[idx[b]]
		if wa != wb {
			return wa < wb
		}
		return demands[idx[a]].JobID < demands[idx[b]].JobID
	})
	remaining := float64(capacity)
	left := len(idx)
	for _, i := range idx {
		level := remaining / float64(left)
		grant := wants[i]
		if grant > level {
			grant = level
		}
		out[i] = unit.Bandwidth(grant)
		remaining -= grant
		left--
	}
	return out
}

// EqualShareInto returns EqualShare's grants with grants[i] belonging
// to demands[i]. The result aliases out's backing array when capacity
// allows and is valid until the next call.
//
// silod:pure
func (dv *Divider) EqualShareInto(out []unit.Bandwidth, capacity unit.Bandwidth, demands []Demand) []unit.Bandwidth {
	out = out[:0]
	if len(demands) == 0 {
		return out
	}
	share := float64(capacity) / float64(len(demands))
	for _, d := range demands {
		w := float64(d.Want)
		if w < 0 {
			w = 0
		}
		if w > share {
			w = share
		}
		out = append(out, unit.Bandwidth(w))
	}
	return out
}

// EqualShare models the provider-side egress throttle that applies when
// no scheduler controls remote IO (§2.1, §7.2): every running job gets
// an equal static share of the egress capacity, capped at its demand.
// Unlike FairShare there is no redistribution — a cached job's unused
// share idles, which is exactly the inefficiency SiloD's remote IO
// management removes.
func EqualShare(capacity unit.Bandwidth, demands []Demand) map[string]unit.Bandwidth {
	out := make(map[string]unit.Bandwidth, len(demands))
	if len(demands) == 0 {
		return out
	}
	share := float64(capacity) / float64(len(demands))
	for _, d := range demands {
		w := float64(d.Want)
		if w < 0 {
			w = 0
		}
		if w > share {
			w = share
		}
		out[d.JobID] = unit.Bandwidth(w)
	}
	return out
}

// TokenBucket is a thread-safe rate limiter used by the testbed's FUSE
// client stand-ins to throttle remote fetches to the scheduler-assigned
// rate. It is driven by real wall-clock time scaled by the testbed.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64   // guarded by mu (tokens/bytes per second)
	burst  float64   // immutable after construction (bucket depth in bytes)
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu
	clock  func() time.Time
	met    BucketMetrics // guarded by mu
}

// NewTokenBucket returns a bucket refilling at rate bytes/sec with the
// given burst. A nil clock uses time.Now.
func NewTokenBucket(rate unit.Bandwidth, burst unit.Bytes, clock func() time.Time) *TokenBucket {
	if clock == nil {
		clock = time.Now
	}
	b := &TokenBucket{
		rate:  float64(rate),
		burst: float64(burst),
		clock: clock,
	}
	b.tokens = b.burst
	b.last = clock()
	return b
}

// SetRate changes the refill rate, e.g. after a reallocation.
func (b *TokenBucket) SetRate(rate unit.Bandwidth) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.rate = float64(rate)
}

// Rate reports the current refill rate.
func (b *TokenBucket) Rate() unit.Bandwidth {
	b.mu.Lock()
	defer b.mu.Unlock()
	return unit.Bandwidth(b.rate)
}

func (b *TokenBucket) refillLocked() {
	now := b.clock()
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Reserve consumes n bytes of budget and returns how long the caller
// must wait before proceeding so the long-run rate holds. The bucket is
// allowed to go negative (a reservation model), which keeps large
// requests exact without chunking.
func (b *TokenBucket) Reserve(n unit.Bytes) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.tokens -= float64(n)
	b.met.Egress.Add(int64(n))
	if b.tokens >= 0 {
		return 0
	}
	b.met.Throttles.Inc()
	if b.rate <= 0 {
		// No refill: effectively blocked forever; return a large wait so
		// callers can time out meaningfully.
		return time.Hour * 24 * 365
	}
	deficit := -b.tokens
	return time.Duration(deficit / b.rate * float64(time.Second))
}

// Wait reserves n bytes and sleeps out the required delay.
func (b *TokenBucket) Wait(n unit.Bytes) {
	if d := b.Reserve(n); d > 0 {
		time.Sleep(d)
	}
}
