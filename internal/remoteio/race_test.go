package remoteio

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/unit"
)

// TestLedgerConcurrentGrantRelease drives a Ledger the way the data
// manager does under the testbed: concurrent grants (Set), releases
// (Remove), and capacity queries from per-job goroutines. Run under
// -race (make verify); each worker's end state is fixed, so the final
// allocation is deterministic regardless of interleaving.
func TestLedgerConcurrentGrantRelease(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
		share   = 10 * unit.MBps
	)
	l := NewLedger(unit.Bandwidth(workers) * share)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("job%d", w)
			for i := 0; i < rounds; i++ {
				if err := l.Set(id, share); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
				_ = l.Get(id)
				_ = l.Free()
				if i%3 == 0 {
					l.Remove(id)
				}
			}
			// Converge: even workers hold a share, odd workers release.
			if w%2 == 0 {
				if err := l.Set(id, share); err != nil {
					t.Errorf("%s: %v", id, err)
				}
			} else {
				l.Remove(id)
			}
		}(w)
	}
	wg.Wait()

	wantJobs := workers / 2
	if jobs := l.Jobs(); len(jobs) != wantJobs {
		t.Errorf("jobs = %v, want %d holders", jobs, wantJobs)
	}
	if got, want := l.Allocated(), unit.Bandwidth(wantJobs)*share; got != want {
		t.Errorf("allocated = %v, want %v", got, want)
	}
	if got, want := l.Free(), l.Capacity()-unit.Bandwidth(wantJobs)*share; got != want {
		t.Errorf("free = %v, want %v", got, want)
	}
}

// TestTokenBucketConcurrentReserve hits one bucket from concurrent
// readers under a frozen fake clock: with no time passing there is no
// refill, so the final deficit is exactly the reserved volume minus
// the burst, independent of interleaving.
func TestTokenBucketConcurrentReserve(t *testing.T) {
	const (
		workers  = 8
		reserves = 100
		block    = unit.MB
	)
	t0 := time.Unix(1700000000, 0)
	clock := func() time.Time { return t0 } // frozen: deterministic refill (none)
	b := NewTokenBucket(100*unit.MBps, unit.Bytes(workers*reserves)*block/2, clock)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reserves; i++ {
				_ = b.Reserve(block)
				if i%20 == 0 {
					b.SetRate(100 * unit.MBps)
					_ = b.Rate()
				}
			}
		}()
	}
	wg.Wait()

	// Half the volume was burst; the rest is deficit the next caller
	// must wait out: deficit / rate seconds.
	deficit := unit.Bytes(workers*reserves) * block / 2
	wantWait := time.Duration(float64(deficit) / float64(100*unit.MBps) * float64(time.Second))
	got := b.Reserve(0)
	if diff := got - wantWait; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("post-storm wait = %v, want %v", got, wantWait)
	}
}
