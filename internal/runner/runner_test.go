package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/simrng"
)

func TestMapMatchesSequential(t *testing.T) {
	// Each arm's output depends on its seed and index only, so the
	// parallel result slice must match the sequential one exactly.
	arm := func(a Arm) (string, error) {
		g := simrng.New(a.Seed)
		return fmt.Sprintf("%d:%d:%.6f", a.Index, a.Seed, g.Float64()), nil
	}
	const n = 64
	seq, err := Map(Options{Seed: 7, Sequential: true}, n, arm)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(Options{Seed: 7, Workers: 8}, n, arm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}

func TestMapSeedsAreDerivedNotShared(t *testing.T) {
	seen := make(map[int64]int)
	_, err := Map(Options{Seed: 42, Sequential: true}, 32, func(a Arm) (int64, error) {
		want := simrng.ArmSeed(42, a.Index)
		if a.Seed != want {
			t.Errorf("arm %d: seed %d, want %d", a.Index, a.Seed, want)
		}
		seen[a.Seed]++
		return a.Seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for s, c := range seen {
		if c > 1 {
			t.Errorf("seed %d assigned to %d arms", s, c)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := Map(Options{Seed: 1, Workers: 4}, 16, func(a Arm) (int, error) {
		switch a.Index {
		case 3:
			return 0, errLow
		case 11:
			return 0, errHigh
		}
		return a.Index, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("got %v, want lowest-indexed error %v", err, errLow)
	}
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	var calls int
	boom := errors.New("boom")
	_, err := Map(Options{Sequential: true}, 10, func(a Arm) (int, error) {
		calls++
		if a.Index == 2 {
			return 0, boom
		}
		return a.Index, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if calls != 3 {
		t.Fatalf("sequential ran %d arms after the failure, want stop at 3", calls)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in arm did not propagate")
		}
	}()
	Map(Options{Workers: 4}, 8, func(a Arm) (int, error) {
		if a.Index == 5 {
			panic("arm exploded")
		}
		return a.Index, nil
	})
}

func TestWorkersBounded(t *testing.T) {
	var inFlight, highWater atomic.Int64
	_, err := Map(Options{Workers: 3}, 48, func(a Arm) (int, error) {
		cur := inFlight.Add(1)
		for {
			hw := highWater.Load()
			if cur <= hw || highWater.CompareAndSwap(hw, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return a.Index * a.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hw := highWater.Load(); hw > 3 {
		t.Fatalf("observed %d concurrent arms, want <= 3 workers", hw)
	}
}

func TestForEach(t *testing.T) {
	var done atomic.Int64
	if err := ForEach(Options{Seed: 9, Workers: 4}, 32, func(a Arm) error {
		done.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 32 {
		t.Fatalf("ran %d arms, want 32", done.Load())
	}
}

// TestPoolStress hammers the pool under the race detector (make perf /
// make chaos run this package with -race): many rounds of fan-out with
// shared read-only input, per-slot writes, and occasional errors.
func TestPoolStress(t *testing.T) {
	shared := make([]int64, 128)
	for i := range shared {
		shared[i] = int64(i * 31)
	}
	for round := 0; round < 25; round++ {
		res, err := Map(Options{Seed: int64(round), Workers: 8}, len(shared), func(a Arm) (int64, error) {
			g := simrng.New(a.Seed)
			return shared[a.Index] + g.Int63()%1000, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Map(Options{Seed: int64(round), Sequential: true}, len(shared), func(a Arm) (int64, error) {
			g := simrng.New(a.Seed)
			return shared[a.Index] + g.Int63()%1000, nil
		})
		for i := range res {
			if res[i] != want[i] {
				t.Fatalf("round %d slot %d: %d != %d", round, i, res[i], want[i])
			}
		}
	}
}

func TestArmSeedProperties(t *testing.T) {
	// Distinct (root, index) pairs must give distinct, non-negative
	// seeds, and the mapping must be reproducible.
	seen := make(map[int64]string)
	for root := int64(0); root < 8; root++ {
		for i := 0; i < 64; i++ {
			s := simrng.ArmSeed(root, i)
			if s < 0 {
				t.Fatalf("ArmSeed(%d,%d) = %d is negative", root, i, s)
			}
			if s != simrng.ArmSeed(root, i) {
				t.Fatalf("ArmSeed(%d,%d) not reproducible", root, i)
			}
			key := fmt.Sprintf("%d/%d", root, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
