// Package runner executes independent experiment arms across a bounded
// worker pool without giving up the repository's same-seed →
// byte-identical guarantee.
//
// Determinism design: parallel execution can only reorder *work*, never
// *results*. Three invariants make that true:
//
//  1. Seeds are pre-derived. Every arm's seed is computed up front from
//     (Options.Seed, arm index) via simrng.ArmSeed — a pure function —
//     so no arm's randomness depends on scheduling order or worker
//     count.
//  2. Results land in pre-indexed slots. Arm i writes results[i] and
//     nothing else; after the pool drains, the slice reads exactly as
//     if the arms had run in index order.
//  3. Errors resolve to the lowest index. A sequential loop stops at
//     the first failing arm; the pool runs arms out of order, so it
//     collects per-slot errors and reports the lowest-indexed one,
//     matching the error a sequential run would have surfaced.
//
// Arms must be self-contained: they may share read-only inputs (job
// specs, cluster descriptions) but must not mutate shared state. The
// simulator already satisfies this — sim.Run copies its spec slice and
// every arm builds its own policy, metrics, and RNGs from its seed.
package runner

import (
	"runtime"
	"sync"

	"repro/internal/simrng"
)

// Options configure a pool run.
type Options struct {
	// Seed is the root seed that arm seeds are derived from.
	Seed int64
	// Workers bounds the pool size; 0 means GOMAXPROCS.
	Workers int
	// Sequential disables the pool entirely: arms run inline, in index
	// order, on the calling goroutine. This is the debugging opt-out
	// (silodsim -parallel=1) and the reference order that parallel runs
	// are tested byte-identical against.
	Sequential bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Arm identifies one unit of work handed to the arm function.
type Arm struct {
	// Index is the arm's position in [0, n); results[Index] receives
	// its return value.
	Index int
	// Seed is the arm's private seed, derived from (root seed, Index).
	// Arms that need their own randomness must use it (or a
	// simrng.New(Seed).Split(...) child) rather than sharing an RNG.
	Seed int64
}

// Map runs n arms through the pool and returns their results in arm
// order. The result slice is byte-for-byte identical to a Sequential
// run with the same Options.Seed; on error it returns the
// lowest-indexed arm error. Panics in arm functions propagate to the
// caller.
func Map[T any](o Options, n int, run func(Arm) (T, error)) ([]T, error) {
	if n < 0 {
		panic("runner: negative arm count")
	}
	results := make([]T, n)
	if o.Sequential || n <= 1 || o.workers() == 1 {
		for i := 0; i < n; i++ {
			r, err := run(Arm{Index: i, Seed: simrng.ArmSeed(o.Seed, i)})
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	w := o.workers()
	if w > n {
		w = n
	}
	errs := make([]error, n)
	panics := make([]any, w)
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Workers exit when idx closes; a panicking arm is recorded
			// and re-raised on the caller after the pool drains so no
			// goroutine leaks and no panic crosses a goroutine boundary.
			defer func() {
				if r := recover(); r != nil {
					panics[worker] = r
					for range idx { // drain so the feeder never blocks
					}
				}
			}()
			for i := range idx {
				r, err := run(Arm{Index: i, Seed: simrng.ArmSeed(o.Seed, i)})
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = r
			}
		}(k)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ForEach is Map for arms that produce no value.
func ForEach(o Options, n int, run func(Arm) error) error {
	_, err := Map(o, n, func(a Arm) (struct{}, error) {
		return struct{}{}, run(a)
	})
	return err
}
