package admission

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simrng"
	"repro/internal/tenant"
)

func mustQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := New(cfg, metrics.NewRegistry("test"), simrng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestConfigDefaults(t *testing.T) {
	q := mustQueue(t, Config{Capacity: 40})
	hw, sw, cap := q.Watermarks()
	if hw != 20 || sw != 30 || cap != 40 {
		t.Errorf("defaults = (%d, %d, %d), want (20, 30, 40)", hw, sw, cap)
	}
	for _, bad := range []Config{
		{},
		{Capacity: -1},
		{Capacity: 10, HighWater: 20},
		{Capacity: 10, HighWater: 8, StandardWater: 4},
	} {
		if _, err := New(bad, nil, nil); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

// TestShedPolicyTable walks the depth axis and checks each tier's shed
// threshold: sheddable at high-water, standard at the standard
// watermark, critical only when hard-full.
func TestShedPolicyTable(t *testing.T) {
	q := mustQueue(t, Config{Capacity: 8, HighWater: 2, StandardWater: 4})
	fill := func(n int) {
		t.Helper()
		for q.Depth() < n {
			if err := q.Offer(tenant.Critical, "fill"); err != nil {
				t.Fatalf("fill to %d: %v", n, err)
			}
		}
	}
	sheds := func(c tenant.SLOClass) bool {
		t.Helper()
		err := q.Offer(c, "probe")
		if err == nil {
			return false // caller resets depth before the next probe
		}
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("shed error has wrong type: %v", err)
		}
		if oe.RetryAfter <= 0 {
			t.Errorf("shed at depth %d carries no Retry-After hint", oe.Depth)
		}
		return true
	}
	cases := []struct {
		depth                         int
		critical, standard, sheddable bool // expect shed?
	}{
		{0, false, false, false},
		{1, false, false, false},
		{2, false, false, true},
		{3, false, false, true},
		{4, false, true, true},
		{7, false, true, true},
		{8, true, true, true},
	}
	for _, c := range cases {
		// Reset to exactly c.depth between probes.
		q.Drain(0)
		fill(c.depth)
		for _, tier := range []struct {
			class tenant.SLOClass
			want  bool
		}{
			{tenant.Critical, c.critical},
			{tenant.Standard, c.standard},
			{tenant.Sheddable, c.sheddable},
		} {
			q.Drain(0)
			fill(c.depth)
			if got := sheds(tier.class); got != tier.want {
				t.Errorf("depth %d, %s: shed = %v, want %v", c.depth, tier.class, got, tier.want)
			}
		}
	}
}

func TestStateTransitions(t *testing.T) {
	q := mustQueue(t, Config{Capacity: 4, HighWater: 2, StandardWater: 3})
	if q.State() != StateOpen {
		t.Errorf("empty queue state = %v, want open", q.State())
	}
	for i := 0; i < 2; i++ {
		if err := q.Offer(tenant.Critical, i); err != nil {
			t.Fatal(err)
		}
	}
	if q.State() != StatePressure {
		t.Errorf("at high-water state = %v, want pressure", q.State())
	}
	for i := 0; i < 2; i++ {
		if err := q.Offer(tenant.Critical, i); err != nil {
			t.Fatal(err)
		}
	}
	if q.State() != StateFull {
		t.Errorf("at capacity state = %v, want full", q.State())
	}
	if err := q.Offer(tenant.Critical, "x"); err == nil {
		t.Error("hard-full queue accepted a critical submission")
	}
	q.Drain(0)
	if q.State() != StateOpen || q.Depth() != 0 {
		t.Errorf("drained queue state = %v depth %d, want open 0", q.State(), q.Depth())
	}
	for _, s := range []State{StateOpen, StatePressure, StateFull, State(99)} {
		if s.String() == "" {
			t.Errorf("State(%d) has empty String", int(s))
		}
	}
}

// TestDrainOrderSLORankThenFIFO: the backlog drains critical first,
// FIFO within a class, regardless of arrival interleaving.
func TestDrainOrderSLORankThenFIFO(t *testing.T) {
	q := mustQueue(t, Config{Capacity: 100})
	offers := []struct {
		class tenant.SLOClass
		id    string
	}{
		{tenant.Sheddable, "s1"}, {tenant.Critical, "c1"}, {tenant.Standard, "n1"},
		{tenant.Critical, "c2"}, {tenant.Sheddable, "s2"}, {tenant.Standard, "n2"},
	}
	for _, o := range offers {
		if err := q.Offer(o.class, o.id); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	// Batched drain preserves the global order across calls.
	for _, p := range q.Drain(4) {
		got = append(got, p.(string))
	}
	for _, p := range q.Drain(0) {
		got = append(got, p.(string))
	}
	want := []string{"c1", "c2", "n1", "n2", "s1", "s2"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", got, want)
		}
	}
	if q.Depth() != 0 {
		t.Errorf("depth after full drain = %d", q.Depth())
	}
}

// TestRetryAfterDeterministicAndDepthScaled: same seed, same hints;
// deeper queues hand out longer hints (before jitter, monotone in
// expectation — asserted via the jitter bounds).
func TestRetryAfterDeterministicAndDepthScaled(t *testing.T) {
	hints := func(seed int64) []time.Duration {
		q, err := New(Config{Capacity: 10, HighWater: 1, RetryAfter: time.Second},
			nil, simrng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		var out []time.Duration
		if err := q.Offer(tenant.Critical, "x"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			err := q.Offer(tenant.Sheddable, i)
			var oe *OverloadError
			if !errors.As(err, &oe) {
				t.Fatalf("offer %d: %v", i, err)
			}
			out = append(out, oe.RetryAfter)
			// Refill so depth grows: every other offer is critical.
			if err := q.Offer(tenant.Critical, i); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	a, b := hints(7), hints(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hint %d not deterministic: %v != %v", i, a[i], b[i])
		}
	}
	// Jitter is bounded by ±25% of the depth-scaled base.
	q := mustQueue(t, Config{Capacity: 10, HighWater: 1, RetryAfter: time.Second})
	if err := q.Offer(tenant.Critical, "x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		err := q.Offer(tenant.Sheddable, i)
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatal(err)
		}
		base := float64(time.Second) * (1 + float64(oe.Depth)/10)
		if f := float64(oe.RetryAfter); f < 0.74*base || f > 1.26*base {
			t.Fatalf("hint %v outside jitter envelope of base %v", oe.RetryAfter, time.Duration(base))
		}
	}
}

func TestMetricsShape(t *testing.T) {
	reg := metrics.NewRegistry("adm")
	q, err := New(Config{Capacity: 2, HighWater: 1, StandardWater: 1}, reg, simrng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Offer(tenant.Standard, "a"); err != nil {
		t.Fatal(err)
	}
	if err := q.Offer(tenant.Sheddable, "b"); err == nil {
		t.Error("sheddable offer at high-water accepted")
	}
	q.Drain(0)
	snap := reg.Snapshot()
	checks := map[string]float64{
		"silod_admission_drained_total": 1,
	}
	for name, want := range checks {
		if got := snap.CounterValue(name, nil); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := snap.CounterValue("silod_admission_enqueued_total", map[string]string{"slo": "standard"}); got != 1 {
		t.Errorf("enqueued{standard} = %v, want 1", got)
	}
	if got := snap.CounterValue("silod_admission_shed_total", map[string]string{"slo": "sheddable"}); got != 1 {
		t.Errorf("shed{sheddable} = %v, want 1", got)
	}
	// Eager interning: the critical series exists at zero.
	if _, ok := snap.Get("silod_admission_shed_total", map[string]string{"slo": "critical"}); !ok {
		t.Error("shed{critical} series not interned eagerly")
	}
	if v, ok := snap.Get("silod_admission_depth", nil); !ok || *v.Value != 0 {
		t.Errorf("depth gauge = %+v, want 0", v)
	}
}

// TestConcurrentOfferDrain is the -race workout: producers across all
// tiers against a draining consumer, with conservation checked at the
// end (every offer either queued-then-drained or shed).
func TestConcurrentOfferDrain(t *testing.T) {
	q := mustQueue(t, Config{Capacity: 64, HighWater: 16, StandardWater: 32})
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed := 0
	classes := []tenant.SLOClass{tenant.Critical, tenant.Standard, tenant.Sheddable}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Offer(classes[(p+i)%3], i); err != nil {
					mu.Lock()
					shed++
					mu.Unlock()
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	go func() {
		wg.Wait()
		close(stop)
	}()
	drained := 0
drainLoop:
	for {
		drained += len(q.Drain(8))
		select {
		case <-stop:
			break drainLoop
		case <-time.After(100 * time.Microsecond):
		}
	}
	drained += len(q.Drain(0))
	mu.Lock()
	defer mu.Unlock()
	if drained+shed != producers*perProducer {
		t.Errorf("conservation violated: drained %d + shed %d != %d",
			drained, shed, producers*perProducer)
	}
}

func TestOverloadErrorRoundTrip(t *testing.T) {
	e := &OverloadError{
		SLO: tenant.Sheddable, State: StatePressure,
		Depth: 9, Capacity: 16, RetryAfter: 1500 * time.Millisecond,
	}
	for _, want := range []string{"pressure", "sheddable", "9 of 16", "1.5s"} {
		if !contains(e.Error(), want) {
			t.Errorf("error %q missing %q", e.Error(), want)
		}
	}
	// The error is also used in JSON status surfaces; it must marshal.
	if _, err := json.Marshal(e); err != nil {
		t.Fatal(err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
