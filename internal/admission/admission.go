// Package admission implements the bounded, SLO-classed admission
// queue that sits between the control plane's HTTP submit path and the
// scheduler's round loop (ROADMAP item 4). Submissions enqueue in
// O(1); a single scheduler goroutine drains batches per round, so a
// sustained burst backs up here — visibly, boundedly, and with an
// explicit shed policy — instead of wedging the scheduler's critical
// section.
//
// The shed policy is SLO-ranked (the Gavel-style policy-per-class
// framing PR 6 introduced): past the high-water mark sheddable
// submissions are rejected with a typed *OverloadError carrying a
// Retry-After hint; past the standard watermark standard-tier
// submissions shed too; critical submissions are only rejected when
// the queue is hard-full. Shed fractions are therefore monotone in SLO
// rank by construction, and the overload chaos suite pins that
// invariant end to end.
//
// The queue holds no clock: pressure is a pure function of depth, and
// the Retry-After hint is a duration computed from depth plus seeded
// jitter, so a seeded run sheds identically every time.
package admission

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simrng"
	"repro/internal/tenant"
)

// State classifies queue pressure. It is derived from depth against
// the configured watermarks, never stored, so it cannot go stale.
// silod:enum
type State int

// The pressure states, calmest first.
const (
	// StateOpen: below the high-water mark; every tier queues.
	StateOpen State = iota
	// StatePressure: at or past the high-water mark; sheddable
	// submissions shed, standard submissions shed once depth reaches
	// the standard watermark.
	StatePressure
	// StateFull: the queue is hard-full; every tier sheds, critical
	// included — rejecting is strictly better than unbounded memory.
	StateFull
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StatePressure:
		return "pressure"
	case StateFull:
		return "full"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config sizes the queue and its watermarks.
type Config struct {
	// Capacity is the hard bound on queued submissions. Required.
	Capacity int
	// HighWater is the depth at which sheddable submissions start
	// shedding (default Capacity/2).
	HighWater int
	// StandardWater is the depth at which standard submissions start
	// shedding (default midway between HighWater and Capacity).
	StandardWater int
	// RetryAfter is the base client backoff hint attached to sheds
	// (default one second); the hint grows with depth and carries
	// seeded jitter so a synchronized retry storm decorrelates.
	RetryAfter time.Duration
}

// withDefaults validates and fills the zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Capacity <= 0 {
		return c, fmt.Errorf("admission: capacity must be positive (got %d)", c.Capacity)
	}
	if c.HighWater <= 0 {
		c.HighWater = c.Capacity / 2
	}
	if c.StandardWater <= 0 {
		c.StandardWater = c.HighWater + (c.Capacity-c.HighWater)/2
	}
	if c.HighWater > c.Capacity || c.StandardWater > c.Capacity || c.HighWater > c.StandardWater {
		return c, fmt.Errorf("admission: watermarks must satisfy high-water (%d) <= standard (%d) <= capacity (%d)",
			c.HighWater, c.StandardWater, c.Capacity)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c, nil
}

// OverloadError is the typed rejection Offer returns when the shed
// policy drops a submission. The control plane maps it to HTTP 503
// with a Retry-After header; callers detect it with errors.As.
type OverloadError struct {
	SLO        tenant.SLOClass
	State      State
	Depth      int
	Capacity   int
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("admission: queue %s (depth %d of %d): %s-tier submission shed, retry after %v",
		e.State, e.Depth, e.Capacity, e.SLO, e.RetryAfter)
}

// entry is one queued submission.
type entry struct {
	slo     tenant.SLOClass
	payload any
}

// qMetrics are the queue's instrumentation handles, interned eagerly
// per SLO class so snapshot shape never depends on which tiers a run
// happened to shed.
type qMetrics struct {
	enqueued map[tenant.SLOClass]*metrics.Counter // silod_admission_enqueued_total{slo}
	shed     map[tenant.SLOClass]*metrics.Counter // silod_admission_shed_total{slo}
	drained  *metrics.Counter                     // silod_admission_drained_total
	depth    *metrics.Gauge                       // silod_admission_depth
	state    *metrics.Gauge                       // silod_admission_state
	capacity *metrics.Gauge                       // silod_admission_capacity
}

func newQMetrics(r *metrics.Registry, capacity int) qMetrics {
	m := qMetrics{
		enqueued: make(map[tenant.SLOClass]*metrics.Counter),
		shed:     make(map[tenant.SLOClass]*metrics.Counter),
		drained:  r.Counter("silod_admission_drained_total"),
		depth:    r.Gauge("silod_admission_depth"),
		state:    r.Gauge("silod_admission_state"),
		capacity: r.Gauge("silod_admission_capacity"),
	}
	for _, c := range tenant.Classes() {
		m.enqueued[c] = r.Counter("silod_admission_enqueued_total", metrics.L("slo", c.String()))
		m.shed[c] = r.Counter("silod_admission_shed_total", metrics.L("slo", c.String()))
	}
	m.capacity.Set(float64(capacity))
	return m
}

// Queue is the bounded SLO-classed admission queue. Offer is O(1) and
// never blocks; Drain pops a batch in SLO-rank order (critical first,
// FIFO within a class), which is what makes the backlog itself
// SLO-aware: a burst that outruns the drain rate delays sheddable work
// first.
type Queue struct {
	mu    sync.Mutex
	cfg   Config
	rings [3][]entry  // guarded by mu, indexed by SLOClass.Rank()
	depth int         // guarded by mu
	rng   *simrng.RNG // guarded by mu (Retry-After jitter)
	met   qMetrics
}

// New builds a queue. The registry may be nil (instrumentation
// no-ops); rng may be nil (a fixed default seed — pass a seeded RNG to
// correlate the shed-hint jitter with the run's seed).
func New(cfg Config, reg *metrics.Registry, rng *simrng.RNG) (*Queue, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if rng == nil {
		rng = simrng.New(1)
	}
	return &Queue{cfg: cfg, rng: rng, met: newQMetrics(reg, cfg.Capacity)}, nil
}

// stateLocked derives the pressure state from depth. Callers hold q.mu.
func (q *Queue) stateLocked() State {
	switch {
	case q.depth >= q.cfg.Capacity:
		return StateFull
	case q.depth >= q.cfg.HighWater:
		return StatePressure
	default:
		return StateOpen
	}
}

// shedsLocked applies the shed policy table: does the current depth
// shed a submission of this class? Callers hold q.mu.
func (q *Queue) shedsLocked(slo tenant.SLOClass) bool {
	switch slo {
	case tenant.Critical:
		return q.depth >= q.cfg.Capacity
	case tenant.Standard:
		return q.depth >= q.cfg.StandardWater
	case tenant.Sheddable:
		return q.depth >= q.cfg.HighWater
	default:
		// Unknown classes get the standard tier's treatment, matching
		// the zero-value-is-standard convention everywhere else.
		return q.depth >= q.cfg.StandardWater
	}
}

// Offer enqueues one submission, or sheds it with a typed
// *OverloadError per the SLO policy. O(1) under a single lock — the
// HTTP handler's entire cost under overload.
func (q *Queue) Offer(slo tenant.SLOClass, payload any) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.shedsLocked(slo) {
		q.met.shed[slo].Inc()
		err := &OverloadError{
			SLO:        slo,
			State:      q.stateLocked(),
			Depth:      q.depth,
			Capacity:   q.cfg.Capacity,
			RetryAfter: q.retryAfterLocked(),
		}
		q.publishLocked()
		return err
	}
	q.rings[slo.Rank()] = append(q.rings[slo.Rank()], entry{slo: slo, payload: payload})
	q.depth++
	q.met.enqueued[slo].Inc()
	q.publishLocked()
	return nil
}

// Drain pops up to max queued payloads (all of them when max <= 0) in
// SLO-rank order, FIFO within a class. The scheduler's round loop is
// the only caller, so ordering is deterministic.
func (q *Queue) Drain(max int) []any {
	q.mu.Lock()
	defer q.mu.Unlock()
	if max <= 0 || max > q.depth {
		max = q.depth
	}
	out := make([]any, 0, max)
	for rank := 0; rank < len(q.rings) && len(out) < max; rank++ {
		ring := q.rings[rank]
		take := max - len(out)
		if take > len(ring) {
			take = len(ring)
		}
		for _, e := range ring[:take] {
			out = append(out, e.payload)
		}
		// Copy the tail down rather than re-slicing so drained entries
		// do not pin the backing array's dead prefix.
		n := copy(ring, ring[take:])
		for i := n; i < len(ring); i++ {
			ring[i] = entry{}
		}
		q.rings[rank] = ring[:n]
	}
	q.depth -= len(out)
	q.met.drained.Add(int64(len(out)))
	q.publishLocked()
	return out
}

// retryAfterLocked computes the shed hint: the base grows linearly
// with depth (a fuller queue asks clients to stay away longer) plus
// ±25% seeded jitter so synchronized clients decorrelate. Callers hold
// q.mu.
func (q *Queue) retryAfterLocked() time.Duration {
	base := float64(q.cfg.RetryAfter)
	d := base * (1 + float64(q.depth)/float64(q.cfg.Capacity))
	d += d * 0.25 * (2*q.rng.Float64() - 1)
	return time.Duration(d)
}

// publishLocked refreshes the depth and state gauges. Callers hold q.mu.
func (q *Queue) publishLocked() {
	q.met.depth.Set(float64(q.depth))
	q.met.state.Set(float64(q.stateLocked()))
}

// Depth reports the number of queued submissions.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// State reports the current pressure state.
func (q *Queue) State() State {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stateLocked()
}

// Watermarks reports the effective (defaulted) thresholds, for status
// surfaces and tests.
func (q *Queue) Watermarks() (highWater, standardWater, capacity int) {
	return q.cfg.HighWater, q.cfg.StandardWater, q.cfg.Capacity
}
