package policy

import (
	"fmt"

	"repro/internal/core"
)

// CacheSystem identifies one of the four storage solutions the paper
// compares (§7, "Baselines").
// silod:enum
type CacheSystem int

// The compared cache systems.
const (
	SiloD CacheSystem = iota
	Alluxio
	CoorDL
	Quiver
)

// String implements fmt.Stringer.
func (cs CacheSystem) String() string {
	switch cs {
	case SiloD:
		return "SiloD"
	case Alluxio:
		return "Alluxio"
	case CoorDL:
		return "CoorDL"
	case Quiver:
		return "Quiver"
	default:
		return fmt.Sprintf("CacheSystem(%d)", int(cs))
	}
}

// ParseCacheSystem converts a name back into a CacheSystem.
func ParseCacheSystem(s string) (CacheSystem, error) {
	for _, cs := range AllCacheSystems() {
		if cs.String() == s {
			return cs, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown cache system %q", s)
}

// AllCacheSystems lists the systems in the paper's comparison order.
func AllCacheSystems() []CacheSystem {
	return []CacheSystem{SiloD, Alluxio, CoorDL, Quiver}
}

// UsesLRU reports whether the system's cache layer runs autonomous LRU
// replacement (Alluxio) rather than scheduler-driven quotas.
func (cs CacheSystem) UsesLRU() bool { return cs == Alluxio }

// PrivateCaches reports whether cache accounting is per-job rather than
// per-dataset (CoorDL's per-VM caches never share).
func (cs CacheSystem) PrivateCaches() bool { return cs == CoorDL }

// ControlsRemoteIO reports whether the system sets per-job remote IO
// allocations; for the others the provider's fair share applies (§7.2).
func (cs CacheSystem) ControlsRemoteIO() bool { return cs == SiloD }

// Allocator returns the storage allocator for the system. The seed
// drives Quiver's profiling noise.
func (cs CacheSystem) Allocator(seed int64) StorageAllocator {
	switch cs {
	case SiloD:
		return GreedyAllocator{}
	case Alluxio:
		return AlluxioAllocator{}
	case CoorDL:
		return CoorDLAllocator{}
	case Quiver:
		// The noise models the online-profiling instability the paper
		// observed ("Quiver sometimes wrongly evicts effective data ...
		// due to the unstable caching priority due to profiling",
		// §7.1.2): with warm-data hysteresis, a 0.05 sigma produces
		// occasional wrong evictions rather than constant re-placement.
		return NewQuiverAllocator(0.05, seed)
	default:
		return AlluxioAllocator{}
	}
}

// SchedulerKind identifies the scheduling policies evaluated in §7.
// silod:enum
type SchedulerKind int

// The evaluated scheduling policies.
const (
	FIFOKind SchedulerKind = iota
	SJFKind
	GavelKind
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	switch k {
	case FIFOKind:
		return "FIFO"
	case SJFKind:
		return "SJF"
	case GavelKind:
		return "Gavel"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// ParseSchedulerKind converts a name back into a SchedulerKind.
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	for _, k := range AllSchedulerKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown scheduler %q", s)
}

// AllSchedulerKinds lists the policies in the paper's order.
func AllSchedulerKinds() []SchedulerKind {
	return []SchedulerKind{FIFOKind, SJFKind, GavelKind}
}

// Build composes a scheduler with a cache system, producing the policy
// the simulator drives. With the SiloD cache system, SJF and Gavel use
// their enhanced (jointly allocating) forms and FIFO uses Algorithm 2;
// with baseline systems the vanilla policies run on the baseline's
// allocator.
func Build(k SchedulerKind, cs CacheSystem, seed int64) (core.Policy, error) {
	alloc := cs.Allocator(seed)
	switch k {
	case FIFOKind:
		return &FIFO{Storage: alloc}, nil
	case SJFKind:
		return &SJF{Enhanced: cs == SiloD, Storage: alloc}, nil
	case GavelKind:
		return &Gavel{Enhanced: cs == SiloD, Storage: alloc}, nil
	default:
		return nil, fmt.Errorf("policy: unknown scheduler kind %d", int(k))
	}
}
