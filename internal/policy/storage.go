package policy

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// StorageAllocator decides cache quotas (and, for SiloD, remote IO) for
// jobs that have already been granted GPUs. Baseline cache systems
// implement this interface so they can be composed with any GPU policy;
// they leave Assignment.RemoteIO empty, which the simulator interprets
// as provider-controlled fair sharing (§7.2).
type StorageAllocator interface {
	Name() string
	// AllocateStorage fills a.CacheQuota (and optionally a.RemoteIO)
	// for the running jobs.
	AllocateStorage(c core.Cluster, running []core.JobView, a *core.Assignment)
}

// QueueAwareAllocator is the optional extension for allocators that
// also plan cache for queued jobs (dataset prefetching); policies that
// know their queue probe for it.
type QueueAwareAllocator interface {
	AllocateStorageQueued(c core.Cluster, running, queued []core.JobView, a *core.Assignment)
}

// GreedyAllocator is Algorithm 2: datasets are cached in descending
// order of cache efficiency (Σ f*/d over the jobs sharing the dataset,
// §6) until the cache is full; partial caching is allowed. Remote IO is
// then divided max-min fairly over instantaneous demands, with a
// warm-up investment pass funding the most cache-efficient filling
// datasets first. This is the policy SiloD uses with estimator-free
// schedulers (§5.3).
//
// The three flags disable individual design choices for the ablation
// benchmarks; production use leaves them false.
type GreedyAllocator struct {
	// WholeDatasetsOnly disables partial caching (Quiver-style
	// placement granularity).
	WholeDatasetsOnly bool
	// NoHysteresis disables the warm-data tie-breaking, letting
	// equal-efficiency datasets churn quotas as the job set changes.
	NoHysteresis bool
	// PlainFairIO disables the warm-up investment pass: remote IO is a
	// plain max-min fair division over demands.
	PlainFairIO bool
	// PrefetchQueued enables the Hoard-style extension (related work
	// [58]): cache left over after the running jobs' datasets is
	// allocated to *queued* jobs' datasets in cache-efficiency order,
	// so idle egress bandwidth can warm them before they start.
	PrefetchQueued bool
}

// Name implements StorageAllocator.
func (GreedyAllocator) Name() string { return "silod-greedy" }

// AllocateStorage implements StorageAllocator. Algorithm 2 is a pure
// function of (cluster, running views): allocatorPure's vetting of
// GreedyAllocator rests on this annotation holding.
//
// silod:pure
func (g GreedyAllocator) AllocateStorage(c core.Cluster, running []core.JobView, a *core.Assignment) {
	type dgroup struct {
		key        string
		size       unit.Bytes
		eff        float64 // Σ f*/d (line 2 of Algorithm 2, summed per §6)
		cachedFrac float64
	}
	groups := make(map[string]*dgroup)
	var order []string
	for _, j := range running {
		g, ok := groups[j.DatasetKey]
		if !ok {
			g = &dgroup{key: j.DatasetKey, size: j.DatasetSize}
			groups[j.DatasetKey] = g
			order = append(order, j.DatasetKey)
		}
		// SLO weighting: a critical tenant's f*/d counts double and a
		// sheddable tenant's half, so under cache pressure the greedy
		// order favors protected tiers. Standard (and untenanted) jobs
		// weigh 1, leaving the single-class order bit-identical to the
		// unweighted Algorithm 2.
		g.eff += j.SLO.Weight() * float64(j.Profile.IdealThroughput) / math.Max(float64(j.DatasetSize), 1)
		if f := float64(j.CachedBytes) / math.Max(float64(j.DatasetSize), 1); f > g.cachedFrac {
			g.cachedFrac = f
		}
	}
	// Warm-data hysteresis: evicting effective cache hurts immediately
	// while newly granted cache only pays off next epoch (§6), so an
	// already-cached dataset wins ties (and near-ties) against a cold
	// one of equal cache efficiency. Without this, the many
	// equal-efficiency private datasets in a production trace reshuffle
	// quotas on every job arrival and the cluster pays a constant
	// re-warm-up tax.
	hyst := 0.5
	if g.NoHysteresis {
		hyst = 0
	}
	sort.Slice(order, func(x, y int) bool {
		gx, gy := groups[order[x]], groups[order[y]]
		ex := gx.eff * (1 + hyst*gx.cachedFrac)
		ey := gy.eff * (1 + hyst*gy.cachedFrac)
		if ex != ey {
			return ex > ey
		}
		return gx.key < gy.key
	})
	totalCache := c.Cache
	for _, key := range order {
		grp := groups[key]
		give := grp.size
		if give > totalCache {
			if g.WholeDatasetsOnly {
				a.CacheQuota[key] = 0
				continue
			}
			give = totalCache
		}
		a.CacheQuota[key] = give
		totalCache -= give
	}
	if g.PlainFairIO {
		allocRemoteIOFair(c.RemoteIO, running, a)
		return
	}
	// Remote IO: grant full demand in the same cache-efficiency order.
	// Efficient jobs have small datasets, so funding their warm-up
	// first converts bandwidth into cache hits within minutes and
	// releases the bandwidth for the next tier — the cascade that lets
	// the cluster approach ideal throughput (Figure 11). An equal
	// split would leave every cache cold for hours.
	rank := make(map[string]int, len(order))
	for i, key := range order {
		rank[key] = i
	}
	allocRemoteIOPriority(c.RemoteIO, running, a, func(x, y core.JobView) bool {
		if rank[x.DatasetKey] != rank[y.DatasetKey] {
			return rank[x.DatasetKey] < rank[y.DatasetKey]
		}
		return x.ID < y.ID
	})
}

// AllocateStorageQueued implements QueueAwareAllocator: after the
// normal allocation for running jobs, leftover cache goes to queued
// jobs' datasets in cache-efficiency order so the data plane can
// prefetch them with idle egress bandwidth.
//
// silod:pure
func (g GreedyAllocator) AllocateStorageQueued(c core.Cluster, running, queued []core.JobView, a *core.Assignment) {
	g.AllocateStorage(c, running, a)
	if !g.PrefetchQueued || len(queued) == 0 {
		return
	}
	// Sorted-key sum: leftover feeds quota math, and a float total must
	// not depend on per-process map iteration order.
	usedKeys := make([]string, 0, len(a.CacheQuota))
	for key := range a.CacheQuota {
		usedKeys = append(usedKeys, key)
	}
	sort.Strings(usedKeys)
	var used unit.Bytes
	for _, key := range usedKeys {
		used += a.CacheQuota[key]
	}
	leftover := c.Cache - used
	if leftover <= 0 {
		return
	}
	type dgroup struct {
		key  string
		size unit.Bytes
		eff  float64
	}
	groups := make(map[string]*dgroup)
	var order []string
	for _, j := range queued {
		if _, taken := a.CacheQuota[j.DatasetKey]; taken {
			continue // already funded for a running job
		}
		grp, ok := groups[j.DatasetKey]
		if !ok {
			grp = &dgroup{key: j.DatasetKey, size: j.DatasetSize}
			groups[j.DatasetKey] = grp
			order = append(order, j.DatasetKey)
		}
		grp.eff += float64(j.Profile.IdealThroughput) / math.Max(float64(j.DatasetSize), 1)
	}
	sort.Slice(order, func(x, y int) bool {
		gx, gy := groups[order[x]], groups[order[y]]
		if gx.eff != gy.eff {
			return gx.eff > gy.eff
		}
		return gx.key < gy.key
	})
	for _, key := range order {
		grp := groups[key]
		give := grp.size
		if give > leftover {
			give = leftover
		}
		if give <= 0 {
			break
		}
		a.CacheQuota[key] = give
		leftover -= give
	}
}

// allocRemoteIOPriority divides remote IO in two stages. First a plain
// max-min water-fill over instantaneous demands — the provider-neutral
// division that fully satisfies every small demand. Then a warm-up
// investment: jobs whose granted cache quota is not yet effective are
// topped up toward their full demand (in the given priority order,
// i.e. cache-efficiency order), funded by taxing half the grants of the
// *unsatisfied non-warming* jobs. Warming an efficient dataset is a
// one-off expense that permanently frees bandwidth, so it finishes
// epochs quickly (Figure 11's near-ideal throughput); jobs already
// fully served by fair share (e.g. BERT's tiny demand) are never taxed,
// which keeps the makespan tail intact.
//
// silod:pure
func allocRemoteIOPriority(total unit.Bandwidth, running []core.JobView, a *core.Assignment,
	less func(x, y core.JobView) bool) {
	// Stage 1: plain max-min fair share over demands.
	allocRemoteIOFair(total, running, a)
	// Identify warming jobs that remain below their demand.
	type topup struct {
		view core.JobView
		gap  float64
	}
	var warming []topup
	var pot float64
	taxed := make(map[string]float64)
	for _, j := range running {
		d := instantDemand(j, a)
		g := float64(a.RemoteIO[j.ID])
		gap := d - g
		if gap <= 1e-9 {
			continue // fully served: never taxed, never needs top-up
		}
		if a.CacheQuota[j.DatasetKey] > j.EffectiveCached {
			warming = append(warming, topup{view: j, gap: gap})
		} else {
			// Unsatisfied steady-state job: contribute half its grant
			// to the investment pot.
			tax := g / 2
			pot += tax
			taxed[j.ID] = tax
		}
	}
	if len(warming) == 0 || pot <= 0 {
		return // nothing to invest in (or no one to fund it): keep fair share
	}
	sort.Slice(warming, func(i, j int) bool { return less(warming[i].view, warming[j].view) })
	spent := 0.0
	for i := range warming {
		if pot <= 1e-9 {
			break
		}
		give := math.Min(warming[i].gap, pot)
		a.RemoteIO[warming[i].view.ID] += unit.Bandwidth(give)
		pot -= give
		spent += give
	}
	// Only the spent portion of the tax is actually withheld; the
	// unspent pot stays with its contributors.
	if pot > 1e-9 && spent > 0 {
		totalTax := pot + spent
		for id, tax := range taxed {
			taxed[id] = tax * spent / totalTax
		}
	} else if spent <= 0 {
		return
	}
	for id, tax := range taxed {
		a.RemoteIO[id] -= unit.Bandwidth(tax)
		if a.RemoteIO[id] < 0 {
			a.RemoteIO[id] = 0
		}
	}
}

// instantDemand is a job's current remote IO demand given the assigned
// quota and its effective cache.
//
// silod:pure
func instantDemand(j core.JobView, a *core.Assignment) float64 {
	q := a.CacheQuota[j.DatasetKey]
	if q > j.EffectiveCached {
		q = j.EffectiveCached
	}
	if q > j.DatasetSize {
		q = j.DatasetSize
	}
	miss := 1 - float64(q)/math.Max(float64(j.DatasetSize), 1)
	return float64(j.Profile.IdealThroughput) * miss
}

// allocRemoteIOFair grants each running job a weighted max-min fair
// share of the remote IO against its instantaneous demand: the
// effective cache (not the planned quota) determines the current miss
// ratio, because newly granted cache only pays off next epoch (§6). The
// weight is the job's SLO class weight, so under bandwidth contention a
// critical job's fair level is twice a standard job's and four times a
// sheddable job's; with every weight 1 (the untenanted default) the
// division is bit-identical to the unweighted water-fill. The
// allocation is revisited every scheduling round, so grants shrink as
// caches warm.
//
// silod:pure
func allocRemoteIOFair(total unit.Bandwidth, running []core.JobView, a *core.Assignment) {
	type rec struct {
		id     string
		demand float64
		weight float64
	}
	recs := make([]rec, 0, len(running))
	var wsum float64
	for _, j := range running {
		q := a.CacheQuota[j.DatasetKey]
		if q > j.EffectiveCached {
			q = j.EffectiveCached
		}
		if q > j.DatasetSize {
			q = j.DatasetSize
		}
		miss := 1 - float64(q)/math.Max(float64(j.DatasetSize), 1)
		w := j.SLO.Weight()
		recs = append(recs, rec{j.ID, float64(j.Profile.IdealThroughput) * miss, w})
		wsum += w
	}
	// Water-fill in ascending normalized-demand order: a job whose
	// demand sits below its weighted fair level is fully served and its
	// slack raises the level for the rest.
	sort.Slice(recs, func(i, j int) bool {
		di, dj := recs[i].demand/recs[i].weight, recs[j].demand/recs[j].weight
		if di != dj {
			return di < dj
		}
		return recs[i].id < recs[j].id
	})
	remaining := float64(total)
	wleft := wsum
	for _, r := range recs {
		level := remaining * r.weight / wleft
		grant := math.Min(r.demand, level)
		a.RemoteIO[r.id] = unit.Bandwidth(grant)
		remaining -= grant
		wleft -= r.weight
	}
	// Any slack (all demands met) stays unallocated; the data plane
	// never throttles below demand anyway.
}

// QuiverAllocator models Quiver [44]: cache is assigned to whole
// datasets in descending benefit-to-cost order, where benefit is the
// online-profiled throughput gain and cost the dataset size. Quiver
// does not support partial caching ("jobs do not benefit from Quiver if
// it cannot entirely fit into the cache", §7.1.1), so datasets that do
// not fit are skipped. ProfileNoise (fractional sigma) models the
// instability of online latency profiling the paper observed (§7.1.2);
// zero disables it.
type QuiverAllocator struct {
	ProfileNoise float64
	rng          *simrng.RNG

	// Scratch recycled across AllocateStorage calls: the dataset groups
	// in first-seen order, a key→group index, and the sort permutation.
	groups []quiverGroup
	byKey  map[string]int
	order  []int
}

type quiverGroup struct {
	key        string
	size       unit.Bytes
	benefit    float64
	cachedFrac float64
}

// NewQuiverAllocator returns a Quiver allocator with seeded profiling
// noise.
func NewQuiverAllocator(noise float64, seed int64) *QuiverAllocator {
	return &QuiverAllocator{ProfileNoise: noise, rng: simrng.New(seed)}
}

// Name implements StorageAllocator.
func (q *QuiverAllocator) Name() string { return "quiver" }

// AllocateStorage implements StorageAllocator.
func (q *QuiverAllocator) AllocateStorage(c core.Cluster, running []core.JobView, a *core.Assignment) {
	if q.byKey == nil {
		q.byKey = make(map[string]int)
	} else {
		clear(q.byKey)
	}
	groups := q.groups[:0]
	for _, j := range running {
		gi, ok := q.byKey[j.DatasetKey]
		if !ok {
			gi = len(groups)
			groups = append(groups, quiverGroup{key: j.DatasetKey, size: j.DatasetSize})
			q.byKey[j.DatasetKey] = gi
		}
		g := &groups[gi]
		g.benefit += float64(j.Profile.IdealThroughput)
		if f := float64(j.CachedBytes) / math.Max(float64(j.DatasetSize), 1); f > g.cachedFrac {
			g.cachedFrac = f
		}
	}
	q.groups = groups
	for gi := range groups {
		g := &groups[gi]
		ratio := g.benefit / math.Max(float64(g.size), 1)
		if q.ProfileNoise > 0 && q.rng != nil {
			ratio *= math.Exp(q.rng.Normal(0, q.ProfileNoise))
		}
		// Hysteresis: an already-cached dataset keeps an edge, as
		// re-profiling an in-cache dataset measures lower latency. The
		// profiling noise still flips near-ties occasionally — the
		// paper's "sometimes wrongly evicts effective data" (§7.1.2) —
		// but a cached dataset is not re-placed every round.
		ratio *= 1 + 0.5*g.cachedFrac
		g.benefit = ratio
	}
	// Index permutation sort: (benefit desc, key asc) is a strict total
	// order (keys are unique), so any comparison sort produces the same
	// unique permutation the historical string-slice sort did.
	order := q.order[:0]
	for gi := range groups {
		order = append(order, gi)
	}
	q.order = order
	sort.Slice(order, func(x, y int) bool {
		gx, gy := &groups[order[x]], &groups[order[y]]
		if gx.benefit != gy.benefit {
			return gx.benefit > gy.benefit
		}
		return gx.key < gy.key
	})
	remaining := c.Cache
	for _, gi := range order {
		g := &groups[gi]
		if g.size <= remaining {
			a.CacheQuota[g.key] = g.size
			remaining -= g.size
		} else {
			a.CacheQuota[g.key] = 0 // no partial caching
		}
	}
}

// CoorDLAllocator models CoorDL [50]: each job caches independently in
// the local storage of its own VMs, uniformly (no eviction). The quota
// is static — proportional to the job's share of the cluster's GPUs,
// which is how per-VM local SSDs apportion in practice — and keyed by
// job (the CacheKeyPerJob mode), since CoorDL caches are not shared
// even between jobs training the same dataset.
type CoorDLAllocator struct{}

// Name implements StorageAllocator.
func (CoorDLAllocator) Name() string { return "coordl" }

// AllocateStorage implements StorageAllocator.
//
// silod:pure
func (CoorDLAllocator) AllocateStorage(c core.Cluster, running []core.JobView, a *core.Assignment) {
	if c.GPUs <= 0 {
		return
	}
	perGPU := float64(c.Cache) / float64(c.GPUs)
	for _, j := range running {
		quota := unit.Bytes(perGPU * float64(j.NumGPUs))
		if quota > j.DatasetSize {
			quota = j.DatasetSize
		}
		// CoorDL caches are private: key by job, not dataset.
		a.CacheQuota[coorDLKey(j.ID)] = quota
	}
}

// coorDLKey is the cache accounting key of a CoorDL private cache.
//
// silod:pure
func coorDLKey(jobID string) string { return "job:" + jobID }

// CoorDLKey exposes the private-cache key derivation for the simulator.
func CoorDLKey(jobID string) string { return coorDLKey(jobID) }

// AlluxioAllocator models Alluxio's default deployment: the cache runs
// its own LRU replacement with no scheduler-driven quotas at all, so
// AllocateStorage assigns nothing. The simulator pairs this allocator
// with an LRU cache model.
type AlluxioAllocator struct{}

// Name implements StorageAllocator.
func (AlluxioAllocator) Name() string { return "alluxio" }

// AllocateStorage implements StorageAllocator.
//
// silod:pure
func (AlluxioAllocator) AllocateStorage(core.Cluster, []core.JobView, *core.Assignment) {}
