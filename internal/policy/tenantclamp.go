package policy

import (
	"sort"

	"repro/internal/core"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// TenantPolicy wraps an inner policy and clamps its Assignment to the
// per-tenant quotas in a tenant registry. The inner policy already
// favors protected tiers (SortJobs ranks by SLO, the greedy allocator
// weights cache efficiency by SLO class); the clamp adds the hard
// ceilings: a tenant never holds more GPUs, attributed cache or remote
// egress than its quota, no matter what the inner policy proposed.
// Tenants absent from the registry (including the untenanted "" pool)
// are unlimited, so a run without quotas is unchanged.
//
// All clamping is deterministic: tenants iterate in sorted-ID order,
// jobs in canonical queue order, and over-quota GPU grants are revoked
// from the back of the queue (lowest SLO rank, latest submit) first.
type TenantPolicy struct {
	Inner core.Policy
	Reg   *tenant.Registry
}

// Name implements core.Policy.
func (p *TenantPolicy) Name() string { return p.Inner.Name() + "+tenant" }

// PureAssign implements core.PureAssigner: the clamp is a pure function
// of the inner assignment and the (static during a run) registry, so
// purity is inherited from the inner policy.
//
// silod:pure-requires: (*TenantPolicy).Assign
func (p *TenantPolicy) PureAssign() bool {
	pa, ok := p.Inner.(core.PureAssigner)
	return ok && pa.PureAssign()
}

// IgnoredViewFields implements core.DeltaAssigner: the clamp itself
// reads tenant identity and the canonical queue order (SLO, Submit,
// ID), so those fields are always relevant; everything else is
// delegated to the inner policy's declaration.
//
// silod:pure-requires: (*TenantPolicy).Assign
func (p *TenantPolicy) IgnoredViewFields() core.ViewFields {
	da, ok := p.Inner.(core.DeltaAssigner)
	if !ok {
		return 0
	}
	return da.IgnoredViewFields() &^ (core.FieldTenant | core.FieldSLO | core.FieldSubmit)
}

// SetFullResolve implements core.FullResolver by forwarding to the
// inner policy.
func (p *TenantPolicy) SetFullResolve(full bool) {
	if fr, ok := p.Inner.(core.FullResolver); ok {
		fr.SetFullResolve(full)
	}
}

// Assign implements core.Policy. Purity is inherited: the clamp
// itself is a pure function of the inner assignment and the (static
// during a run) registry, which is what PureAssign's delegation to
// the inner policy rests on.
//
// silod:pure assume=Policy
func (p *TenantPolicy) Assign(c core.Cluster, now unit.Time, jobs []core.JobView) core.Assignment {
	a := p.Inner.Assign(c, now, jobs)
	p.clamp(jobs, &a)
	return a
}

// clamp enforces the three quota dimensions in place.
//
// silod:pure
func (p *TenantPolicy) clamp(jobs []core.JobView, a *core.Assignment) {
	ordered := core.SortJobs(jobs)
	jobsOf := make(map[string][]core.JobView)
	for _, j := range ordered {
		jobsOf[j.Tenant] = append(jobsOf[j.Tenant], j)
	}

	// GPUs: revoke over-quota grants from the back of the tenant's
	// queue, so its own critical work survives its own quota pressure.
	for _, t := range p.Reg.List() {
		if t.Quota.GPUs <= 0 {
			continue
		}
		mine := jobsOf[t.ID]
		held := 0
		for _, j := range mine {
			held += a.GPUs[j.ID]
		}
		for i := len(mine) - 1; i >= 0 && held > t.Quota.GPUs; i-- {
			j := mine[i]
			if g := a.GPUs[j.ID]; g > 0 {
				held -= g
				delete(a.GPUs, j.ID)
				delete(a.RemoteIO, j.ID)
			}
		}
	}

	// Cache: each funded dataset is attributed to exactly one tenant —
	// the best-ranked (then lexicographically first) tenant among the
	// granted jobs using it, mirroring how the allocator charges shared
	// datasets once. A tenant over its cache quota has all its datasets'
	// quotas scaled down proportionally.
	dsOwner := make(map[string]string)
	for _, j := range ordered {
		if a.GPUs[j.ID] <= 0 {
			continue
		}
		if _, ok := a.CacheQuota[j.DatasetKey]; !ok {
			continue
		}
		if _, claimed := dsOwner[j.DatasetKey]; !claimed {
			dsOwner[j.DatasetKey] = j.Tenant
		}
	}
	for _, t := range p.Reg.List() {
		if t.Quota.Cache <= 0 {
			continue
		}
		var keys []string
		for ds, owner := range dsOwner {
			if owner == t.ID {
				keys = append(keys, ds)
			}
		}
		// Sum after sorting: ratio below divides by this float total, so
		// its rounding must not depend on per-process map order.
		sort.Strings(keys)
		var total unit.Bytes
		for _, ds := range keys {
			total += a.CacheQuota[ds]
		}
		if total <= t.Quota.Cache {
			continue
		}
		ratio := float64(t.Quota.Cache) / float64(total)
		for _, ds := range keys {
			a.CacheQuota[ds] = unit.Bytes(float64(a.CacheQuota[ds]) * ratio)
		}
	}

	// Egress: scale the tenant's remote-IO grants proportionally down
	// to its quota.
	for _, t := range p.Reg.List() {
		if t.Quota.Egress <= 0 {
			continue
		}
		mine := jobsOf[t.ID]
		var total unit.Bandwidth
		for _, j := range mine {
			total += a.RemoteIO[j.ID]
		}
		if total <= t.Quota.Egress {
			continue
		}
		ratio := float64(t.Quota.Egress) / float64(total)
		for _, j := range mine {
			if bw, ok := a.RemoteIO[j.ID]; ok {
				a.RemoteIO[j.ID] = unit.Bandwidth(float64(bw) * ratio)
			}
		}
	}
}

// BuildTenant composes Build's policy with the tenant-quota clamp. A
// nil or empty registry returns the inner policy unchanged, so callers
// can wire the tenant path unconditionally.
func BuildTenant(k SchedulerKind, cs CacheSystem, seed int64, reg *tenant.Registry) (core.Policy, error) {
	inner, err := Build(k, cs, seed)
	if err != nil {
		return nil, err
	}
	if reg == nil || reg.Len() == 0 {
		return inner, nil
	}
	return &TenantPolicy{Inner: inner, Reg: reg}, nil
}
