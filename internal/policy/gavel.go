package policy

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/unit"
)

// Gavel implements the max-min fairness policy of Gavel [52] (§5.2).
// Gavel proper solves a mathematical program for fractional GPU
// time-shares each round; with fixed gang sizes the equivalent
// round-based mechanism is least-attained-normalized-service first:
// each round GPUs go to the jobs that have achieved the smallest
// fraction of their ideal progress since submission, which converges to
// the max-min fair share over time. (DESIGN.md records this
// simplification.)
//
// The storage side is where vanilla and SiloD diverge:
//
//   - Vanilla Gavel is storage-oblivious (Eq. 8 with perf = f*):
//     cache/IO come from the baseline allocator, so the fairness
//     objective is computed against an estimator that overestimates
//     IO-bottlenecked jobs.
//   - Enhanced Gavel solves Eq. 9 with SiloDPerf: the exact max-min
//     storage program (MaxMinStorage) divides cache and remote IO to
//     maximize the minimum normalized performance.
type Gavel struct {
	Enhanced bool
	Storage  StorageAllocator
	// Objective selects Gavel's optimization goal; the zero value is
	// max-min fairness, the paper's running example (§5.2). The SiloD
	// extension "can support not only the max-min fairness objective
	// but also all other objectives supported by Gavel" — the other
	// objectives reuse the same enhanced estimator with a different
	// ordering and storage program.
	Objective GavelObjective

	// scratch's maps are recycled across Assign calls; each returned
	// Assignment is valid only until the next Assign.
	scratch core.Assignment

	// solver carries the incremental max-min state across rounds: the
	// exact-match memo of the storage program and the warm-start λ
	// hints for both bisections. It never changes what an Assign
	// returns, only how much of the previous round's work is redone.
	solver MaxMinSolver

	// Admission-order scratch (see orderViews): per-job scores are
	// computed once and an int permutation is sorted instead of
	// re-evaluating the key per comparison and swapping JobView structs.
	ordScore []float64
	ordIdx   []int
	ordBuf   []core.JobView
	admitBuf []core.JobView
}

// SetFullResolve implements core.FullResolver: true disables the
// solver's memo and warm-start hints so every round re-solves the full
// max-min programs — the byte-identity reference.
func (g *Gavel) SetFullResolve(full bool) {
	g.solver.Cold = full
	g.solver.Reset()
}

// GavelObjective enumerates the Gavel scheduling goals implemented here.
// silod:enum
type GavelObjective int

// The implemented objectives.
const (
	// MaxMinFairness maximizes the minimum normalized performance
	// (Eq. 8/9) — Gavel's default.
	MaxMinFairness GavelObjective = iota
	// TotalThroughput maximizes aggregate cluster throughput: GPUs go
	// to the jobs with the best achievable normalized rate, cache and
	// bandwidth to wherever they buy the most MB/s (makespan-oriented).
	TotalThroughput
	// FinishTimeFairness minimizes the maximum finish-time ratio
	// (Themis-style rho): jobs whose projected completion is furthest
	// beyond their ideal finish run first.
	FinishTimeFairness
)

// String implements fmt.Stringer.
func (o GavelObjective) String() string {
	switch o {
	case TotalThroughput:
		return "throughput"
	case FinishTimeFairness:
		return "ftf"
	default:
		return "maxmin"
	}
}

// Name implements core.Policy.
func (g *Gavel) Name() string {
	base := "gavel[" + g.Objective.String() + "]"
	if g.Enhanced {
		return base + "+silod"
	}
	return base + "+" + g.Storage.Name()
}

// deficit is the fraction of a job's ideal progress achieved so far;
// lower means more underserved.
func deficit(now unit.Time, j core.JobView) float64 {
	elapsed := float64(now.Sub(j.Submit))
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	idealBytes := float64(j.Profile.IdealThroughput) * elapsed
	if idealBytes <= 0 {
		return math.Inf(1)
	}
	return float64(j.AttainedBytes) / idealBytes
}

// finishTimeRho is the Themis-style finish-time ratio: projected
// completion time divided by the job's ideal (isolated) completion
// time; higher means more wronged. The projection assumes the job's
// recent normalized rate continues.
func finishTimeRho(now unit.Time, j core.JobView) float64 {
	elapsed := float64(now.Sub(j.Submit))
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	fstar := float64(j.Profile.IdealThroughput)
	if fstar <= 0 {
		return 1
	}
	total := float64(j.AttainedBytes + j.RemainingBytes)
	idealFinish := total / fstar
	rate := float64(j.AttainedBytes) / elapsed
	if rate <= 0 {
		// No progress yet: the projection is unbounded; rank by time
		// already wasted relative to the ideal runtime.
		return 1 + elapsed/math.Max(idealFinish, 1e-9)
	}
	projected := elapsed + float64(j.RemainingBytes)/rate
	return projected / math.Max(idealFinish, 1e-9)
}

// Assign implements core.Policy. Currently running jobs get a 20%
// deficit discount — the analogue of Gavel's round quantum: a job is
// not preempted mid-round for a marginally more underserved peer, which
// would churn both GPUs and cache warm-up without improving long-run
// fairness.
func (g *Gavel) Assign(c core.Cluster, now unit.Time, jobs []core.JobView) core.Assignment {
	if g.Objective == TotalThroughput {
		// The throughput objective is the one Gavel configuration whose
		// ordering never consults `now` — the carve-out PureAssign's
		// eligibility rests on — so it lives in its own machine-checked
		// pure function.
		return g.assignThroughput(c, jobs)
	}
	a := g.scratch.Reset()
	ordered := g.orderViews(jobs, g.orderKey(now))
	admitGangs(a.GPUs, c.GPUs, ordered)
	g.admitBuf = admittedViewsInto(g.admitBuf, jobs, a.GPUs)
	running := g.admitBuf
	if !g.Enhanced {
		g.Storage.AllocateStorage(c, running, &a)
		return a
	}
	// Max-min and finish-time fairness both protect the worst job:
	// cache is allocated across ALL active jobs, not just this round's
	// GPU holders — under time-sharing every active job runs again
	// within a few rounds, and evicting a paused job's dataset would
	// force a re-warm-up on every rotation. Remote IO, by contrast, is
	// only consumed by running jobs, so the bandwidth program (an exact
	// bisection on the Eq. 9 objective) runs over the running set
	// against the planned quotas.
	allocs := g.solver.Storage(c.Cache, c.RemoteIO, jobs)
	a.CacheQuota = DatasetQuotas(jobs, allocs)
	grants := g.solver.Bandwidth(c, c.RemoteIO, running, a.CacheQuota)
	leftover := float64(c.RemoteIO)
	for _, j := range running {
		bw := grants[j.ID]
		a.RemoteIO[j.ID] = bw
		leftover -= float64(bw)
	}
	if leftover > 0 {
		rank := maxMinEfficiencyRank(jobs)
		topUpRemoteIO(unit.Bandwidth(leftover), running, &a, func(x, y core.JobView) bool {
			if rank[x.DatasetKey] != rank[y.DatasetKey] {
				return rank[x.DatasetKey] < rank[y.DatasetKey]
			}
			return x.ID < y.ID
		})
	}
	return a
}

// assignThroughput is Assign for the TotalThroughput objective: GPUs
// go to the jobs with the best achievable normalized rate, and storage
// to wherever it buys the most MB/s (Algorithm 2's greedy when
// enhanced, the configured allocator otherwise). It takes no `now` on
// purpose — the throughput score is a function of the views alone,
// which is exactly what lets PureAssign report true here while the
// deficit-based objectives stay impure.
//
// silod:pure assume=StorageAllocator
func (g *Gavel) assignThroughput(c core.Cluster, jobs []core.JobView) core.Assignment {
	a := g.scratch.Reset()
	ordered := g.orderViews(jobs, throughputKey(c, g.Enhanced, len(jobs)))
	admitGangs(a.GPUs, c.GPUs, ordered)
	g.admitBuf = admittedViewsInto(g.admitBuf, jobs, a.GPUs)
	running := g.admitBuf
	if !g.Enhanced {
		g.Storage.AllocateStorage(c, running, &a)
		return a
	}
	// Maximum aggregate throughput wants storage wherever it buys the
	// most MB/s — exactly Algorithm 2's greedy.
	GreedyAllocator{}.AllocateStorage(c, running, &a)
	return a
}

// throughputKey is the TotalThroughput admission score (ascending =
// admitted first): achievable throughput per GPU, assuming the job
// keeps its effective cache and receives an equal bandwidth share.
// Running jobs get the same 20% edge against preemption as the other
// objectives.
//
// silod:pure
func throughputKey(c core.Cluster, enhanced bool, njobs int) func(core.JobView) float64 {
	n := float64(njobs)
	if n < 1 {
		n = 1
	}
	share := float64(c.RemoteIO) / n
	return func(j core.JobView) float64 {
		fstar := float64(j.Profile.IdealThroughput)
		h := 0.0
		if enhanced && j.DatasetSize > 0 {
			h = math.Min(float64(j.EffectiveCached)/float64(j.DatasetSize), 1)
		}
		achievable := math.Min(fstar, fstar*h+share)
		score := achievable / math.Max(float64(j.NumGPUs), 1)
		if j.Running {
			score *= 1.25
		}
		return -score // ascending sort; higher score first
	}
}

// orderViews returns jobs sorted ascending by (key, ID). The key is
// evaluated once per job — not once per comparison — and the sort moves
// an int permutation instead of JobView structs; because the comparator
// is a strict total order (score ties fall to the unique job ID), the
// sorted permutation is unique, so the result is byte-identical to
// sorting the views directly with per-comparison key calls. The
// returned slice is scratch, valid until the next orderViews call.
//
// silod:pure
func (g *Gavel) orderViews(jobs []core.JobView, key func(core.JobView) float64) []core.JobView {
	g.ordScore = g.ordScore[:0]
	g.ordIdx = g.ordIdx[:0]
	for i, j := range jobs {
		g.ordScore = append(g.ordScore, key(j))
		g.ordIdx = append(g.ordIdx, i)
	}
	scores, idx := g.ordScore, g.ordIdx
	sort.Slice(idx, func(a, b int) bool {
		da, db := scores[idx[a]], scores[idx[b]]
		if da != db {
			return da < db
		}
		return jobs[idx[a]].ID < jobs[idx[b]].ID
	})
	g.ordBuf = g.ordBuf[:0]
	for _, i := range idx {
		g.ordBuf = append(g.ordBuf, jobs[i])
	}
	return g.ordBuf
}

// orderKey returns the GPU-admission sort key for the time-dependent
// objectives (ascending = admitted first); TotalThroughput is handled
// by throughputKey. Running jobs get a 20% edge against preemption in
// all objectives.
func (g *Gavel) orderKey(now unit.Time) func(core.JobView) float64 {
	switch g.Objective {
	case FinishTimeFairness:
		return func(j core.JobView) float64 {
			rho := finishTimeRho(now, j)
			if j.Running {
				rho *= 1.25 // keep running (rho ranks descending via negation)
			}
			return -rho // most wronged first
		}
	default:
		return func(j core.JobView) float64 {
			d := deficit(now, j)
			if j.Running {
				d *= 0.8
			}
			return d
		}
	}
}

// topUpRemoteIO adds extra bandwidth on top of existing grants: first
// warming jobs in priority order up to their instantaneous demand, then
// a water-fill over remaining unmet demands.
func topUpRemoteIO(extra unit.Bandwidth, running []core.JobView, a *core.Assignment,
	less func(x, y core.JobView) bool) {
	remaining := float64(extra)
	ordered := append([]core.JobView(nil), running...)
	sort.Slice(ordered, func(i, j int) bool { return less(ordered[i], ordered[j]) })
	unmet := make(map[string]float64)
	for _, j := range ordered {
		gap := instantDemand(j, a) - float64(a.RemoteIO[j.ID])
		if gap <= 1e-9 {
			continue
		}
		if a.CacheQuota[j.DatasetKey] > j.EffectiveCached {
			give := math.Min(gap, remaining)
			a.RemoteIO[j.ID] += unit.Bandwidth(give)
			remaining -= give
			gap -= give
		}
		if gap > 1e-9 {
			unmet[j.ID] = gap
		}
	}
	if remaining <= 1e-9 || len(unmet) == 0 {
		return
	}
	type rec struct {
		id   string
		want float64
	}
	recs := make([]rec, 0, len(unmet))
	for id, w := range unmet {
		recs = append(recs, rec{id, w})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].want != recs[j].want {
			return recs[i].want < recs[j].want
		}
		return recs[i].id < recs[j].id
	})
	left := len(recs)
	for _, r := range recs {
		level := remaining / float64(left)
		give := math.Min(r.want, level)
		a.RemoteIO[r.id] += unit.Bandwidth(give)
		remaining -= give
		left--
	}
}

// maxMinEfficiencyRank orders datasets by warm-up value (cache
// efficiency with warm-data hysteresis), shared with the greedy
// allocator's investment ordering.
func maxMinEfficiencyRank(jobs []core.JobView) map[string]int {
	type grp struct {
		key string
		eff float64
		hot float64
	}
	groups := make(map[string]*grp)
	var keys []string
	for _, j := range jobs {
		g, ok := groups[j.DatasetKey]
		if !ok {
			g = &grp{key: j.DatasetKey}
			groups[j.DatasetKey] = g
			keys = append(keys, j.DatasetKey)
		}
		d := float64(j.DatasetSize)
		if d <= 0 {
			d = 1
		}
		g.eff += float64(j.Profile.IdealThroughput) / d
		if f := float64(j.CachedBytes) / d; f > g.hot {
			g.hot = f
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		ga, gb := groups[keys[a]], groups[keys[b]]
		ea := ga.eff * (1 + 0.5*ga.hot)
		eb := gb.eff * (1 + 0.5*gb.hot)
		if ea != eb {
			return ea > eb
		}
		return keys[a] < keys[b]
	})
	rank := make(map[string]int, len(keys))
	for i, k := range keys {
		rank[k] = i
	}
	return rank
}

var _ core.Policy = (*Gavel)(nil)
