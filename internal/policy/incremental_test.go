package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/unit"
)

// randViews builds a randomized job list whose storage/bandwidth
// programs exercise shared datasets, partial caching and capped jobs.
func randViews(rng *rand.Rand, n int) []core.JobView {
	views := make([]core.JobView, 0, n)
	for i := 0; i < n; i++ {
		ds := fmt.Sprintf("ds%d", rng.Intn(max(2, n/2)))
		size := unit.GiB(float64(10 + rng.Intn(200)))
		views = append(views, core.JobView{
			ID:          fmt.Sprintf("j%02d", i),
			NumGPUs:     1 + rng.Intn(4),
			Profile:     estimator.JobProfile{IdealThroughput: unit.MBpsOf(float64(50 + rng.Intn(400))), DatasetSize: size},
			DatasetKey:  ds,
			DatasetSize: size,
			CachedBytes: unit.Bytes(rng.Float64()) * size,
			EffectiveCached: unit.Bytes(rng.Float64() * 0.5 *
				float64(size)),
			RemainingBytes: size * unit.Bytes(1+rng.Intn(20)),
			AttainedBytes:  size * unit.Bytes(rng.Intn(5)),
			Running:        rng.Intn(2) == 0,
		})
	}
	return views
}

// mutateViews perturbs the fields that change between scheduling
// rounds (progress, cache state) without touching identities — the
// regime the warm solver sees in production.
func mutateViews(rng *rand.Rand, views []core.JobView) {
	for i := range views {
		switch rng.Intn(4) {
		case 0:
			views[i].RemainingBytes -= unit.Bytes(rng.Float64()) * views[i].RemainingBytes / 4
		case 1:
			views[i].CachedBytes = unit.Bytes(rng.Float64()) * views[i].DatasetSize
		case 2:
			views[i].EffectiveCached = unit.Bytes(rng.Float64()) * views[i].CachedBytes
		case 3:
			// Unchanged: exercises the solver's exact-match memo.
		}
	}
}

// TestMaxMinSolverWarmMatchesCold drives one long-lived (warm)
// MaxMinSolver through a randomized round sequence and diffs every
// allocation against the cold from-scratch reference. This is the
// policy-layer byte-identity gate for the solve memo, the λ warm-start
// hints, and the persisted-permutation sort skip.
func TestMaxMinSolverWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	var warm MaxMinSolver
	cache := unit.TiB(2)
	io := unit.Gbps(8)
	cl := core.Cluster{GPUs: 64, Cache: cache, RemoteIO: io}
	views := randViews(rng, 24)
	for round := 0; round < 120; round++ {
		got := warm.Storage(cache, io, views)
		want := MaxMinStorage(cache, io, views)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d allocs warm, %d cold", round, len(got), len(want))
		}
		for id, w := range want {
			g, ok := got[id]
			if !ok || g != w {
				t.Fatalf("round %d job %s: warm %+v, cold %+v", round, id, g, w)
			}
		}
		quota := DatasetQuotas(views, want)
		running := views[:len(views)/2]
		gotBW := warm.Bandwidth(cl, io, running, quota)
		wantBW := MaxMinBandwidth(cl, io, running, quota)
		if len(gotBW) != len(wantBW) {
			t.Fatalf("round %d: %d grants warm, %d cold", round, len(gotBW), len(wantBW))
		}
		for id, w := range wantBW {
			if g := gotBW[id]; g != w {
				t.Fatalf("round %d job %s: warm grant %v, cold %v", round, id, g, w)
			}
		}
		if round%17 == 16 {
			// Occasionally change the job set itself (arrival/departure),
			// the group-level invalidation path.
			views = randViews(rng, 16+rng.Intn(16))
		} else {
			mutateViews(rng, views)
		}
	}
}

// snapshotAssignment deep-copies an Assignment's maps (policies recycle
// them across Assign calls).
func snapshotAssignment(a core.Assignment) (g map[string]int, c map[string]unit.Bytes, r map[string]unit.Bandwidth) {
	g = make(map[string]int, len(a.GPUs))
	for k, v := range a.GPUs {
		g[k] = v
	}
	c = make(map[string]unit.Bytes, len(a.CacheQuota))
	for k, v := range a.CacheQuota {
		c[k] = v
	}
	r = make(map[string]unit.Bandwidth, len(a.RemoteIO))
	for k, v := range a.RemoteIO {
		r[k] = v
	}
	return g, c, r
}

// TestIgnoredFieldsIrrelevant is the relevance fuzz behind every
// DeltaAssigner declaration: for each delta-aware policy, mutating ONLY
// the fields it declares ignored must leave the assignment untouched.
// A fresh policy instance evaluates the mutated views, so the check
// exercises a genuine re-solve, not the solver's own memo.
func TestIgnoredFieldsIrrelevant(t *testing.T) {
	// Gavel is only pure (hence delta-aware) under the TotalThroughput
	// objective — Build's default MaxMinFairness reads progress — so the
	// Gavel rows construct it directly with the pure objective.
	mkGavel := func(cs CacheSystem) func() core.Policy {
		return func() core.Policy {
			p, err := Build(GavelKind, cs, 7)
			if err != nil {
				panic(err)
			}
			p.(*Gavel).Objective = TotalThroughput
			return p
		}
	}
	mk := func(k SchedulerKind, cs CacheSystem) func() core.Policy {
		return func() core.Policy {
			p, err := Build(k, cs, 7)
			if err != nil {
				panic(err)
			}
			return p
		}
	}
	builds := []struct {
		name  string
		fresh func() core.Policy
	}{
		{"FIFO_SiloD", mk(FIFOKind, SiloD)},
		{"FIFO_Alluxio", mk(FIFOKind, Alluxio)},
		{"SJF_SiloD", mk(SJFKind, SiloD)},
		{"GavelTput_SiloD", mkGavel(SiloD)},
		{"GavelTput_CoorDL", mkGavel(CoorDL)},
	}
	rng := rand.New(rand.NewSource(99))
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			polA := b.fresh()
			ignored := core.PolicyIgnoredFields(polA)
			if ignored == 0 {
				t.Fatalf("%s is not delta-aware", b.name)
			}
			cl := core.Cluster{GPUs: 16, Cache: unit.TiB(1), RemoteIO: unit.Gbps(2)}
			for trial := 0; trial < 25; trial++ {
				base := randViews(rng, 12)
				mutated := append([]core.JobView(nil), base...)
				for i := range mutated {
					if ignored&core.FieldRemainingBytes != 0 {
						mutated[i].RemainingBytes += unit.GiB(float64(rng.Intn(100)))
					}
					if ignored&core.FieldAttainedBytes != 0 {
						mutated[i].AttainedBytes += unit.GiB(float64(rng.Intn(100)))
					}
					if ignored&core.FieldSubmit != 0 {
						mutated[i].Submit += unit.Time(rng.Intn(1000)) * unit.Time(unit.Minute)
					}
					if ignored&core.FieldRunning != 0 {
						mutated[i].Running = !mutated[i].Running
					}
					if ignored&core.FieldTenant != 0 {
						mutated[i].Tenant = "other"
					}
				}
				if !core.ViewsEquivalent(base, mutated, ignored) {
					t.Fatal("mutation escaped the ignored field set")
				}
				a := polA.Assign(cl, 0, base)
				ag, ac, ar := snapshotAssignment(a)
				polB := b.fresh()
				bAssign := polB.Assign(cl, 0, mutated)
				bg, bc, br := snapshotAssignment(bAssign)
				if len(ag) != len(bg) || len(ac) != len(bc) || len(ar) != len(br) {
					t.Fatalf("trial %d: assignment shapes differ", trial)
				}
				for k, v := range ag {
					if bg[k] != v {
						t.Fatalf("trial %d: GPU grant %s: %d vs %d after ignored-field mutation", trial, k, v, bg[k])
					}
				}
				for k, v := range ac {
					if bc[k] != v {
						t.Fatalf("trial %d: cache quota %s: %v vs %v after ignored-field mutation", trial, k, v, bc[k])
					}
				}
				for k, v := range ar {
					if br[k] != v {
						t.Fatalf("trial %d: remote IO %s: %v vs %v after ignored-field mutation", trial, k, v, br[k])
					}
				}
			}
		})
	}
}
